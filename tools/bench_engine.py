#!/usr/bin/env python
"""Benchmark the simulation kernel: events/sec and peak RSS by node count.

Each cell builds a SETI-population cluster (oracle detection, no burn-in,
no MapReduce job — the pure failure/event kernel) and runs it for a fixed
simulated horizon, recording build time, run time, events dispatched,
events/sec, and peak RSS. Cells run in **separate subprocesses** so peak
RSS is per-cell, not cumulative.

The committed ``BENCH_engine.json`` carries two sections:

* ``baseline`` — captured at the pre-refactor revision with this same
  tool (the scale-kernel acceptance bar: >= 5x events/sec on the 16k
  cell; the build-kernel bar: >= 10x lower build_seconds there).
* ``current`` — the tree as checked out.

Schema 2 cells carry a ``topology`` discriminator ("flat" unless the
cell enables the Clos fabric); the 4k population is measured both flat
and behind a 32-rack oversubscribed Clos with rack-aware ingest, and the
``--guard`` gate fails CI when the Clos cell slows by more than 20%.

Schema 2 adds a per-cell ``build_breakdown`` (seed derivation / pregen /
object construction / bus wiring, from ``Cluster.build_profile``, plus a
separately-timed metadata ingest of one block per node at replication 3 —
ingest is *not* part of ``build_seconds``, keeping the build numbers
comparable with schema-1 records).

Usage::

    PYTHONPATH=src python tools/bench_engine.py --out BENCH_engine.json
    PYTHONPATH=src python tools/bench_engine.py --smoke \
        --guard BENCH_engine.json        # CI perf-regression gate
    PYTHONPATH=src python tools/bench_engine.py --full   # adds the 226k cell

The tool runs unchanged on revisions that predate the scale-kernel knobs
(``pregen_horizon`` / ``event_queue``): knobs are applied only when the
checked-out ``ClusterConfig`` has the field.
"""

from __future__ import annotations

import argparse
import dataclasses
import json
import os
import platform
import subprocess
import sys
import time
from typing import Any, Dict, List, Optional

#: Per-cell knob overrides for the hierarchical-topology cell: the same
#: 4k population behind a 32-rack Clos fabric at 4:1 oversubscription,
#: with rack-aware placement so the ingest path pays the off-rack rule.
#: ``_cluster_config_kwargs`` drops these on revisions that predate the
#: topology layer, where the cell degenerates to a second flat 4k run.
CLOS_KNOBS = {
    "topology": "clos",
    "racks": 32,
    "oversubscription": 4.0,
    "rack_aware_placement": True,
}
#: (node_count, simulated days, cell knobs) — the 226k cell is the full
#: SETI@home FTA population over a multi-day window (ROADMAP item 1).
CELLS = [
    (1024, 2.0, {}),
    (4096, 2.0, {}),
    (4096, 2.0, CLOS_KNOBS),
    (16384, 2.0, {}),
]
FULL_CELL = (226_208, 3.0, {})
SMOKE_NODES = 1024
#: The smoke run also measures this cell, so CI can guard build time at a
#: size where construction cost is unmistakable (flat and Clos variants).
GUARD_BUILD_NODES = 4096
GUARD_DROP_FRACTION = 0.20


def _cluster_config_kwargs(extra: Dict[str, Any]) -> Dict[str, Any]:
    """Keep only the knobs the checked-out ClusterConfig understands."""
    from repro.runtime.cluster import ClusterConfig

    names = {f.name for f in dataclasses.fields(ClusterConfig)}
    return {k: v for k, v in extra.items() if k in names and v is not None}


def run_cell(nodes: int, days: float, seed: int, knobs: Dict[str, Any]) -> Dict[str, Any]:
    """Build + run one kernel cell in this process; return its record."""
    import resource

    from repro.experiments.config import SimulationConfig
    from repro.runtime.cluster import build_cluster

    horizon = days * 86400.0
    sim_config = SimulationConfig(
        node_count=nodes, detection="oracle", stationary_burn_in=0.0, seed=seed
    )
    hosts = sim_config.hosts(seed=seed)
    config = sim_config.cluster_config(seed=seed)
    applied = _cluster_config_kwargs(knobs)
    if applied:
        config = dataclasses.replace(config, **applied)

    t0 = time.perf_counter()
    cluster = build_cluster(hosts, config)
    t1 = time.perf_counter()
    cluster.sim.run(until=horizon)
    t2 = time.perf_counter()
    events = cluster.sim.events_fired

    # Metadata ingest: one block per node at replication 3, timed on its
    # own so ``build_seconds`` stays comparable with schema-1 records.
    from repro.core.placement import RandomPlacement

    t_ingest = time.perf_counter()
    cluster.namenode.create_file(
        "bench-ingest",
        num_blocks=nodes,
        block_size=config.block_size_bytes,
        replication=3,
        policy=RandomPlacement(),
        gamma=1.0,
        rng=cluster.rng,
    )
    ingest_seconds = time.perf_counter() - t_ingest
    cluster.stop()

    build_breakdown: Dict[str, Any] = {}
    profile = getattr(cluster, "build_profile", None)
    if profile is not None:
        build_breakdown = profile.as_dict()
    build_breakdown["ingest_seconds"] = round(ingest_seconds, 3)
    build_breakdown["ingest_blocks"] = nodes

    rss_kb = resource.getrusage(resource.RUSAGE_SELF).ru_maxrss
    if sys.platform == "darwin":  # ru_maxrss is bytes on macOS, KiB on Linux
        rss_kb /= 1024.0
    run_seconds = t2 - t1
    return {
        "nodes": nodes,
        "topology": applied.get("topology", "flat"),
        "days": days,
        "seed": seed,
        "build_seconds": round(t1 - t0, 3),
        "run_seconds": round(run_seconds, 3),
        "total_seconds": round(t2 - t0, 3),
        "events": events,
        "events_per_sec": round(events / run_seconds, 1) if run_seconds > 0 else 0.0,
        "peak_rss_mb": round(rss_kb / 1024.0, 1),
        "build_breakdown": build_breakdown,
        "knobs": applied,
    }


def run_cell_subprocess(
    nodes: int, days: float, seed: int, knobs: Dict[str, Any]
) -> Dict[str, Any]:
    """Run one cell in a fresh interpreter (isolated peak RSS)."""
    env = dict(os.environ)
    src = os.path.join(os.path.dirname(os.path.dirname(os.path.abspath(__file__))), "src")
    env["PYTHONPATH"] = src + os.pathsep + env.get("PYTHONPATH", "")
    cmd = [
        sys.executable,
        os.path.abspath(__file__),
        "--run-cell",
        str(nodes),
        "--days",
        str(days),
        "--seed",
        str(seed),
        "--knobs",
        json.dumps(knobs),
    ]
    proc = subprocess.run(cmd, env=env, capture_output=True, text=True)
    if proc.returncode != 0:
        raise RuntimeError(
            f"cell nodes={nodes} failed (exit {proc.returncode}):\n{proc.stderr}"
        )
    return json.loads(proc.stdout.strip().splitlines()[-1])


def render_table(record: Dict[str, Any]) -> str:
    lines = []
    header = (
        f"{'section':<10} {'nodes':>8} {'topo':>6} {'days':>5} {'build_s':>9} "
        f"{'run_s':>9} {'events':>10} {'ev/s':>10} {'rss_mb':>8}"
    )
    lines.append(header)
    lines.append("-" * len(header))
    for section in ("baseline", "current"):
        block = record.get(section)
        if not block:
            continue
        for cell in block["cells"]:
            lines.append(
                f"{section:<10} {cell['nodes']:>8} "
                f"{cell.get('topology', 'flat'):>6} {cell['days']:>5} "
                f"{cell['build_seconds']:>9.2f} {cell['run_seconds']:>9.2f} "
                f"{cell['events']:>10} {cell['events_per_sec']:>10.1f} "
                f"{cell['peak_rss_mb']:>8.1f}"
            )
    speedup = record.get("speedup_events_per_sec_16k")
    if speedup is not None:
        lines.append(f"speedup (16k cell, events/sec, current vs baseline): {speedup}x")
    build_speedup = record.get("speedup_build_seconds_16k")
    if build_speedup is not None:
        lines.append(
            f"speedup (16k cell, build time, baseline vs current): {build_speedup}x"
        )
    return "\n".join(lines) + "\n"


def _find_cell(
    block: Optional[Dict[str, Any]], nodes: int, topology: str = "flat"
) -> Optional[Dict[str, Any]]:
    if not block:
        return None
    for cell in block.get("cells", []):
        if cell["nodes"] == nodes and cell.get("topology", "flat") == topology:
            return cell
    return None


def guard(record: Dict[str, Any], baseline_path: str) -> int:
    """Fail (exit 1) on a >20% regression vs the committed record.

    Three gates: events/sec on the smoke cell (run-loop throughput),
    build_seconds on the flat 4k cell (build-kernel speed), and
    total_seconds on the Clos 4k cell (hierarchical allocator + rack-aware
    ingest). A gate is skipped with a note when either record lacks its
    cell.
    """
    with open(baseline_path, encoding="utf-8") as fh:
        committed = json.load(fh)
    failed = False

    ref = _find_cell(committed.get("current"), SMOKE_NODES)
    measured = _find_cell(record.get("current"), SMOKE_NODES)
    if ref is None or measured is None:
        print("guard: smoke cell missing from record; skipping events/sec gate")
    else:
        floor = ref["events_per_sec"] * (1.0 - GUARD_DROP_FRACTION)
        verdict = "OK" if measured["events_per_sec"] >= floor else "REGRESSION"
        failed |= verdict != "OK"
        print(
            f"guard: smoke cell {measured['events_per_sec']:.1f} ev/s vs committed "
            f"{ref['events_per_sec']:.1f} ev/s (floor {floor:.1f}) -> {verdict}"
        )

    ref = _find_cell(committed.get("current"), GUARD_BUILD_NODES)
    measured = _find_cell(record.get("current"), GUARD_BUILD_NODES)
    if ref is None or measured is None:
        print("guard: build cell missing from record; skipping build-time gate")
    else:
        ceiling = ref["build_seconds"] * (1.0 + GUARD_DROP_FRACTION)
        verdict = "OK" if measured["build_seconds"] <= ceiling else "REGRESSION"
        failed |= verdict != "OK"
        print(
            f"guard: build cell {measured['build_seconds']:.2f}s vs committed "
            f"{ref['build_seconds']:.2f}s (ceiling {ceiling:.2f}s) -> {verdict}"
        )

    ref = _find_cell(committed.get("current"), GUARD_BUILD_NODES, topology="clos")
    measured = _find_cell(record.get("current"), GUARD_BUILD_NODES, topology="clos")
    if ref is None or measured is None:
        print("guard: clos cell missing from record; skipping topology gate")
    else:
        ceiling = ref["total_seconds"] * (1.0 + GUARD_DROP_FRACTION)
        verdict = "OK" if measured["total_seconds"] <= ceiling else "REGRESSION"
        failed |= verdict != "OK"
        print(
            f"guard: clos cell {measured['total_seconds']:.2f}s vs committed "
            f"{ref['total_seconds']:.2f}s (ceiling {ceiling:.2f}s) -> {verdict}"
        )
    return 1 if failed else 0


def main() -> int:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--run-cell", type=int, default=None, help=argparse.SUPPRESS)
    parser.add_argument("--days", type=float, default=2.0)
    parser.add_argument("--seed", type=int, default=1)
    parser.add_argument("--knobs", type=str, default="{}", help=argparse.SUPPRESS)
    parser.add_argument(
        "--smoke", action="store_true", help="only the 1k (throughput) and 4k (build) cells"
    )
    parser.add_argument("--full", action="store_true", help="add the 226k multi-day cell")
    parser.add_argument(
        "--label",
        choices=("baseline", "current"),
        default="current",
        help="record section to write the measured cells into",
    )
    parser.add_argument(
        "--pregen-horizon",
        type=float,
        default=None,
        help="ClusterConfig.pregen_horizon to apply (ignored if the field is absent)",
    )
    parser.add_argument(
        "--event-queue",
        type=str,
        default=None,
        help="ClusterConfig.event_queue to apply (ignored if the field is absent)",
    )
    parser.add_argument(
        "--avail-backend",
        type=str,
        default=None,
        help="ClusterConfig.avail_backend to apply (ignored if the field is absent)",
    )
    parser.add_argument(
        "--pregen-jobs",
        type=int,
        default=None,
        help="ClusterConfig.pregen_jobs to apply (ignored if the field is absent)",
    )
    parser.add_argument("--out", type=str, default=None, help="JSON record path (merged)")
    parser.add_argument("--table-out", type=str, default=None)
    parser.add_argument(
        "--guard",
        type=str,
        default=None,
        metavar="BASELINE_JSON",
        help="compare the smoke cell against this committed record; "
        f"exit non-zero on a >{GUARD_DROP_FRACTION:.0%} events/sec drop",
    )
    args = parser.parse_args()

    if args.run_cell is not None:
        cell = run_cell(args.run_cell, args.days, args.seed, json.loads(args.knobs))
        print(json.dumps(cell))
        return 0

    knobs = {
        "pregen_horizon": args.pregen_horizon,
        "event_queue": args.event_queue,
        "avail_backend": args.avail_backend,
        "pregen_jobs": args.pregen_jobs,
    }
    cells = (
        [
            (SMOKE_NODES, 2.0, {}),
            (GUARD_BUILD_NODES, 2.0, {}),
            (GUARD_BUILD_NODES, 2.0, CLOS_KNOBS),
        ]
        if args.smoke
        else list(CELLS)
    )
    if args.full:
        cells.append(FULL_CELL)

    measured: List[Dict[str, Any]] = []
    for nodes, days, cell_knobs in cells:
        topo = cell_knobs.get("topology", "flat")
        print(f"running cell nodes={nodes} topology={topo} days={days} ...", flush=True)
        cell = run_cell_subprocess(nodes, days, args.seed, {**knobs, **cell_knobs})
        print(
            f"  build {cell['build_seconds']:.2f}s  run {cell['run_seconds']:.2f}s  "
            f"{cell['events']} events  {cell['events_per_sec']:.1f} ev/s  "
            f"{cell['peak_rss_mb']:.1f} MB",
            flush=True,
        )
        measured.append(cell)

    record: Dict[str, Any] = {}
    if args.out and os.path.exists(args.out):
        with open(args.out, encoding="utf-8") as fh:
            record = json.load(fh)
    record["schema"] = 2
    record["machine"] = {
        "cpu_count": os.cpu_count(),
        "python": platform.python_version(),
        "platform": platform.platform(),
    }
    record[args.label] = {"cells": measured}

    base_16k = _find_cell(record.get("baseline"), 16384)
    cur_16k = _find_cell(record.get("current"), 16384)
    if base_16k and cur_16k and base_16k["events_per_sec"] > 0:
        record["speedup_events_per_sec_16k"] = round(
            cur_16k["events_per_sec"] / base_16k["events_per_sec"], 2
        )
    if base_16k and cur_16k and cur_16k["build_seconds"] > 0:
        record["speedup_build_seconds_16k"] = round(
            base_16k["build_seconds"] / cur_16k["build_seconds"], 2
        )

    table = render_table(record)
    print(table, end="")
    if args.out:
        with open(args.out, "w", encoding="utf-8") as fh:
            json.dump(record, fh, indent=2, sort_keys=True)
            fh.write("\n")
    if args.table_out:
        with open(args.table_out, "w", encoding="utf-8") as fh:
            fh.write(table)

    if args.guard:
        return guard(record, args.guard)
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
