#!/usr/bin/env python3
"""Fill EXPERIMENTS.md placeholders from bench_output.txt.

Extracts the printed figure tables and the Table 1 / headline lines from a
benchmark-harness run and substitutes them into EXPERIMENTS.md. Rerun after
regenerating bench_output.txt to keep the document in sync.
"""

from __future__ import annotations

import re
import sys
from pathlib import Path

ROOT = Path(__file__).resolve().parent.parent


def extract_table(lines, title_fragment):
    """Grab an ASCII table that follows a title containing the fragment."""
    for i, line in enumerate(lines):
        if title_fragment in line:
            block = [line.rstrip()]
            j = i + 1
            while j < len(lines) and (
                lines[j].startswith("+") or lines[j].startswith("|")
            ):
                block.append(lines[j].rstrip())
                j += 1
            if len(block) > 1:
                return "```\n" + "\n".join(block) + "\n```"
    return "*(table not found in bench_output.txt — rerun the harness)*"


def main() -> int:
    bench = (ROOT / "bench_output.txt").read_text().splitlines()
    doc = (ROOT / "EXPERIMENTS.md").read_text()

    # Table 1 numbers.
    t1 = {}
    for line in bench:
        m = re.match(r"\| MTBI \(seconds\)\s*\| (\S+)\s*\| (\S+)\s*\| (\S+)", line)
        if m:
            t1["mtbi_mean"], t1["mtbi_std"], t1["mtbi_cov"] = m.groups()
        m = re.match(
            r"\| Interruption Duration \(seconds\) \| (\S+)\s*\| (\S+)\s*\| (\S+)", line
        )
        if m:
            t1["dur_mean"], t1["dur_std"], t1["dur_cov"] = m.groups()
    doc = doc.replace("MEASURED_T1_MTBI_COV", t1.get("mtbi_cov", "?"))
    doc = doc.replace("MEASURED_T1_MTBI", t1.get("mtbi_mean", "?"))
    doc = doc.replace("MEASURED_T1_DUR_COV", t1.get("dur_cov", "?"))
    doc = doc.replace("MEASURED_T1_DUR", t1.get("dur_mean", "?"))

    headline = next((l for l in bench if l.startswith("headline")), None)
    doc = doc.replace(
        "HEADLINE_BLOCK", f"```\n{headline}\n```" if headline else "*(missing)*"
    )

    for placeholder, fragment in [
        ("FIG3A_TABLE", "Figure 3(a)"),
        ("FIG3B_TABLE", "Figure 3(b)"),
        ("FIG3C_TABLE", "Figure 3(c)"),
        ("FIG4A_TABLE", "Figure 4(a)"),
        ("FIG4B_TABLE", "Figure 4(b)"),
        ("FIG4C_TABLE", "Figure 4(c)"),
        ("FIG5A_TABLE", "Figure 5(a)"),
        ("FIG5B_TABLE", "Figure 5(b)"),
        ("FIG5C_TABLE", "Figure 5(c)"),
    ]:
        doc = doc.replace(placeholder, extract_table(bench, fragment))

    (ROOT / "EXPERIMENTS.md").write_text(doc)
    leftovers = re.findall(r"(MEASURED_\w+|FIG\d\w_TABLE|HEADLINE_BLOCK)", doc)
    if leftovers:
        print(f"warning: unfilled placeholders: {sorted(set(leftovers))}")
        return 1
    print("EXPERIMENTS.md filled.")
    return 0


if __name__ == "__main__":
    sys.exit(main())
