"""Benchmark-smoke driver: time one emulation sweep serial vs parallel.

Runs the Figure 3(a)/4(a) interrupted-ratio sweep (3 ratios x 4
strategies x 1 repetition = 12 cells by default) once with ``jobs=1``
and once with ``--jobs`` workers, verifies the two produce row-for-row
identical results, prints the rendered sweep table, and writes a JSON
timing record (``BENCH_sweep.json``) suitable for CI artifacts::

    PYTHONPATH=src python tools/bench_sweep.py --jobs 4 \
        --out BENCH_sweep.json --table-out sweep_table.txt

The record includes ``cpu_count`` — interpret the speedup against it:
a 4-worker run on a 1-core container cannot beat serial.
"""

from __future__ import annotations

import argparse
import json
import os
import sys
import time
from typing import Optional, Sequence

from repro.experiments.config import EMULATION_STRATEGIES, EmulationConfig
from repro.experiments.emulation import sweep_interrupted_ratio
from repro.experiments.parallel import SweepExecutor
from repro.experiments.reporting import render_sweep
from repro.experiments.results import SweepResult


def _rows(sweep: SweepResult):
    return [
        (row.x, row.strategy_key, row.elapsed_values, row.locality_values)
        for row in sweep.rows
    ]


def main(argv: Optional[Sequence[str]] = None) -> int:
    parser = argparse.ArgumentParser(description="time a sweep serial vs parallel")
    parser.add_argument("--jobs", type=int, default=4, help="parallel worker count")
    parser.add_argument("--nodes", type=int, default=24, help="cluster size per cell")
    parser.add_argument("--blocks-per-node", type=float, default=8.0)
    parser.add_argument("--repetitions", type=int, default=1)
    parser.add_argument("--seed", type=int, default=0)
    parser.add_argument("--cache-dir", default=None, help="optional run cache to exercise")
    parser.add_argument("--out", default="BENCH_sweep.json", help="timing record path")
    parser.add_argument("--table-out", default=None, help="also write the rendered table here")
    args = parser.parse_args(argv)

    base = EmulationConfig(
        node_count=args.nodes, blocks_per_node=args.blocks_per_node, seed=args.seed
    )
    strategies = tuple(EMULATION_STRATEGIES)
    values = (0.25, 0.5, 0.75)
    cell_count = len(values) * len(strategies) * args.repetitions

    def timed(executor: SweepExecutor):
        start = time.perf_counter()
        sweep = sweep_interrupted_ratio(
            base,
            values=values,
            strategies=strategies,
            repetitions=args.repetitions,
            executor=executor,
        )
        return sweep, time.perf_counter() - start

    print(f"sweep: fig3a/4a, {cell_count} cells, nodes={args.nodes}")
    serial_sweep, serial_seconds = timed(SweepExecutor(jobs=1))
    print(f"serial (jobs=1): {serial_seconds:.2f}s")
    parallel_exec = SweepExecutor(jobs=args.jobs, cache_dir=args.cache_dir)
    parallel_sweep, parallel_seconds = timed(parallel_exec)
    print(f"parallel (jobs={args.jobs}): {parallel_seconds:.2f}s")

    rows_identical = _rows(parallel_sweep) == _rows(serial_sweep)
    speedup = serial_seconds / parallel_seconds if parallel_seconds > 0 else float("inf")
    table = render_sweep(
        parallel_sweep, "elapsed", title="Figure 3(a): elapsed vs interrupted ratio"
    )
    print()
    print(table)
    print(f"\nrows identical to serial: {rows_identical}")
    print(f"speedup: {speedup:.2f}x on {os.cpu_count()} CPU(s)")

    record = {
        "sweep": "fig3a/4a",
        "cells": cell_count,
        "node_count": args.nodes,
        "blocks_per_node": args.blocks_per_node,
        "repetitions": args.repetitions,
        "jobs": args.jobs,
        "serial_seconds": round(serial_seconds, 3),
        "parallel_seconds": round(parallel_seconds, 3),
        "speedup": round(speedup, 3),
        "rows_identical": rows_identical,
        "cpu_count": os.cpu_count(),
        "cache_hits": parallel_exec.cache_hits,
        "cache_misses": parallel_exec.cache_misses,
    }
    with open(args.out, "w", encoding="utf-8") as fh:
        json.dump(record, fh, indent=2)
        fh.write("\n")
    print(f"timing record written to {args.out}")
    if args.table_out is not None:
        with open(args.table_out, "w", encoding="utf-8") as fh:
            fh.write(table + "\n")
        print(f"table written to {args.table_out}")
    return 0 if rows_identical else 1


if __name__ == "__main__":
    sys.exit(main())
