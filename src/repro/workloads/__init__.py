"""Workload models: per-block failure-free map-task lengths.

The paper benchmarks Terasort (Section V.A) with 64 MB blocks and a
failure-free task execution time of 12 s per block (Table 4). A workload
maps a block size to gamma — the failure-free map length — plus metadata
the shuffle extension uses. Additional workloads (wordcount, grep,
synthetic) exercise the same machinery at different compute densities.
"""

from repro.workloads.base import Workload
from repro.workloads.grepwl import GrepWorkload
from repro.workloads.synthetic import SyntheticWorkload
from repro.workloads.terasort import TerasortWorkload
from repro.workloads.wordcount import WordCountWorkload

__all__ = [
    "Workload",
    "TerasortWorkload",
    "WordCountWorkload",
    "GrepWorkload",
    "SyntheticWorkload",
    "make_workload",
]


def make_workload(name: str, **kwargs: object) -> Workload:
    """Build a workload by name: terasort, wordcount, grep, synthetic."""
    registry = {
        "terasort": TerasortWorkload,
        "wordcount": WordCountWorkload,
        "grep": GrepWorkload,
        "synthetic": SyntheticWorkload,
    }
    try:
        factory = registry[name.lower()]
    except KeyError:
        known = ", ".join(sorted(registry))
        raise ValueError(f"unknown workload {name!r}; known: {known}") from None
    return factory(**kwargs)  # type: ignore[arg-type]
