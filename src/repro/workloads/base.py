"""The workload abstraction."""

from __future__ import annotations

from abc import ABC, abstractmethod
from typing import List, Optional

from repro.hdfs.blocks import DfsFile
from repro.util.rng import RandomSource
from repro.util.units import MB


class Workload(ABC):
    """Maps input blocks to failure-free map-task lengths (gamma)."""

    #: Short machine-readable name.
    name: str = "abstract"

    #: Fraction of input bytes emitted as intermediate (shuffle) data.
    map_output_ratio: float = 1.0

    @abstractmethod
    def gamma_seconds(self, block_size_bytes: int) -> float:
        """Failure-free map time for one block of the given size."""

    def gammas(self, dfs_file: DfsFile, rng: Optional[RandomSource] = None) -> List[float]:
        """Per-task gammas for a file (uniform unless a subclass varies them)."""
        return [self.gamma_seconds(block.size_bytes) for block in dfs_file.blocks]

    def reduce_gamma_seconds(self, total_input_bytes: int, reducers: int) -> float:
        """Failure-free reduce time per reducer (for the shuffle extension).

        Default: reducing is as dense as mapping over this reducer's share
        of the intermediate data.
        """
        share = total_input_bytes * self.map_output_ratio / max(reducers, 1)
        return max(self.gamma_seconds(int(max(share, 1))), 1e-6)

    def __repr__(self) -> str:
        return f"{type(self).__name__}()"


class RateBasedWorkload(Workload):
    """A workload defined by a processing density in seconds per megabyte."""

    def __init__(self, seconds_per_mb: float) -> None:
        if seconds_per_mb <= 0:
            raise ValueError(f"seconds_per_mb must be positive, got {seconds_per_mb}")
        self._seconds_per_mb = seconds_per_mb

    @property
    def seconds_per_mb(self) -> float:
        return self._seconds_per_mb

    def gamma_seconds(self, block_size_bytes: int) -> float:
        if block_size_bytes <= 0:
            raise ValueError(f"block size must be positive, got {block_size_bytes}")
        return self._seconds_per_mb * block_size_bytes / MB
