"""Distributed grep: a scan-light workload with negligible shuffle.

The classic MapReduce example (Dean & Ghemawat): scan fast, emit almost
nothing. Short gammas make interruption *detection* and scheduling overhead
relatively more important — a useful contrast to terasort.
"""

from __future__ import annotations

from repro.workloads.base import RateBasedWorkload

#: 6.4 s per 64 MB block: I/O-bound scanning.
GREP_SECONDS_PER_MB = 0.1


class GrepWorkload(RateBasedWorkload):
    """Distributed-grep workload model."""

    name = "grep"
    map_output_ratio = 0.001

    def __init__(self, seconds_per_mb: float = GREP_SECONDS_PER_MB) -> None:
        super().__init__(seconds_per_mb)
