"""Terasort: the paper's benchmark (Section V.A, Table 4).

Calibrated so a 64 MB block maps in 12 seconds failure-free, matching
Table 4's "Failure-free Task Execution Time (64MB data block): 12s". The
map phase of terasort samples/partitions its input, and its intermediate
data is as large as its input (``map_output_ratio = 1``).
"""

from __future__ import annotations

from repro.util.units import MB
from repro.workloads.base import RateBasedWorkload

#: Table 4 calibration: 12 s per 64 MB block.
TERASORT_SECONDS_PER_MB = 12.0 / 64.0


class TerasortWorkload(RateBasedWorkload):
    """The paper's terasort benchmark model."""

    name = "terasort"
    map_output_ratio = 1.0

    def __init__(self, seconds_per_mb: float = TERASORT_SECONDS_PER_MB) -> None:
        super().__init__(seconds_per_mb)

    @property
    def gamma_64mb(self) -> float:
        """Failure-free time for the default 64 MB block."""
        return self.gamma_seconds(64 * MB)
