"""Wordcount: a compute-denser workload with tiny intermediate output.

Used by the examples to show ADAPT on a second realistic job shape: more
CPU per byte than terasort, and a shuffle that is a small fraction of the
input (word histograms compress well).
"""

from __future__ import annotations

from repro.workloads.base import RateBasedWorkload

#: Roughly 1.6x denser than terasort: 19.2 s per 64 MB block.
WORDCOUNT_SECONDS_PER_MB = 0.3


class WordCountWorkload(RateBasedWorkload):
    """Wordcount workload model."""

    name = "wordcount"
    map_output_ratio = 0.05

    def __init__(self, seconds_per_mb: float = WORDCOUNT_SECONDS_PER_MB) -> None:
        super().__init__(seconds_per_mb)
