"""Synthetic workload with configurable density and per-task variability.

Real map tasks are not perfectly uniform; this workload draws each task's
gamma from a lognormal around the rate-based mean, which exercises the
straggler/speculation machinery even without interruptions.
"""

from __future__ import annotations

from typing import List, Optional

from repro.availability.distributions import Lognormal
from repro.hdfs.blocks import DfsFile
from repro.util.rng import RandomSource
from repro.util.validation import check_non_negative
from repro.workloads.base import RateBasedWorkload


class SyntheticWorkload(RateBasedWorkload):
    """Rate-based workload with optional lognormal task-length jitter."""

    name = "synthetic"
    map_output_ratio = 0.5

    def __init__(
        self,
        seconds_per_mb: float = 0.1875,
        gamma_cov: float = 0.0,
    ) -> None:
        super().__init__(seconds_per_mb)
        self._gamma_cov = check_non_negative("gamma_cov", gamma_cov)

    @property
    def gamma_cov(self) -> float:
        return self._gamma_cov

    def gammas(self, dfs_file: DfsFile, rng: Optional[RandomSource] = None) -> List[float]:
        base = [self.gamma_seconds(block.size_bytes) for block in dfs_file.blocks]
        if self._gamma_cov == 0.0:
            return base
        if rng is None:
            raise ValueError("gamma_cov > 0 requires an rng to draw task jitter")
        jitter = Lognormal(mean=1.0, cov=self._gamma_cov)
        stream = rng.substream("gamma-jitter", dfs_file.name)
        return [g * jitter.sample(stream) for g in base]
