"""Online interruption-statistics estimators.

ADAPT's Performance Predictor lives on the NameNode and keeps, per node,
only "a data structure with two double data types ... the interruption
arrival rate and recovery time" (paper Section IV.B.1), updated from
heartbeat arrivals/misses. :class:`InterruptionStatsEstimator` reproduces
that: it folds observed downtime episodes and accumulated uptime into
running estimates of lambda (1/MTBI) and mu (mean recovery), optionally
blended with a prior so that cold-start placement is sane.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional

from repro.util.validation import check_non_negative, check_positive

#: Availability floor used by the naive baseline when mu >= MTBI.
_EPSILON = 1e-9


@dataclass(frozen=True)
class AvailabilityEstimate:
    """A point estimate of one node's interruption behaviour.

    ``arrival_rate`` is lambda (interruptions per second of uptime) and
    ``recovery_mean`` is mu (seconds). ``observations`` counts how many
    downtime episodes informed the estimate (0 means prior-only).
    """

    arrival_rate: float
    recovery_mean: float
    observations: int = 0

    def __post_init__(self) -> None:
        check_non_negative("arrival_rate", self.arrival_rate)
        check_non_negative("recovery_mean", self.recovery_mean)
        if self.observations < 0:
            raise ValueError("observations must be non-negative")

    @property
    def mtbi(self) -> float:
        """Mean time between interruptions (infinite for a dedicated node)."""
        if self.arrival_rate == 0.0:
            return float("inf")
        return 1.0 / self.arrival_rate

    @property
    def is_dedicated(self) -> bool:
        """True when the node is believed never to be interrupted."""
        return self.arrival_rate == 0.0

    @property
    def steady_state_availability(self) -> float:
        """Long-run up fraction MTBI / (MTBI + mu)."""
        if self.is_dedicated:
            return 1.0
        return self.mtbi / (self.mtbi + self.recovery_mean)

    @property
    def naive_availability(self) -> float:
        """The paper's naive score (MTBI - mu) / MTBI, floored above zero.

        Section V.C defines the naive strategy's weight exactly this way;
        the floor guards the (physically possible) case mu >= MTBI where
        the formula would go non-positive.
        """
        if self.is_dedicated:
            return 1.0
        return max((self.mtbi - self.recovery_mean) / self.mtbi, _EPSILON)


class InterruptionStatsEstimator:
    """Running (lambda, mu) estimator for one node.

    Estimates are maximum-likelihood from observed data, smoothed with a
    prior expressed as pseudo-observations: the prior contributes
    ``prior_weight`` fictitious episodes whose MTBI/recovery are the prior
    values. With ``prior_weight=0`` the estimator is purely empirical and
    undefined until the first episode completes (it then reports the
    prior anyway, flagged with ``observations=0``).
    """

    def __init__(
        self,
        prior_mtbi: float = 1e7,
        prior_recovery: float = 0.0,
        prior_weight: float = 1.0,
    ) -> None:
        self._prior_mtbi = check_positive("prior_mtbi", prior_mtbi)
        self._prior_recovery = check_non_negative("prior_recovery", prior_recovery)
        self._prior_weight = check_non_negative("prior_weight", prior_weight)
        self._uptime = 0.0
        self._episodes = 0
        self._downtime_total = 0.0

    @property
    def observed_episodes(self) -> int:
        """Number of completed downtime episodes folded in so far."""
        return self._episodes

    @property
    def observed_uptime(self) -> float:
        """Total uptime seconds folded in so far."""
        return self._uptime

    def record_uptime(self, seconds: float) -> None:
        """Fold in ``seconds`` of observed uptime (heartbeats arriving)."""
        self._uptime += check_non_negative("seconds", seconds)

    def record_downtime(self, seconds: float) -> None:
        """Fold in one completed downtime episode of the given length."""
        self._downtime_total += check_non_negative("seconds", seconds)
        self._episodes += 1

    def estimate(self) -> AvailabilityEstimate:
        """Current blended (lambda, mu) estimate."""
        pseudo = self._prior_weight
        # lambda = episodes per second of uptime, with the prior acting as
        # `pseudo` episodes spread over `pseudo * prior_mtbi` seconds.
        eff_episodes = self._episodes + pseudo
        eff_uptime = self._uptime + pseudo * self._prior_mtbi
        if eff_uptime <= 0.0:
            # No uptime observed and no prior: report the prior MTBI anyway.
            arrival_rate = 1.0 / self._prior_mtbi
        else:
            arrival_rate = eff_episodes / eff_uptime
        eff_down = self._downtime_total + pseudo * self._prior_recovery
        denom = self._episodes + pseudo
        recovery = eff_down / denom if denom > 0 else self._prior_recovery
        return AvailabilityEstimate(
            arrival_rate=arrival_rate,
            recovery_mean=recovery,
            observations=self._episodes,
        )

    def reset(self) -> None:
        """Forget all observations (keeps the prior)."""
        self._uptime = 0.0
        self._episodes = 0
        self._downtime_total = 0.0


def oracle_estimate(
    arrival_rate: float,
    recovery_mean: float,
    observations: int = 1_000_000,
) -> AvailabilityEstimate:
    """An estimate carrying the *true* parameters (oracle ablation)."""
    return AvailabilityEstimate(
        arrival_rate=arrival_rate,
        recovery_mean=recovery_mean,
        observations=observations,
    )
