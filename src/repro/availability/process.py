"""Per-host interruption processes with M/G/1 recovery semantics.

Paper Section III.A: interruption inter-arrivals on host *i* are iid
exponential with rate lambda_i; each interruption needs a service (recovery)
time drawn from a general distribution with mean mu. Interruptions arriving
while a previous one is still being serviced queue FCFS — the host is an
M/G/1 queue, and the host is *down* for the whole busy period.

:class:`InterruptionProcess` turns those assumptions into a lazy stream of
:class:`DowntimeEpisode` objects (busy periods). The mean episode length is
the M/G/1 busy-period mean mu / (1 - lambda*mu), which is exactly the E(Y)
of the paper's formula (3); tests cross-check the two.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import Iterator, List, Optional

from repro.availability.distributions import (
    _NV_MAGICCONST,
    Distribution,
    Exponential,
    Lognormal,
)
from repro.util.rng import RandomSource
from repro.util.validation import check_positive


@dataclass(frozen=True)
class DowntimeEpisode:
    """One contiguous down window (an M/G/1 busy period).

    ``start`` is the arrival of the first interruption of the episode (the
    host goes down), ``end`` is when every queued interruption has been
    serviced (the host returns), and ``interruption_count`` is how many
    interruptions were folded into the episode.
    """

    start: float
    end: float
    interruption_count: int

    @property
    def duration(self) -> float:
        """Length of the down window."""
        return self.end - self.start

    def __post_init__(self) -> None:
        if self.end < self.start:
            raise ValueError(f"episode ends ({self.end}) before it starts ({self.start})")
        if self.interruption_count < 1:
            raise ValueError("an episode contains at least one interruption")


class InterruptionProcess:
    """Lazy generator of downtime episodes for a single host.

    Parameters
    ----------
    arrival:
        Inter-arrival distribution of interruptions. The paper assumes
        exponential; any positive distribution is accepted so ablations can
        probe the exponential assumption.
    service:
        Recovery-time distribution (general, per the paper).
    rng:
        Dedicated random stream for this host.
    max_interruptions_per_episode:
        Safety bound on how many queued interruptions one busy period may
        accumulate. An *unstable* host (lambda * mu >= 1) has, with positive
        probability, an infinite busy period — physically, a volunteer that
        leaves and never returns, which real SETI@home traces do contain.
        When the bound trips, the episode ends at the accumulated recovery
        point (already astronomically far in the future for any job); for
        stable hosts the bound is effectively never reached.
    """

    def __init__(
        self,
        arrival: Distribution,
        service: Distribution,
        rng: RandomSource,
        max_interruptions_per_episode: int = 10_000,
    ) -> None:
        if max_interruptions_per_episode < 1:
            raise ValueError("max_interruptions_per_episode must be >= 1")
        self._arrival = arrival
        self._service = service
        self._rng = rng
        self._max_per_episode = max_interruptions_per_episode

    @property
    def arrival(self) -> Distribution:
        return self._arrival

    @property
    def max_interruptions_per_episode(self) -> int:
        """The per-episode fold bound (see the class docstring)."""
        return self._max_per_episode

    @property
    def service(self) -> Distribution:
        return self._service

    @property
    def arrival_rate(self) -> float:
        """lambda = 1 / mean inter-arrival."""
        return 1.0 / self._arrival.mean

    @property
    def service_mean(self) -> float:
        """mu = mean recovery time."""
        return self._service.mean

    @property
    def utilization(self) -> float:
        """M/G/1 utilisation rho = lambda * mu."""
        return self.arrival_rate * self.service_mean

    def is_stable(self) -> bool:
        """Whether the interruption queue is stable (rho < 1).

        An unstable host would eventually be down forever; the paper's
        formula (3) requires lambda*mu < 1.
        """
        return self.utilization < 1.0

    def expected_episode_duration(self) -> float:
        """Mean busy period mu / (1 - lambda*mu): the model's E(Y)."""
        if not self.is_stable():
            raise ValueError(
                f"interruption process unstable (lambda*mu={self.utilization:.3f} >= 1)"
            )
        return self.service_mean / (1.0 - self.utilization)

    def episodes(
        self,
        horizon: float,
        clock: Optional[RandomSource] = None,
        svc_rng: Optional[RandomSource] = None,
    ) -> Iterator[DowntimeEpisode]:
        """Yield downtime episodes whose *start* falls in [0, horizon).

        Episodes are emitted in increasing start order and never overlap.
        The last episode may end after ``horizon``; callers that need a
        bounded trace clip it (see ``AvailabilityTrace.from_episodes``).

        ``clock`` / ``svc_rng`` let bulk pregeneration
        (:mod:`repro.availability.pregen`) pass in streams built from
        bulk-derived seeds; they must equal the default substream
        derivations (``"arrivals"`` / ``"service"`` under this process's
        rng) for the realisation to stay byte-identical.

        This loop dominates whole-cluster build and run time at scale
        (~98% of the 16k-node kernel cell), so the two distribution pairs
        every shipped population uses — exponential arrivals with lognormal
        (SETI traces) or exponential (Table 2 emulation) recovery — dispatch
        to specialised generators that inline the CPython ``random`` draw
        formulas directly into the busy-period fold. No per-draw method
        calls, and no retained buffers: a suspended generator holds a few
        floats, not kilobytes, which is what keeps 226k concurrent per-host
        streams inside memory. Emitted episodes are bit-identical to the
        generic scalar path (pinned by tests/availability/test_vectorized.py).
        """
        check_positive("horizon", horizon)
        if clock is None:
            clock = self._rng.substream("arrivals")
        if svc_rng is None:
            svc_rng = self._rng.substream("service")
        arrival = self._arrival
        service = self._service
        if type(arrival) is Exponential:
            if type(service) is Lognormal:
                return self._episodes_expo_lognormal(clock, svc_rng, horizon)
            if type(service) is Exponential:
                return self._episodes_expo_expo(clock, svc_rng, horizon)
        return self._episodes_generic(clock, svc_rng, horizon)

    def _episodes_generic(
        self,
        clock: RandomSource,
        svc_rng: RandomSource,
        horizon: float,
    ) -> Iterator[DowntimeEpisode]:
        """Reference busy-period fold: one ``Distribution.sample`` per draw."""
        arrival = self._arrival
        service = self._service
        max_per = self._max_per_episode

        t = arrival.sample(clock)
        while t < horizon:
            # A new busy period begins at this arrival.
            start = t
            busy_until = t + service.sample(svc_rng)
            count = 1
            t += arrival.sample(clock)
            # Fold in every interruption that arrives before recovery ends.
            while t < busy_until and count < max_per:
                busy_until += service.sample(svc_rng)
                count += 1
                t += arrival.sample(clock)
            if t < busy_until:
                # Episode truncated by the safety bound (unstable host that
                # effectively never returns): resume arrivals after the end.
                # Exact for exponential inter-arrivals (memorylessness).
                t = busy_until + arrival.sample(clock)
            yield DowntimeEpisode(start=start, end=busy_until, interruption_count=count)

    def _episodes_expo_lognormal(
        self,
        clock: RandomSource,
        svc_rng: RandomSource,
        horizon: float,
    ) -> Iterator[DowntimeEpisode]:
        """Busy-period fold with ``expovariate``/``lognormvariate`` inlined.

        The arrival draw is ``-log(1 - u) / lambd`` (``Random.expovariate``)
        and the service draw is ``exp(mu + z * sigma)`` with ``z`` from the
        Kinderman-Monahan rejection sampler behind ``Random.normalvariate``
        — the exact formulas, so draws are bit-identical to the generic path
        and the stream advances by the same number of uniforms.
        """
        assert isinstance(self._arrival, Exponential)
        assert isinstance(self._service, Lognormal)
        lambd = self._arrival.rate
        mu = self._service.mu
        sigma = self._service.sigma
        max_per = self._max_per_episode
        arnd = clock.raw_random
        srnd = svc_rng.raw_random
        log = math.log
        exp = math.exp
        magic = _NV_MAGICCONST

        t = -log(1.0 - arnd()) / lambd
        while t < horizon:
            start = t
            while True:
                u1 = srnd()
                u2 = 1.0 - srnd()
                z = magic * (u1 - 0.5) / u2
                if z * z / 4.0 <= -log(u2):
                    break
            busy_until = t + exp(mu + z * sigma)
            count = 1
            t += -log(1.0 - arnd()) / lambd
            while t < busy_until and count < max_per:
                while True:
                    u1 = srnd()
                    u2 = 1.0 - srnd()
                    z = magic * (u1 - 0.5) / u2
                    if z * z / 4.0 <= -log(u2):
                        break
                busy_until += exp(mu + z * sigma)
                count += 1
                t += -log(1.0 - arnd()) / lambd
            if t < busy_until:
                t = busy_until + -log(1.0 - arnd()) / lambd
            yield DowntimeEpisode(start=start, end=busy_until, interruption_count=count)

    def _episodes_expo_expo(
        self,
        clock: RandomSource,
        svc_rng: RandomSource,
        horizon: float,
    ) -> Iterator[DowntimeEpisode]:
        """Busy-period fold with ``expovariate`` inlined for both draws."""
        assert isinstance(self._arrival, Exponential)
        assert isinstance(self._service, Exponential)
        lambd = self._arrival.rate
        slambd = self._service.rate
        max_per = self._max_per_episode
        arnd = clock.raw_random
        srnd = svc_rng.raw_random
        log = math.log

        t = -log(1.0 - arnd()) / lambd
        while t < horizon:
            start = t
            busy_until = t + -log(1.0 - srnd()) / slambd
            count = 1
            t += -log(1.0 - arnd()) / lambd
            while t < busy_until and count < max_per:
                busy_until += -log(1.0 - srnd()) / slambd
                count += 1
                t += -log(1.0 - arnd()) / lambd
            if t < busy_until:
                t = busy_until + -log(1.0 - arnd()) / lambd
            yield DowntimeEpisode(start=start, end=busy_until, interruption_count=count)

    def episodes_list(self, horizon: float) -> List[DowntimeEpisode]:
        """Materialise :meth:`episodes` into a list."""
        return list(self.episodes(horizon))

    @classmethod
    def exponential(
        cls,
        mtbi: float,
        service: Distribution,
        rng: RandomSource,
    ) -> "InterruptionProcess":
        """Convenience constructor matching the paper's assumptions."""
        return cls(arrival=Exponential(mean=mtbi), service=service, rng=rng)

    def __repr__(self) -> str:
        return (
            f"InterruptionProcess(arrival={self._arrival!r}, "
            f"service={self._service!r})"
        )


def merge_episode_stream(
    episodes: Iterator[DowntimeEpisode],
    lookahead: Optional[int] = None,
) -> Iterator[DowntimeEpisode]:
    """Merge any episodes that touch or overlap into single episodes.

    :class:`InterruptionProcess` already emits disjoint episodes; this
    helper exists for trace post-processing (e.g. traces assembled from
    recorded event logs where windows may abut).
    """
    pending: Optional[DowntimeEpisode] = None
    for episode in episodes:
        if pending is None:
            pending = episode
            continue
        if episode.start <= pending.end:
            pending = DowntimeEpisode(
                start=pending.start,
                end=max(pending.end, episode.end),
                interruption_count=pending.interruption_count + episode.interruption_count,
            )
        else:
            yield pending
            pending = episode
    if pending is not None:
        yield pending
