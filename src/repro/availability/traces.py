"""Explicit availability traces: per-host up/down interval algebra.

A trace is the ground truth the large-scale simulation replays (paper
Section V.C replays SETI@home Failure Trace Archive data). Traces support
point queries (``is_up``), transition lookup, uptime accounting, and pooled
event statistics in the form of the paper's Table 1.
"""

from __future__ import annotations

import bisect
from dataclasses import dataclass
from typing import Dict, Iterable, List, Sequence, Tuple

from repro.availability.process import DowntimeEpisode, InterruptionProcess
from repro.util.stats import SummaryStats, summarize
from repro.util.validation import check_non_negative, check_positive


@dataclass(frozen=True)
class Interruption:
    """One raw interruption event: arrival time and its own service time.

    This is the event granularity of the Failure Trace Archive, before
    overlapping recoveries are merged into downtime episodes.
    """

    arrival: float
    duration: float

    def __post_init__(self) -> None:
        check_non_negative("arrival", self.arrival)
        check_non_negative("duration", self.duration)


class AvailabilityTrace:
    """Up/down windows for one host over ``[0, horizon)``.

    Down windows are half-open intervals ``[start, end)``, sorted, disjoint
    and clipped to the horizon. The host is up everywhere else.
    """

    def __init__(
        self,
        host_id: str,
        horizon: float,
        down_windows: Sequence[Tuple[float, float]] = (),
    ) -> None:
        self._host_id = str(host_id)
        self._horizon = check_positive("horizon", horizon)
        clipped: List[Tuple[float, float]] = []
        previous_end = 0.0
        for start, end in down_windows:
            if end <= start:
                raise ValueError(f"down window [{start}, {end}) is empty or inverted")
            if start < previous_end:
                raise ValueError("down windows must be sorted and disjoint")
            previous_end = end
            if start >= self._horizon:
                continue
            clipped.append((float(start), float(min(end, self._horizon))))
        self._down = clipped
        self._starts = [w[0] for w in clipped]

    # -- construction --------------------------------------------------------

    @classmethod
    def always_up(cls, host_id: str, horizon: float) -> "AvailabilityTrace":
        """A dedicated host that never goes down."""
        return cls(host_id, horizon, ())

    @classmethod
    def from_episodes(
        cls,
        host_id: str,
        horizon: float,
        episodes: Iterable[DowntimeEpisode],
    ) -> "AvailabilityTrace":
        """Build a trace from downtime episodes (clipping at the horizon)."""
        windows = [(e.start, e.end) for e in episodes]
        return cls(host_id, horizon, windows)

    @classmethod
    def from_process(
        cls,
        host_id: str,
        horizon: float,
        process: InterruptionProcess,
    ) -> "AvailabilityTrace":
        """Sample a process into a concrete trace over ``[0, horizon)``."""
        return cls.from_episodes(host_id, horizon, process.episodes(horizon))

    # -- queries --------------------------------------------------------------

    @property
    def host_id(self) -> str:
        return self._host_id

    @property
    def horizon(self) -> float:
        return self._horizon

    @property
    def down_windows(self) -> List[Tuple[float, float]]:
        """Copy of the down windows."""
        return list(self._down)

    def up_windows(self) -> List[Tuple[float, float]]:
        """Complement of the down windows inside [0, horizon)."""
        windows: List[Tuple[float, float]] = []
        cursor = 0.0
        for start, end in self._down:
            if start > cursor:
                windows.append((cursor, start))
            cursor = end
        if cursor < self._horizon:
            windows.append((cursor, self._horizon))
        return windows

    def is_up(self, t: float) -> bool:
        """Whether the host is up at time ``t``."""
        if not 0.0 <= t < self._horizon:
            raise ValueError(f"t={t} outside trace horizon [0, {self._horizon})")
        idx = bisect.bisect_right(self._starts, t) - 1
        if idx < 0:
            return True
        start, end = self._down[idx]
        return not (start <= t < end)

    def next_transition(self, t: float) -> float:
        """Earliest time strictly after ``t`` at which up/down state flips.

        Returns the horizon if the state never flips again.
        """
        if not 0.0 <= t < self._horizon:
            raise ValueError(f"t={t} outside trace horizon [0, {self._horizon})")
        idx = bisect.bisect_right(self._starts, t) - 1
        if idx >= 0:
            start, end = self._down[idx]
            if start <= t < end:
                return end
        nxt = bisect.bisect_right(self._starts, t)
        if nxt < len(self._down):
            return self._down[nxt][0]
        return self._horizon

    def total_downtime(self) -> float:
        """Total seconds down inside the horizon."""
        return sum(end - start for start, end in self._down)

    def uptime_fraction(self) -> float:
        """Fraction of the horizon spent up."""
        return 1.0 - self.total_downtime() / self._horizon

    def interruption_count(self) -> int:
        """Number of down windows (merged episodes)."""
        return len(self._down)

    def mtbi_samples(self) -> List[float]:
        """Observed inter-arrival gaps between successive down-window starts.

        The first gap (time from 0 to the first interruption) is included,
        matching how trace archives report inter-event times.
        """
        gaps: List[float] = []
        previous = 0.0
        for start, _end in self._down:
            gaps.append(start - previous)
            previous = start
        return gaps

    def duration_samples(self) -> List[float]:
        """Observed down-window durations."""
        return [end - start for start, end in self._down]

    def __repr__(self) -> str:
        return (
            f"AvailabilityTrace(host={self._host_id!r}, horizon={self._horizon:g}, "
            f"windows={len(self._down)})"
        )


def pooled_summary(traces: Iterable[AvailabilityTrace]) -> Dict[str, SummaryStats]:
    """Pool interruption statistics over many hosts (the paper's Table 1).

    Returns summaries keyed ``"mtbi"`` and ``"duration"``; raises if the
    pooled trace set contains no interruptions at all.
    """
    mtbi: List[float] = []
    durations: List[float] = []
    for trace in traces:
        mtbi.extend(trace.mtbi_samples())
        durations.extend(trace.duration_samples())
    if not durations:
        raise ValueError("no interruptions in any trace; nothing to summarise")
    return {"mtbi": summarize(mtbi), "duration": summarize(durations)}
