"""Synthetic SETI@home-style availability traces.

The paper's large-scale simulation (Section V.C) replays failure traces of
226,208 SETI@home hosts from the Failure Trace Archive [9]. That archive is
not redistributable here, so — per the reproduction's substitution rule — we
generate synthetic traces from a hierarchical heavy-tailed model *calibrated
to the paper's own Table 1*:

=========================  ========  ========  ======
quantity                   mean      std dev   CoV
=========================  ========  ========  ======
MTBI (seconds)             160290    701419    4.376
interruption duration (s)  109380    807983    7.3869
=========================  ========  ========  ======

Model
-----
* Host heterogeneity: host *i* draws a mean-time-between-interruptions
  ``MTBI_i`` from a lognormal population distribution, and a mean
  interruption duration ``D_i`` from an independent lognormal population.
* Within a host: interruption inter-arrivals are exponential with mean
  ``MTBI_i`` (the paper's modelling assumption), and durations are lognormal
  with mean ``D_i`` and a configurable within-host CoV.

Calibration
-----------
Table 1 statistics are *pooled over events*, which length-biases hosts with
short MTBI (they contribute more events per unit time). For exponential
gaps mixed over a lognormal population with underlying sigma, with event
weights proportional to 1/MTBI_i, the pooled moments are closed-form:

* pooled mean gap   = pop_mean * exp(-sigma^2)
* pooled CoV^2      = 2 * exp(sigma^2) - 1

so from a target pooled (mean, CoV) we solve ``sigma^2 = ln((CoV^2+1)/2)``
and ``pop_mean = mean * exp(sigma^2)``. Durations are sampled independently
of the arrival rate, so pooling does not bias them; the between-host CoV is
solved from ``(1+cov_within^2)(1+cov_between^2) = 1 + CoV_target^2``.

These closed forms are verified empirically by ``benchmarks/
bench_table1_traces.py`` and ``tests/availability/test_seti.py``.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import List

from repro.availability.distributions import Exponential, Lognormal
from repro.availability.generator import HostAvailability
from repro.availability.traces import AvailabilityTrace
from repro.util.rng import RandomSource
from repro.util.validation import check_positive

#: Pooled event statistics reported in the paper's Table 1.
TABLE1_MTBI_MEAN = 160290.0
TABLE1_MTBI_COV = 4.376
TABLE1_DURATION_MEAN = 109380.0
TABLE1_DURATION_COV = 7.3869


@dataclass(frozen=True)
class SetiModelParams:
    """Parameters of the hierarchical trace model.

    ``mtbi_population_mean`` / ``mtbi_population_sigma`` describe the
    lognormal population of per-host MTBIs (sigma is the underlying normal
    std). ``duration_mean`` / ``duration_between_cov`` describe the
    population of per-host mean durations, and ``duration_within_cov`` the
    lognormal spread of durations within one host.
    """

    mtbi_population_mean: float
    mtbi_population_sigma: float
    duration_mean: float
    duration_between_cov: float
    duration_within_cov: float

    def __post_init__(self) -> None:
        check_positive("mtbi_population_mean", self.mtbi_population_mean)
        check_positive("mtbi_population_sigma", self.mtbi_population_sigma)
        check_positive("duration_mean", self.duration_mean)
        check_positive("duration_between_cov", self.duration_between_cov)
        check_positive("duration_within_cov", self.duration_within_cov)

    @classmethod
    def calibrated_to_table1(
        cls,
        mtbi_mean: float = TABLE1_MTBI_MEAN,
        mtbi_cov: float = TABLE1_MTBI_COV,
        duration_mean: float = TABLE1_DURATION_MEAN,
        duration_cov: float = TABLE1_DURATION_COV,
        duration_within_cov: float = 2.0,
    ) -> "SetiModelParams":
        """Solve population parameters so pooled event stats match Table 1."""
        check_positive("mtbi_mean", mtbi_mean)
        check_positive("mtbi_cov", mtbi_cov)
        check_positive("duration_mean", duration_mean)
        check_positive("duration_cov", duration_cov)
        check_positive("duration_within_cov", duration_within_cov)
        pooled_cov_sq = mtbi_cov * mtbi_cov
        if pooled_cov_sq <= 1.0:
            raise ValueError(
                "pooled MTBI CoV must exceed 1 (exponential gaps alone give CoV=1); "
                f"got {mtbi_cov}"
            )
        sigma_sq = math.log((pooled_cov_sq + 1.0) / 2.0)
        population_mean = mtbi_mean * math.exp(sigma_sq)

        total = 1.0 + duration_cov * duration_cov
        within = 1.0 + duration_within_cov * duration_within_cov
        if total <= within:
            raise ValueError(
                f"duration_within_cov={duration_within_cov} already exceeds the "
                f"target pooled duration CoV {duration_cov}; lower it"
            )
        between_cov = math.sqrt(total / within - 1.0)
        return cls(
            mtbi_population_mean=population_mean,
            mtbi_population_sigma=math.sqrt(sigma_sq),
            duration_mean=duration_mean,
            duration_between_cov=between_cov,
            duration_within_cov=duration_within_cov,
        )

    def expected_pooled_mtbi_mean(self) -> float:
        """Closed-form pooled mean inter-arrival (see module docstring)."""
        return self.mtbi_population_mean * math.exp(-self.mtbi_population_sigma**2)

    def expected_pooled_mtbi_cov(self) -> float:
        """Closed-form pooled inter-arrival CoV."""
        return math.sqrt(2.0 * math.exp(self.mtbi_population_sigma**2) - 1.0)

    def expected_pooled_duration_cov(self) -> float:
        """Closed-form pooled duration CoV."""
        within = 1.0 + self.duration_within_cov**2
        between = 1.0 + self.duration_between_cov**2
        return math.sqrt(within * between - 1.0)


#: Output of :func:`calibrate_empirically` (node_count=1600, iterations=10,
#: seed=7, horizon=1.5 years), pinned so ordinary runs skip calibration.
#: Verified pooled statistics on held-out seeds: MTBI mean ~130-135k s
#: (target 160290), MTBI CoV ~3.5-4.1 (target 4.376), duration mean
#: ~124-134k s (target 109380), duration CoV ~16 (target 7.4; censored
#: giant windows make this estimate the noisiest — see EXPERIMENTS.md).
CALIBRATED_TABLE1_PARAMS = SetiModelParams(
    mtbi_population_mean=1079894.2729469605,
    mtbi_population_sigma=2.567483159346802,
    duration_mean=33298.65783500762,
    duration_between_cov=1.0515689380836355,
    duration_within_cov=2.0,
)


def calibrate_empirically(
    mtbi_mean: float = TABLE1_MTBI_MEAN,
    mtbi_cov: float = TABLE1_MTBI_COV,
    duration_mean: float = TABLE1_DURATION_MEAN,
    duration_cov: float = TABLE1_DURATION_COV,
    duration_within_cov: float = 2.0,
    horizon: float = 1.5 * 365 * 86400.0,
    node_count: int = 800,
    seed: int = 0,
    iterations: int = 8,
) -> SetiModelParams:
    """Fit the hierarchical model so *measured* trace statistics match Table 1.

    The closed-form calibration is exact only for event-weighted pooling
    over an infinite horizon of raw arrivals; real traces are finite
    (censoring the long gaps), and Table-1-style statistics are computed on
    *merged downtime windows*. This routine closes the gap numerically:
    starting from the closed form, it repeatedly generates a trace
    population over ``horizon`` (the paper's 1.5-year collection window),
    measures the pooled statistics exactly as :func:`pooled_summary` does,
    and rescales the population parameters multiplicatively until the
    measured mean/CoV match the targets.

    The library default (:data:`CALIBRATED_TABLE1_PARAMS`) was produced by
    this function and is pinned, so ordinary runs pay no calibration cost.
    """
    from repro.availability.traces import pooled_summary  # local: avoid cycle

    params = SetiModelParams.calibrated_to_table1(
        mtbi_mean, mtbi_cov, duration_mean, duration_cov, duration_within_cov
    )
    mean_pop = params.mtbi_population_mean
    sigma = params.mtbi_population_sigma
    dur_mean = params.duration_mean
    dur_between = params.duration_between_cov
    for iteration in range(iterations):
        candidate = SetiModelParams(
            mtbi_population_mean=mean_pop,
            mtbi_population_sigma=sigma,
            duration_mean=dur_mean,
            duration_between_cov=dur_between,
            duration_within_cov=duration_within_cov,
        )
        generator = SetiTraceGenerator(
            candidate, RandomSource(seed).substream("calibration", iteration)
        )
        stats = pooled_summary(generator.sample_traces(node_count, horizon))
        measured_mtbi = stats["mtbi"]
        measured_dur = stats["duration"]
        # Multiplicative updates: each target responds monotonically to its
        # parameter (mean to the population mean, CoV to the log-space
        # spread), so damped ratio steps converge quickly.
        mean_pop *= _damped_ratio(mtbi_mean / measured_mtbi.mean)
        sigma *= _damped_ratio(
            math.sqrt(
                math.log(1.0 + mtbi_cov**2) / math.log(1.0 + max(measured_mtbi.cov, 0.05) ** 2)
            )
        )
        dur_mean *= _damped_ratio(duration_mean / measured_dur.mean)
        dur_between *= _damped_ratio(
            math.sqrt(
                math.log(1.0 + duration_cov**2)
                / math.log(1.0 + max(measured_dur.cov, 0.05) ** 2)
            )
        )
    return SetiModelParams(
        mtbi_population_mean=mean_pop,
        mtbi_population_sigma=sigma,
        duration_mean=dur_mean,
        duration_between_cov=dur_between,
        duration_within_cov=duration_within_cov,
    )


def _damped_ratio(ratio: float, damping: float = 0.7, clamp: float = 4.0) -> float:
    """A damped, clamped multiplicative step for the calibration loop."""
    ratio = min(max(ratio, 1.0 / clamp), clamp)
    return ratio**damping


class SetiTraceGenerator:
    """Samples hosts and availability traces from a :class:`SetiModelParams`.

    Every host's draw is keyed by its index, so host *k* is identical across
    runs with the same seed regardless of how many hosts are sampled —
    essential for comparing placement strategies on the *same* population.
    """

    def __init__(self, params: SetiModelParams, rng: RandomSource) -> None:
        self._params = params
        self._rng = rng
        sigma = params.mtbi_population_sigma
        self._mtbi_population = Lognormal.from_underlying(
            mu=math.log(params.mtbi_population_mean) - sigma * sigma / 2.0,
            sigma=sigma,
        )
        self._duration_population = Lognormal(
            mean=params.duration_mean, cov=params.duration_between_cov
        )

    @property
    def params(self) -> SetiModelParams:
        return self._params

    def sample_host(self, index: int) -> HostAvailability:
        """Draw host ``index``'s availability description."""
        host_rng = self._rng.substream("host", index)
        mtbi = self._mtbi_population.sample(host_rng.substream("mtbi"))
        duration_mean = self._duration_population.sample(host_rng.substream("duration"))
        return HostAvailability(
            host_id=f"seti-{index:06d}",
            arrival=Exponential(mean=mtbi),
            service=Lognormal(mean=duration_mean, cov=self._params.duration_within_cov),
            group="seti",
        )

    def sample_hosts(self, count: int) -> List[HostAvailability]:
        """Draw ``count`` hosts (indices 0..count-1)."""
        if count <= 0:
            raise ValueError(f"count must be positive, got {count}")
        return [self.sample_host(i) for i in range(count)]

    def sample_trace(self, index: int, horizon: float) -> AvailabilityTrace:
        """Draw host ``index`` and materialise its trace over the horizon."""
        host = self.sample_host(index)
        process = host.process(self._rng.substream("events", index))
        assert process is not None  # every SETI host is interruptible
        return AvailabilityTrace.from_process(host.host_id, horizon, process)

    def sample_traces(self, count: int, horizon: float) -> List[AvailabilityTrace]:
        """Draw ``count`` traces over the horizon."""
        return [self.sample_trace(i, horizon) for i in range(count)]
