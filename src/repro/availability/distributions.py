"""Probability distributions for interruption modelling.

The paper assumes exponential interruption inter-arrivals and a *general*
recovery-time distribution with known mean (Section III.A). The simulator
therefore needs a small family of positive distributions with analytic
moments: exponential for arrivals, and lognormal/Weibull/Pareto for the
heavy-tailed durations observed in SETI@home-style traces (Table 1 reports
CoV values of 4.4 and 7.4, far above the exponential's CoV of 1).

Every distribution exposes ``mean``/``std`` (analytic) and ``sample(rng)``
(drawing from a :class:`repro.util.rng.RandomSource`), so calling code can
feed the analytic mean into the model of Section III while sampling the same
law in the simulator.
"""

from __future__ import annotations

import math
from abc import ABC, abstractmethod
from typing import Dict, List, Mapping

from repro.util.rng import RandomSource
from repro.util.validation import check_positive

#: Kinderman-Monahan rejection constant — must match ``random.NV_MAGICCONST``
#: exactly for the batched normal path to be bit-identical to
#: ``Random.normalvariate``.
_NV_MAGICCONST = 4 * math.exp(-0.5) / math.sqrt(2.0)


class Distribution(ABC):
    """A positive continuous distribution with analytic first two moments."""

    @property
    @abstractmethod
    def mean(self) -> float:
        """Analytic mean."""

    @property
    @abstractmethod
    def std(self) -> float:
        """Analytic standard deviation."""

    @property
    def cov(self) -> float:
        """Analytic coefficient of variation (std / mean)."""
        return self.std / self.mean if self.mean else 0.0

    @abstractmethod
    def sample(self, rng: RandomSource) -> float:
        """Draw one sample using ``rng``."""

    def sample_many(self, rng: RandomSource, count: int) -> List[float]:
        """Draw ``count`` samples.

        Contract (pinned by ``tests/availability/test_vectorized.py``):
        the returned sequence is **bit-identical** to ``count`` scalar
        :meth:`sample` calls on the same stream, and the stream is left in
        the same state — so batched and scalar consumers can interleave
        freely. Subclasses override this with batched transforms that
        reproduce CPython's ``random`` module formulas exactly (numpy's
        transcendental ufuncs differ from libm by 1 ulp on a fraction of
        inputs, so golden-bearing transforms stay on ``math.*``).
        """
        return [self.sample(rng) for _ in range(count)]


class Exponential(Distribution):
    """Exponential distribution, parameterised by its mean (1/rate)."""

    def __init__(self, mean: float) -> None:
        self._mean = check_positive("mean", mean)

    @property
    def rate(self) -> float:
        """Rate parameter lambda = 1/mean."""
        return 1.0 / self._mean

    @property
    def mean(self) -> float:
        return self._mean

    @property
    def std(self) -> float:
        return self._mean

    def sample(self, rng: RandomSource) -> float:
        return rng.expovariate(self.rate)

    def sample_many(self, rng: RandomSource, count: int) -> List[float]:
        # Random.expovariate(lambd) is -log(1 - random()) / lambd; one
        # uniform per draw, so a straight batch over random_many.
        lambd = self.rate
        log = math.log
        return [-log(1.0 - u) / lambd for u in rng.random_many(count)]

    def __repr__(self) -> str:
        return f"Exponential(mean={self._mean:g})"


class Deterministic(Distribution):
    """Point mass at a fixed positive value (useful in tests)."""

    def __init__(self, value: float) -> None:
        self._value = check_positive("value", value)

    @property
    def mean(self) -> float:
        return self._value

    @property
    def std(self) -> float:
        return 0.0

    def sample(self, rng: RandomSource) -> float:
        return self._value

    def sample_many(self, rng: RandomSource, count: int) -> List[float]:
        return [self._value] * count

    def __repr__(self) -> str:
        return f"Deterministic(value={self._value:g})"


class Lognormal(Distribution):
    """Lognormal distribution parameterised by its *target* mean and CoV.

    Heavy-tailed durations in availability traces are commonly lognormal;
    parameterising by (mean, cov) instead of the underlying (mu, sigma)
    matches how the paper reports trace statistics (Table 1).
    """

    def __init__(self, mean: float, cov: float) -> None:
        self._mean = check_positive("mean", mean)
        self._cov = check_positive("cov", cov)
        # mean = exp(mu + sigma^2/2); var = mean^2 (exp(sigma^2) - 1)
        sigma2 = math.log(1.0 + self._cov * self._cov)
        self._sigma = math.sqrt(sigma2)
        self._mu = math.log(self._mean) - sigma2 / 2.0

    @classmethod
    def from_underlying(cls, mu: float, sigma: float) -> "Lognormal":
        """Build from the underlying normal parameters."""
        mean = math.exp(mu + sigma * sigma / 2.0)
        cov = math.sqrt(math.exp(sigma * sigma) - 1.0)
        return cls(mean=mean, cov=cov)

    @property
    def mu(self) -> float:
        """Underlying normal mean."""
        return self._mu

    @property
    def sigma(self) -> float:
        """Underlying normal standard deviation."""
        return self._sigma

    @property
    def mean(self) -> float:
        return self._mean

    @property
    def std(self) -> float:
        return self._mean * self._cov

    def sample(self, rng: RandomSource) -> float:
        return rng.lognormvariate(self._mu, self._sigma)

    def sample_many(self, rng: RandomSource, count: int) -> List[float]:
        # Inlined Random.lognormvariate: exp() of the Kinderman-Monahan
        # rejection sampler behind Random.normalvariate. The rejection
        # loop consumes a data-dependent number of uniforms, so it pulls
        # from the bound sampler directly — never over-drawing the stream.
        rnd = rng.raw_random
        mu = self._mu
        sigma = self._sigma
        magic = _NV_MAGICCONST
        log = math.log
        exp = math.exp
        out: List[float] = []
        append = out.append
        for _ in range(count):
            while True:
                u1 = rnd()
                u2 = 1.0 - rnd()
                z = magic * (u1 - 0.5) / u2
                if z * z / 4.0 <= -log(u2):
                    break
            append(exp(mu + z * sigma))
        return out

    def __repr__(self) -> str:
        return f"Lognormal(mean={self._mean:g}, cov={self._cov:g})"


class Weibull(Distribution):
    """Weibull distribution with scale and shape parameters."""

    def __init__(self, scale: float, shape: float) -> None:
        self._scale = check_positive("scale", scale)
        self._shape = check_positive("shape", shape)

    @property
    def scale(self) -> float:
        return self._scale

    @property
    def shape(self) -> float:
        return self._shape

    @property
    def mean(self) -> float:
        return self._scale * math.gamma(1.0 + 1.0 / self._shape)

    @property
    def std(self) -> float:
        g1 = math.gamma(1.0 + 1.0 / self._shape)
        g2 = math.gamma(1.0 + 2.0 / self._shape)
        return self._scale * math.sqrt(max(g2 - g1 * g1, 0.0))

    def sample(self, rng: RandomSource) -> float:
        return rng.weibullvariate(self._scale, self._shape)

    def sample_many(self, rng: RandomSource, count: int) -> List[float]:
        # Random.weibullvariate: scale * (-log(1 - random())) ** (1/shape).
        scale = self._scale
        inv_shape = 1.0 / self._shape
        log = math.log
        return [scale * (-log(1.0 - u)) ** inv_shape for u in rng.random_many(count)]

    def __repr__(self) -> str:
        return f"Weibull(scale={self._scale:g}, shape={self._shape:g})"


class Pareto(Distribution):
    """Classic Pareto with minimum ``xm`` and tail index ``alpha``.

    The mean requires alpha > 1 and the variance alpha > 2; accessing a
    moment that does not exist raises ``ValueError`` so silent infinities
    never propagate into the placement model.
    """

    def __init__(self, xm: float, alpha: float) -> None:
        self._xm = check_positive("xm", xm)
        self._alpha = check_positive("alpha", alpha)

    @property
    def xm(self) -> float:
        return self._xm

    @property
    def alpha(self) -> float:
        return self._alpha

    @property
    def mean(self) -> float:
        if self._alpha <= 1.0:
            raise ValueError(f"Pareto mean undefined for alpha={self._alpha}")
        return self._alpha * self._xm / (self._alpha - 1.0)

    @property
    def std(self) -> float:
        if self._alpha <= 2.0:
            raise ValueError(f"Pareto std undefined for alpha={self._alpha}")
        a = self._alpha
        var = self._xm * self._xm * a / ((a - 1.0) ** 2 * (a - 2.0))
        return math.sqrt(var)

    def sample(self, rng: RandomSource) -> float:
        return self._xm * rng.paretovariate(self._alpha)

    def sample_many(self, rng: RandomSource, count: int) -> List[float]:
        # Random.paretovariate: (1 - random()) ** (-1/alpha), scaled by xm.
        xm = self._xm
        exponent = -1.0 / self._alpha
        return [xm * (1.0 - u) ** exponent for u in rng.random_many(count)]

    def __repr__(self) -> str:
        return f"Pareto(xm={self._xm:g}, alpha={self._alpha:g})"


class ShiftedPareto(Distribution):
    """Lomax (Pareto type II) distribution: support [0, inf), very heavy tail.

    Parameterised by scale and tail index; useful for interruption durations
    where many events are near zero but the tail is extreme.
    """

    def __init__(self, scale: float, alpha: float) -> None:
        self._scale = check_positive("scale", scale)
        self._alpha = check_positive("alpha", alpha)

    @property
    def mean(self) -> float:
        if self._alpha <= 1.0:
            raise ValueError(f"Lomax mean undefined for alpha={self._alpha}")
        return self._scale / (self._alpha - 1.0)

    @property
    def std(self) -> float:
        if self._alpha <= 2.0:
            raise ValueError(f"Lomax std undefined for alpha={self._alpha}")
        a = self._alpha
        var = self._scale * self._scale * a / ((a - 1.0) ** 2 * (a - 2.0))
        return math.sqrt(var)

    def sample(self, rng: RandomSource) -> float:
        # inverse CDF: F(x) = 1 - (1 + x/scale)^-alpha
        u = rng.random()
        return self._scale * ((1.0 - u) ** (-1.0 / self._alpha) - 1.0)

    def sample_many(self, rng: RandomSource, count: int) -> List[float]:
        scale = self._scale
        exponent = -1.0 / self._alpha
        return [scale * ((1.0 - u) ** exponent - 1.0) for u in rng.random_many(count)]

    def __repr__(self) -> str:
        return f"ShiftedPareto(scale={self._scale:g}, alpha={self._alpha:g})"


_SPEC_BUILDERS = {
    "exponential": lambda p: Exponential(mean=p["mean"]),
    "deterministic": lambda p: Deterministic(value=p["value"]),
    "lognormal": lambda p: Lognormal(mean=p["mean"], cov=p["cov"]),
    "weibull": lambda p: Weibull(scale=p["scale"], shape=p["shape"]),
    "pareto": lambda p: Pareto(xm=p["xm"], alpha=p["alpha"]),
    "shifted_pareto": lambda p: ShiftedPareto(scale=p["scale"], alpha=p["alpha"]),
}


def distribution_from_spec(spec: Mapping[str, object]) -> Distribution:
    """Build a distribution from a dict spec like ``{"kind": "exponential", "mean": 10}``.

    This is the configuration-file entry point used by the experiment
    drivers and the CLI.
    """
    if "kind" not in spec:
        raise ValueError("distribution spec requires a 'kind' key")
    kind = str(spec["kind"]).lower()
    params: Dict[str, float] = {
        key: float(value)  # type: ignore[arg-type]
        for key, value in spec.items()
        if key != "kind"
    }
    try:
        builder = _SPEC_BUILDERS[kind]
    except KeyError:
        known = ", ".join(sorted(_SPEC_BUILDERS))
        raise ValueError(f"unknown distribution kind {kind!r}; known kinds: {known}") from None
    return builder(params)
