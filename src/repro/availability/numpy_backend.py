"""Opt-in numpy-vectorized episode sampling (``REPRO_AVAIL_BACKEND=numpy``).

The scalar episode kernel folds one interruption at a time; at 226k hosts
that fold is ~97% of cluster build. This backend replaces the per-draw loop
with a vectorized busy-period computation:

* Inter-arrival gaps and service times are drawn in batches from numpy's
  PCG64 (one ``Generator`` per host, keyed by the same seed tree as the
  scalar streams, under a ``"numpy"`` leaf).
* The M/G/1 busy-period fold is a Lindley-style recursion. With arrival
  times ``A_k`` and service cumsums ``cumS_k``, the recovery point after
  the k-th interruption is ``B_k = max(B_{k-1}, A_k) + S_k``, which
  unrolls to ``B_k = cumS_k + running_max_j(A_j - cumS_{j-1})`` — one
  ``np.maximum.accumulate`` instead of a Python loop. Interruption *k*
  starts a new episode exactly when ``A_k >= B_{k-1}``.
* Long folds are truncated, mirroring the scalar kernel's
  ``max_interruptions_per_episode`` bound but *aggregated*: an episode
  that survives :data:`FOLD_CAP` members is deemed truncated, its member
  count set to the bound, and the recovery contribution of the remaining
  ``bound - FOLD_CAP`` services drawn as one sum-distribution sample
  (Gamma for exponential service — exact; CLT normal for lognormal —
  error O(1/sqrt(bound - FOLD_CAP)), negligible at the default bound of
  10,000). Unstable hosts (rho >= 1), which dominate the SETI-fitted
  population's sampling cost, thus cost ~FOLD_CAP draws per truncated
  episode instead of ~10,000. After a truncation the remaining buffered
  gaps restart the arrival clock at the truncated end — exact for
  exponential inter-arrivals by memorylessness, mirroring the scalar
  truncation semantics. The aggregation slightly shortens episodes of
  hosts sitting almost exactly at criticality (a fold that would have
  closed between FOLD_CAP and the bound is counted as truncated); such
  hosts are a sliver of the fitted populations and the KS-equivalence
  tests bound the effect.
* When the buffered draws run out before the horizon is covered, the
  fold *resumes* from the trailing open episode over the extended buffer
  instead of recomputing from scratch, so under-estimating a host's
  arrival count costs only the marginal work.

Because draws come from PCG64 rather than CPython's Mersenne Twister, the
realisations are **not** byte-identical to the scalar backend. They follow
the same laws — pinned by this backend's own golden values and KS-tested
against the scalar backend in ``tests/availability/test_numpy_backend.py``
— which is why the backend is opt-in and never used on golden-bearing
default paths.

Supported distribution pairs: exponential arrivals with lognormal,
exponential, or deterministic recovery. Anything else returns None and the
caller falls back to the exact scalar path for that host.
"""

from __future__ import annotations

import math
from typing import Any, List, Optional, Tuple

from repro.availability.distributions import (
    Deterministic,
    Distribution,
    Exponential,
    Lognormal,
)
from repro.availability.process import DowntimeEpisode

#: Default per-episode fold bound — must track ``InterruptionProcess``.
DEFAULT_MAX_PER_EPISODE = 10_000

#: Members folded exactly before an episode is deemed truncated and its
#: remaining services are aggregated into one sum draw (see module doc).
FOLD_CAP = 2048

#: Hard ceiling on one buffered draw batch (growth continues past it in
#: further batches).
_MAX_BATCH = 1 << 20

_RawEpisode = Tuple[float, float, int]


def available() -> bool:
    """Whether numpy is importable in this environment."""
    try:
        import numpy  # noqa: F401
    except ImportError:
        return False
    return True


def _service_batch(np: Any, gen: Any, service: Distribution, size: int) -> Any:
    if type(service) is Lognormal:
        return gen.lognormal(mean=service.mu, sigma=service.sigma, size=size)
    if type(service) is Exponential:
        return gen.exponential(scale=service.mean, size=size)
    # Deterministic
    return np.full(size, service.mean, dtype=np.float64)


def _tail_sum(gen: Any, service: Distribution, count: int) -> float:
    """One draw from the distribution of a sum of ``count`` service times."""
    if type(service) is Exponential:
        # Sum of iid exponentials is exactly Gamma(count, mean).
        return float(gen.gamma(shape=count, scale=service.mean))
    if type(service) is Lognormal:
        # CLT: mean m and standard deviation m*cov per summand.
        m = service.mean
        total = gen.normal(loc=count * m, scale=math.sqrt(count) * m * service.cov)
        return float(max(total, 0.0))
    # Deterministic
    return count * service.mean


def _fold_resume(
    np: Any,
    A: Any,
    S: Any,
    gen: Any,
    service: Distribution,
    raw_horizon: float,
    max_per: int,
    episodes: List[_RawEpisode],
    lo: int,
    offset: float,
) -> Tuple[int, float, bool]:
    """Fold buffered arrivals/services from flat index ``lo`` onward.

    Appends newly *closed* episodes to ``episodes`` (a trailing open
    episode — closure unknown without more arrivals — is never emitted)
    and returns ``(resume_lo, offset, complete)``: the flat index and
    arrival-clock offset to resume from once the buffer has grown, and
    whether some closed episode starts at or past ``raw_horizon`` (enough
    material to cut an exact prefix). The trailing open episode is
    re-folded on resume, so growth costs only the marginal work.
    """
    fold_cap = min(max_per, FOLD_CAP)
    n = int(A.size)
    while lo < n:
        a = A[lo:] + offset
        cum_s = np.cumsum(S[lo:])
        prev_cum = np.empty_like(cum_s)
        prev_cum[0] = 0.0
        prev_cum[1:] = cum_s[:-1]
        B = cum_s + np.maximum.accumulate(a - prev_cum)
        new_flag = np.empty(a.size, dtype=np.bool_)
        new_flag[0] = True
        np.greater_equal(a[1:], B[:-1], out=new_flag[1:])
        starts_idx = np.flatnonzero(new_flag)
        counts = np.diff(starts_idx, append=a.size)
        over = np.flatnonzero(counts > fold_cap)
        if over.size:
            # Episodes before the first offender are closed; the offender
            # is truncated: fold_cap members folded exactly, the remaining
            # services up to max_per aggregated into one sum draw, and the
            # leftover gaps restart the arrival clock at the truncated end.
            k = int(over[0])
            if k > 0:
                ends_idx = starts_idx[1 : k + 1] - 1
                for st, en, c in zip(
                    a[starts_idx[:k]], B[ends_idx], counts[:k], strict=True
                ):
                    episodes.append((float(st), float(en), int(c)))
            si = int(starts_idx[k])
            j = si + fold_cap - 1
            end_t = float(B[j])
            if max_per > fold_cap:
                end_t += _tail_sum(gen, service, max_per - fold_cap)
            episodes.append((float(a[si]), end_t, max_per))
            offset += end_t - float(a[j])
            lo += j + 1
            continue
        # No truncation in this segment: every episode but the last is
        # closed by the start of its successor; the last stays open and is
        # the resume point (more arrivals could extend it).
        if starts_idx.size > 1:
            ends_idx = starts_idx[1:] - 1
            for st, en, c in zip(
                a[starts_idx[:-1]], B[ends_idx], counts[:-1], strict=True
            ):
                episodes.append((float(st), float(en), int(c)))
        lo += int(starts_idx[-1])
        break
    complete = bool(episodes) and episodes[-1][0] >= raw_horizon
    return lo, offset, complete


def _initial_batch(
    arrival: Exponential, service: Distribution, raw_horizon: float, max_per: int
) -> int:
    """Arrival-count estimate that usually covers the horizon in one fold.

    Stable hosts see ~rate*horizon arrivals. Unstable hosts additionally
    burn ~FOLD_CAP buffered arrivals per truncated episode — and a
    truncation *skips* the arrival clock past the busy window, so
    rate*horizon is not an upper bound: a host whose single truncated
    episode spans the whole horizon still needs FOLD_CAP members (twice,
    since the boundary episode past the horizon must close too).
    """
    rate = arrival.rate
    est = raw_horizon * rate
    rho = rate * service.mean
    if rho >= 1.0 and service.mean > 0.0:
        spacing = 1.0 / rate + max_per * service.mean
        n_truncated = raw_horizon / spacing + 2.0
        # Arrivals only accrue over time not skipped by truncations.
        skipped = n_truncated * max_per * service.mean
        est = max(raw_horizon - skipped, 0.0) * rate
        est += n_truncated * min(max_per, FOLD_CAP)
    return min(int(est * 1.25) + 64, _MAX_BATCH)


def episode_prefix_numpy(
    arrival: Distribution,
    service: Distribution,
    seed: int,
    horizon: float,
    burn_in: float = 0.0,
    max_per: int = DEFAULT_MAX_PER_EPISODE,
) -> Optional[List[DowntimeEpisode]]:
    """Vectorized equivalent of ``pregen.episode_prefix`` for one host.

    Matches the prefix contract exactly: after the burn-in shift/clip, all
    episodes starting before ``horizon`` plus the first episode at or past
    it. Returns None when the distribution pair is outside the vectorized
    family (caller falls back to the scalar path).
    """
    if type(arrival) is not Exponential:
        return None
    if type(service) not in (Lognormal, Exponential, Deterministic):
        return None
    import numpy as np

    gen = np.random.default_rng(int(seed))
    raw_horizon = horizon + burn_in

    batch = _initial_batch(arrival, service, raw_horizon, max_per)
    gaps = gen.exponential(scale=arrival.mean, size=batch)
    A = np.cumsum(gaps)
    S = _service_batch(np, gen, service, batch)
    raw: List[_RawEpisode] = []
    lo, offset, complete = _fold_resume(
        np, A, S, gen, service, raw_horizon, max_per, raw, 0, 0.0
    )
    while not complete:
        batch = min(batch * 2, _MAX_BATCH)
        gaps = gen.exponential(scale=arrival.mean, size=batch)
        A = np.concatenate((A, np.cumsum(gaps) + float(A[-1])))
        S = np.concatenate((S, _service_batch(np, gen, service, batch)))
        lo, offset, complete = _fold_resume(
            np, A, S, gen, service, raw_horizon, max_per, raw, lo, offset
        )

    # Burn-in shift/clip, then cut on *shifted* starts: an episode that
    # straddles the burn-in boundary clamps to start 0, which matters for
    # horizon == 0 prefixes.
    prefix: List[DowntimeEpisode] = []
    for start, end, count in raw:
        shifted_end = end - burn_in
        if shifted_end <= 0.0:
            continue
        shifted_start = max(start - burn_in, 0.0)
        prefix.append(
            DowntimeEpisode(
                start=shifted_start, end=shifted_end, interruption_count=count
            )
        )
        if shifted_start >= horizon:
            break
    return prefix


__all__ = [
    "DEFAULT_MAX_PER_EPISODE",
    "FOLD_CAP",
    "available",
    "episode_prefix_numpy",
]
