"""Host availability construction: Table 2 emulation groups and helpers.

The paper's emulated environment (Section V.A) interrupts a configurable
fraction of the nodes; interrupted nodes are split evenly across four groups
whose MTBI / mean recovery times come from Table 2. This module builds the
per-host availability descriptions the cluster builder consumes.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import List, Optional, Sequence

from repro.availability.distributions import Distribution, Exponential
from repro.availability.process import InterruptionProcess
from repro.util.rng import RandomSource
from repro.util.validation import check_positive, check_probability


@dataclass(frozen=True)
class GroupSpec:
    """One availability group: MTBI and mean recovery (paper Table 2)."""

    name: str
    mtbi: float
    service_mean: float

    def __post_init__(self) -> None:
        check_positive("mtbi", self.mtbi)
        check_positive("service_mean", self.service_mean)

    @property
    def arrival_rate(self) -> float:
        """lambda = 1/MTBI."""
        return 1.0 / self.mtbi

    @property
    def utilization(self) -> float:
        """rho = lambda * mu; must stay < 1 for a stable host."""
        return self.service_mean / self.mtbi


def table2_groups() -> List[GroupSpec]:
    """The four interruption groups of the paper's Table 2."""
    return [
        GroupSpec(name="group-1", mtbi=10.0, service_mean=4.0),
        GroupSpec(name="group-2", mtbi=10.0, service_mean=8.0),
        GroupSpec(name="group-3", mtbi=20.0, service_mean=4.0),
        GroupSpec(name="group-4", mtbi=20.0, service_mean=8.0),
    ]


@dataclass
class HostAvailability:
    """Availability description for one host.

    ``arrival is None`` marks a dedicated (never-interrupted) host. For
    interrupted hosts, ``arrival`` is the interruption inter-arrival
    distribution and ``service`` the recovery-time distribution.
    """

    host_id: str
    arrival: Optional[Distribution] = None
    service: Optional[Distribution] = None
    group: str = "dedicated"

    def __post_init__(self) -> None:
        if (self.arrival is None) != (self.service is None):
            raise ValueError(
                "arrival and service must both be set (interrupted host) "
                "or both be None (dedicated host)"
            )

    @property
    def is_dedicated(self) -> bool:
        """True when the host never gets interrupted."""
        return self.arrival is None

    @property
    def arrival_rate(self) -> float:
        """lambda; 0 for dedicated hosts."""
        if self.arrival is None:
            return 0.0
        return 1.0 / self.arrival.mean

    @property
    def mtbi(self) -> float:
        """Mean time between interruptions; infinity for dedicated hosts."""
        if self.arrival is None:
            return float("inf")
        return self.arrival.mean

    @property
    def service_mean(self) -> float:
        """mu; 0 for dedicated hosts."""
        if self.service is None:
            return 0.0
        return self.service.mean

    def process(self, rng: RandomSource) -> Optional[InterruptionProcess]:
        """An interruption process for this host (None when dedicated)."""
        if self.arrival is None or self.service is None:
            return None
        return InterruptionProcess(self.arrival, self.service, rng)


def build_group_hosts(
    node_count: int,
    interrupted_ratio: float,
    groups: Optional[Sequence[GroupSpec]] = None,
    service_distribution: str = "exponential",
) -> List[HostAvailability]:
    """Build the paper's emulation population.

    ``interrupted_ratio`` of the ``node_count`` hosts are interrupted,
    split evenly (round-robin) across ``groups`` (Table 2 by default); the
    rest are dedicated. Interruption inter-arrivals are exponential, as the
    paper assumes; recovery times default to exponential with the group's
    mean (the model only requires the mean of a general distribution).
    """
    if node_count <= 0:
        raise ValueError(f"node_count must be positive, got {node_count}")
    check_probability("interrupted_ratio", interrupted_ratio)
    group_list = list(groups) if groups is not None else table2_groups()
    if interrupted_ratio > 0 and not group_list:
        raise ValueError("at least one group is required when hosts are interrupted")

    interrupted_count = int(round(node_count * interrupted_ratio))
    hosts: List[HostAvailability] = []
    for index in range(node_count):
        host_id = f"node-{index:05d}"
        if index < interrupted_count:
            spec = group_list[index % len(group_list)]
            hosts.append(
                HostAvailability(
                    host_id=host_id,
                    arrival=Exponential(mean=spec.mtbi),
                    service=_service_distribution(service_distribution, spec.service_mean),
                    group=spec.name,
                )
            )
        else:
            hosts.append(HostAvailability(host_id=host_id, group="dedicated"))
    return hosts


def _service_distribution(kind: str, mean: float) -> Distribution:
    """Build the recovery-time distribution for an emulation group."""
    from repro.availability.distributions import Deterministic, Lognormal

    kind = kind.lower()
    if kind == "exponential":
        return Exponential(mean=mean)
    if kind == "deterministic":
        return Deterministic(value=mean)
    if kind == "lognormal":
        return Lognormal(mean=mean, cov=1.0)
    raise ValueError(f"unknown service distribution kind {kind!r}")
