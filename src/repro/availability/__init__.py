"""Availability substrate: interruption statistics for non-dedicated hosts.

This package models the volatility of non-dedicated distributed computing
environments (paper Sections I-III): probability distributions for
interruption inter-arrivals and recovery durations, per-host M/G/1
interruption processes, explicit up/down availability traces, synthetic
SETI@home-like trace generation (substituting for the Failure Trace Archive
data of [9]), and the online estimators ADAPT's performance predictor uses.
"""

from repro.availability.distributions import (
    Deterministic,
    Distribution,
    Exponential,
    Lognormal,
    Pareto,
    ShiftedPareto,
    Weibull,
    distribution_from_spec,
)
from repro.availability.estimators import (
    AvailabilityEstimate,
    InterruptionStatsEstimator,
)
from repro.availability.generator import (
    GroupSpec,
    HostAvailability,
    build_group_hosts,
    table2_groups,
)
from repro.availability.process import InterruptionProcess, DowntimeEpisode
from repro.availability.seti import SetiTraceGenerator, SetiModelParams
from repro.availability.trace_io import parse_traces, read_traces, write_traces
from repro.availability.traces import AvailabilityTrace, Interruption, pooled_summary

__all__ = [
    "Distribution",
    "Exponential",
    "Lognormal",
    "Weibull",
    "Pareto",
    "ShiftedPareto",
    "Deterministic",
    "distribution_from_spec",
    "InterruptionProcess",
    "DowntimeEpisode",
    "AvailabilityTrace",
    "Interruption",
    "pooled_summary",
    "GroupSpec",
    "HostAvailability",
    "table2_groups",
    "build_group_hosts",
    "SetiTraceGenerator",
    "SetiModelParams",
    "read_traces",
    "write_traces",
    "parse_traces",
    "AvailabilityEstimate",
    "InterruptionStatsEstimator",
]
