"""Bulk availability pregeneration: the cluster-build episode kernel.

``build_cluster`` with ``pregen_horizon`` set used to materialise every
per-host episode prefix one lazy generator at a time inside
``FailureInjector.attach_host`` — at 226k hosts that busy-period fold is
~97% of cluster build time. This module lifts the materialisation out of
the injector so it can be batched three ways:

* **Serial, bit-identical** (:func:`episode_prefix`): the same draws in
  the same order as the lazy path — the default.
* **Multi-process, bit-identical** (:func:`pregenerate_prefixes` with
  ``jobs > 1``): every host's stream is independently keyed by
  ``(seed, host name)``, so host chunks are embarrassingly parallel.
  Chunks fan out over a ``ProcessPoolExecutor`` (the
  ``experiments/parallel.py`` idiom) and results are reassembled **by
  chunk position**, never completion order, so parallel output is
  byte-identical to serial.
* **Numpy-vectorized, opt-in approximate** (``backend="numpy"``, or
  ``REPRO_AVAIL_BACKEND=numpy``): the busy-period fold becomes a
  Lindley-style vector recursion (:mod:`repro.availability.numpy_backend`).
  Draws come from numpy's PCG64, not CPython's Mersenne Twister, so
  realisations are *statistically* equivalent (same laws; KS-tested) but
  not byte-identical — the backend carries its own golden pins.

Seed derivation for the scalar path is bulk: the per-host ``"arrivals"`` /
``"service"`` substream seeds are derived with one incremental hash pass
(:func:`repro.util.rng.derive_seeds`) and fed back through
``RandomSource.from_derived``, which is bit-identical to the per-host
``substream`` chain the lazy path uses.
"""

from __future__ import annotations

import os
from dataclasses import dataclass, field
from time import perf_counter
from typing import Iterable, Iterator, List, Optional, Sequence, Tuple

from repro.availability.generator import HostAvailability
from repro.availability.process import DowntimeEpisode
from repro.util.rng import RandomSource, derive_seeds

#: Recognised pregeneration sampling backends.
AVAIL_BACKENDS = ("scalar", "numpy")

#: Environment override for the backend (mirrors ``REPRO_EVENT_QUEUE``).
BACKEND_ENV = "REPRO_AVAIL_BACKEND"

#: Environment override for the pregeneration worker count.
JOBS_ENV = "REPRO_PREGEN_JOBS"

#: Floor on hosts per multi-process chunk, so pool/pickle overhead stays
#: amortised even when the population is small relative to the job count.
_MIN_CHUNK = 256


def resolve_backend(configured: str = "scalar") -> str:
    """Backend after the ``REPRO_AVAIL_BACKEND`` environment override."""
    backend = os.environ.get(BACKEND_ENV, "").strip().lower() or configured
    if backend not in AVAIL_BACKENDS:
        raise ValueError(
            f"{BACKEND_ENV} must be one of {AVAIL_BACKENDS}, got {backend!r}"
        )
    return backend


def resolve_jobs(configured: int = 1) -> int:
    """Worker count after the ``REPRO_PREGEN_JOBS`` environment override."""
    raw = os.environ.get(JOBS_ENV, "").strip()
    if raw:
        try:
            return max(int(raw), 1)
        except ValueError:
            return max(int(configured), 1)
    return max(int(configured), 1)


def shift_episodes(
    episodes: Iterable[DowntimeEpisode], burn_in: float
) -> Iterator[DowntimeEpisode]:
    """Shift episodes ``burn_in`` seconds earlier, clipping at t=0.

    The stationary burn-in transform — identical to what the lazy
    injector path applies (``FailureInjector`` delegates here).
    """
    for episode in episodes:
        end = episode.end - burn_in
        if end <= 0.0:
            continue
        start = max(episode.start - burn_in, 0.0)
        yield DowntimeEpisode(
            start=start, end=end, interruption_count=episode.interruption_count
        )


def materialise_prefix(
    stream: Iterator[DowntimeEpisode], horizon: float
) -> List[DowntimeEpisode]:
    """Materialise the prefix of episodes starting before ``horizon``.

    The first episode at or past the horizon is kept too (it was pulled to
    detect the boundary, and keeping it preserves the engine's
    ``schedule_at`` sequence allocation exactly). The source stream is
    *closed* in all cases — boundary found, stream exhausted, or an empty
    prefix — so a suspended generator frame (per-host RNG substreams, loop
    locals) is freed immediately rather than retained until GC.
    """
    prefix: List[DowntimeEpisode] = []
    try:
        for episode in stream:
            prefix.append(episode)
            if episode.start >= horizon:
                break
    finally:
        close = getattr(stream, "close", None)
        if close is not None:
            close()
    return prefix


def episode_prefix(
    host: HostAvailability,
    rng: RandomSource,
    horizon: float,
    burn_in: float = 0.0,
) -> Optional[List[DowntimeEpisode]]:
    """One host's episode prefix, bit-identical to the lazy injector path.

    ``rng`` is the injector's stream root (the one ``attach_host`` derives
    ``substream("failures", host.host_id)`` from). Returns None for
    dedicated hosts — they have no interruption stream at all.
    """
    process = host.process(rng.substream("failures", host.host_id))
    if process is None:
        return None
    stream: Iterator[DowntimeEpisode] = process.episodes(float("inf"))
    if burn_in > 0.0:
        stream = shift_episodes(stream, burn_in)
    return materialise_prefix(stream, horizon)


@dataclass
class PregenResult:
    """Prefixes (parallel to the host list) plus phase timings."""

    #: Per host: the materialised prefix, or None for dedicated hosts.
    prefixes: List[Optional[List[DowntimeEpisode]]] = field(default_factory=list)
    #: Seconds spent bulk-deriving per-host stream seeds.
    seed_seconds: float = 0.0
    #: Seconds spent sampling/folding episodes (everything else).
    sample_seconds: float = 0.0
    #: The backend that actually ran ("scalar" or "numpy").
    backend: str = "scalar"
    #: Worker processes used (1 = in-process).
    jobs: int = 1


def _scalar_chunk(
    hosts: Sequence[HostAvailability],
    root_seed: int,
    rng_path: Tuple[object, ...],
    horizon: float,
    burn_in: float,
) -> Tuple[List[Optional[List[DowntimeEpisode]]], float]:
    """Scalar prefixes for a host chunk; returns (prefixes, seed_seconds).

    Per-host ``"arrivals"`` / ``"service"`` substream seeds are derived in
    one incremental hash pass and turned into streams via
    ``RandomSource.from_derived`` — bit-identical to the per-host
    ``substream`` chain of :func:`episode_prefix` / the lazy injector.
    """
    t0 = perf_counter()  # simlint: ignore[D002]
    names = [host.host_id for host in hosts]
    clock_seeds = derive_seeds(
        root_seed, (*rng_path, "failures"), ((name, "arrivals") for name in names)
    )
    svc_seeds = derive_seeds(
        root_seed, (*rng_path, "failures"), ((name, "service") for name in names)
    )
    seed_seconds = perf_counter() - t0  # simlint: ignore[D002]

    prefixes: List[Optional[List[DowntimeEpisode]]] = []
    inf = float("inf")
    for host, clock_seed, svc_seed in zip(hosts, clock_seeds, svc_seeds, strict=True):
        if host.arrival is None or host.service is None:
            prefixes.append(None)
            continue
        base_path = (*rng_path, "failures", host.host_id)
        process = host.process(RandomSource(root_seed, base_path))
        assert process is not None
        clock = RandomSource.from_derived(
            clock_seed, root_seed, (*base_path, "arrivals")
        )
        svc_rng = RandomSource.from_derived(
            svc_seed, root_seed, (*base_path, "service")
        )
        stream: Iterator[DowntimeEpisode] = process.episodes(
            inf, clock=clock, svc_rng=svc_rng
        )
        if burn_in > 0.0:
            stream = shift_episodes(stream, burn_in)
        prefixes.append(materialise_prefix(stream, horizon))
    return prefixes, seed_seconds


def _numpy_chunk(
    hosts: Sequence[HostAvailability],
    root_seed: int,
    rng_path: Tuple[object, ...],
    horizon: float,
    burn_in: float,
) -> Tuple[List[Optional[List[DowntimeEpisode]]], float]:
    """Numpy-backend prefixes for a host chunk (scalar fallback per host
    when a distribution pair is outside the vectorized family)."""
    from repro.availability import numpy_backend

    t0 = perf_counter()  # simlint: ignore[D002]
    names = [host.host_id for host in hosts]
    np_seeds = derive_seeds(
        root_seed, (*rng_path, "failures"), ((name, "numpy") for name in names)
    )
    seed_seconds = perf_counter() - t0  # simlint: ignore[D002]

    prefixes: List[Optional[List[DowntimeEpisode]]] = []
    for host, np_seed in zip(hosts, np_seeds, strict=True):
        if host.arrival is None or host.service is None:
            prefixes.append(None)
            continue
        prefix = numpy_backend.episode_prefix_numpy(
            host.arrival, host.service, np_seed, horizon, burn_in=burn_in
        )
        if prefix is None:
            # Distribution pair not vectorized: exact scalar path instead.
            prefix = episode_prefix(
                host, RandomSource(root_seed, rng_path), horizon, burn_in
            )
        prefixes.append(prefix)
    return prefixes, seed_seconds


def _pregen_chunk(
    args: Tuple[
        str,
        List[HostAvailability],
        int,
        Tuple[object, ...],
        float,
        float,
    ],
) -> Tuple[List[Optional[List[DowntimeEpisode]]], float]:
    """Picklable worker entry point: one (backend, host-chunk) unit."""
    backend, hosts, root_seed, rng_path, horizon, burn_in = args
    if backend == "numpy":
        return _numpy_chunk(hosts, root_seed, rng_path, horizon, burn_in)
    return _scalar_chunk(hosts, root_seed, rng_path, horizon, burn_in)


def pregenerate_prefixes(
    hosts: Sequence[HostAvailability],
    rng: RandomSource,
    horizon: float,
    burn_in: float = 0.0,
    jobs: int = 1,
    backend: str = "scalar",
) -> PregenResult:
    """Materialise every host's episode prefix for ``horizon``.

    The result list parallels ``hosts`` (None for dedicated hosts) and —
    with the default scalar backend — is bit-identical to calling
    :func:`episode_prefix` per host, for any ``jobs``: chunking is by
    position and every stream is independently keyed, so no ordering or
    state can leak between chunks. The numpy backend is deterministic
    (keyed by the same seed tree, "numpy" leaf) but draws from PCG64,
    so it is statistically — not byte — equivalent.
    """
    if horizon < 0:
        raise ValueError(f"horizon must be non-negative, got {horizon}")
    if burn_in < 0:
        raise ValueError(f"burn_in must be non-negative, got {burn_in}")
    if backend not in AVAIL_BACKENDS:
        raise ValueError(f"backend must be one of {AVAIL_BACKENDS}, got {backend!r}")
    jobs = max(int(jobs), 1)
    result = PregenResult(backend=backend, jobs=jobs)
    if not hosts:
        return result

    t0 = perf_counter()  # simlint: ignore[D002]
    root_seed = rng.seed
    rng_path = rng.path
    if jobs == 1 or len(hosts) <= _MIN_CHUNK:
        prefixes, seed_seconds = _pregen_chunk(
            (backend, list(hosts), root_seed, rng_path, horizon, burn_in)
        )
        result.prefixes = prefixes
        result.seed_seconds = seed_seconds
        result.jobs = 1
    else:
        from concurrent.futures import ProcessPoolExecutor

        chunk_size = max((len(hosts) + jobs - 1) // jobs, _MIN_CHUNK)
        chunks = [
            list(hosts[i : i + chunk_size]) for i in range(0, len(hosts), chunk_size)
        ]
        workers = min(jobs, len(chunks))
        specs = [
            (backend, chunk, root_seed, rng_path, horizon, burn_in)
            for chunk in chunks
        ]
        with ProcessPoolExecutor(max_workers=workers) as pool:
            # Reassembled by chunk position (map preserves input order),
            # never completion order — parallel == serial, byte for byte.
            outputs = list(pool.map(_pregen_chunk, specs))
        seed_seconds = 0.0
        for prefixes, chunk_seed_seconds in outputs:
            result.prefixes.extend(prefixes)
            seed_seconds += chunk_seed_seconds
        result.seed_seconds = seed_seconds
    result.sample_seconds = max(perf_counter() - t0 - result.seed_seconds, 0.0)  # simlint: ignore[D002]
    return result


__all__ = [
    "AVAIL_BACKENDS",
    "BACKEND_ENV",
    "JOBS_ENV",
    "PregenResult",
    "episode_prefix",
    "materialise_prefix",
    "pregenerate_prefixes",
    "resolve_backend",
    "resolve_jobs",
    "shift_episodes",
]
