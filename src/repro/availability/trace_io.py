"""Reading and writing availability traces as flat files.

The paper replays Failure Trace Archive data [9]; that archive is not
bundled here, but anyone holding real traces (FTA tab-delimited event
lists, or any per-host unavailability interval log) can feed them to the
simulator through this module and run every experiment against real data
instead of the synthetic SETI model.

Format: one event per line, tab-separated::

    <host_id> \t <down_start_seconds> \t <down_end_seconds>

Lines starting with ``#`` are comments. Events may appear in any order;
per-host overlapping/abutting windows are merged (trace archives often
record overlapping unavailability intervals from multiple monitors).
"""

from __future__ import annotations

from collections import defaultdict
from pathlib import Path
from typing import Dict, Iterable, List, Sequence, TextIO, Tuple, Union

from repro.availability.traces import AvailabilityTrace
from repro.util.validation import check_positive

PathLike = Union[str, Path]


def write_traces(traces: Sequence[AvailabilityTrace], path: PathLike) -> int:
    """Write traces to ``path``; returns the number of events written.

    The horizon is recorded in a header comment so :func:`read_traces`
    can restore it without clipping.
    """
    if not traces:
        raise ValueError("no traces to write")
    horizon = traces[0].horizon
    for trace in traces:
        if trace.horizon != horizon:
            raise ValueError(
                f"traces disagree on horizon: {trace.horizon} vs {horizon}"
            )
    events = 0
    with open(path, "w", encoding="utf-8") as fh:
        fh.write(f"# horizon\t{horizon!r}\n")
        fh.write("# host_id\tdown_start\tdown_end\n")
        for trace in traces:
            for start, end in trace.down_windows:
                fh.write(f"{trace.host_id}\t{start!r}\t{end!r}\n")
                events += 1
    return events


def read_traces(
    path: PathLike,
    horizon: float = 0.0,
    host_ids: Iterable[str] = (),
) -> List[AvailabilityTrace]:
    """Load traces from ``path``.

    ``horizon`` overrides the file's recorded horizon when positive (events
    beyond it are clipped). ``host_ids``, when given, adds hosts that have
    *no* recorded events (always-up hosts are absent from event logs) and
    restricts the result to exactly those ids, in that order.
    """
    with open(path, "r", encoding="utf-8") as fh:
        return parse_traces(fh, horizon=horizon, host_ids=host_ids)


def parse_traces(
    lines: Union[TextIO, Iterable[str]],
    horizon: float = 0.0,
    host_ids: Iterable[str] = (),
) -> List[AvailabilityTrace]:
    """Parse the event format from an iterable of lines (see module doc)."""
    recorded_horizon = 0.0
    windows: Dict[str, List[Tuple[float, float]]] = defaultdict(list)
    for lineno, raw in enumerate(lines, start=1):
        line = raw.strip()
        if not line:
            continue
        if line.startswith("#"):
            parts = line[1:].split("\t")
            if len(parts) == 2 and parts[0].strip() == "horizon":
                recorded_horizon = float(parts[1])
            continue
        parts = line.split("\t")
        if len(parts) != 3:
            raise ValueError(
                f"line {lineno}: expected 'host\\tstart\\tend', got {line!r}"
            )
        host, start_s, end_s = parts
        start, end = float(start_s), float(end_s)
        if end <= start:
            raise ValueError(f"line {lineno}: empty/inverted window [{start}, {end})")
        if start < 0:
            raise ValueError(f"line {lineno}: negative start {start}")
        windows[host].append((start, end))

    effective_horizon = horizon if horizon > 0 else recorded_horizon
    if effective_horizon <= 0:
        # Fall back to covering every event.
        latest = max((end for ws in windows.values() for _s, end in ws), default=0.0)
        if latest <= 0:
            raise ValueError("no events and no horizon; nothing to build")
        effective_horizon = latest
    check_positive("horizon", effective_horizon)

    wanted = list(host_ids) if host_ids else sorted(windows)
    traces = []
    for host in wanted:
        merged = _merge(sorted(windows.get(host, [])))
        traces.append(AvailabilityTrace(host, effective_horizon, merged))
    return traces


def _merge(ordered: List[Tuple[float, float]]) -> List[Tuple[float, float]]:
    """Merge overlapping or touching sorted windows."""
    merged: List[Tuple[float, float]] = []
    for start, end in ordered:
        if merged and start <= merged[-1][1]:
            merged[-1] = (merged[-1][0], max(merged[-1][1], end))
        else:
            merged.append((start, end))
    return merged
