"""Command-line interface: HDFS-shell-style commands plus experiment runs.

Examples
--------
Model a task's expected time under interruptions (formula 5)::

    repro model --gamma 12 --mtbi 20 --recovery 8

Show how each policy spreads 2560 blocks over the Table 2 population::

    repro placement --nodes 128 --ratio 0.5 --blocks-per-node 20

Run one emulation point (Figure 3/4 cell)::

    repro emulate --policy adapt --replicas 1 --nodes 128 --ratio 0.5

Run a scaled-down Figure 5 cell::

    repro simulate --policy existing --replicas 1 --nodes 512 --tasks-per-node 20

Regenerate Table 1 statistics from the synthetic SETI model::

    repro table1 --nodes 2000
"""

from __future__ import annotations

import argparse
import sys
from typing import Dict, List, Optional, Sequence

from repro.availability.generator import build_group_hosts, table2_groups
from repro.core.model import expected_attempts, expected_downtime, expected_rework, expected_task_time
from repro.core.placement import NodeView, make_policy
from repro.experiments.config import EmulationConfig, SimulationConfig, Strategy
from repro.experiments.emulation import run_emulation_point
from repro.experiments.largescale import run_simulation_point, table1_statistics
from repro.util.rng import RandomSource
from repro.util.tables import format_table
from repro.util.units import MB


def main(argv: Optional[Sequence[str]] = None) -> int:
    """CLI entry point; returns a process exit code."""
    parser = _build_parser()
    args = parser.parse_args(argv)
    if args.command is None:
        parser.print_help()
        return 2
    handler = {
        "model": _cmd_model,
        "placement": _cmd_placement,
        "emulate": _cmd_emulate,
        "simulate": _cmd_simulate,
        "chaos": _cmd_chaos,
        "table1": _cmd_table1,
        "groups": _cmd_groups,
        "lint": _cmd_lint,
    }[args.command]
    return handler(args)


def _build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="repro",
        description="ADAPT (ICDCS 2012) reproduction toolbox",
    )
    sub = parser.add_subparsers(dest="command")

    model = sub.add_parser("model", help="evaluate the task-time model (formula 5)")
    model.add_argument("--gamma", type=float, required=True, help="failure-free task length (s)")
    model.add_argument("--mtbi", type=float, required=True, help="mean time between interruptions (s)")
    model.add_argument("--recovery", type=float, required=True, help="mean recovery time (s)")

    placement = sub.add_parser("placement", help="show per-policy block distributions")
    placement.add_argument("--nodes", type=int, default=128)
    placement.add_argument("--ratio", type=float, default=0.5)
    placement.add_argument("--blocks-per-node", type=float, default=20.0)
    placement.add_argument("--replicas", type=int, default=1)
    placement.add_argument("--gamma", type=float, default=12.0)
    placement.add_argument("--seed", type=int, default=0)

    emulate = sub.add_parser("emulate", help="run one emulation point (Fig 3/4 cell)")
    emulate.add_argument("--policy", default="adapt", choices=["existing", "naive", "adapt"])
    emulate.add_argument("--replicas", type=int, default=1)
    emulate.add_argument("--nodes", type=int, default=128)
    emulate.add_argument("--ratio", type=float, default=0.5)
    emulate.add_argument("--bandwidth", type=float, default=8.0)
    emulate.add_argument("--blocks-per-node", type=float, default=20.0)
    emulate.add_argument("--seed", type=int, default=0)
    emulate.add_argument(
        "--replication-monitor",
        action="store_true",
        help="heal under-replicated blocks by re-replicating over the network",
    )
    emulate.add_argument(
        "--permanent-failure-rate",
        type=float,
        default=0.0,
        help="per-host probability of an unrecoverable loss (disk wiped)",
    )
    emulate.add_argument(
        "--permanent-failure-horizon",
        type=float,
        default=600.0,
        help="permanent losses strike uniformly within this many seconds",
    )
    emulate.add_argument(
        "--fetch-retries",
        type=int,
        default=2,
        help="remote-fetch retries across surviving replicas (0 = fail fast)",
    )
    emulate.add_argument(
        "--trace-out",
        metavar="PATH",
        default=None,
        help="export the run's bus-event stream to PATH as JSON Lines",
    )
    emulate.add_argument(
        "--audit",
        choices=["report", "strict"],
        default=None,
        help="audit cross-layer invariants during the run "
        "(strict: raise on the first violation)",
    )
    emulate.add_argument(
        "--audit-out",
        metavar="PATH",
        default=None,
        help="write the audit report to PATH as JSON (implies --audit report)",
    )
    emulate.add_argument(
        "--chaos",
        metavar="FILE",
        default=None,
        help="layer a scripted chaos campaign (JSON file) on the run",
    )
    _add_topology_args(emulate)
    _add_executor_args(emulate)

    simulate = sub.add_parser("simulate", help="run one large-scale point (Fig 5 cell)")
    simulate.add_argument("--policy", default="adapt", choices=["existing", "naive", "adapt"])
    simulate.add_argument("--replicas", type=int, default=1)
    simulate.add_argument("--nodes", type=int, default=1024)
    simulate.add_argument("--bandwidth", type=float, default=8.0)
    simulate.add_argument("--block-size-mb", type=float, default=64.0)
    simulate.add_argument("--tasks-per-node", type=float, default=100.0)
    simulate.add_argument("--seed", type=int, default=0)
    _add_topology_args(simulate)
    _add_executor_args(simulate)

    chaos = sub.add_parser(
        "chaos",
        help="run a scripted chaos campaign and report resilience metrics",
    )
    chaos.add_argument(
        "--campaign",
        metavar="FILE",
        required=True,
        help="JSON campaign file (see DESIGN.md, 'Chaos campaigns')",
    )
    chaos.add_argument("--policy", default="adapt", choices=["existing", "naive", "adapt"])
    chaos.add_argument("--replicas", type=int, default=1)
    chaos.add_argument("--nodes", type=int, default=128)
    chaos.add_argument("--ratio", type=float, default=0.5)
    chaos.add_argument("--bandwidth", type=float, default=8.0)
    chaos.add_argument("--blocks-per-node", type=float, default=20.0)
    chaos.add_argument("--seed", type=int, default=0)
    chaos.add_argument(
        "--replication-monitor",
        action="store_true",
        help="heal under-replicated blocks by re-replicating over the network",
    )
    chaos.add_argument(
        "--audit",
        choices=["report", "strict"],
        default=None,
        help="audit cross-layer invariants during the chaos run "
        "(strict: raise on the first violation)",
    )
    chaos.add_argument(
        "--baseline",
        choices=["fault-free", "no-chaos"],
        default="fault-free",
        help="reference run for makespan inflation and SLO attainment",
    )
    chaos.add_argument(
        "--report",
        metavar="PATH",
        default=None,
        help="write the ResilienceReport to PATH as JSON",
    )
    chaos.add_argument(
        "--trace-out",
        metavar="PATH",
        default=None,
        help="export the chaos run's bus-event stream to PATH as JSON Lines",
    )
    _add_topology_args(chaos)

    table1 = sub.add_parser("table1", help="regenerate Table 1 from synthetic traces")
    table1.add_argument("--nodes", type=int, default=2000)
    table1.add_argument("--horizon-days", type=float, default=180.0)
    table1.add_argument("--seed", type=int, default=0)

    sub.add_parser("groups", help="print the Table 2 interruption groups")

    lint = sub.add_parser(
        "lint",
        help="run simlint (static determinism & event-bus contract checks)",
    )
    from repro.devtools.simlint.cli import add_arguments as _add_lint_arguments

    _add_lint_arguments(lint)
    return parser


def _add_topology_args(command: argparse.ArgumentParser) -> None:
    """Network-fabric knobs shared by the experiment subcommands."""
    from repro.simulator.mitigation import MITIGATIONS
    from repro.simulator.topology import TOPOLOGIES

    command.add_argument(
        "--topology",
        choices=list(TOPOLOGIES),
        default="flat",
        help="network fabric: flat star (default) or hierarchical Clos",
    )
    command.add_argument(
        "--racks",
        type=int,
        default=1,
        help="racks in the Clos fabric (hosts assigned round-robin)",
    )
    command.add_argument(
        "--oversubscription",
        type=float,
        default=1.0,
        help="Clos trunk oversubscription ratio (1.0 = full bisection)",
    )
    command.add_argument(
        "--rack-aware-placement",
        action="store_true",
        help="enforce the HDFS off-rack replica rule on ingest placement",
    )
    command.add_argument(
        "--link-mitigation",
        choices=["none", *MITIGATIONS],
        default="none",
        help="response to degraded-link chaos windows (default: none)",
    )


def _topology_overrides(args: argparse.Namespace) -> Dict[str, object]:
    return {
        "topology": args.topology,
        "racks": args.racks,
        "oversubscription": args.oversubscription,
        "rack_aware_placement": args.rack_aware_placement,
        "link_mitigation": args.link_mitigation,
    }


def _add_executor_args(command: argparse.ArgumentParser) -> None:
    """Sweep-executor knobs shared by the experiment subcommands."""
    command.add_argument(
        "--jobs",
        type=int,
        default=None,
        metavar="N",
        help="worker processes for experiment cells (default: $REPRO_JOBS or 1)",
    )
    command.add_argument(
        "--cache-dir",
        metavar="DIR",
        default=None,
        help="content-addressed run cache: completed cells are skipped on re-runs",
    )


def _make_executor(args: argparse.Namespace):
    from repro.experiments.parallel import SweepExecutor

    if args.jobs is None and args.cache_dir is None:
        return None
    return SweepExecutor(jobs=args.jobs, cache_dir=args.cache_dir)


def _cmd_model(args: argparse.Namespace) -> int:
    lam = 1.0 / args.mtbi
    rows = [
        ["E[X] rework per failure (s)", f"{expected_rework(args.gamma, lam):.3f}"],
        ["E[Y] downtime per failure (s)", f"{expected_downtime(lam, args.recovery):.3f}"],
        ["E[S] failed attempts", f"{expected_attempts(args.gamma, lam):.3f}"],
        ["E[T] expected task time (s)", f"{expected_task_time(args.gamma, lam, args.recovery):.3f}"],
        ["slowdown E[T]/gamma", f"{expected_task_time(args.gamma, lam, args.recovery) / args.gamma:.3f}"],
    ]
    print(format_table(["quantity", "value"], rows, title="Stochastic model (Section III.B)"))
    return 0


def _cmd_placement(args: argparse.Namespace) -> int:
    hosts = build_group_hosts(args.nodes, args.ratio)
    num_blocks = max(int(round(args.blocks_per_node * args.nodes)), 1)
    rng = RandomSource(args.seed)
    from repro.availability.estimators import AvailabilityEstimate

    views = [
        NodeView(
            node_id=h.host_id,
            estimate=AvailabilityEstimate(
                arrival_rate=h.arrival_rate, recovery_mean=h.service_mean, observations=1
            ),
        )
        for h in hosts
    ]
    rows: List[List[object]] = []
    group_of = {h.host_id: h.group for h in hosts}
    for name in ("existing", "naive", "adapt"):
        policy = make_policy(name)
        plan = policy.build_plan(views, num_blocks, args.replicas, args.gamma)
        stream = rng.substream("placement", name)
        for _ in range(num_blocks):
            plan.choose_replicas(stream)
        per_group: Dict[str, List[int]] = {}
        for node_id, count in plan.allocations().items():
            per_group.setdefault(group_of[node_id], []).append(count)
        for group in sorted(per_group):
            counts = per_group[group]
            rows.append(
                [name, group, len(counts), f"{sum(counts) / len(counts):.1f}", max(counts)]
            )
    print(
        format_table(
            ["policy", "group", "nodes", "mean blocks/node", "max"],
            rows,
            title=f"Block distribution: {num_blocks} blocks x{args.replicas} over {args.nodes} nodes",
        )
    )
    return 0


def _cmd_emulate(args: argparse.Namespace) -> int:
    config = EmulationConfig(
        node_count=args.nodes,
        interrupted_ratio=args.ratio,
        bandwidth_mbps=args.bandwidth,
        blocks_per_node=args.blocks_per_node,
        seed=args.seed,
        replication_monitor=args.replication_monitor,
        permanent_failure_rate=args.permanent_failure_rate,
        permanent_failure_horizon=args.permanent_failure_horizon,
        fetch_retries=args.fetch_retries,
        **_topology_overrides(args),
    )
    executor = _make_executor(args)
    audit = args.audit if args.audit is not None else ("report" if args.audit_out else None)
    campaign = None
    if args.chaos is not None:
        from repro.simulator.scenarios import ChaosCampaign

        campaign = ChaosCampaign.load(args.chaos)
    result = run_emulation_point(
        config,
        Strategy(args.policy, args.replicas),
        trace_out=args.trace_out,
        executor=executor,
        audit=audit,
        audit_out=args.audit_out,
        chaos=campaign,
    )
    _print_result(result)
    if result.resilience is not None:
        _print_resilience(result.resilience)
    if args.trace_out is not None:
        print(f"trace written to {args.trace_out}")
    if audit is not None:
        if args.audit_out is not None:
            print(f"audit report ({audit} mode) written to {args.audit_out}")
        else:
            print(f"audit ran in {audit} mode; no violations raised")
    if executor is not None and executor.cache_hits:
        print(f"run cache: {executor.cache_hits} hit(s) from {executor.cache_dir}")
    return 0


def _cmd_simulate(args: argparse.Namespace) -> int:
    config = SimulationConfig(
        node_count=args.nodes,
        bandwidth_mbps=args.bandwidth,
        block_size_bytes=int(args.block_size_mb * MB),
        tasks_per_node=args.tasks_per_node,
        seed=args.seed,
        **_topology_overrides(args),
    )
    executor = _make_executor(args)
    result = run_simulation_point(
        config, Strategy(args.policy, args.replicas), executor=executor
    )
    _print_result(result)
    if executor is not None and executor.cache_hits:
        print(f"run cache: {executor.cache_hits} hit(s) from {executor.cache_dir}")
    return 0


def _cmd_chaos(args: argparse.Namespace) -> int:
    from repro.experiments.chaosrun import run_chaos_point
    from repro.simulator.scenarios import ChaosCampaign

    campaign = ChaosCampaign.load(args.campaign)
    config = EmulationConfig(
        node_count=args.nodes,
        interrupted_ratio=args.ratio,
        bandwidth_mbps=args.bandwidth,
        blocks_per_node=args.blocks_per_node,
        seed=args.seed,
        replication_monitor=args.replication_monitor,
        **_topology_overrides(args),
    )
    outcome = run_chaos_point(
        config,
        Strategy(args.policy, args.replicas),
        campaign,
        audit=args.audit,
        trace_out=args.trace_out,
        baseline_mode=args.baseline,
    )
    _print_result(outcome.result)
    _print_resilience(outcome.report)
    if args.audit is not None:
        print(f"audit ran in {args.audit} mode; no violations raised")
    if args.trace_out is not None:
        print(f"trace written to {args.trace_out}")
    if args.report is not None:
        with open(args.report, "w", encoding="utf-8") as handle:
            handle.write(outcome.report.to_json())
            handle.write("\n")
        print(f"resilience report written to {args.report}")
    return 0


def _print_resilience(report) -> None:
    rows: List[List[object]] = []
    for key, value in report.to_jsonable().items():
        if key == "activations":
            rows.append(["scenarios", len(value)])
        elif isinstance(value, float):
            rows.append([key, f"{value:.4f}"])
        else:
            rows.append([key, value])
    print(format_table(["metric", "value"], rows, title="Resilience report"))


def _print_result(result) -> None:
    rows = [[k, v] for k, v in result.summary_row().items()]
    durability = getattr(result, "durability", None)
    if durability is not None and (
        durability.permanent_failures
        or durability.rereplications_started
        or durability.degraded_read_retries
        or durability.blocks_lost
    ):
        rows.extend([k, v] for k, v in durability.summary_row().items())
    print(format_table(["metric", "value"], rows, title="Map phase result"))


def _cmd_table1(args: argparse.Namespace) -> int:
    stats = table1_statistics(
        node_count=args.nodes, horizon=args.horizon_days * 86400.0, seed=args.seed
    )
    rows = [
        ["MTBI (seconds)", *stats["mtbi"].as_row()],
        ["Interruption Duration (seconds)", *stats["duration"].as_row()],
    ]
    print(format_table(["", "Mean", "Std Dev", "CoV"], rows, title="Table 1 (synthetic)"))
    print("\nPaper's values: MTBI 160290 / 701419 / 4.376;")
    print("duration 109380 / 807983 / 7.3869")
    return 0


def _cmd_lint(args: argparse.Namespace) -> int:
    from repro.devtools.simlint.cli import run as run_lint

    return run_lint(args)


def _cmd_groups(args: argparse.Namespace) -> int:
    rows = [[g.name, f"{g.mtbi:.0f}", f"{g.service_mean:.0f}"] for g in table2_groups()]
    print(format_table(["group", "MTBI (s)", "service time (s)"], rows, title="Table 2"))
    return 0


if __name__ == "__main__":  # pragma: no cover
    sys.exit(main())
