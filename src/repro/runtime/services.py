"""Service lifecycle kernel: uniform start/stop/describe over subsystems.

Every long-lived cluster subsystem — failure injector, heartbeat or oracle
detector, replication monitor, JobTracker, TaskTrackers, network, trace
recorder — implements the structural :class:`Service` protocol, and
:class:`Cluster` owns them through a :class:`ServiceRegistry`. Teardown
becomes a loop (reverse registration order, so consumers stop before
producers) instead of a hand-maintained list of special cases, and
``describe()`` gives a uniform introspection surface for debugging and
tracing.

The protocol is structural (:func:`typing.runtime_checkable`): subsystems
do not import this module or inherit anything — they just grow ``name``,
``start``, ``stop`` and ``describe`` members.
"""

from __future__ import annotations

from typing import Dict, Iterator, List, Protocol, runtime_checkable


@runtime_checkable
class Service(Protocol):
    """Structural lifecycle contract for cluster subsystems."""

    #: Stable identifier, unique within one cluster (registry key).
    name: str

    def start(self) -> None:
        """Begin operating. Idempotent; wiring happened at construction."""

    def stop(self) -> None:
        """Disarm every scheduled event and go permanently quiet.

        After every registered service stops, the simulator heap must
        drain naturally — nothing re-arms.
        """

    def describe(self) -> Dict[str, object]:
        """Structured snapshot of the service's current state."""


class ServiceRegistry:
    """Ordered service collection with loop-based lifecycle management."""

    def __init__(self) -> None:
        self._services: Dict[str, Service] = {}

    def register(self, service: Service) -> None:
        """Add a service; registration order is start order."""
        if not isinstance(service, Service):
            raise TypeError(
                f"{service!r} does not satisfy the Service protocol "
                "(needs name/start/stop/describe)"
            )
        if service.name in self._services:
            raise ValueError(f"service {service.name!r} already registered")
        self._services[service.name] = service

    def get(self, name: str) -> Service:
        try:
            return self._services[name]
        except KeyError:
            raise KeyError(f"no service named {name!r}") from None

    def __contains__(self, name: str) -> bool:
        return name in self._services

    def __len__(self) -> int:
        return len(self._services)

    def __iter__(self) -> Iterator[Service]:
        return iter(self._services.values())

    @property
    def names(self) -> List[str]:
        """Service names in registration order."""
        return list(self._services)

    def start_all(self) -> None:
        """Start services in registration order (producers first)."""
        for service in self._services.values():
            service.start()

    def stop_all(self) -> None:
        """Stop services in *reverse* registration order.

        Consumers (schedulers, monitors) stop before producers (injector,
        network), so teardown never publishes into a torn-down upstream.
        """
        for service in reversed(list(self._services.values())):
            service.stop()

    def describe_all(self) -> List[Dict[str, object]]:
        """Snapshot every service, in registration order."""
        return [service.describe() for service in self._services.values()]


__all__ = ["Service", "ServiceRegistry"]
