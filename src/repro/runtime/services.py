"""Service lifecycle kernel: uniform start/stop/describe over subsystems.

Every long-lived cluster subsystem — failure injector, heartbeat or oracle
detector, replication monitor, JobTracker, TaskTrackers, network, trace
recorder — implements the structural :class:`Service` protocol, and
:class:`Cluster` owns them through a :class:`ServiceRegistry`. Teardown
becomes a loop (reverse registration order, so consumers stop before
producers) instead of a hand-maintained list of special cases, and
``describe()`` gives a uniform introspection surface for debugging and
tracing.

The protocol is structural (:func:`typing.runtime_checkable`): subsystems
do not import this module or inherit anything — they just grow ``name``,
``start``, ``stop`` and ``describe`` members.

Scale note: a ``runtime_checkable`` isinstance check walks the protocol's
members through the attribute machinery every call — ~0.1ms each, which is
half a minute of cluster build at 226k per-node services. The registry
therefore caches *positive* verdicts per concrete type: one structural
check per class, dict lookups for the rest. Negative verdicts are never
cached, because a class that fails the check can (in tests, typically)
gain the missing members later. The cache trades one nuance away: a class
whose *instances* only sometimes carry ``name`` (set conditionally in
``__init__``) could slip a nameless instance past the check — accepted, as
every shipped service sets its members unconditionally.
"""

from __future__ import annotations

from typing import Dict, Iterable, Iterator, List, Optional, Protocol, Set, Type, runtime_checkable


@runtime_checkable
class Service(Protocol):
    """Structural lifecycle contract for cluster subsystems."""

    #: Stable identifier, unique within one cluster (registry key).
    name: str

    def start(self) -> None:
        """Begin operating. Idempotent; wiring happened at construction."""

    def stop(self) -> None:
        """Disarm every scheduled event and go permanently quiet.

        After every registered service stops, the simulator heap must
        drain naturally — nothing re-arms.
        """

    def describe(self) -> Dict[str, object]:
        """Structured snapshot of the service's current state."""


#: Concrete types whose instances have passed the structural check.
_conforming_types: Set[Type[object]] = set()


def _check_service(service: object) -> None:
    """Structural protocol check with a positive-verdict type cache."""
    cls = type(service)
    if cls in _conforming_types:
        return
    if not isinstance(service, Service):
        raise TypeError(
            f"{service!r} does not satisfy the Service protocol "
            "(needs name/start/stop/describe)"
        )
    _conforming_types.add(cls)


class ServiceRegistry:
    """Ordered service collection with loop-based lifecycle management.

    Services live in an ordered list (registration order is start order);
    the name index used by :meth:`get` / ``in`` / :attr:`names` is
    materialised lazily, so bulk registration of 226k per-node services
    never pays a per-service dict insert against a growing table. Name
    *conflicts* surface either eagerly (``register``) or at the first
    name lookup after a ``register_bulk`` — always before ``start_all``
    can run a misconfigured cluster, since ``build_cluster`` resolves
    services by name while wiring.
    """

    def __init__(self) -> None:
        self._ordered: List[Service] = []
        #: Lazy name -> service index; None after a bulk registration
        #: until the next name-based lookup rebuilds it.
        self._by_name: Optional[Dict[str, Service]] = {}

    def _index(self) -> Dict[str, Service]:
        if self._by_name is None:
            index: Dict[str, Service] = {}
            for service in self._ordered:
                name = service.name
                if name in index:
                    raise ValueError(f"service {name!r} already registered")
                index[name] = service
            self._by_name = index
        return self._by_name

    def register(self, service: Service) -> None:
        """Add a service; registration order is start order."""
        _check_service(service)
        if service.name in self._index():
            raise ValueError(f"service {service.name!r} already registered")
        self._ordered.append(service)
        self._index()[service.name] = service

    def register_bulk(self, services: Iterable[Service]) -> int:
        """Add many services without touching their ``name`` attributes.

        The bulk path exists for per-node services whose names are derived
        lazily (``datanode:<host>`` f-strings at 226k nodes are pure build
        overhead); duplicate names are detected at the next name lookup
        instead of eagerly. Returns the number of services added.
        """
        count = 0
        for service in services:
            _check_service(service)
            self._ordered.append(service)
            count += 1
        if count:
            self._by_name = None
        return count

    def get(self, name: str) -> Service:
        try:
            return self._index()[name]
        except KeyError:
            raise KeyError(f"no service named {name!r}") from None

    def __contains__(self, name: str) -> bool:
        return name in self._index()

    def __len__(self) -> int:
        return len(self._ordered)

    def __iter__(self) -> Iterator[Service]:
        return iter(self._ordered)

    @property
    def names(self) -> List[str]:
        """Service names in registration order."""
        return [service.name for service in self._ordered]

    def start_all(self) -> None:
        """Start services in registration order (producers first)."""
        for service in self._ordered:
            service.start()

    def stop_all(self) -> None:
        """Stop services in *reverse* registration order.

        Consumers (schedulers, monitors) stop before producers (injector,
        network), so teardown never publishes into a torn-down upstream.
        """
        for service in reversed(self._ordered):
            service.stop()

    def describe_all(self) -> List[Dict[str, object]]:
        """Snapshot every service, in registration order."""
        return [service.describe() for service in self._ordered]


__all__ = ["Service", "ServiceRegistry"]
