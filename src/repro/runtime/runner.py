"""End-to-end map-phase execution: the measurement harness primitive.

``run_map_phase`` builds a cluster, ingests the input file under a chosen
placement policy, runs the map phase to completion, and returns a
:class:`MapPhaseResult` with exactly the quantities the paper reports:
map-phase elapsed time (Figure 3), data locality (Figure 4), and the
rework/recovery/migration/misc overhead breakdown (Figure 5).

``trace_out`` exports the cluster's full bus-event stream as JSON Lines
(one object per event, in causal order) — see
:class:`~repro.simulator.trace.TraceRecorder`.
"""

from __future__ import annotations

import dataclasses
from dataclasses import dataclass
from typing import Dict, Optional, Sequence

from repro.availability.generator import HostAvailability
from repro.availability.traces import AvailabilityTrace
from repro.core.placement import PlacementPolicy, make_policy
from repro.mapreduce.job import JobConf, MapJob
from repro.runtime.cluster import Cluster, ClusterConfig, build_cluster
from repro.simulator.chaos import ResilienceReport
from repro.simulator.metrics import DurabilityMetrics, OverheadBreakdown
from repro.simulator.scenarios import ChaosCampaign
from repro.workloads.base import Workload
from repro.workloads.terasort import TerasortWorkload


@dataclass(frozen=True)
class MapPhaseResult:
    """Measurements of one finished map phase."""

    policy: str
    replication: int
    node_count: int
    num_tasks: int
    elapsed: float
    data_locality: float
    breakdown: OverheadBreakdown
    seed: int
    #: Storage-durability accounting for the run (always present; all
    #: zeros unless failures were permanent or the monitor/read-path
    #: hardening did work).
    durability: Optional[DurabilityMetrics] = None
    #: Physical availability transitions over the cluster's lifetime —
    #: cross-checkable against a ``trace_out`` export's NodeDown/NodeUp
    #: record counts.
    interruptions: int = 0
    node_returns: int = 0
    #: Chaos-campaign resilience metrics (None unless a campaign ran).
    resilience: Optional[ResilienceReport] = None

    @property
    def overhead_ratios(self) -> Dict[str, float]:
        """Figure 5's per-component ratios against aggregate base work."""
        return self.breakdown.ratios()

    def summary_row(self) -> Dict[str, object]:
        """Flat record for tabular reporting."""
        row: Dict[str, object] = {
            "policy": self.policy,
            "replicas": self.replication,
            "nodes": self.node_count,
            "tasks": self.num_tasks,
            "elapsed_s": round(self.elapsed, 1),
            "locality": round(self.data_locality, 4),
        }
        for key, value in self.overhead_ratios.items():
            row[f"{key}_overhead"] = round(value, 4)
        return row


def run_map_phase(
    hosts: Sequence[HostAvailability],
    config: ClusterConfig,
    policy: PlacementPolicy | str,
    replication: int = 1,
    blocks_per_node: float = 20.0,
    num_blocks: Optional[int] = None,
    workload: Optional[Workload] = None,
    job_conf: Optional[JobConf] = None,
    traces: Optional[Sequence[AvailabilityTrace]] = None,
    warmup_seconds: float = 0.0,
    max_events: int = 500_000_000,
    trace_out: Optional[str] = None,
    audit: Optional[str] = None,
    audit_out: Optional[str] = None,
    chaos: Optional[ChaosCampaign] = None,
) -> MapPhaseResult:
    """Run one complete experiment point.

    The input file has ``num_blocks`` blocks (default:
    ``blocks_per_node * len(hosts)``, the paper's 20-blocks-per-node rule),
    ingested with ``policy`` at ``replication``, and processed by
    ``workload`` (terasort by default). ``warmup_seconds`` advances the
    cluster before ingest so heartbeat-driven estimators can learn — only
    meaningful with ``config.oracle_estimates=False``. ``trace_out``
    writes the bus-event stream to that path as JSON Lines (implies
    ``config.trace_events``).

    ``audit`` overrides ``config.audit`` ("report" or "strict"); in strict
    mode the first invariant violation raises. ``audit_out`` writes the
    final :class:`~repro.simulator.invariants.AuditReport` as JSON (implies
    ``audit="report"`` when no mode was chosen).

    ``chaos`` layers a scripted campaign on the run; the result then
    carries a :class:`~repro.simulator.chaos.ResilienceReport` in
    ``resilience``.
    """
    if isinstance(policy, str):
        policy = make_policy(policy)
    if trace_out is not None and not config.trace_events:
        config = dataclasses.replace(config, trace_events=True)
    if chaos is not None:
        config = dataclasses.replace(config, chaos=chaos)
    if audit is None and audit_out is not None and config.audit == "off":
        audit = "report"
    if audit is not None:
        config = dataclasses.replace(config, audit=audit)
    chosen_workload = workload if workload is not None else TerasortWorkload()
    gamma = chosen_workload.gamma_seconds(config.block_size_bytes)
    cluster = build_cluster(hosts, config, traces=traces, default_gamma=gamma)
    try:
        # Settle any t=0 transitions (stationary starts put some hosts down
        # at the window origin) before the NameNode takes its placement
        # snapshot.
        cluster.sim.run(until=0.0)
        if warmup_seconds > 0.0:
            cluster.sim.run(until=warmup_seconds)

        m = (
            num_blocks
            if num_blocks is not None
            else max(int(round(blocks_per_node * len(hosts))), 1)
        )
        dfs_file = cluster.client.copy_from_local(
            name="input",
            num_blocks=m,
            replication=replication,
            policy=policy,
            gamma=gamma,
        )
        conf = job_conf if job_conf is not None else JobConf(name=chosen_workload.name)
        gammas = chosen_workload.gammas(dfs_file, rng=cluster.rng.substream("workload"))
        job = MapJob(conf, dfs_file, gammas)
        cluster.jobtracker.submit(job)
        cluster.run_until_job_done(max_events=max_events)

        breakdown = cluster.metrics.breakdown(job.makespan, slots=cluster.total_slots)
        result = MapPhaseResult(
            policy=policy.name,
            replication=replication,
            node_count=cluster.node_count,
            num_tasks=job.num_tasks,
            elapsed=job.makespan,
            data_locality=cluster.metrics.data_locality,
            breakdown=breakdown,
            seed=config.seed,
            durability=cluster.durability,
            interruptions=cluster.metrics.interruptions,
            node_returns=cluster.metrics.node_returns,
            resilience=(
                cluster.chaos.report(makespan=job.makespan)
                if cluster.chaos is not None
                else None
            ),
        )
    finally:
        # Teardown after every result field is captured (stopping kills live
        # speculative attempts, which would otherwise perturb the
        # accounting) — but also on *failure*, so a cell that dies mid-run
        # in a sweep worker never strands scheduled events or services.
        cluster.stop()
    if trace_out is not None and cluster.tracer is not None:
        cluster.tracer.export_jsonl(trace_out)
    if audit_out is not None and cluster.auditor is not None:
        cluster.auditor.report.export_json(audit_out)
    return result
