"""Runtime wiring: assemble a full simulated cluster and run jobs on it.

:mod:`repro.runtime.cluster` builds the whole stack — engine, network,
failure injection, HDFS, MapReduce — from a list of host availability
descriptions plus a :class:`ClusterConfig`. :mod:`repro.runtime.runner`
runs a complete map phase end-to-end and returns the measurements the
paper's evaluation reports (elapsed time, data locality, overhead
breakdown).
"""

from repro.runtime.cluster import Cluster, ClusterConfig, build_cluster
from repro.runtime.runner import MapPhaseResult, run_map_phase
from repro.runtime.services import Service, ServiceRegistry

__all__ = [
    "Cluster",
    "ClusterConfig",
    "build_cluster",
    "MapPhaseResult",
    "run_map_phase",
    "Service",
    "ServiceRegistry",
]
