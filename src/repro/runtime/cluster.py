"""Cluster assembly: wire every subsystem into one simulated deployment.

The wiring mirrors the paper's deployment (Figure 2): every host runs a
DataNode and a TaskTracker; a dedicated master hosts the NameNode (with
ADAPT's Performance Predictor and Data Block Distributor) and the
JobTracker. The failure injector plays the role of the non-dedicated
environment: it interrupts hosts according to their availability
descriptions, and everything else reacts.

Callback order on a transition is load-bearing and fixed here:

down: accounting -> DataNode off -> TaskTracker kills attempts ->
      (hard mode only) in-flight reads from the node torn down ->
      detection (heartbeat stops / oracle marks dead & requeues)
up:   accounting -> DataNode on -> detection (beat / oracle mark alive)
      -> TaskTracker asks for work
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence

from repro.availability.estimators import AvailabilityEstimate
from repro.availability.generator import HostAvailability
from repro.availability.traces import AvailabilityTrace
from repro.core.predictor import PerformancePredictor
from repro.hdfs.client import DfsClient
from repro.hdfs.datanode import DataNode
from repro.hdfs.heartbeat import HeartbeatService
from repro.hdfs.namenode import NameNode
from repro.mapreduce.jobtracker import JobTracker
from repro.mapreduce.speculation import SpeculationPolicy
from repro.mapreduce.tasktracker import TaskTracker
from repro.simulator.engine import Simulator
from repro.simulator.failures import FailureInjector
from repro.simulator.metrics import MapPhaseMetrics
from repro.simulator.network import Network
from repro.util.rng import RandomSource
from repro.util.units import MB, mbit_per_s
from repro.util.validation import check_positive

_DETECTIONS = ("heartbeat", "oracle")


@dataclass(frozen=True)
class ClusterConfig:
    """Deployment knobs (defaults follow the paper's Tables 3 and 4)."""

    #: Per-node network bandwidth in Mb/s (paper sweeps 4-32; default 8).
    bandwidth_mbps: float = 8.0
    #: Downlink override in Mb/s; None means symmetric links.
    downlink_mbps: Optional[float] = None
    #: HDFS block size in bytes (default 64 MB).
    block_size_bytes: int = 64 * MB
    #: Map slots per node (the paper's VMs have one core).
    slots_per_node: int = 1
    #: Failure detection: "heartbeat" (realistic lag) or "oracle" (instant).
    detection: str = "heartbeat"
    heartbeat_interval: float = 3.0
    heartbeat_miss_threshold: int = 3
    #: Whether a down host's stored blocks stay streamable (see JobTracker).
    access_during_downtime: bool = True
    #: Flow-level max-min fair sharing (True) or uncontended links (False).
    fair_sharing: bool = True
    #: Pin the predictor to each host's true (lambda, mu) instead of
    #: estimating from heartbeats (Algorithm 1's stated inputs).
    oracle_estimates: bool = True
    #: Speculation tunables.
    speculation_enabled: bool = True
    speculation_slowdown: float = 2.0
    max_speculative_per_task: int = 1
    #: JobTracker idle-node re-poll period.
    sweep_interval: float = 3.0
    #: Shift every interruption process this far into its past, so the run
    #: starts in (approximately) stationary state — some hosts already down
    #: at t=0, as when replaying a random window of a long trace. 0 starts
    #: every host up (the emulated-testbed behaviour).
    stationary_burn_in: float = 0.0
    #: Restrict ingest placement to currently-live nodes (True, testbed
    #: behaviour) or place over the whole membership (False — data loaded
    #: at an earlier time; only long-run availability is predictive).
    placement_liveness_filter: bool = True
    #: Estimator prior when oracle_estimates is False. The prior is worth
    #: prior_weight pseudo-episodes over prior_weight*prior_mtbi pseudo-
    #: uptime; the small default weight lets real heartbeat data dominate
    #: after a short warmup.
    prior_mtbi: float = 1e6
    prior_recovery: float = 0.0
    prior_weight: float = 1e-4
    #: Root seed; every random stream in the cluster derives from it.
    seed: int = 0

    def __post_init__(self) -> None:
        check_positive("bandwidth_mbps", self.bandwidth_mbps)
        check_positive("block_size_bytes", self.block_size_bytes)
        if self.slots_per_node < 1:
            raise ValueError("slots_per_node must be >= 1")
        if self.detection not in _DETECTIONS:
            raise ValueError(f"detection must be one of {_DETECTIONS}, got {self.detection!r}")

    @property
    def uplink_bps(self) -> float:
        return mbit_per_s(self.bandwidth_mbps)

    @property
    def downlink_bps(self) -> float:
        return mbit_per_s(
            self.downlink_mbps if self.downlink_mbps is not None else self.bandwidth_mbps
        )

    def nominal_fetch_seconds(self) -> float:
        """Uncontended time to stream one block (speculation threshold)."""
        return self.block_size_bytes / min(self.uplink_bps, self.downlink_bps)


class Cluster:
    """A fully wired simulated deployment."""

    def __init__(
        self,
        config: ClusterConfig,
        hosts: Sequence[HostAvailability],
        sim: Simulator,
        rng: RandomSource,
        network: Network,
        injector: FailureInjector,
        namenode: NameNode,
        trackers: Dict[str, TaskTracker],
        metrics: MapPhaseMetrics,
        jobtracker: JobTracker,
        heartbeats: Optional[HeartbeatService],
        client: DfsClient,
    ) -> None:
        self.config = config
        self.hosts = list(hosts)
        self.sim = sim
        self.rng = rng
        self.network = network
        self.injector = injector
        self.namenode = namenode
        self.trackers = trackers
        self.metrics = metrics
        self.jobtracker = jobtracker
        self.heartbeats = heartbeats
        self.client = client

    @property
    def node_ids(self) -> List[str]:
        return sorted(self.trackers)

    @property
    def node_count(self) -> int:
        return len(self.trackers)

    @property
    def total_slots(self) -> int:
        return sum(t.slots for t in self.trackers.values())

    def run_until_job_done(self, max_events: int = 500_000_000) -> None:
        """Advance the simulation until the submitted job finishes.

        The failure injector's event stream is endless, so "run until the
        heap drains" never terminates; this helper steps until the
        JobTracker reports completion (or the safety budget trips).
        """
        executed = 0
        while not self.jobtracker.is_done:
            if not self.sim.step():
                raise RuntimeError("event heap drained before the job finished")
            executed += 1
            if executed > max_events:
                raise RuntimeError(
                    f"job did not finish within {max_events} events; "
                    "likely a livelock (check replica reachability settings)"
                )


def build_cluster(
    hosts: Sequence[HostAvailability],
    config: ClusterConfig,
    traces: Optional[Sequence[AvailabilityTrace]] = None,
    default_gamma: float = 12.0,
) -> Cluster:
    """Assemble a cluster for the given host population.

    ``traces``, when given, must parallel ``hosts`` (same ids) and the
    failure injector replays them instead of sampling each host's
    interruption process live. Replay gives byte-identical failure
    realisations across arbitrary configuration changes; live sampling is
    already identical across *placement-policy* changes because each
    node's stream is keyed by (seed, node id) alone.
    """
    if not hosts:
        raise ValueError("need at least one host")
    ids = [h.host_id for h in hosts]
    if len(set(ids)) != len(ids):
        raise ValueError("host ids must be unique")

    sim = Simulator()
    rng = RandomSource(config.seed)
    network = Network(
        sim,
        uplink_bps=config.uplink_bps,
        downlink_bps=config.downlink_bps,
        fair_sharing=config.fair_sharing,
    )
    predictor = PerformancePredictor(
        prior_mtbi=config.prior_mtbi,
        prior_recovery=config.prior_recovery,
        prior_weight=config.prior_weight,
    )
    namenode = NameNode(
        predictor, placement_liveness_filter=config.placement_liveness_filter
    )
    metrics = MapPhaseMetrics()
    injector = FailureInjector(sim, rng)

    datanodes: Dict[str, DataNode] = {}
    trackers: Dict[str, TaskTracker] = {}
    for host in hosts:
        datanode = DataNode(host.host_id)
        namenode.register_datanode(datanode)
        datanodes[host.host_id] = datanode
        trackers[host.host_id] = TaskTracker(
            sim, host.host_id, network, metrics, slots=config.slots_per_node
        )
        if config.oracle_estimates:
            predictor.pin_oracle(
                host.host_id,
                AvailabilityEstimate(
                    arrival_rate=host.arrival_rate,
                    recovery_mean=host.service_mean,
                    observations=1,
                ),
            )

    speculation = SpeculationPolicy(
        enabled=config.speculation_enabled,
        slowdown=config.speculation_slowdown,
        max_per_task=config.max_speculative_per_task,
        nominal_fetch_seconds=config.nominal_fetch_seconds(),
    )
    jobtracker = JobTracker(
        sim,
        namenode,
        network,
        trackers,
        metrics,
        access_during_downtime=config.access_during_downtime,
        speculation=speculation,
        sweep_interval=config.sweep_interval,
    )
    for tracker in trackers.values():
        tracker.bind(jobtracker)

    heartbeats: Optional[HeartbeatService] = None
    if config.detection == "heartbeat":
        heartbeats = HeartbeatService(
            sim,
            namenode,
            interval=config.heartbeat_interval,
            miss_threshold=config.heartbeat_miss_threshold,
        )
        heartbeats.subscribe(on_dead=jobtracker.on_node_dead)
        for host in hosts:
            heartbeats.track(host.host_id)

    # -- transition wiring (order matters; see module docstring) -----------------
    injector.subscribe(on_down=jobtracker.on_node_down_physical)
    injector.subscribe(on_down=lambda node_id, t: datanodes[node_id].set_up(False))
    injector.subscribe(on_down=lambda node_id, t: trackers[node_id].on_node_down(t))
    if not config.access_during_downtime:
        injector.subscribe(on_down=lambda node_id, t: network.cancel_involving(node_id))
    if heartbeats is not None:
        injector.subscribe(on_down=heartbeats.node_down)
    else:
        def oracle_down(node_id: str, t: float) -> None:
            namenode.mark_dead(node_id)
            jobtracker.on_node_dead(node_id, t)

        injector.subscribe(on_down=oracle_down)

    injector.subscribe(on_up=jobtracker.on_node_up_physical)
    injector.subscribe(on_up=lambda node_id, t: datanodes[node_id].set_up(True))
    if heartbeats is not None:
        injector.subscribe(on_up=heartbeats.node_up)
    else:
        injector.subscribe(on_up=lambda node_id, t: namenode.mark_alive(node_id))
    injector.subscribe(on_up=lambda node_id, t: trackers[node_id].on_node_up(t))

    if traces is not None:
        trace_ids = [trace.host_id for trace in traces]
        if trace_ids != ids:
            raise ValueError("traces must parallel hosts (same ids, same order)")
        for trace in traces:
            injector.attach_trace(trace)
    else:
        for host in hosts:
            injector.attach_host(host, burn_in=config.stationary_burn_in)

    client = DfsClient(
        namenode,
        rng.substream("client"),
        default_block_size=config.block_size_bytes,
        default_gamma=default_gamma,
    )
    return Cluster(
        config=config,
        hosts=hosts,
        sim=sim,
        rng=rng,
        network=network,
        injector=injector,
        namenode=namenode,
        trackers=trackers,
        metrics=metrics,
        jobtracker=jobtracker,
        heartbeats=heartbeats,
        client=client,
    )
