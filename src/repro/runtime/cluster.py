"""Cluster assembly: wire every subsystem into one simulated deployment.

The wiring mirrors the paper's deployment (Figure 2): every host runs a
DataNode and a TaskTracker; a dedicated master hosts the NameNode (with
ADAPT's Performance Predictor and Data Block Distributor) and the
JobTracker. The failure injector plays the role of the non-dedicated
environment: it interrupts hosts according to their availability
descriptions, and everything else reacts.

All reactions flow through one typed
:class:`~repro.simulator.events.EventBus`. Reaction *order* on a
transition is load-bearing, and it is expressed here as dispatch phases
rather than subscription order (see ``repro.simulator.events`` and
DESIGN.md, "Event bus & dispatch phases"):

=================  ==========================================================
Phase              NodeDown / NodeUp reaction
=================  ==========================================================
ACCOUNTING         JobTracker opens/closes the downtime interval
STORAGE            DataNode toggles physical availability
COMPUTE            TaskTracker kills the attempts that lived on the node
NETWORK            (hard mode only) in-flight flows of a down node torn down
DETECTION          heartbeat bookkeeping, or the oracle marking belief
SCHEDULING         the returned node's TaskTracker asks for work
=================  ==========================================================

Belief events (``NodeDeclaredDead`` / ``NodeReturned``) are published by
whichever detector is configured; the replication monitor reacts in
STORAGE phase (purge before requeue) and the JobTracker in SCHEDULING.
Permanent failures wipe storage in STORAGE phase
(:class:`~repro.hdfs.durability.PermanentFailurePipeline`) and tear down
flows in NETWORK phase — both before the ``NodeDown`` that follows.

Every long-lived subsystem satisfies the
:class:`~repro.runtime.services.Service` protocol and is owned by the
cluster's :class:`~repro.runtime.services.ServiceRegistry`, so teardown is
one loop in reverse registration order.
"""

from __future__ import annotations

import os
import time
from dataclasses import dataclass
from typing import Dict, List, Optional, Sequence

from repro.availability.estimators import AvailabilityEstimate
from repro.availability.generator import HostAvailability
from repro.availability.pregen import (
    AVAIL_BACKENDS,
    pregenerate_prefixes,
    resolve_backend,
    resolve_jobs,
)
from repro.availability.traces import AvailabilityTrace
from repro.core.ids import NodeId, NodeIds
from repro.core.predictor import PerformancePredictor
from repro.hdfs.client import DfsClient
from repro.hdfs.datanode import DataNode
from repro.hdfs.detection import OracleDetector
from repro.hdfs.durability import PermanentFailurePipeline
from repro.hdfs.heartbeat import HeartbeatService
from repro.hdfs.namenode import NameNode
from repro.hdfs.replication_monitor import ReplicationMonitor
from repro.mapreduce.jobtracker import JobTracker
from repro.mapreduce.speculation import SpeculationPolicy
from repro.mapreduce.tasktracker import TaskTracker
from repro.runtime.services import ServiceRegistry
from repro.simulator.chaos import ChaosEngine
from repro.simulator.engine import EVENT_QUEUES, Simulator
from repro.simulator.events import (
    BlockLost,
    EventBus,
    LinkDegraded,
    LinkRestored,
    NodeDeclaredDead,
    NodeDegraded,
    NodeDown,
    NodePurged,
    NodeRestored,
    NodeReturned,
    NodeUp,
    PartitionHealed,
    PartitionStarted,
    PermanentFailure,
    Phase,
    ReplicaAdded,
)
from repro.simulator.failures import FailureInjector
from repro.simulator.invariants import AUDIT_MODES, InvariantAuditor
from repro.simulator.metrics import DurabilityMetrics, MapPhaseMetrics
from repro.simulator.mitigation import MITIGATIONS, LinkMitigationService
from repro.simulator.network import Network
from repro.simulator.scenarios import ChaosCampaign
from repro.simulator.topology import TOPOLOGIES, make_topology
from repro.simulator.trace import TraceRecorder
from repro.util.rng import RandomSource
from repro.util.units import MB, mbit_per_s
from repro.util.validation import check_positive

_DETECTIONS = ("heartbeat", "oracle")


@dataclass(frozen=True)
class ClusterConfig:
    """Deployment knobs (defaults follow the paper's Tables 3 and 4)."""

    #: Per-node network bandwidth in Mb/s (paper sweeps 4-32; default 8).
    bandwidth_mbps: float = 8.0
    #: Downlink override in Mb/s; None means symmetric links.
    downlink_mbps: Optional[float] = None
    #: HDFS block size in bytes (default 64 MB).
    block_size_bytes: int = 64 * MB
    #: Map slots per node (the paper's VMs have one core).
    slots_per_node: int = 1
    #: Failure detection: "heartbeat" (realistic lag) or "oracle" (instant).
    detection: str = "heartbeat"
    heartbeat_interval: float = 3.0
    heartbeat_miss_threshold: int = 3
    #: Whether a down host's stored blocks stay streamable (see JobTracker).
    access_during_downtime: bool = True
    #: Flow-level max-min fair sharing (True) or uncontended links (False).
    fair_sharing: bool = True
    #: Network topology: "flat" (every host on one non-blocking switch,
    #: the golden-bearing default) or "clos" (hosts -> ToR -> aggregation
    #: fabric with shared, oversubscribable trunks).
    topology: str = "flat"
    #: Racks in the Clos fabric; hosts are assigned round-robin
    #: (``rack_of(n) = n % racks``). With racks=1 and oversubscription=1
    #: the Clos fabric is byte-identical to the flat star. Ignored by
    #: "flat".
    racks: int = 1
    #: Clos trunk oversubscription ratio: a trunk carries its downstream
    #: aggregate bandwidth divided by this (1.0 = full bisection).
    oversubscription: float = 1.0
    #: Aggregation pods (racks grouped per pod); 1 keeps the fabric at
    #: two tiers (no aggregation links). Ignored by "flat".
    pods: int = 1
    #: ECMP members per fabric trunk — only consulted by the
    #: disable-and-reroute mitigation ((width-1)/width survives).
    trunk_width: int = 4
    #: Enforce HDFS's off-rack replica rule on ingest placement (only
    #: meaningful with a multi-rack topology; substitution preserves the
    #: placement RNG stream — see NameNode.set_rack_constraint).
    rack_aware_placement: bool = False
    #: Response to DegradedLink chaos windows: "none" (no service — the
    #: degradation events go unanswered and links keep nominal capacity)
    #: or one of repro.simulator.mitigation.MITIGATIONS.
    link_mitigation: str = "none"
    #: Pin the predictor to each host's true (lambda, mu) instead of
    #: estimating from heartbeats (Algorithm 1's stated inputs).
    oracle_estimates: bool = True
    #: Speculation tunables.
    speculation_enabled: bool = True
    speculation_slowdown: float = 2.0
    max_speculative_per_task: int = 1
    #: JobTracker idle-node re-poll period.
    sweep_interval: float = 3.0
    #: Shift every interruption process this far into its past, so the run
    #: starts in (approximately) stationary state — some hosts already down
    #: at t=0, as when replaying a random window of a long trace. 0 starts
    #: every host up (the emulated-testbed behaviour).
    stationary_burn_in: float = 0.0
    #: Restrict ingest placement to currently-live nodes (True, testbed
    #: behaviour) or place over the whole membership (False — data loaded
    #: at an earlier time; only long-run availability is predictive).
    placement_liveness_filter: bool = True
    #: Estimator prior when oracle_estimates is False. The prior is worth
    #: prior_weight pseudo-episodes over prior_weight*prior_mtbi pseudo-
    #: uptime; the small default weight lets real heartbeat data dominate
    #: after a short warmup.
    prior_mtbi: float = 1e6
    prior_recovery: float = 0.0
    prior_weight: float = 1e-4
    #: Durability pipeline: re-replicate under-replicated blocks when a
    #: holder is declared dead (see repro.hdfs.replication_monitor).
    #: Disabled by default — the paper's experiments model interruptions
    #: as recoverable and never pay recovery traffic.
    replication_monitor: bool = False
    rereplication_max_concurrent: int = 2
    rereplication_retry_budget: int = 4
    rereplication_backoff_base: float = 5.0
    rereplication_backoff_max: float = 60.0
    #: Hardened read path: per-attempt remote-fetch retries with
    #: exponential backoff across surviving replicas (0 = fail fast).
    fetch_retries: int = 2
    fetch_backoff: float = 1.0
    #: Permanent failures: each host independently suffers an unrecoverable
    #: loss (disk wiped, never returns) with this probability, at a uniform
    #: time within ``permanent_failure_horizon``. 0 disables.
    permanent_failure_rate: float = 0.0
    permanent_failure_horizon: float = 600.0
    #: Capture every bus event in a TraceRecorder (exportable as JSONL via
    #: ``Cluster.tracer`` / the ``emulate --trace-out`` flag).
    trace_events: bool = False
    #: Cross-layer invariant auditing: "off", "report" (violations
    #: accumulate into ``Cluster.auditor.report``), or "strict" (the first
    #: violating audit raises). The ``REPRO_AUDIT`` environment variable
    #: overrides this at build time — CI runs the golden and durability
    #: suites with ``REPRO_AUDIT=strict``.
    audit: str = "off"
    #: Simulated seconds between periodic audits (teardown always audits).
    audit_interval: float = 25.0
    #: Scripted chaos campaign layered on the stochastic injector (see
    #: repro.simulator.scenarios / repro.simulator.chaos). None = off.
    chaos: Optional[ChaosCampaign] = None
    #: Eagerly materialise every interruption episode starting before this
    #: simulated time at build, then close each per-host generator so the
    #: run loop pays no sampling cost (or suspended-frame memory) up to the
    #: horizon. Byte-identical to lazy sampling within the horizon; past it
    #: no further interruptions occur, so set this at or beyond the window
    #: you intend to simulate. None keeps the lazy default.
    pregen_horizon: Optional[float] = None
    #: Episode sampling backend for pregeneration: "scalar" (exact, the
    #: golden-bearing default) or "numpy" (vectorized; statistically
    #: equivalent but not byte-identical — see
    #: ``repro.availability.numpy_backend``). Only consulted when
    #: ``pregen_horizon`` is set. The ``REPRO_AVAIL_BACKEND`` environment
    #: variable overrides this at build time.
    avail_backend: str = "scalar"
    #: Worker processes for pregeneration (1 = in-process). Bit-identical
    #: at any job count: every host's stream is independently keyed. The
    #: ``REPRO_PREGEN_JOBS`` environment variable overrides at build time.
    pregen_jobs: int = 1
    #: Event-queue implementation: "heap" (compacting binary heap, the
    #: default) or "calendar" (bucketed calendar queue for high event
    #: density). Both are exact — identical (time, seq) pop order — and
    #: byte-identical on the golden scenarios. The ``REPRO_EVENT_QUEUE``
    #: environment variable overrides this at build time.
    event_queue: str = "heap"
    #: Root seed; every random stream in the cluster derives from it.
    seed: int = 0

    def __post_init__(self) -> None:
        check_positive("bandwidth_mbps", self.bandwidth_mbps)
        if self.downlink_mbps is not None:
            check_positive("downlink_mbps", self.downlink_mbps)
        check_positive("block_size_bytes", self.block_size_bytes)
        if self.slots_per_node < 1:
            raise ValueError("slots_per_node must be >= 1")
        if self.detection not in _DETECTIONS:
            raise ValueError(f"detection must be one of {_DETECTIONS}, got {self.detection!r}")
        check_positive("heartbeat_interval", self.heartbeat_interval)
        check_positive("sweep_interval", self.sweep_interval)
        if self.fetch_retries < 0:
            raise ValueError("fetch_retries must be >= 0")
        check_positive("fetch_backoff", self.fetch_backoff)
        if not 0.0 <= self.permanent_failure_rate <= 1.0:
            raise ValueError("permanent_failure_rate must be in [0, 1]")
        if self.permanent_failure_rate > 0.0:
            check_positive("permanent_failure_horizon", self.permanent_failure_horizon)
        if self.pregen_horizon is not None and self.pregen_horizon < 0:
            raise ValueError(
                f"pregen_horizon must be non-negative, got {self.pregen_horizon}"
            )
        if self.avail_backend not in AVAIL_BACKENDS:
            raise ValueError(
                f"avail_backend must be one of {AVAIL_BACKENDS}, got {self.avail_backend!r}"
            )
        if self.pregen_jobs < 1:
            raise ValueError(f"pregen_jobs must be >= 1, got {self.pregen_jobs}")
        if self.event_queue not in EVENT_QUEUES:
            raise ValueError(
                f"event_queue must be one of {EVENT_QUEUES}, got {self.event_queue!r}"
            )
        if self.topology not in TOPOLOGIES:
            raise ValueError(
                f"topology must be one of {TOPOLOGIES}, got {self.topology!r}"
            )
        if self.racks < 1:
            raise ValueError(f"racks must be >= 1, got {self.racks}")
        if self.oversubscription < 1.0:
            raise ValueError(
                f"oversubscription must be >= 1, got {self.oversubscription}"
            )
        if self.pods < 1:
            raise ValueError(f"pods must be >= 1, got {self.pods}")
        if self.trunk_width < 1:
            raise ValueError(f"trunk_width must be >= 1, got {self.trunk_width}")
        if self.link_mitigation != "none" and self.link_mitigation not in MITIGATIONS:
            raise ValueError(
                f"link_mitigation must be 'none' or one of {MITIGATIONS}, "
                f"got {self.link_mitigation!r}"
            )
        if self.audit not in AUDIT_MODES:
            raise ValueError(f"audit must be one of {AUDIT_MODES}, got {self.audit!r}")
        check_positive("audit_interval", self.audit_interval)
        if self.chaos is not None and not isinstance(self.chaos, ChaosCampaign):
            raise TypeError(f"chaos must be a ChaosCampaign, got {type(self.chaos)}")

    @property
    def uplink_bps(self) -> float:
        return mbit_per_s(self.bandwidth_mbps)

    @property
    def downlink_bps(self) -> float:
        return mbit_per_s(
            self.downlink_mbps if self.downlink_mbps is not None else self.bandwidth_mbps
        )

    def nominal_fetch_seconds(self) -> float:
        """Uncontended time to stream one block (speculation threshold)."""
        return self.block_size_bytes / min(self.uplink_bps, self.downlink_bps)


@dataclass
class BuildProfile:
    """Wall-clock breakdown of one ``build_cluster`` call.

    ``seed_derivation_seconds`` and ``sample_seconds`` are sub-spans of
    ``pregen_seconds`` (reported by the pregeneration kernel itself);
    the remaining phases are disjoint. ``total_seconds`` covers the whole
    build including un-itemised glue, so the itemised phases sum to less.
    """

    seed_derivation_seconds: float = 0.0
    sample_seconds: float = 0.0
    pregen_seconds: float = 0.0
    object_construction_seconds: float = 0.0
    bus_wiring_seconds: float = 0.0
    total_seconds: float = 0.0
    backend: str = "scalar"
    jobs: int = 1

    def as_dict(self) -> Dict[str, object]:
        """JSON-ready snapshot (bench_engine's build_breakdown)."""
        return {
            "seed_derivation_seconds": round(self.seed_derivation_seconds, 4),
            "sample_seconds": round(self.sample_seconds, 4),
            "pregen_seconds": round(self.pregen_seconds, 4),
            "object_construction_seconds": round(self.object_construction_seconds, 4),
            "bus_wiring_seconds": round(self.bus_wiring_seconds, 4),
            "total_seconds": round(self.total_seconds, 4),
            "backend": self.backend,
            "jobs": self.jobs,
        }


class Cluster:
    """A fully wired simulated deployment."""

    def __init__(
        self,
        config: ClusterConfig,
        hosts: Sequence[HostAvailability],
        sim: Simulator,
        rng: RandomSource,
        network: Network,
        injector: FailureInjector,
        namenode: NameNode,
        trackers: Dict[NodeId, TaskTracker],
        metrics: MapPhaseMetrics,
        jobtracker: JobTracker,
        heartbeats: Optional[HeartbeatService],
        client: DfsClient,
        durability: Optional[DurabilityMetrics] = None,
        monitor: Optional[ReplicationMonitor] = None,
        bus: Optional[EventBus] = None,
        services: Optional[ServiceRegistry] = None,
        detector: Optional[OracleDetector] = None,
        tracer: Optional[TraceRecorder] = None,
        auditor: Optional[InvariantAuditor] = None,
        chaos: Optional[ChaosEngine] = None,
        mitigation: Optional[LinkMitigationService] = None,
        ids: Optional[NodeIds] = None,
        build_profile: Optional[BuildProfile] = None,
    ) -> None:
        self.config = config
        self.hosts = list(hosts)
        #: Name <-> dense-int identity table. Every runtime structure keys
        #: by the int id; reporting surfaces translate back through this.
        self.ids = ids if ids is not None else NodeIds()
        self.sim = sim
        self.rng = rng
        self.network = network
        self.injector = injector
        self.namenode = namenode
        self.trackers = trackers
        self.metrics = metrics
        self.jobtracker = jobtracker
        self.heartbeats = heartbeats
        self.client = client
        self.durability = durability if durability is not None else DurabilityMetrics()
        self.monitor = monitor
        self.bus = bus if bus is not None else EventBus()
        self.services = services if services is not None else ServiceRegistry()
        self.detector = detector
        self.tracer = tracer
        self.auditor = auditor
        self.chaos = chaos
        self.mitigation = mitigation
        #: Wall-clock phase breakdown of the build that produced this
        #: cluster (None for hand-wired clusters).
        self.build_profile = build_profile

    @property
    def node_ids(self) -> List[NodeId]:
        """Dense int node ids, ascending (== host registration order)."""
        return sorted(self.trackers)

    @property
    def node_names(self) -> List[str]:
        """Host names in id order — the reporting-boundary view."""
        return [self.ids.name_of(node_id) for node_id in self.node_ids]

    @property
    def node_count(self) -> int:
        return len(self.trackers)

    @property
    def total_slots(self) -> int:
        return sum(t.slots for t in self.trackers.values())

    def start(self) -> None:
        """Start every registered service, in registration order.

        ``build_cluster`` calls this once after wiring; Service.start is
        idempotent by contract, so calling it again is harmless.
        """
        self.services.start_all()

    def run_until_job_done(self, max_events: int = 500_000_000) -> None:
        """Advance the simulation until the submitted job finishes.

        The failure injector's event stream is endless, so "run until the
        heap drains" never terminates; this helper steps until the
        JobTracker reports completion (or the safety budget trips).
        """
        executed = 0
        while not self.jobtracker.is_done:
            if not self.sim.step():
                raise RuntimeError("event heap drained before the job finished")
            executed += 1
            if executed > max_events:
                raise RuntimeError(
                    f"job did not finish within {max_events} events; "
                    "likely a livelock (check replica reachability settings)"
                )

    def stop(self) -> None:
        """Tear the cluster down: stop every registered service.

        Services stop in reverse registration order (consumers before
        producers — see :meth:`ServiceRegistry.stop_all`), after which the
        simulator heap drains naturally: nothing re-arms, so abandoned
        clusters don't leak beats, watchdogs, interruption streams, or
        re-replication retries.
        """
        self.services.stop_all()


def build_cluster(
    hosts: Sequence[HostAvailability],
    config: ClusterConfig,
    traces: Optional[Sequence[AvailabilityTrace]] = None,
    default_gamma: float = 12.0,
) -> Cluster:
    """Assemble a cluster for the given host population.

    ``traces``, when given, must parallel ``hosts`` (same ids) and the
    failure injector replays them instead of sampling each host's
    interruption process live. Replay gives byte-identical failure
    realisations across arbitrary configuration changes; live sampling is
    already identical across *placement-policy* changes because each
    node's stream is keyed by (seed, node id) alone.
    """
    if not hosts:
        raise ValueError("need at least one host")
    build_start = time.perf_counter()  # simlint: ignore[D002]
    profile = BuildProfile(
        backend=resolve_backend(config.avail_backend),
        jobs=resolve_jobs(config.pregen_jobs),
    )
    names = [h.host_id for h in hosts]
    if len(set(names)) != len(names):
        raise ValueError("host ids must be unique")
    # Intern every host name once; all hot structures below key by the
    # dense int id, and the table rides on the Cluster for reporting.
    ids = NodeIds()
    node_id_of = {name: ids.intern(name) for name in names}

    # Like REPRO_AUDIT below: the environment variable lets CI drive the
    # whole suite through the alternate queue without touching configs.
    queue_name = (
        os.environ.get("REPRO_EVENT_QUEUE", "").strip().lower() or config.event_queue
    )
    if queue_name not in EVENT_QUEUES:
        raise ValueError(
            f"REPRO_EVENT_QUEUE must be one of {EVENT_QUEUES}, got {queue_name!r}"
        )
    sim = Simulator(queue=queue_name)
    rng = RandomSource(config.seed)
    bus = EventBus()
    tracer: Optional[TraceRecorder] = None
    if config.trace_events:
        tracer = TraceRecorder(bus, ids=ids)
    topology = make_topology(
        config.topology,
        hosts=len(hosts),
        uplink_bps=config.uplink_bps,
        downlink_bps=config.downlink_bps,
        racks=config.racks,
        oversubscription=config.oversubscription,
        pods=config.pods,
        trunk_width=config.trunk_width,
    )
    network = Network(
        sim,
        uplink_bps=config.uplink_bps,
        downlink_bps=config.downlink_bps,
        fair_sharing=config.fair_sharing,
        topology=topology,
    )
    predictor = PerformancePredictor(
        prior_mtbi=config.prior_mtbi,
        prior_recovery=config.prior_recovery,
        prior_weight=config.prior_weight,
    )
    namenode = NameNode(
        predictor, placement_liveness_filter=config.placement_liveness_filter
    )
    if config.rack_aware_placement:
        namenode.set_rack_constraint(topology.rack_of)
    metrics = MapPhaseMetrics()
    durability = DurabilityMetrics()
    injector = FailureInjector(sim, rng, bus=bus)

    # Per-host objects: slotted, with service names derived lazily from
    # the id table (eager `datanode:<host>` f-strings are pure build
    # overhead at 226k nodes; see DataNode/TaskTracker docstrings).
    construct_start = time.perf_counter()  # simlint: ignore[D002]
    datanodes: Dict[NodeId, DataNode] = {}
    trackers: Dict[NodeId, TaskTracker] = {}
    for host in hosts:
        nid = node_id_of[host.host_id]
        datanode = DataNode(nid, names=ids)
        namenode.register_datanode(datanode)
        datanodes[nid] = datanode
        trackers[nid] = TaskTracker(
            sim,
            nid,
            network,
            metrics,
            slots=config.slots_per_node,
            fetch_retries=config.fetch_retries,
            fetch_backoff=config.fetch_backoff,
            durability=durability,
            names=ids,
        )
        if config.oracle_estimates:
            predictor.pin_oracle(
                nid,
                AvailabilityEstimate(
                    arrival_rate=host.arrival_rate,
                    recovery_mean=host.service_mean,
                    observations=1,
                ),
            )
    profile.object_construction_seconds = time.perf_counter() - construct_start  # simlint: ignore[D002]

    speculation = SpeculationPolicy(
        enabled=config.speculation_enabled,
        slowdown=config.speculation_slowdown,
        max_per_task=config.max_speculative_per_task,
        nominal_fetch_seconds=config.nominal_fetch_seconds(),
    )
    jobtracker = JobTracker(
        sim,
        namenode,
        network,
        trackers,
        metrics,
        access_during_downtime=config.access_during_downtime,
        speculation=speculation,
        sweep_interval=config.sweep_interval,
        bus=bus,
    )
    for tracker in trackers.values():
        tracker.bind(jobtracker)

    heartbeats: Optional[HeartbeatService] = None
    detector: Optional[OracleDetector] = None
    if config.detection == "heartbeat":
        heartbeats = HeartbeatService(
            sim,
            namenode,
            interval=config.heartbeat_interval,
            miss_threshold=config.heartbeat_miss_threshold,
            bus=bus,
        )
        for host in hosts:
            heartbeats.track(node_id_of[host.host_id])
    else:
        detector = OracleDetector(namenode, bus=bus)

    monitor: Optional[ReplicationMonitor] = None
    if config.replication_monitor:
        monitor = ReplicationMonitor(
            sim,
            namenode,
            network,
            metrics=durability,
            max_concurrent=config.rereplication_max_concurrent,
            retry_budget=config.rereplication_retry_budget,
            backoff_base=config.rereplication_backoff_base,
            backoff_max=config.rereplication_backoff_max,
            is_permanent=injector.is_permanently_failed,
            bus=bus,
        )

    pipeline = PermanentFailurePipeline(namenode, durability, bus=bus)

    # -- bus wiring (phases encode the reaction order; see module docstring) ----

    wiring_start = time.perf_counter()  # simlint: ignore[D002]
    ordered_ids = [node_id_of[host.host_id] for host in hosts]

    # Physical transitions (the injector's ground truth). The per-host
    # keyed subscriptions go through the bulk fast path: each (type, key)
    # bucket holds one handler per phase, so grouping by (type, phase)
    # instead of by host dispatches identically.
    bus.subscribe(NodeDown, jobtracker.handle_node_down_physical, Phase.ACCOUNTING)
    bus.subscribe(NodeUp, jobtracker.handle_node_up_physical, Phase.ACCOUNTING)
    bus.subscribe_many(
        NodeDown,
        Phase.STORAGE,
        ((nid, datanodes[nid].handle_node_down) for nid in ordered_ids),
    )
    bus.subscribe_many(
        NodeUp,
        Phase.STORAGE,
        ((nid, datanodes[nid].handle_node_up) for nid in ordered_ids),
    )
    bus.subscribe_many(
        NodeDown,
        Phase.COMPUTE,
        ((nid, trackers[nid].handle_node_down) for nid in ordered_ids),
    )
    bus.subscribe_many(
        NodeUp,
        Phase.SCHEDULING,
        ((nid, trackers[nid].handle_node_up) for nid in ordered_ids),
    )
    if not config.access_during_downtime:
        bus.subscribe(NodeDown, network.handle_node_down, Phase.NETWORK)
    if heartbeats is not None:
        bus.subscribe(NodeDown, heartbeats.handle_node_down, Phase.DETECTION)
        bus.subscribe(NodeUp, heartbeats.handle_node_up, Phase.DETECTION)
        bus.subscribe(NodePurged, heartbeats.handle_node_purged, Phase.DETECTION)
    else:
        assert detector is not None
        bus.subscribe(NodeDown, detector.handle_node_down, Phase.DETECTION)
        bus.subscribe(NodeUp, detector.handle_node_up, Phase.DETECTION)

    # Permanent failures: destruction precedes detection — the pipeline
    # wipes in STORAGE phase and the network tears flows down in NETWORK
    # phase, all before the injector publishes the accompanying NodeDown.
    bus.subscribe(PermanentFailure, pipeline.handle_permanent_failure, Phase.STORAGE)
    bus.subscribe(PermanentFailure, network.handle_permanent_failure, Phase.NETWORK)
    bus.subscribe(BlockLost, jobtracker.handle_block_lost, Phase.SCHEDULING)

    # Belief transitions (published by whichever detector is configured):
    # the monitor purges/queues in STORAGE phase, before the JobTracker
    # requeues work against the settled replica map in SCHEDULING phase.
    if monitor is not None:
        bus.subscribe(NodeDeclaredDead, monitor.handle_node_dead, Phase.STORAGE)
        bus.subscribe(NodeReturned, monitor.handle_node_returned, Phase.STORAGE)
    bus.subscribe(NodeDeclaredDead, jobtracker.handle_node_dead, Phase.SCHEDULING)
    bus.subscribe(ReplicaAdded, jobtracker.handle_replica_added, Phase.SCHEDULING)

    # Chaos campaign: scripted scenarios injected through the same bus the
    # cluster already reacts to. Partition and gray events stall/throttle
    # flows in NETWORK phase and stretch execution per-node in COMPUTE
    # phase; heartbeat-blocking partitions suppress beats in DETECTION
    # phase. The engine itself measures in ACCOUNTING phase, observing raw
    # transitions before any reaction mutates state.
    chaos: Optional[ChaosEngine] = None
    mitigation: Optional[LinkMitigationService] = None
    if config.chaos is not None:
        chaos = ChaosEngine(
            sim,
            bus,
            config.chaos,
            rng,
            injector,
            namenode=namenode,
            ids=ids,
            network=network,
        )
        if config.link_mitigation != "none":
            # One service class, strategy by composition: the bus wiring
            # (and the static busgraph extracted from it) is identical no
            # matter which response the config names.
            mitigation = LinkMitigationService(
                network, strategy=config.link_mitigation, ids=ids
            )
            bus.subscribe(
                LinkDegraded, mitigation.handle_link_degraded, Phase.NETWORK
            )
            bus.subscribe(
                LinkRestored, mitigation.handle_link_restored, Phase.NETWORK
            )
        bus.subscribe(PartitionStarted, network.handle_partition_started, Phase.NETWORK)
        bus.subscribe(PartitionHealed, network.handle_partition_healed, Phase.NETWORK)
        bus.subscribe(NodeDegraded, network.handle_node_degraded, Phase.NETWORK)
        bus.subscribe(NodeRestored, network.handle_node_restored, Phase.NETWORK)
        bus.subscribe_many(
            NodeDegraded,
            Phase.COMPUTE,
            ((nid, trackers[nid].handle_node_degraded) for nid in ordered_ids),
        )
        bus.subscribe_many(
            NodeRestored,
            Phase.COMPUTE,
            ((nid, trackers[nid].handle_node_restored) for nid in ordered_ids),
        )
        if heartbeats is not None:
            bus.subscribe(
                PartitionStarted, heartbeats.handle_partition_started, Phase.DETECTION
            )
            bus.subscribe(
                PartitionHealed, heartbeats.handle_partition_healed, Phase.DETECTION
            )
        bus.subscribe(NodeDown, chaos.handle_node_down, Phase.ACCOUNTING)
        bus.subscribe(NodeUp, chaos.handle_node_up, Phase.ACCOUNTING)
        bus.subscribe(NodeDeclaredDead, chaos.handle_declared_dead, Phase.ACCOUNTING)
        bus.subscribe(NodeReturned, chaos.handle_node_returned, Phase.ACCOUNTING)
        bus.subscribe(ReplicaAdded, chaos.handle_replica_added, Phase.ACCOUNTING)
    profile.bus_wiring_seconds = time.perf_counter() - wiring_start  # simlint: ignore[D002]

    pregen_start = time.perf_counter()  # simlint: ignore[D002]
    if traces is not None:
        trace_names = [trace.host_id for trace in traces]
        if trace_names != names:
            raise ValueError("traces must parallel hosts (same ids, same order)")
        for trace in traces:
            injector.attach_trace(trace, node_id=node_id_of[trace.host_id])
    elif config.pregen_horizon is not None:
        # Bulk pregeneration: every host's episode prefix is materialised
        # up front (fanned out over processes / vectorized per backend) and
        # injected ready-made, so attach_host never constructs a process or
        # suspends a generator frame. With the default scalar backend this
        # is byte-identical to per-host lazy sampling (streams keyed by
        # (seed, host name) alone); prefixes arrive burn-in-shifted.
        result = pregenerate_prefixes(
            hosts,
            rng,
            config.pregen_horizon,
            burn_in=config.stationary_burn_in,
            jobs=profile.jobs,
            backend=profile.backend,
        )
        profile.seed_derivation_seconds = result.seed_seconds
        profile.sample_seconds = result.sample_seconds
        for host, prefix in zip(hosts, result.prefixes, strict=True):
            injector.attach_host(
                host, node_id=node_id_of[host.host_id], episodes=prefix
            )
    else:
        for host in hosts:
            # The int id keys the injector's runtime state; the RNG
            # substream stays keyed by *name* inside attach_host, so
            # failure realisations are identity-representation-invariant.
            injector.attach_host(
                host,
                burn_in=config.stationary_burn_in,
                node_id=node_id_of[host.host_id],
            )
    profile.pregen_seconds = time.perf_counter() - pregen_start  # simlint: ignore[D002]

    if config.permanent_failure_rate > 0.0:
        # Keyed per host so one host's draw never perturbs another's —
        # the same property the interruption streams have.
        for host in hosts:
            perm_rng = rng.substream("permanent", host.host_id)
            if perm_rng.random() < config.permanent_failure_rate:
                injector.schedule_permanent_failure(
                    node_id_of[host.host_id],
                    at_time=perm_rng.uniform(0.0, config.permanent_failure_horizon),
                )

    # Cross-layer invariant auditing. The environment variable lets CI (and
    # local debugging) force strict audits over any existing configuration
    # without plumbing a flag through every entry point.
    audit_mode = os.environ.get("REPRO_AUDIT", "").strip().lower() or config.audit
    if audit_mode not in AUDIT_MODES:
        raise ValueError(f"REPRO_AUDIT must be one of {AUDIT_MODES}, got {audit_mode!r}")
    auditor: Optional[InvariantAuditor] = None
    if audit_mode != "off":
        auditor = InvariantAuditor(
            sim,
            bus,
            namenode=namenode,
            injector=injector,
            network=network,
            trackers=trackers,
            metrics=metrics,
            jobtracker=jobtracker,
            durability=durability,
            mode=audit_mode,
            interval=config.audit_interval,
        )

    # -- service registry (registration order is start order; stop is the
    # reverse, so consumers always stop before the producers they read) ---------
    services = ServiceRegistry()
    services.register(network)
    services.register(injector)
    services.register(pipeline)
    # Bulk-registered: per-node service names resolve lazily (see
    # ServiceRegistry.register_bulk) and the dicts iterate in host order.
    services.register_bulk(datanodes.values())
    if heartbeats is not None:
        services.register(heartbeats)
    if detector is not None:
        services.register(detector)
    if monitor is not None:
        services.register(monitor)
    services.register(jobtracker)
    services.register_bulk(trackers.values())
    if mitigation is not None:
        # Before the chaos engine: a window already armed at start must
        # find its responder subscribed and started.
        services.register(mitigation)
    if chaos is not None:
        # After the injector and every reactor: starting the engine arms
        # the campaign against a fully attached node population.
        services.register(chaos)
    if tracer is not None:
        services.register(tracer)
    if auditor is not None:
        # Registered last so it stops FIRST: the final teardown audit must
        # see live cluster state, before trackers kill their attempts.
        services.register(auditor)

    client = DfsClient(
        namenode,
        rng.substream("client"),
        default_block_size=config.block_size_bytes,
        default_gamma=default_gamma,
    )
    cluster = Cluster(
        config=config,
        hosts=hosts,
        sim=sim,
        rng=rng,
        network=network,
        injector=injector,
        namenode=namenode,
        trackers=trackers,
        metrics=metrics,
        jobtracker=jobtracker,
        heartbeats=heartbeats,
        client=client,
        durability=durability,
        monitor=monitor,
        bus=bus,
        services=services,
        detector=detector,
        tracer=tracer,
        auditor=auditor,
        chaos=chaos,
        mitigation=mitigation,
        ids=ids,
        build_profile=profile,
    )
    cluster.start()
    profile.total_seconds = time.perf_counter() - build_start  # simlint: ignore[D002]
    return cluster
