"""Dense integer node identities.

The scale kernel keys every hot structure — event routing, failure
streams, replica maps, scheduler tables — by a dense ``int`` node id
instead of the host-name string. Integers hash and compare faster than
strings, dedupe per-event allocations (small ints are interned by
CPython), and make per-node arrays possible; names survive only at the
reporting/CLI boundary, translated through the cluster's
:class:`NodeIds` table.

Determinism note: ids are assigned in host registration order, and every
generated population names hosts with zero-padded indices
(``node-00042``, ``seti-000042``), so sorting by int id and sorting by
name agree everywhere a golden trajectory depends on ordering. RNG
substreams stay keyed by *name* (``("failures", "seti-000042")``) —
identical draws whatever the in-memory identity representation is.
"""

from __future__ import annotations

from typing import Dict, Iterator, List

#: A dense node identity. Plain ``int`` (no NewType): node ids flow
#: through dict keys, event fields, and sort calls at very high volume,
#: and a wrapper would cost exactly the indirection this layer removes.
NodeId = int


class NodeIds:
    """Bidirectional name <-> dense-id table (ids assigned in intern order)."""

    __slots__ = ("_by_name", "_names")

    def __init__(self) -> None:
        self._by_name: Dict[str, NodeId] = {}
        self._names: List[str] = []

    def intern(self, name: str) -> NodeId:
        """Return the id for ``name``, assigning the next dense id if new."""
        node_id = self._by_name.get(name)
        if node_id is None:
            node_id = len(self._names)
            self._by_name[name] = node_id
            self._names.append(name)
        return node_id

    def id_of(self, name: str) -> NodeId:
        """The id of an interned name; KeyError if never interned."""
        return self._by_name[name]

    def name_of(self, node_id: NodeId) -> str:
        """The name behind an id; IndexError for unassigned ids."""
        return self._names[node_id]

    def names(self) -> List[str]:
        """All interned names, in id order (a copy)."""
        return list(self._names)

    def __len__(self) -> int:
        return len(self._names)

    def __contains__(self, name: object) -> bool:
        return name in self._by_name

    def __iter__(self) -> Iterator[NodeId]:
        return iter(range(len(self._names)))

    def __repr__(self) -> str:
        return f"NodeIds({len(self._names)} nodes)"
