"""Planning for the ``adapt`` shell command (Section IV.A/IV.B.2).

``hadoop adapt <file>`` "takes a file name as input, and redistributes the
data blocks of the file to become availability aware", analogously to the
native rebalancer. This module computes the move plan: given the current
replica map of a file and a placement policy, it derives per-node target
counts and emits the minimal greedy set of (block, source, destination)
moves that converts the current layout into one consistent with the
policy's weights.

The planner is pure (no I/O): the HDFS client executes the moves through
the NameNode, paying the transfer costs on the simulated network.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import Dict, List, Mapping, Sequence, Set

from repro.core.ids import NodeId
from repro.core.placement import NodeView, PlacementPolicy
from repro.util.rng import RandomSource


@dataclass(frozen=True)
class RebalanceMove:
    """Relocate one replica of ``block_id`` from ``source`` to ``destination``."""

    block_id: str
    source: NodeId
    destination: NodeId

    def __post_init__(self) -> None:
        if self.source == self.destination:
            raise ValueError("move source and destination must differ")


def target_counts(
    policy: PlacementPolicy,
    nodes: Sequence[NodeView],
    num_blocks: int,
    replication: int,
    gamma: float,
) -> Dict[NodeId, int]:
    """Integer per-node replica targets implied by a policy's weights.

    Builds a fresh plan and reads its expected shares (for weighted plans)
    or uniform shares (for random), then rounds with the largest-remainder
    method so the targets sum exactly to ``num_blocks * replication``.
    """
    plan = policy.build_plan(nodes, num_blocks, replication, gamma)
    up_nodes = [n for n in nodes if n.is_up]
    total = num_blocks * replication
    shares: Dict[NodeId, float] = {}
    for view in up_nodes:
        expected = getattr(plan, "expected_share", None)
        if expected is None:
            shares[view.node_id] = 1.0 / len(up_nodes)
        else:
            shares[view.node_id] = expected(view.node_id)
    norm = sum(shares.values())
    if norm <= 0:
        raise ValueError("policy produced no positive placement shares")
    raw = {node_id: total * share / norm for node_id, share in shares.items()}
    floors = {node_id: int(math.floor(v)) for node_id, v in raw.items()}
    remainder = total - sum(floors.values())
    # Largest fractional remainder first; equal remainders break ties by
    # ascending node id (negating the fraction instead of reverse=True,
    # which would flip the id tie-break too and bias extras toward
    # lexicographically-later nodes).
    by_fraction = sorted(
        raw, key=lambda node_id: (floors[node_id] - raw[node_id], node_id)
    )
    for node_id in by_fraction[:remainder]:
        floors[node_id] += 1
    return floors


def plan_rebalance(
    replica_map: Mapping[str, Sequence[NodeId]],
    policy: PlacementPolicy,
    nodes: Sequence[NodeView],
    gamma: float,
    rng: RandomSource,
) -> List[RebalanceMove]:
    """Compute moves that make ``replica_map`` consistent with ``policy``.

    ``replica_map`` maps block id -> current replica holders. Replication is
    inferred from the map (all blocks must agree). Moves are greedy: blocks
    are drained from the most over-target nodes into the most under-target
    nodes, never co-locating two replicas of the same block.
    """
    if not replica_map:
        return []
    replications = {len(holders) for holders in replica_map.values()}
    if len(replications) != 1:
        raise ValueError(f"blocks disagree on replication: {sorted(replications)}")
    replication = replications.pop()
    if replication < 1:
        raise ValueError("blocks must have at least one replica")

    targets = target_counts(policy, nodes, len(replica_map), replication, gamma)
    current: Dict[NodeId, int] = {node_id: 0 for node_id in targets}
    holders_of: Dict[str, Set[NodeId]] = {}
    blocks_on: Dict[NodeId, List[str]] = {node_id: [] for node_id in targets}
    for block_id, holders in replica_map.items():
        if len(set(holders)) != len(holders):
            raise ValueError(f"block {block_id!r} has co-located replicas")
        holders_of[block_id] = set(holders)
        for node_id in holders:
            current.setdefault(node_id, 0)
            current[node_id] += 1
            blocks_on.setdefault(node_id, []).append(block_id)

    # sorted(): the union is a set, and surplus's insertion order must not
    # depend on string hashing (simlint D003).
    surplus = {
        n: current.get(n, 0) - targets.get(n, 0) for n in sorted(set(current) | set(targets))
    }
    donors = sorted((n for n, s in surplus.items() if s > 0), key=lambda n: (-surplus[n], n))
    moves: List[RebalanceMove] = []

    for donor in donors:
        movable = list(blocks_on.get(donor, []))
        rng.shuffle(movable)
        while surplus[donor] > 0 and movable:
            block_id = movable.pop()
            receiver = _pick_receiver(surplus, holders_of[block_id], rng)
            if receiver is None:
                continue
            moves.append(RebalanceMove(block_id=block_id, source=donor, destination=receiver))
            holders_of[block_id].discard(donor)
            holders_of[block_id].add(receiver)
            surplus[donor] -= 1
            surplus[receiver] = surplus.get(receiver, 0) + 1
    return moves


def _pick_receiver(
    surplus: Dict[NodeId, int],
    exclude: Set[NodeId],
    rng: RandomSource,
) -> "NodeId | None":
    """Most-under-target node that doesn't already hold the block."""
    candidates = [n for n, s in surplus.items() if s < 0 and n not in exclude]
    if not candidates:
        return None
    deficit = min(surplus[n] for n in candidates)
    worst = sorted(n for n in candidates if surplus[n] == deficit)
    return worst[rng.randrange(len(worst))]
