"""ADAPT core: the paper's contribution.

* :mod:`repro.core.model` — the stochastic task-execution-time model of
  Section III.B (formulas 1-5).
* :mod:`repro.core.hashtable` — the weighted hash table of Algorithm 1
  (``buildHashTable`` / ``dataPlacement``).
* :mod:`repro.core.placement` — placement policies: stock HDFS random,
  the naive availability baseline, and ADAPT (with the Section IV.C
  threshold cap).
* :mod:`repro.core.predictor` — the NameNode-side Performance Predictor.
* :mod:`repro.core.rebalance` — planning for the ``adapt`` shell command.
"""

from repro.core.hashtable import WeightedHashTable
from repro.core.model import (
    TaskExecutionModel,
    expected_attempts,
    expected_downtime,
    expected_rework,
    expected_task_time,
)
from repro.core.placement import (
    AdaptPlacement,
    NaivePlacement,
    NodeView,
    PlacementPlan,
    PlacementPolicy,
    RandomPlacement,
    make_policy,
)
from repro.core.predictor import PerformancePredictor
from repro.core.rebalance import RebalanceMove, plan_rebalance

__all__ = [
    "TaskExecutionModel",
    "expected_rework",
    "expected_downtime",
    "expected_attempts",
    "expected_task_time",
    "WeightedHashTable",
    "PlacementPolicy",
    "PlacementPlan",
    "NodeView",
    "RandomPlacement",
    "NaivePlacement",
    "AdaptPlacement",
    "make_policy",
    "PerformancePredictor",
    "RebalanceMove",
    "plan_rebalance",
]
