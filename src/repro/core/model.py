"""Stochastic model of task execution under interruptions (Section III.B).

A task of failure-free length gamma runs on a host whose interruptions
arrive as a Poisson process with rate lambda and are serviced FCFS with mean
recovery mu (M/G/1). The total completion time decomposes as

    T = gamma + sum_{i=1..S} (X_i + Y_i)                        (formula 1)

with S failed attempts, X_i the rework lost to attempt i and Y_i the
downtime episode that ended it. The paper derives:

* E[X] = 1/lambda + gamma / (1 - e^{gamma*lambda})              (formula 2)
* E[Y] = mu / (1 - lambda*mu)                                   (formula 3)
* E[S] = e^{gamma*lambda} - 1                                   (formula 4)
* E[T] = (e^{gamma*lambda} - 1) (1/lambda + mu/(1 - lambda*mu)) (formula 5)

All functions accept ``lam == 0`` (a dedicated host) and then return the
degenerate values (no rework, no attempts, E[T] = gamma). ``lam * mu >= 1``
(an unstable interruption queue: the host is eventually down forever) raises
``UnstableHostError``.

``monte_carlo_task_time`` simulates the literal attempt process so tests can
validate the closed forms, and so the model's accuracy against the full
cluster simulator can be benchmarked (ablation A4 in DESIGN.md).
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import Optional

from repro.availability.distributions import Distribution, Exponential
from repro.util.rng import RandomSource
from repro.util.stats import RunningStats
from repro.util.validation import check_non_negative, check_positive


class UnstableHostError(ValueError):
    """Raised when lambda * mu >= 1 and the M/G/1 queue has no steady state."""


def _check_rates(lam: float, mu: float) -> None:
    check_non_negative("lam", lam)
    check_non_negative("mu", mu)
    if lam * mu >= 1.0:
        raise UnstableHostError(
            f"interruption load lambda*mu = {lam * mu:.4f} >= 1; the host is "
            "down in the long run and no finite expected task time exists"
        )


def expected_rework(gamma: float, lam: float) -> float:
    """E[X]: mean work lost per failed attempt (formula 2).

    X is the interruption arrival time conditioned on arriving before the
    task finishes: E[X] = 1/lambda + gamma / (1 - e^{gamma*lambda}).
    """
    check_positive("gamma", gamma)
    check_non_negative("lam", lam)
    if lam == 0.0:
        return 0.0
    return 1.0 / lam + gamma / (-math.expm1(gamma * lam))


def expected_downtime(lam: float, mu: float) -> float:
    """E[Y]: mean downtime episode, the M/G/1 busy period (formula 3)."""
    _check_rates(lam, mu)
    if mu == 0.0:
        return 0.0
    return mu / (1.0 - lam * mu)


def expected_attempts(gamma: float, lam: float) -> float:
    """E[S]: mean number of failed attempts before success (formula 4)."""
    check_positive("gamma", gamma)
    check_non_negative("lam", lam)
    if lam == 0.0:
        return 0.0
    return math.expm1(gamma * lam)


def variance_attempts(gamma: float, lam: float) -> float:
    """Var[S] for the geometric attempt count with success prob e^{-gamma*lam}.

    P(S=s) = (1 - p)^s p with p = e^{-gamma*lambda}, hence
    Var[S] = (1-p)/p^2 = e^{gamma*lambda}(e^{gamma*lambda} - 1).
    """
    check_positive("gamma", gamma)
    check_non_negative("lam", lam)
    if lam == 0.0:
        return 0.0
    e = math.exp(gamma * lam)
    return e * (e - 1.0)


def expected_task_time(gamma: float, lam: float, mu: float) -> float:
    """E[T]: mean completion time of a gamma-length task (formula 5).

    E[T] = (e^{gamma*lambda} - 1) (1/lambda + mu/(1 - lambda*mu)); reduces
    to gamma when lambda == 0.
    """
    check_positive("gamma", gamma)
    _check_rates(lam, mu)
    if lam == 0.0:
        return gamma
    return math.expm1(gamma * lam) * (1.0 / lam + mu / (1.0 - lam * mu))


def slowdown(gamma: float, lam: float, mu: float) -> float:
    """E[T] / gamma: expected stretch caused by interruptions."""
    return expected_task_time(gamma, lam, mu) / gamma


@dataclass(frozen=True)
class TaskExecutionModel:
    """The model bound to one host's (lambda, mu).

    Convenience wrapper used by the performance predictor: construct once
    per node from its availability estimate, then query expected times for
    any task length.
    """

    arrival_rate: float
    recovery_mean: float

    def __post_init__(self) -> None:
        _check_rates(self.arrival_rate, self.recovery_mean)

    @classmethod
    def from_mtbi(cls, mtbi: float, recovery_mean: float) -> "TaskExecutionModel":
        """Build from MTBI instead of rate (``mtbi=inf`` for dedicated)."""
        if mtbi == float("inf"):
            return cls(arrival_rate=0.0, recovery_mean=0.0)
        check_positive("mtbi", mtbi)
        return cls(arrival_rate=1.0 / mtbi, recovery_mean=recovery_mean)

    def expected_rework(self, gamma: float) -> float:
        """E[X] for a task of length gamma."""
        return expected_rework(gamma, self.arrival_rate)

    def expected_downtime(self) -> float:
        """E[Y] (independent of gamma)."""
        return expected_downtime(self.arrival_rate, self.recovery_mean)

    def expected_attempts(self, gamma: float) -> float:
        """E[S] for a task of length gamma."""
        return expected_attempts(gamma, self.arrival_rate)

    def expected_task_time(self, gamma: float) -> float:
        """E[T] for a task of length gamma."""
        return expected_task_time(gamma, self.arrival_rate, self.recovery_mean)

    def processing_rate(self, gamma: float) -> float:
        """1 / E[T]: the node's block-processing efficiency (Algorithm 1)."""
        return 1.0 / self.expected_task_time(gamma)


def monte_carlo_task_time(
    gamma: float,
    lam: float,
    rng: RandomSource,
    service: Optional[Distribution] = None,
    mu: float = 0.0,
    samples: int = 1000,
) -> RunningStats:
    """Simulate the literal attempt process of formula (1).

    Each sample replays: draw exponential interruption arrivals; an attempt
    succeeds if the next arrival exceeds the remaining gamma, otherwise the
    lost work X and a full M/G/1 busy period Y accrue and the attempt
    restarts. ``service`` defaults to ``Exponential(mu)`` when only ``mu``
    is given. Returns the running statistics of the sampled T.
    """
    check_positive("gamma", gamma)
    check_non_negative("lam", lam)
    if samples <= 0:
        raise ValueError(f"samples must be positive, got {samples}")
    if service is None:
        if mu > 0.0:
            service = Exponential(mean=mu)
        elif lam > 0.0:
            raise ValueError("interrupted hosts need a service distribution or mu > 0")

    stats = RunningStats()
    arrivals = rng.substream("arrivals")
    services = rng.substream("service")
    for _ in range(samples):
        total = 0.0
        if lam == 0.0:
            stats.add(gamma)
            continue
        while True:
            gap = arrivals.expovariate(lam)
            if gap >= gamma:
                total += gamma
                break
            # Failed attempt: lose the partial work, then sit out the busy
            # period (further interruptions during recovery queue FCFS).
            total += gap
            assert service is not None
            busy_until = service.sample(services)
            next_arrival = arrivals.expovariate(lam)
            while next_arrival < busy_until:
                busy_until += service.sample(services)
                next_arrival += arrivals.expovariate(lam)
            total += busy_until
        stats.add(total)
    return stats
