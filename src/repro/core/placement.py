"""Data placement policies: stock random, naive availability, and ADAPT.

A policy turns a snapshot of the cluster (per-node availability estimates)
plus the ingest parameters (number of blocks ``m``, replication ``k``,
failure-free task length ``gamma``) into a :class:`PlacementPlan`. The
NameNode then asks the plan for ``k`` distinct replica holders per block.

* :class:`RandomPlacement` — the existing HDFS strategy: every block picks
  uniformly random nodes (Section III.C: "the NameNode generates a random
  integer r and selects the corresponding data node").
* :class:`NaivePlacement` — the strawman of Section V.C: weights
  proportional to the node availability ``(MTBI - mu) / MTBI``.
* :class:`AdaptPlacement` — Algorithm 1: weights proportional to
  ``1/E[T_i]`` from the stochastic model, realised through the weighted
  hash table, with the Section IV.C threshold cap ``m(k+1)/n``.

All plans consume a dedicated :class:`~repro.util.rng.RandomSource`, so a
placement decision stream is reproducible and independent of everything
else in a simulation.
"""

from __future__ import annotations

import math
from abc import ABC, abstractmethod
from dataclasses import dataclass, field
from typing import Callable, Dict, List, Optional, Sequence, Set

from repro.core.ids import NodeId
from repro.availability.estimators import AvailabilityEstimate
from repro.core.hashtable import WeightedHashTable
from repro.core.model import UnstableHostError, expected_task_time
from repro.util.rng import RandomSource
from repro.util.validation import check_positive

#: Retry budget for rejection sampling before falling back deterministically.
_MAX_DRAWS = 64


@dataclass(frozen=True)
class NodeView:
    """The placement-relevant snapshot of one node.

    ``estimate`` carries the (lambda, mu) the Performance Predictor
    currently believes; ``is_up`` excludes currently-down nodes from
    receiving new blocks (they cannot accept a transfer).
    """

    node_id: NodeId
    estimate: AvailabilityEstimate
    is_up: bool = True


class PlacementPlan(ABC):
    """A per-ingest placement decision maker.

    The plan owns the hash table (ADAPT builds it "every time when the
    MapReduce application initializes its input", Section III.C) and the
    per-node allocation counters used by the threshold cap.
    """

    def __init__(self, nodes: Sequence[NodeView], num_blocks: int, replication: int) -> None:
        if replication < 1:
            raise ValueError(f"replication must be >= 1, got {replication}")
        check_positive("num_blocks", num_blocks)
        self._nodes = [n for n in nodes if n.is_up]
        if len(self._nodes) < replication:
            raise ValueError(
                f"need at least {replication} up nodes for replication, "
                f"got {len(self._nodes)}"
            )
        self._num_blocks = int(num_blocks)
        self._replication = replication
        self._allocated: Dict[NodeId, int] = {n.node_id: 0 for n in self._nodes}
        #: Optional rack-locality constraint (HDFS's off-rack rule); see
        #: :meth:`set_rack_constraint`.
        self._rack_of: Optional[Callable[[NodeId], int]] = None

    @property
    def num_blocks(self) -> int:
        return self._num_blocks

    @property
    def replication(self) -> int:
        return self._replication

    @property
    def eligible_nodes(self) -> List[NodeId]:
        """Nodes the plan may still place blocks on."""
        return [n.node_id for n in self._nodes if not self._at_capacity(n.node_id)]

    def allocation(self, node_id: NodeId) -> int:
        """Blocks (replica-inclusive) placed on the node by this plan."""
        return self._allocated.get(node_id, 0)

    def allocations(self) -> Dict[NodeId, int]:
        """Copy of all allocation counters."""
        return dict(self._allocated)

    def _at_capacity(self, node_id: NodeId) -> bool:
        cap = self._capacity(node_id)
        return cap is not None and self._allocated[node_id] >= cap

    def _capacity(self, node_id: NodeId) -> Optional[int]:
        """Per-node block cap, or None for uncapped plans."""
        return None

    def set_rack_constraint(self, rack_of: Callable[[NodeId], int]) -> None:
        """Require every block's replica set to span at least two racks.

        This is HDFS's off-rack rule reduced to its durability essence —
        one rack-level failure never takes out every replica — composed
        *on top of* the policy's availability weighting: the policy's
        sampled choices stand, and only when a block's whole replica set
        lands in one rack is the last pick substituted with the
        least-allocated eligible node from another rack. The substitution
        consumes no randomness, so enabling the constraint never shifts
        the placement RNG stream — ADAPT's availability grouping and the
        rack rule compose without re-seeding each other. A cluster whose
        eligible nodes all share one rack leaves placements unchanged
        (the constraint is unsatisfiable, not an error).
        """
        self._rack_of = rack_of

    def _fix_rack_spread(self, chosen: List[NodeId], k: int) -> List[NodeId]:  # simflow: draws=0
        """Substitute the last pick when a replica set is single-rack."""
        rack_of = self._rack_of
        if rack_of is None or k < 2 or len(chosen) < k:
            return chosen
        home = rack_of(chosen[0])
        if any(rack_of(node_id) != home for node_id in chosen[1:]):
            return chosen
        off_rack = sorted(
            (
                n
                for n in self.eligible_nodes
                if n not in chosen and rack_of(n) != home
            ),
            key=lambda node_id: (self._allocated[node_id], node_id),
        )
        if off_rack:
            chosen[-1] = off_rack[0]
        return chosen

    @abstractmethod
    def _draw(self, rng: RandomSource) -> NodeId:
        """Draw one candidate node (may be repeated/capped; caller filters)."""

    def choose_replicas(self, rng: RandomSource, count: Optional[int] = None) -> List[NodeId]:
        """Choose ``count`` distinct nodes for one block and record them.

        Rejection-samples the policy's distribution, skipping duplicates
        and capped nodes; if the retry budget runs out (e.g. nearly every
        node is capped) it falls back to the least-allocated eligible
        nodes, so ingest always completes.
        """
        k = self._replication if count is None else count
        chosen: List[NodeId] = []
        draws = 0
        while len(chosen) < k and draws < _MAX_DRAWS:
            draws += 1
            candidate = self._draw(rng)
            if candidate in chosen or self._at_capacity(candidate):
                continue
            chosen.append(candidate)
        if len(chosen) < k:
            fallback = sorted(
                (n for n in self.eligible_nodes if n not in chosen),
                key=lambda node_id: (self._allocated[node_id], node_id),
            )
            needed = k - len(chosen)
            if len(fallback) < needed:
                # Every node is capped: ignore caps rather than fail ingest.
                fallback = sorted(
                    (n.node_id for n in self._nodes if n.node_id not in chosen),
                    key=lambda node_id: (self._allocated[node_id], node_id),
                )
            chosen.extend(fallback[:needed])
        if len(chosen) < k:
            raise RuntimeError(f"could not find {k} distinct nodes")
        chosen = self._fix_rack_spread(chosen, k)
        for node_id in chosen:
            self._allocated[node_id] += 1
        return chosen

    def choose_replicas_many(
        self, rng: RandomSource, num_blocks: int, count: Optional[int] = None
    ) -> List[List[NodeId]]:
        """Choose replica holders for ``num_blocks`` consecutive blocks.

        Byte-identical to calling :meth:`choose_replicas` once per block —
        the per-block RNG draw order is part of the golden contract — but
        gives plans a single entry point for batched ingest, where
        subclasses amortise their per-block bookkeeping.
        """
        return [self.choose_replicas(rng, count) for _ in range(num_blocks)]


class _UniformPlan(PlacementPlan):
    """Uniform random placement over up nodes (stock HDFS)."""

    def _draw(self, rng: RandomSource) -> NodeId:
        return self._nodes[rng.randrange(len(self._nodes))].node_id


class _WeightedPlan(PlacementPlan):
    """Weighted placement through Algorithm 1's hash table.

    Used by both ADAPT (rates = 1/E[T]) and the naive baseline (rates =
    availability); the rate function is injected. When the threshold cap
    removes a node, the table is rebuilt over the remaining nodes — "the
    node that reaches the threshold will not be considered for future data
    block placement" (Section IV.C).
    """

    def __init__(
        self,
        nodes: Sequence[NodeView],
        num_blocks: int,
        replication: int,
        rate_of: Callable[[NodeView], float],
        capped: bool,
        chain_weighting: str = "rate",
    ) -> None:
        super().__init__(nodes, num_blocks, replication)
        self._rate_of = rate_of
        self._capped = capped
        self._chain_weighting = chain_weighting
        self._table: Optional[WeightedHashTable] = None
        self._table_nodes: List[NodeView] = []
        self._table_ids: Set[NodeId] = set()
        self._rebuild_table()

    def _capacity(self, node_id: NodeId) -> Optional[int]:
        if not self._capped:
            return None
        # Threshold m(k+1)/n over the *original* population size n.
        n = len(self._allocated)
        cap = self._num_blocks * (self._replication + 1) / n
        return max(int(math.ceil(cap)), 1)

    def _rebuild_table(self) -> None:
        members = [n for n in self._nodes if not self._at_capacity(n.node_id)]
        if not members:
            self._table = None
            self._table_nodes = []
            self._table_ids = set()
            return
        rates = [max(self._rate_of(n), 0.0) for n in members]
        if sum(rates) <= 0.0:
            # Degenerate estimates (all nodes unusable): fall back to uniform.
            rates = [1.0] * len(members)
        self._table = WeightedHashTable(
            [n.node_id for n in members],
            rates,
            num_slots=max(self._num_blocks, len(members)),
            chain_weighting=self._chain_weighting,
        )
        self._table_nodes = members
        self._table_ids = {n.node_id for n in members}

    def expected_share(self, node_id: NodeId) -> float:
        """Current expected fraction of placements going to ``node_id``."""
        if self._table is None or node_id not in [n.node_id for n in self._table_nodes]:
            return 0.0
        return self._table.rate(node_id)

    def _draw(self, rng: RandomSource) -> NodeId:
        if self._table is None:
            # All nodes capped; base-class fallback will resolve.
            return self._nodes[rng.randrange(len(self._nodes))].node_id
        return self._table.place(rng)

    def choose_replicas(self, rng: RandomSource, count: Optional[int] = None) -> List[NodeId]:
        chosen = super().choose_replicas(rng, count)
        # Only the chosen nodes' allocations moved, and a rebuild evicts
        # every at-capacity member — so scanning ``chosen`` against the
        # table (instead of the whole table, O(n) per block) triggers
        # rebuilds at exactly the same instants.
        if self._capped and any(
            node_id in self._table_ids and self._at_capacity(node_id)
            for node_id in chosen
        ):
            self._rebuild_table()
        return chosen


class PlacementPolicy(ABC):
    """Factory for per-ingest placement plans."""

    #: Short machine-readable policy name (used in reports and configs).
    name: str = "abstract"

    @abstractmethod
    def build_plan(
        self,
        nodes: Sequence[NodeView],
        num_blocks: int,
        replication: int,
        gamma: float,
    ) -> PlacementPlan:
        """Build the plan for ingesting ``num_blocks`` blocks."""

    def __repr__(self) -> str:
        return f"{type(self).__name__}()"


class RandomPlacement(PlacementPolicy):
    """The existing HDFS strategy: uniform random nodes per block."""

    name = "existing"

    def build_plan(
        self,
        nodes: Sequence[NodeView],
        num_blocks: int,
        replication: int,
        gamma: float,
    ) -> PlacementPlan:
        return _UniformPlan(nodes, num_blocks, replication)


class NaivePlacement(PlacementPolicy):
    """Naive availability-proportional placement (Section V.C strawman).

    Weight of node i = (MTBI_i - mu_i) / MTBI_i, i.e. the fraction of time
    the node is expected to be usable, ignoring how interruptions interact
    with task length. Dedicated nodes get weight 1.
    """

    name = "naive"

    def __init__(self, capped: bool = False) -> None:
        self._capped = capped

    def build_plan(
        self,
        nodes: Sequence[NodeView],
        num_blocks: int,
        replication: int,
        gamma: float,
    ) -> PlacementPlan:
        return _WeightedPlan(
            nodes,
            num_blocks,
            replication,
            rate_of=lambda n: n.estimate.naive_availability,
            capped=self._capped,
        )


class AdaptPlacement(PlacementPolicy):
    """ADAPT: availability-aware placement via the stochastic model.

    Rates are ``1/E[T_i]`` with E[T] from formula (5) evaluated at the
    ingest's failure-free task length gamma. ``capped=True`` (default)
    applies the Section IV.C threshold ``m(k+1)/n``.
    """

    name = "adapt"

    def __init__(self, capped: bool = True, chain_weighting: str = "rate") -> None:
        self._capped = capped
        self._chain_weighting = chain_weighting

    def build_plan(
        self,
        nodes: Sequence[NodeView],
        num_blocks: int,
        replication: int,
        gamma: float,
    ) -> PlacementPlan:
        check_positive("gamma", gamma)

        def rate(view: NodeView) -> float:
            est = view.estimate
            try:
                t = expected_task_time(gamma, est.arrival_rate, est.recovery_mean)
            except UnstableHostError:
                # lambda*mu >= 1: the node is down in the long run; give it
                # no placement mass rather than crash the ingest.
                return 0.0
            return 1.0 / t

        return _WeightedPlan(
            nodes,
            num_blocks,
            replication,
            rate_of=rate,
            capped=self._capped,
            chain_weighting=self._chain_weighting,
        )


_POLICIES: Dict[str, Callable[[], PlacementPolicy]] = {
    "existing": RandomPlacement,
    "random": RandomPlacement,
    "naive": NaivePlacement,
    "adapt": AdaptPlacement,
}


def make_policy(name: str, **kwargs: object) -> PlacementPolicy:
    """Build a policy by name: ``existing``/``random``, ``naive``, ``adapt``."""
    try:
        factory = _POLICIES[name.lower()]
    except KeyError:
        known = ", ".join(sorted(_POLICIES))
        raise ValueError(f"unknown placement policy {name!r}; known: {known}") from None
    return factory(**kwargs)  # type: ignore[call-arg]
