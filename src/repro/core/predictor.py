"""The NameNode-side Performance Predictor (paper Section IV, Figure 2).

The predictor keeps one :class:`InterruptionStatsEstimator` per registered
node — "a data structure with two double data types ... updated whenever
the heart beat arrivals/misses are sufficient to change its values" — and
the failure-free map-task length gamma obtained "from the logging services
of Hadoop". From these it produces the per-node expected task times that
Algorithm 1 consumes.

Two operating modes:

* **estimated** (default): estimates come from heartbeat observations fed
  in by the heartbeat collector;
* **oracle**: true (lambda, mu) are pinned per node, for the ablation that
  separates algorithm quality from estimation error.
"""

from __future__ import annotations

from typing import Dict, Iterable, List, Optional

from repro.core.ids import NodeId
from repro.availability.estimators import (
    AvailabilityEstimate,
    InterruptionStatsEstimator,
)
from repro.core.model import UnstableHostError, expected_task_time
from repro.core.placement import NodeView
from repro.util.validation import check_positive


class PerformancePredictor:
    """Tracks per-node interruption statistics and predicts task times."""

    def __init__(
        self,
        prior_mtbi: float = 1e6,
        prior_recovery: float = 0.0,
        prior_weight: float = 1e-4,
    ) -> None:
        """The default prior is deliberately weak (1e-4 pseudo-episodes):
        an untouched node looks dedicated (MTBI ~ 1e6 s), but a handful of
        observed episodes immediately dominate the estimate."""
        self._prior_mtbi = prior_mtbi
        self._prior_recovery = prior_recovery
        self._prior_weight = prior_weight
        self._estimators: Dict[NodeId, InterruptionStatsEstimator] = {}
        self._oracle: Dict[NodeId, AvailabilityEstimate] = {}

    # -- registration ---------------------------------------------------------

    def register_node(self, node_id: NodeId) -> None:
        """Start tracking a node (idempotent)."""
        if node_id not in self._estimators:
            self._estimators[node_id] = InterruptionStatsEstimator(
                prior_mtbi=self._prior_mtbi,
                prior_recovery=self._prior_recovery,
                prior_weight=self._prior_weight,
            )

    def pin_oracle(self, node_id: NodeId, estimate: AvailabilityEstimate) -> None:
        """Pin the true parameters for a node (oracle mode for that node)."""
        self.register_node(node_id)
        self._oracle[node_id] = estimate

    def unpin_oracle(self, node_id: NodeId) -> None:
        """Return a node to estimated mode."""
        self._oracle.pop(node_id, None)

    @property
    def node_ids(self) -> List[NodeId]:
        return sorted(self._estimators)

    # -- observation feed (called by the heartbeat collector) ------------------

    def observe_uptime(self, node_id: NodeId, seconds: float) -> None:
        """Fold in observed uptime for a node.

        Auto-registers unknown nodes: the heartbeat collector may report a
        host that joined mid-run before anything else introduced it, and
        the observation feed must never crash the heartbeat service.
        """
        self.register_node(node_id)
        self._estimators[node_id].record_uptime(seconds)

    def observe_downtime(self, node_id: NodeId, seconds: float) -> None:
        """Fold in one completed downtime episode for a node.

        Auto-registers unknown nodes, like :meth:`observe_uptime`.
        """
        self.register_node(node_id)
        self._estimators[node_id].record_downtime(seconds)

    def _require(self, node_id: NodeId) -> None:
        if node_id not in self._estimators:
            raise KeyError(f"node {node_id!r} is not registered with the predictor")

    # -- predictions ------------------------------------------------------------

    def estimate(self, node_id: NodeId) -> AvailabilityEstimate:
        """Current availability estimate for a node (oracle wins if pinned)."""
        self._require(node_id)
        if node_id in self._oracle:
            return self._oracle[node_id]
        return self._estimators[node_id].estimate()

    def expected_task_time(self, node_id: NodeId, gamma: float) -> float:
        """E[T] on the node for a task of failure-free length gamma.

        Unstable nodes (lambda*mu >= 1) have no finite E[T]; infinity is
        returned so callers can rank them last without special-casing.
        """
        check_positive("gamma", gamma)
        est = self.estimate(node_id)
        try:
            return expected_task_time(gamma, est.arrival_rate, est.recovery_mean)
        except UnstableHostError:
            return float("inf")

    def node_views(
        self,
        up_nodes: Optional[Iterable[NodeId]] = None,
    ) -> List[NodeView]:
        """Placement-ready views of every registered node.

        ``up_nodes``, when given, marks exactly those nodes as up; by
        default all registered nodes are considered up.
        """
        up = set(up_nodes) if up_nodes is not None else None
        views = []
        for node_id in self.node_ids:
            views.append(
                NodeView(
                    node_id=node_id,
                    estimate=self.estimate(node_id),
                    is_up=(up is None or node_id in up),
                )
            )
        return views

    def snapshot(self) -> Dict[NodeId, AvailabilityEstimate]:
        """All current estimates keyed by node id."""
        return {node_id: self.estimate(node_id) for node_id in self.node_ids}
