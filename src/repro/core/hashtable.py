"""The weighted hash table of Algorithm 1.

``buildHashTable`` lays the nodes out over ``m`` hash-table slots (one per
data block): node *i* receives ``w_i = m * rate_i`` consecutive slots, where
``rate_i = (1/E[T_i]) / sum_j (1/E[T_j])``. Because the ``w_i`` are real
numbers, a slot on a boundary is shared by the adjacent nodes — the paper's
"collision chain". ``dataPlacement`` draws a uniform slot; a single-owner
slot returns its owner directly, while a collision chain is resolved by a
second uniform draw weighted by the chain members' rates.

This module implements both the paper-faithful chain resolution (weights =
global rates, as the pseudo-code literally states) and an exact variant
(weights = each node's slot-interval overlap) selectable with
``chain_weighting="overlap"``. For realistic configurations (many blocks
per node) the two are nearly indistinguishable; the exact variant makes the
per-node selection probability exactly proportional to ``rate_i``, which the
property tests exploit.
"""

from __future__ import annotations

import math
from typing import Dict, List, Sequence, Tuple

from repro.core.ids import NodeId
from repro.util.rng import RandomSource

_CHAIN_WEIGHTINGS = ("rate", "overlap")


class WeightedHashTable:
    """Block-to-node mapping table (Algorithm 1).

    Parameters
    ----------
    node_ids:
        The candidate nodes, in a stable order.
    rates:
        Per-node placement rates; normalised internally so only ratios
        matter. Must be non-negative with at least one positive entry.
    num_slots:
        ``m``, the number of data blocks; the table has one key per block
        ("the size of the hash table is equivalent to the number of
        blocks", Section IV.B.1).
    chain_weighting:
        ``"rate"`` for the paper-literal collision resolution, ``"overlap"``
        for exact interval-proportional resolution.
    """

    def __init__(
        self,
        node_ids: Sequence[NodeId],
        rates: Sequence[float],
        num_slots: int,
        chain_weighting: str = "rate",
    ) -> None:
        if len(node_ids) != len(rates):
            raise ValueError("node_ids and rates must have the same length")
        if not node_ids:
            raise ValueError("at least one node is required")
        if num_slots <= 0:
            raise ValueError(f"num_slots must be positive, got {num_slots}")
        if chain_weighting not in _CHAIN_WEIGHTINGS:
            raise ValueError(
                f"chain_weighting must be one of {_CHAIN_WEIGHTINGS}, got {chain_weighting!r}"
            )
        if any(r < 0 for r in rates):
            raise ValueError("rates must be non-negative")
        total = float(sum(rates))
        if total <= 0.0 or not math.isfinite(total):
            raise ValueError(f"rates must sum to a positive finite value, got {total}")

        self._node_ids = list(node_ids)
        self._rates = [float(r) / total for r in rates]
        self._num_slots = int(num_slots)
        self._chain_weighting = chain_weighting
        self._slots = self._build_slots()

    def _build_slots(self) -> List[List[Tuple[int, float]]]:
        """Lay node intervals over the slots.

        Returns, per slot, the chain of (node index, overlap length) pairs
        for every node whose interval ``[a_i, b_i)`` intersects the slot
        ``[j, j+1)``.
        """
        slots: List[List[Tuple[int, float]]] = [[] for _ in range(self._num_slots)]
        a = 0.0
        for index, rate in enumerate(self._rates):
            if rate == 0.0:
                continue
            b = a + rate * self._num_slots
            first = int(math.floor(a))
            # Guard the final interval against float drift past the table end.
            last = min(int(math.ceil(b)), self._num_slots)
            for j in range(first, last):
                overlap = min(b, j + 1.0) - max(a, float(j))
                if overlap > 1e-12:
                    slots[j].append((index, overlap))
            a = b
        for j, chain in enumerate(slots):
            if not chain:
                raise AssertionError(f"hash table slot {j} has an empty chain")
        return slots

    # -- queries ---------------------------------------------------------------

    @property
    def num_slots(self) -> int:
        """``m``: one key per data block."""
        return self._num_slots

    @property
    def node_ids(self) -> List[NodeId]:
        return list(self._node_ids)

    def rate(self, node_id: NodeId) -> float:
        """The normalised placement rate of a node."""
        return self._rates[self._node_ids.index(node_id)]

    def expected_blocks(self, node_id: NodeId) -> float:
        """``w_i = m * rate_i``: expected blocks allocated to the node."""
        return self.rate(node_id) * self._num_slots

    def chain(self, slot: int) -> List[NodeId]:
        """The node chain stored at a hash-table key (collision list)."""
        return [self._node_ids[i] for i, _overlap in self._slots[slot]]

    def max_chain_length(self) -> int:
        """Longest collision chain; bounded by n in degenerate tables."""
        return max(len(chain) for chain in self._slots)

    # -- dataPlacement ----------------------------------------------------------

    def place(self, rng: RandomSource) -> NodeId:
        """One ``dataPlacement`` draw: returns the selected node id."""
        r = rng.randrange(self._num_slots)
        chain = self._slots[r]
        if len(chain) == 1:
            return self._node_ids[chain[0][0]]
        if self._chain_weighting == "overlap":
            weights = [overlap for _i, overlap in chain]
        else:
            weights = [self._rates[i] for i, _overlap in chain]
        omega = sum(weights)
        r1 = rng.random()
        low = 0.0
        for (index, _overlap), weight in zip(chain, weights, strict=True):
            high = low + weight / omega
            if low <= r1 < high:
                return self._node_ids[index]
            low = high
        # r1 landed on the floating-point residue past the last boundary.
        return self._node_ids[chain[-1][0]]

    def place_many(self, rng: RandomSource, count: int) -> List[NodeId]:
        """Draw ``count`` placements."""
        return [self.place(rng) for _ in range(count)]

    def selection_probabilities(self) -> Dict[NodeId, float]:
        """Exact per-node selection probability of :meth:`place`.

        Computed by summing, over slots, P(slot) * P(node | chain). With
        ``chain_weighting="overlap"`` this equals ``rate_i`` exactly (up to
        float error); with the paper's ``"rate"`` weighting it is close but
        not identical when chains mix very unequal rates.
        """
        probs = {node_id: 0.0 for node_id in self._node_ids}
        slot_p = 1.0 / self._num_slots
        for chain in self._slots:
            if len(chain) == 1:
                probs[self._node_ids[chain[0][0]]] += slot_p
                continue
            if self._chain_weighting == "overlap":
                weights = [overlap for _i, overlap in chain]
            else:
                weights = [self._rates[i] for i, _overlap in chain]
            omega = sum(weights)
            for (index, _overlap), weight in zip(chain, weights, strict=True):
                probs[self._node_ids[index]] += slot_p * weight / omega
        return probs

    @classmethod
    def from_expected_times(
        cls,
        node_ids: Sequence[NodeId],
        expected_times: Sequence[float],
        num_blocks: int,
        chain_weighting: str = "rate",
    ) -> "WeightedHashTable":
        """``buildHashTable``: rates are 1/E[T_i], normalised by Phi."""
        if any(t <= 0 for t in expected_times):
            raise ValueError("expected task times must be positive")
        rates = [1.0 / t for t in expected_times]
        return cls(node_ids, rates, num_blocks, chain_weighting=chain_weighting)

    def __repr__(self) -> str:
        return (
            f"WeightedHashTable(nodes={len(self._node_ids)}, slots={self._num_slots}, "
            f"weighting={self._chain_weighting!r})"
        )
