"""HDFS substrate: blocks, DataNodes, the NameNode, heartbeats, client shell.

A faithful (in-memory, event-driven) model of the HDFS pieces ADAPT touches
(paper Sections II.B and IV): files split into equal-sized blocks, replica
placement decided centrally by the NameNode, DataNode liveness tracked via
heartbeats, and the three client interfaces ``copyFromLocal``, ``cp`` and
``adapt``.
"""

from repro.hdfs.blocks import Block, DfsFile
from repro.hdfs.client import DfsClient
from repro.hdfs.datanode import DataNode
from repro.hdfs.detection import OracleDetector
from repro.hdfs.durability import PermanentFailurePipeline
from repro.hdfs.heartbeat import HeartbeatService
from repro.hdfs.namenode import NameNode
from repro.hdfs.replication_monitor import ReplicationMonitor

__all__ = [
    "Block",
    "DfsFile",
    "DataNode",
    "NameNode",
    "HeartbeatService",
    "OracleDetector",
    "PermanentFailurePipeline",
    "ReplicationMonitor",
    "DfsClient",
]
