"""Permanent-failure storage pipeline: the wipe and its consequences.

A permanent failure destroys a host's disk the instant it strikes
(:class:`~repro.simulator.events.PermanentFailure` is published before the
accompanying ``NodeDown`` — destruction precedes detection). This service
owns the storage-side consequences, in STORAGE phase so every later
reaction observes the wiped state:

* wipe the DataNode's physical storage and account the destroyed replicas
  in :class:`~repro.simulator.metrics.DurabilityMetrics`;
* work out which blocks lost their *last* physical replica and publish a
  :class:`~repro.simulator.events.BlockLost` for each — dispatched nested,
  so the JobTracker abandons the blocks' tasks before the NETWORK phase
  tears down in-flight fetches that would otherwise retry against
  replicas that no longer exist.

The NameNode's location map is deliberately *not* touched here: metadata
still lists the wiped node as a holder until failure detection fires and
the replication monitor purges it (``NodePurged``) — exactly the window in
which reads against the wiped node fail and the hardened fetch path earns
its keep.
"""

from __future__ import annotations

from typing import Dict, Optional

from repro.core.ids import NodeId
from repro.hdfs.namenode import NameNode
from repro.simulator.events import BlockLost, EventBus, PermanentFailure
from repro.simulator.metrics import DurabilityMetrics


class PermanentFailurePipeline:
    """STORAGE-phase consumer of :class:`PermanentFailure` events."""

    name = "durability-pipeline"

    def __init__(
        self,
        namenode: NameNode,
        metrics: DurabilityMetrics,
        bus: Optional[EventBus] = None,
    ) -> None:
        self._namenode = namenode
        self._metrics = metrics
        self._bus = bus if bus is not None else EventBus()
        self._wipes = 0

    def handle_permanent_failure(self, event: PermanentFailure) -> None:
        """Wipe the disk, account the loss, announce unrecoverable blocks."""
        node_id = event.node_id
        destroyed = self._namenode.datanode(node_id).wipe()
        self._wipes += 1
        self._metrics.record_permanent_failure(replicas_destroyed=len(destroyed))
        lost = [
            block_id
            for block_id in destroyed
            if not any(
                self._namenode.datanode(holder).has_block(block_id)
                for holder in self._namenode.replica_holders(block_id)
            )
        ]
        self._metrics.record_lost_blocks(lost)
        for block_id in lost:
            self._bus.publish(BlockLost(time=event.time, block_id=block_id))

    def start(self) -> None:
        """No startup work; driven entirely by injector events."""

    def stop(self) -> None:
        """Nothing to disarm: the pipeline holds no scheduled events."""

    def describe(self) -> Dict[str, object]:
        return {
            "wipes": self._wipes,
            "replicas_lost": self._metrics.replicas_lost,
            "blocks_lost": self._metrics.blocks_lost,
        }
