"""The NameNode: centralised metadata management plus ADAPT's extensions.

Responsibilities mirror Section II.B / IV: file-to-block mapping, block
location tracking, DataNode liveness (as *believed*, fed by heartbeats or
by an oracle), and — with ADAPT enabled — delegating placement decisions to
an availability-aware policy driven by the Performance Predictor.
"""

from __future__ import annotations

from typing import Callable, Dict, List, Optional, Sequence, Set, Tuple

from repro.core.ids import NodeId
from repro.core.placement import NodeView, PlacementPolicy
from repro.core.predictor import PerformancePredictor
from repro.core.rebalance import RebalanceMove, plan_rebalance
from repro.hdfs.blocks import Block, DfsFile
from repro.hdfs.datanode import DataNode
from repro.util.rng import RandomSource


class NameNode:
    """Metadata server: files, block locations, liveness, placement."""

    def __init__(
        self,
        predictor: Optional[PerformancePredictor] = None,
        placement_liveness_filter: bool = True,
    ) -> None:
        """``placement_liveness_filter`` controls whether ingest placement
        is restricted to currently-live nodes. Disabling it models data
        that was loaded at an earlier time: by the time a job runs, host
        availability has re-randomised, so conditioning placement on
        *momentary* liveness is impossible and only long-run availability
        (what ADAPT's model predicts) matters. The large-scale trace-driven
        experiments disable it; the emulated testbed keeps it on.
        """
        self._predictor = predictor if predictor is not None else PerformancePredictor()
        self._placement_liveness_filter = placement_liveness_filter
        self._rack_of: Optional[Callable[[NodeId], int]] = None
        self._datanodes: Dict[NodeId, DataNode] = {}
        self._files: Dict[str, DfsFile] = {}
        self._blocks: Dict[str, Block] = {}
        self._locations: Dict[str, Set[NodeId]] = {}
        self._live: Dict[NodeId, bool] = {}

    # -- membership -------------------------------------------------------------

    @property
    def predictor(self) -> PerformancePredictor:
        """The ADAPT Performance Predictor attached to this NameNode."""
        return self._predictor

    def set_rack_constraint(self, rack_of: Optional[Callable[[NodeId], int]]) -> None:
        """Enforce HDFS's off-rack rule on every future ingest.

        ``rack_of`` maps a node id to its rack index (normally the
        topology's ``rack_of``). When set, every placement plan built by
        :meth:`create_file` refuses to put all replicas of a block in a
        single rack (for replication >= 2), substituting the last chosen
        holder with an off-rack node. The substitution consumes no
        randomness, so enabling it never shifts the placement RNG stream.
        Pass ``None`` to lift the constraint.
        """
        self._rack_of = rack_of

    def register_datanode(self, datanode: DataNode) -> None:
        """Admit a DataNode to the cluster."""
        node_id = datanode.node_id
        if node_id in self._datanodes:
            raise ValueError(f"datanode {node_id!r} already registered")
        self._datanodes[node_id] = datanode
        self._live[node_id] = True
        self._predictor.register_node(node_id)

    @property
    def datanode_ids(self) -> List[NodeId]:
        return sorted(self._datanodes)

    def datanode(self, node_id: NodeId) -> DataNode:
        return self._datanodes[node_id]

    # -- liveness (the NameNode's belief) ------------------------------------------

    def mark_dead(self, node_id: NodeId) -> None:
        """Believe the node is gone (heartbeat timeout or oracle event)."""
        self._require_node(node_id)
        self._live[node_id] = False

    def mark_alive(self, node_id: NodeId) -> None:
        """Believe the node returned."""
        self._require_node(node_id)
        self._live[node_id] = True

    def is_live(self, node_id: NodeId) -> bool:
        return self._live[node_id]

    def live_nodes(self) -> List[NodeId]:
        return sorted(n for n, live in self._live.items() if live)

    def _require_node(self, node_id: NodeId) -> None:
        if node_id not in self._datanodes:
            raise KeyError(f"unknown datanode {node_id!r}")

    # -- file namespace -------------------------------------------------------------

    @property
    def file_names(self) -> List[str]:
        return sorted(self._files)

    def file(self, name: str) -> DfsFile:
        try:
            return self._files[name]
        except KeyError:
            raise KeyError(f"no such file {name!r}") from None

    def block(self, block_id: str) -> Block:
        try:
            return self._blocks[block_id]
        except KeyError:
            raise KeyError(f"no such block {block_id!r}") from None

    def create_file(
        self,
        name: str,
        num_blocks: int,
        block_size: int,
        replication: int,
        policy: PlacementPolicy,
        gamma: float,
        rng: RandomSource,
    ) -> DfsFile:
        """Create a file and place every block through ``policy``.

        This is the write path behind ``copyFromLocal``: a placement plan is
        built once per ingest (the lifetime of ADAPT's hash table,
        Section IV.B.1) and consulted for each block's replica set.
        """
        if name in self._files:
            raise ValueError(f"file {name!r} already exists")
        dfs_file = DfsFile.build(name, num_blocks, block_size, replication)
        plan = policy.build_plan(self.placement_views(), num_blocks, replication, gamma)
        if self._rack_of is not None:
            plan.set_rack_constraint(self._rack_of)
        placement_rng = rng.substream("placement", name)
        holders_per_block = plan.choose_replicas_many(placement_rng, len(dfs_file.blocks))
        # Commit loop, inlined from _store_replica with the instance dicts
        # hoisted: ingest is the build hot path (m*k replica commits), and
        # the plan only returns nodes drawn from placement_views(), i.e.
        # registered ones, so the per-replica membership check is elided.
        blocks = self._blocks
        locations = self._locations
        datanodes = self._datanodes
        for block, holders in zip(dfs_file.blocks, holders_per_block, strict=True):
            blocks[block.block_id] = block
            location = locations[block.block_id] = set()
            for node_id in holders:
                datanodes[node_id].store(block)
                location.add(node_id)
        self._files[name] = dfs_file
        return dfs_file

    def delete_file(self, name: str) -> None:
        """Remove a file and all its replicas."""
        dfs_file = self.file(name)
        for block in dfs_file.blocks:
            for node_id in list(self._locations.get(block.block_id, ())):
                self._remove_replica(block.block_id, node_id)
            self._locations.pop(block.block_id, None)
            self._blocks.pop(block.block_id, None)
        del self._files[name]

    # -- block locations ---------------------------------------------------------------

    def replica_holders(self, block_id: str) -> Set[NodeId]:
        """All nodes holding a replica (regardless of liveness)."""
        if block_id not in self._locations:
            raise KeyError(f"no such block {block_id!r}")
        return set(self._locations[block_id])

    def up_holders(self, block_id: str) -> List[NodeId]:
        """Replica holders currently believed live, in sorted order."""
        return sorted(n for n in self.replica_holders(block_id) if self._live[n])

    def blocks_on(self, node_id: NodeId) -> Set[str]:
        """Block ids stored on one node."""
        self._require_node(node_id)
        return self._datanodes[node_id].block_ids()

    def location_snapshot(self) -> Dict[str, Set[NodeId]]:
        """Copy of the whole location map (block id -> holder set).

        For auditing: callers get an isolated snapshot they can compare
        against physical DataNode contents without aliasing live state.
        """
        return {block_id: set(holders) for block_id, holders in self._locations.items()}

    def block_distribution(self, name: str) -> Dict[NodeId, int]:
        """Replica count per node for one file (the ``df``-style view)."""
        dfs_file = self.file(name)
        counts: Dict[NodeId, int] = {node_id: 0 for node_id in self._datanodes}
        for block in dfs_file.blocks:
            for node_id in self._locations[block.block_id]:
                counts[node_id] += 1
        return counts

    def replica_map(self, name: str) -> Dict[str, List[NodeId]]:
        """block id -> sorted holders for one file."""
        dfs_file = self.file(name)
        return {
            block.block_id: sorted(self._locations[block.block_id])
            for block in dfs_file.blocks
        }

    def located_on(self, node_id: NodeId) -> List[str]:
        """Block ids whose *metadata* lists the node as a holder.

        Unlike :meth:`blocks_on` this reads the location map, not the
        DataNode's physical storage — so it stays correct for a node whose
        disk was wiped but whose loss has not been processed yet.
        """
        self._require_node(node_id)
        return sorted(
            block_id for block_id, holders in self._locations.items() if node_id in holders
        )

    def replication_target(self, block_id: str) -> int:
        """The replication degree the block's file asks for."""
        block = self.block(block_id)
        return self._files[block.file_name].replication

    def under_replicated(self) -> Dict[str, int]:
        """block id -> live replica count, for blocks below their target.

        "Live" means held on a node the NameNode currently believes alive;
        blocks with zero live replicas are included (count 0) as long as
        some replica location is still recorded, and lost blocks (no
        locations at all) are included too.
        """
        shortfall: Dict[str, int] = {}
        for block_id, holders in self._locations.items():
            live = sum(1 for n in holders if self._live[n])
            if live < self.replication_target(block_id):
                shortfall[block_id] = live
        return shortfall

    def add_replica(self, block_id: str, node_id: NodeId) -> None:
        """Materialise a new replica (re-replication landed)."""
        block = self.block(block_id)
        if node_id in self._locations[block_id]:
            raise ValueError(f"{node_id} already holds {block_id}")
        self._store_replica(block, node_id)

    def remove_replica(self, block_id: str, node_id: NodeId) -> None:
        """Drop one replica (over-replication garbage collection).

        Refuses to remove the last recorded replica — durability GC must
        never turn an over-replicated block into a lost one.
        """
        if node_id not in self.replica_holders(block_id):
            raise ValueError(f"{node_id} does not hold {block_id}")
        if len(self._locations[block_id]) <= 1:
            raise ValueError(f"refusing to remove the last replica of {block_id}")
        self._remove_replica(block_id, node_id)

    def purge_node(self, node_id: NodeId) -> Tuple[List[str], List[str]]:
        """Erase every replica the node held from the location map.

        Called when a node's loss is known to be permanent (its disk is
        gone, so the usual down-but-recoverable bookkeeping is wrong).
        Returns ``(affected, lost)``: all block ids the node held, and the
        subset left with zero replicas anywhere — unrecoverable data loss.
        The node stays registered (and dead) so historic queries resolve.
        """
        self._require_node(node_id)
        affected = self.located_on(node_id)
        lost: List[str] = []
        datanode = self._datanodes[node_id]
        for block_id in affected:
            self._locations[block_id].discard(node_id)
            if datanode.has_block(block_id):
                datanode.remove(block_id)
            if not self._locations[block_id]:
                lost.append(block_id)
        return affected, lost

    def _store_replica(self, block: Block, node_id: NodeId) -> None:
        self._require_node(node_id)
        self._datanodes[node_id].store(block)
        self._locations[block.block_id].add(node_id)

    def _remove_replica(self, block_id: str, node_id: NodeId) -> None:
        self._datanodes[node_id].remove(block_id)
        self._locations[block_id].discard(node_id)

    # -- placement views & rebalancing ------------------------------------------------

    def node_views(self, live_only: bool = True) -> List[NodeView]:
        """Placement-ready per-node views from the predictor's estimates.

        A node is placeable only when it is both *believed* live and
        *physically* up: a write to a crashed-but-undetected DataNode
        fails its pipeline and HDFS re-places the block elsewhere, which
        filtering here models directly.
        """
        views = []
        for node_id in self.datanode_ids:
            live = self._live[node_id] and self._datanodes[node_id].is_up
            if live_only and not live:
                continue
            views.append(
                NodeView(
                    node_id=node_id,
                    estimate=self._predictor.estimate(node_id),
                    is_up=live,
                )
            )
        return views

    def placement_views(self) -> List[NodeView]:
        """The views ingest placement sees.

        With the liveness filter on, only live+up nodes are placeable;
        with it off, every registered node is eligible (see __init__).
        """
        if self._placement_liveness_filter:
            return self.node_views(live_only=True)
        return [
            NodeView(node_id=node_id, estimate=self._predictor.estimate(node_id), is_up=True)
            for node_id in self.datanode_ids
        ]

    def plan_adapt(
        self,
        name: str,
        policy: PlacementPolicy,
        gamma: float,
        rng: RandomSource,
    ) -> List[RebalanceMove]:
        """Plan the ``adapt <file>`` redistribution (Section IV.A)."""
        return plan_rebalance(
            replica_map=self.replica_map(name),
            policy=policy,
            nodes=self.placement_views(),
            gamma=gamma,
            rng=rng.substream("rebalance", name),
        )

    def apply_move(self, move: RebalanceMove) -> None:
        """Execute one replica move at the metadata level."""
        block = self.block(move.block_id)
        if move.source not in self._locations[move.block_id]:
            raise ValueError(f"{move.source} does not hold {move.block_id}")
        if move.destination in self._locations[move.block_id]:
            raise ValueError(f"{move.destination} already holds {move.block_id}")
        self._store_replica(block, move.destination)
        self._remove_replica(move.block_id, move.source)
