"""Block re-replication: the NameNode's durability service.

Real HDFS heals under-replicated blocks: when a DataNode is declared dead,
every block it held is queued (fewest live replicas first) and copied from
a surviving replica to a fresh node. That recovery traffic is exactly the
"non-trivial data migration" cost ADAPT's placement is designed to avoid
(Section II.B), so a credible baseline must pay it. This module reproduces
the pipeline:

* :class:`ReplicationMonitor` subscribes to the failure-detection signals
  (``on_dead`` / ``on_returned`` from the heartbeat watchdog, or the oracle
  equivalents) and maintains a priority queue of under-replicated blocks
  keyed by live replica count — a block down to its last copy jumps the
  queue.
* Copies run over the shared :class:`~repro.simulator.network.Network`
  under a configurable concurrency cap, so recovery traffic contends with
  job traffic the way the real balancer does.
* A copy torn down mid-transfer (source or target died) is retried with
  exponential backoff against freshly chosen endpoints, up to a per-block
  retry budget; an exhausted budget parks the block until the next
  membership event re-queues it.
* When an interrupted holder *returns*, now-redundant queued work is
  dropped, in-flight copies that became unnecessary are cancelled, and
  over-replicated blocks (healed while the holder was away) are garbage
  collected back down to their target.
* Permanent failures (disk wiped — see
  :meth:`~repro.simulator.failures.FailureInjector.schedule_permanent_failure`)
  purge the node from the location map at detection time; blocks left with
  zero replicas are recorded as lost in :class:`DurabilityMetrics`.

Availability awareness: among eligible re-replication targets the monitor
prefers the node with the lowest believed unavailability (the Performance
Predictor's estimate), then the emptiest — so recovery placement follows
the same principle as ADAPT's ingest placement.
"""

from __future__ import annotations

import heapq
import itertools
from typing import Callable, Dict, List, Optional, Set, Tuple

from repro.core.ids import NodeId
from repro.hdfs.namenode import NameNode
from repro.simulator.engine import EventHandle, Simulator
from repro.simulator.events import (
    EventBus,
    NodeDeclaredDead,
    NodePurged,
    NodeReturned,
    ReplicaAdded,
)
from repro.simulator.metrics import DurabilityMetrics
from repro.simulator.network import Network, Transfer
from repro.util.validation import check_positive


class ReplicationMonitor:
    """NameNode-attached service that heals under-replicated blocks."""

    name = "replication-monitor"

    def __init__(
        self,
        sim: Simulator,
        namenode: NameNode,
        network: Network,
        metrics: Optional[DurabilityMetrics] = None,
        max_concurrent: int = 2,
        retry_budget: int = 4,
        backoff_base: float = 5.0,
        backoff_max: float = 60.0,
        is_permanent: Optional[Callable[[str], bool]] = None,
        on_node_purged: Optional[Callable[[str], None]] = None,
        on_replica_added: Optional[Callable[[str, str], None]] = None,
        bus: Optional[EventBus] = None,
    ) -> None:
        """``is_permanent(node_id)`` tells the monitor whether a detected
        death is a permanent loss (injector knowledge); ``on_node_purged``
        fires after a permanent node's metadata purge (e.g. to untrack its
        heartbeats); ``on_replica_added(block_id, node_id)`` fires when a
        re-replication copy lands (e.g. so the JobTracker can re-open
        locality for pending tasks).
        """
        if max_concurrent < 1:
            raise ValueError(f"max_concurrent must be >= 1, got {max_concurrent}")
        if retry_budget < 0:
            raise ValueError(f"retry_budget must be >= 0, got {retry_budget}")
        check_positive("backoff_base", backoff_base)
        check_positive("backoff_max", backoff_max)
        self._sim = sim
        self._namenode = namenode
        self._network = network
        self._metrics = metrics if metrics is not None else DurabilityMetrics()
        self._max_concurrent = max_concurrent
        self._retry_budget = retry_budget
        self._backoff_base = backoff_base
        self._backoff_max = backoff_max
        self._is_permanent = is_permanent if is_permanent is not None else lambda _n: False
        self._on_node_purged = on_node_purged
        self._on_replica_added = on_replica_added
        self._bus = bus if bus is not None else EventBus()

        self._heap: List[Tuple[int, int, str]] = []  # (live replicas, seq, block)
        self._seq = itertools.count()
        self._queued: Set[str] = set()
        self._inflight: Dict[str, Transfer] = {}
        self._inflight_target: Dict[str, NodeId] = {}
        self._retries: Dict[str, int] = {}
        self._retry_events: Dict[str, EventHandle] = {}
        self._self_cancelled: Set[str] = set()
        self._stopped = False

    # -- state ---------------------------------------------------------------------

    @property
    def metrics(self) -> DurabilityMetrics:
        return self._metrics

    @property
    def inflight_count(self) -> int:
        return len(self._inflight)

    @property
    def queue_depth(self) -> int:
        """Queued blocks awaiting a copy slot (excludes in-flight)."""
        return len(self._queued)

    def is_idle(self) -> bool:
        return not (self._queued or self._inflight or self._retry_events)

    # -- detection signals -----------------------------------------------------------

    def handle_node_dead(self, event: NodeDeclaredDead) -> None:
        """Bus handler (STORAGE phase): a detector declared the node dead."""
        self.on_node_dead(event.node_id, event.time)

    def handle_node_returned(self, event: NodeReturned) -> None:
        """Bus handler (STORAGE phase): a believed-dead holder is back."""
        self.on_node_returned(event.node_id, event.time)

    def on_node_dead(self, node_id: NodeId, time: float) -> None:
        """Failure detection fired: queue the dead node's blocks.

        For a permanent loss the node is first purged from the location
        map (its replicas are destroyed, not merely unreachable) and blocks
        left with no replica are recorded as lost.
        """
        if self._stopped:
            return
        if self._is_permanent(node_id):
            # Physical accounting (permanent_failures / replicas_lost)
            # happened at wipe time in the injector wiring; here only the
            # metadata consequence is recorded (idempotently).
            affected, lost = self._namenode.purge_node(node_id)
            self._metrics.record_lost_blocks(lost)
            if self._on_node_purged is not None:
                self._on_node_purged(node_id)
            self._bus.publish(NodePurged(time=time, node_id=node_id))
        else:
            affected = self._namenode.located_on(node_id)
        for block_id in affected:
            self._consider(block_id)
        self._pump()

    def on_node_returned(self, node_id: NodeId, time: float) -> None:
        """A believed-dead holder came back: drop redundant work, GC.

        In-flight copies whose block is no longer under-replicated are
        cancelled (the returned replica made them moot); blocks healed
        while the holder was away are garbage collected back down to their
        replication target, preferring to drop the returner's stale copy.
        """
        if self._stopped:
            return
        for block_id in [b for b, _t in list(self._inflight.items())]:
            if not self._shortfall(block_id):
                self._cancel_inflight(block_id)
        for block_id in self._namenode.located_on(node_id):
            holders = self._namenode.up_holders(block_id)
            target = self._namenode.replication_target(block_id)
            excess = len(self._namenode.replica_holders(block_id)) - target
            # Drop the returned node's copy first (it is the stale one),
            # then believed-live holders in reverse lexical order.
            if excess > 0:
                victims = [
                    node_id,
                    *(h for h in sorted(holders, reverse=True) if h != node_id),
                ]
                for victim in victims[:excess]:
                    self._namenode.remove_replica(block_id, victim)
                    self._metrics.overreplicated_removed += 1
            else:
                self._consider(block_id)
        self._pump()

    # -- lifecycle -----------------------------------------------------------------------

    def start(self) -> None:
        """No startup work; healing is driven by detection events."""

    def stop(self) -> None:
        """Cancel queued work, armed retries, and in-flight copies."""
        self._stopped = True
        for event in self._retry_events.values():
            event.cancel()
        self._retry_events.clear()
        for block_id in list(self._inflight):
            self._cancel_inflight(block_id)
        self._queued.clear()
        self._heap.clear()

    def describe(self) -> Dict[str, object]:
        return {
            "queued": len(self._queued),
            "inflight": len(self._inflight),
            "armed_retries": len(self._retry_events),
            "stopped": self._stopped,
        }

    # -- scheduling internals --------------------------------------------------------------

    def _shortfall(self, block_id: str) -> int:
        """How many replicas the block is short, from live holders."""
        try:
            holders = self._namenode.replica_holders(block_id)
        except KeyError:
            return 0  # file deleted
        live = [n for n in holders if self._namenode.is_live(n)]
        return max(self._namenode.replication_target(block_id) - len(live), 0)

    def _consider(self, block_id: str) -> None:
        """Queue a block if it is under-replicated and not already handled."""
        if block_id in self._queued or block_id in self._inflight:
            return
        if block_id in self._retry_events:
            return  # backoff timer owns it
        if not self._shortfall(block_id):
            return
        live = len(self._namenode.up_holders(block_id))
        heapq.heappush(self._heap, (live, next(self._seq), block_id))
        self._queued.add(block_id)

    def _pump(self) -> None:
        """Start copies while the concurrency cap allows."""
        while len(self._inflight) < self._max_concurrent and self._heap:
            _live, _seq, block_id = heapq.heappop(self._heap)
            if block_id not in self._queued:
                continue  # stale heap entry
            self._queued.discard(block_id)
            if not self._shortfall(block_id):
                continue  # healed (or deleted) while queued
            if not self._start_copy(block_id):
                # No usable source or target right now; the next membership
                # event re-queues the block via on_node_dead/on_node_returned.
                continue

    def _start_copy(self, block_id: str) -> bool:
        sources = self._namenode.up_holders(block_id)
        if not sources:
            return False
        source = min(sources, key=lambda n: (self._network.outgoing_count(n), n))
        target = self._choose_target(block_id)
        if target is None:
            return False
        size = self._namenode.block(block_id).size_bytes
        transfer = self._network.start_transfer(
            source=source,
            destination=target,
            size_bytes=size,
            on_complete=lambda t, b=block_id: self._on_copy_done(b, t),
            on_cancel=lambda t, b=block_id: self._on_copy_cancelled(b, t),
            label=f"rereplicate:{block_id}",
        )
        self._inflight[block_id] = transfer
        self._inflight_target[block_id] = target
        self._metrics.rereplications_started += 1
        return True

    def _choose_target(self, block_id: str) -> Optional[str]:
        """Best believed-live non-holder: most available, then emptiest."""
        holders = self._namenode.replica_holders(block_id)
        predictor = self._namenode.predictor
        candidates = [n for n in self._namenode.live_nodes() if n not in holders]
        if not candidates:
            return None
        return min(
            candidates,
            key=lambda n: (
                1.0 - predictor.estimate(n).steady_state_availability,
                self._namenode.datanode(n).block_count,
                n,
            ),
        )

    def _on_copy_done(self, block_id: str, transfer: Transfer) -> None:
        self._inflight.pop(block_id, None)
        target = self._inflight_target.pop(block_id, None)
        if self._stopped:
            return
        self._metrics.record_copy_traffic(transfer.transferred, transfer.duration)
        landed = False
        if target is not None:
            try:
                holders = self._namenode.replica_holders(block_id)
            except KeyError:
                holders = None  # file deleted mid-copy
            if holders is not None and target not in holders:
                self._namenode.add_replica(block_id, target)
                landed = True
        if landed:
            self._metrics.rereplications_completed += 1
            self._retries.pop(block_id, None)
            if self._on_replica_added is not None and target is not None:
                self._on_replica_added(block_id, target)
            if target is not None:
                self._bus.publish(
                    ReplicaAdded(time=self._sim.now, block_id=block_id, node_id=target)
                )
            self._consider(block_id)  # still short? (lost 2 of 3, say)
        self._pump()

    def _on_copy_cancelled(self, block_id: str, transfer: Transfer) -> None:
        self._inflight.pop(block_id, None)
        self._inflight_target.pop(block_id, None)
        if block_id in self._self_cancelled:
            # We tore it down ourselves (redundant work / stop()): the
            # partial traffic still counts, but it is not a failure.
            self._self_cancelled.discard(block_id)
            if not self._stopped:
                self._metrics.record_copy_traffic(transfer.transferred, transfer.duration)
            return
        if self._stopped:
            return
        self._metrics.record_copy_traffic(transfer.transferred, transfer.duration)
        self._metrics.rereplication_failures += 1
        retries = self._retries.get(block_id, 0) + 1
        self._retries[block_id] = retries
        if retries > self._retry_budget:
            self._metrics.rereplication_abandoned += 1
            self._retries.pop(block_id, None)
            self._pump()
            return
        self._metrics.rereplication_retries += 1
        delay = min(self._backoff_base * (2.0 ** (retries - 1)), self._backoff_max)
        self._retry_events[block_id] = self._sim.schedule(
            delay,
            lambda: self._on_retry_due(block_id),
            label=f"rereplicate-retry:{block_id}",
        )
        self._pump()

    def _on_retry_due(self, block_id: str) -> None:
        self._retry_events.pop(block_id, None)
        if self._stopped:
            return
        self._consider(block_id)
        self._pump()

    def _cancel_inflight(self, block_id: str) -> None:
        transfer = self._inflight.get(block_id)
        if transfer is None:
            return
        self._self_cancelled.add(block_id)
        self._network.cancel(transfer)
        # The cancel callback fires synchronously and clears _inflight.
        self._self_cancelled.discard(block_id)
