"""DataNode: per-host block storage with up/down state.

Blocks live on persistent storage, so an interruption takes the DataNode
offline but does *not* lose data — "data blocks are stored on persistent
storage and could be reused after the node is back" (Section II.B). The
failure injector toggles ``is_up``; stored blocks survive the transition.
"""

from __future__ import annotations

from typing import TYPE_CHECKING, Dict, List, Optional, Set

from repro.core.ids import NodeId, NodeIds
from repro.hdfs.blocks import Block

if TYPE_CHECKING:  # pragma: no cover - typing only
    from repro.simulator.events import NodeDown, NodeUp


class DataNode:
    """Storage state of one host.

    Satisfies the :class:`~repro.runtime.services.Service` protocol so the
    cluster's registry owns its lifecycle alongside the other per-node
    agents (simlint C002: every bus subscriber is a registered service).
    Storage is passive — it schedules nothing — so start/stop are no-ops.

    Instances are slotted and their service ``name`` renders lazily: at
    226k nodes, per-instance ``__dict__`` s and eager ``datanode:<host>``
    f-strings are pure build overhead, so wired clusters pass the
    cluster's :class:`~repro.core.ids.NodeIds` table (``names=``) and the
    string materialises on first reporting access.
    """

    __slots__ = ("_name", "_names", "_node_id", "_capacity", "_blocks", "_used", "_is_up")

    def __init__(
        self,
        node_id: NodeId,
        capacity_bytes: Optional[int] = None,
        name: Optional[str] = None,
        names: Optional[NodeIds] = None,
    ) -> None:
        #: Service-registry name: human-readable at the reporting boundary,
        #: so wired clusters derive it from the host *name* even though
        #: runtime routing keys on the dense int id.
        self._name = name
        self._names = names
        self._node_id = node_id
        self._capacity = capacity_bytes
        self._blocks: Dict[str, Block] = {}
        self._used = 0
        self._is_up = True

    @property
    def name(self) -> str:
        if self._name is None:
            if self._names is not None:
                self._name = f"datanode:{self._names.name_of(self._node_id)}"
            else:
                self._name = f"datanode:{self._node_id}"
        return self._name

    @name.setter
    def name(self, value: str) -> None:
        self._name = value

    def start(self) -> None:
        """Service lifecycle: nothing to arm (storage is event-driven)."""

    def stop(self) -> None:
        """Service lifecycle: nothing to disarm."""

    def describe(self) -> Dict[str, object]:
        """Structured snapshot (Service protocol)."""
        return {
            "service": "datanode",
            "node_id": self._node_id,
            "is_up": self._is_up,
            "blocks": len(self._blocks),
            "used_bytes": self._used,
            "capacity_bytes": self._capacity,
        }

    @property
    def node_id(self) -> NodeId:
        return self._node_id

    @property
    def is_up(self) -> bool:
        """Physical state (the NameNode's *belief* may lag; see NameNode)."""
        return self._is_up

    def set_up(self, up: bool) -> None:
        """Toggle physical availability (failure injection)."""
        self._is_up = up

    def handle_node_down(self, event: "NodeDown") -> None:
        """Bus handler (STORAGE phase, keyed by this node's id)."""
        self.set_up(False)

    def handle_node_up(self, event: "NodeUp") -> None:
        """Bus handler (STORAGE phase, keyed by this node's id)."""
        self.set_up(True)

    @property
    def capacity_bytes(self) -> Optional[int]:
        return self._capacity

    @property
    def used_bytes(self) -> int:
        """Bytes stored, maintained incrementally (ingest used to pay a
        full sum over stored blocks per store — quadratic in blocks)."""
        return self._used

    @property
    def block_count(self) -> int:
        return len(self._blocks)

    def block_ids(self) -> Set[str]:
        """Ids of all stored blocks."""
        return set(self._blocks)

    def blocks(self) -> List[Block]:
        return list(self._blocks.values())

    def has_block(self, block_id: str) -> bool:
        return block_id in self._blocks

    def store(self, block: Block) -> None:
        """Store a replica; rejects duplicates and capacity overflows."""
        if block.block_id in self._blocks:
            raise ValueError(f"{self._node_id} already stores {block.block_id}")
        if self._capacity is not None and self._used + block.size_bytes > self._capacity:
            raise ValueError(
                f"{self._node_id} is full: {self._used}+{block.size_bytes} "
                f"> {self._capacity} bytes"
            )
        self._blocks[block.block_id] = block
        self._used += block.size_bytes

    def remove(self, block_id: str) -> Block:
        """Drop a replica; returns the removed block."""
        try:
            block = self._blocks.pop(block_id)
        except KeyError:
            raise KeyError(f"{self._node_id} does not store {block_id}") from None
        self._used -= block.size_bytes
        return block

    def wipe(self) -> List[str]:
        """Destroy every stored replica (permanent failure: disk gone).

        Returns the ids of the destroyed replicas, in sorted order. Unlike
        an ordinary interruption — where "data blocks are stored on
        persistent storage and could be reused after the node is back" —
        a wiped node has nothing to offer even if it were to return.
        """
        destroyed = sorted(self._blocks)
        self._blocks.clear()
        self._used = 0
        return destroyed

    def __repr__(self) -> str:
        state = "up" if self._is_up else "down"
        return f"DataNode({self._node_id!r}, blocks={len(self._blocks)}, {state})"
