"""Oracle failure detection: instant, lag-free belief updates.

The emulated testbed supports two failure-detection models. The default,
:class:`~repro.hdfs.heartbeat.HeartbeatService`, reproduces real HDFS
behaviour — the NameNode's belief lags physical state by up to
``interval * miss_threshold`` seconds. This module provides the other:
an oracle that flips the NameNode's belief the instant the physical
transition happens, isolating placement effects from detection-lag
effects in experiments.

Both detectors speak the same bus protocol: they consume the injector's
physical ``NodeDown`` / ``NodeUp`` events (DETECTION phase) and publish
the belief-change events ``NodeDeclaredDead`` / ``NodeReturned``.
Downstream consumers (replication monitor, JobTracker) subscribe to the
belief events only, so swapping detectors is a one-line wiring change in
``build_cluster()``.
"""

from __future__ import annotations

from typing import Dict, Optional

from repro.core.ids import NodeId
from repro.hdfs.namenode import NameNode
from repro.simulator.events import (
    EventBus,
    NodeDeclaredDead,
    NodeDown,
    NodeReturned,
    NodeUp,
)


class OracleDetector:
    """Zero-lag detector: physical transitions become belief instantly."""

    name = "oracle-detector"

    def __init__(self, namenode: NameNode, bus: Optional[EventBus] = None) -> None:
        self._namenode = namenode
        self._bus = bus if bus is not None else EventBus()
        self._deaths = 0
        self._returns = 0

    def handle_node_down(self, event: NodeDown) -> None:
        """Bus handler (DETECTION phase): declare the node dead now.

        Idempotent: a duplicate down for a node already believed dead
        (overlapping chaos outages) publishes nothing.
        """
        if not self._namenode.is_live(event.node_id):
            return
        self._namenode.mark_dead(event.node_id)
        self._deaths += 1
        self._bus.publish(NodeDeclaredDead(time=event.time, node_id=event.node_id))

    def handle_node_up(self, event: NodeUp) -> None:
        """Bus handler (DETECTION phase): believe the return now.

        Idempotent: an up for a node already believed live is a no-op.
        """
        if self._namenode.is_live(event.node_id):
            return
        self._namenode.mark_alive(event.node_id)
        self._returns += 1
        self._bus.publish(NodeReturned(time=event.time, node_id=event.node_id))

    def start(self) -> None:
        """No startup work; subscriptions are wired at build time."""

    def stop(self) -> None:
        """Nothing to disarm: the oracle holds no scheduled events."""

    def describe(self) -> Dict[str, object]:
        return {"deaths_declared": self._deaths, "returns_declared": self._returns}
