"""HDFS data model: blocks and files.

Files in HDFS are organised in equal-sized blocks (Section II.B); each
block is the unit of placement, replication, and map-task input.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List

from repro.util.validation import check_positive


@dataclass(frozen=True)
class Block:
    """One immutable data block of a file."""

    block_id: str
    file_name: str
    index: int
    size_bytes: int

    def __post_init__(self) -> None:
        check_positive("size_bytes", self.size_bytes)
        if self.index < 0:
            raise ValueError(f"block index must be non-negative, got {self.index}")


@dataclass(frozen=True)
class DfsFile:
    """A file: an ordered list of blocks plus its replication degree."""

    name: str
    block_size: int
    replication: int
    blocks: List[Block]

    def __post_init__(self) -> None:
        check_positive("block_size", self.block_size)
        if self.replication < 1:
            raise ValueError(f"replication must be >= 1, got {self.replication}")
        if not self.blocks:
            raise ValueError("a file needs at least one block")

    @property
    def num_blocks(self) -> int:
        return len(self.blocks)

    @property
    def size_bytes(self) -> int:
        return sum(block.size_bytes for block in self.blocks)

    @staticmethod
    def build(name: str, num_blocks: int, block_size: int, replication: int) -> "DfsFile":
        """Construct a file of ``num_blocks`` equal blocks."""
        if num_blocks <= 0:
            raise ValueError(f"num_blocks must be positive, got {num_blocks}")
        blocks = [
            Block(
                block_id=f"{name}#blk{i:06d}",
                file_name=name,
                index=i,
                size_bytes=block_size,
            )
            for i in range(num_blocks)
        ]
        return DfsFile(name=name, block_size=block_size, replication=replication, blocks=blocks)
