"""Heartbeat collection: liveness detection and predictor feeding.

DataNodes/TaskTrackers heartbeat the masters every few seconds; the
NameNode declares a node dead after a configurable number of consecutive
misses, and ADAPT's Performance Predictor derives interruption statistics
"from the heart beat collector" (Section IV.A). This service reproduces
both: per-beat uptime observations, downtime observations measured from
the beat gap when a node returns, and (delayed) death/return marking.

The service observes the failure injector's bus events for the *physical*
state (DETECTION phase of ``NodeDown``/``NodeUp``); the NameNode's
*belief* only changes on beat arrival/miss, so detection lag is modelled
faithfully. Belief changes are published back on the bus as
``NodeDeclaredDead`` / ``NodeReturned`` events — downstream consumers
(replication monitor, JobTracker) subscribe to those and never see the
detector's identity, which is what makes this service interchangeable
with the instant :class:`~repro.hdfs.detection.OracleDetector`.
"""

from __future__ import annotations

from typing import Callable, Dict, List, Optional

from repro.core.ids import NodeId
from repro.core.predictor import PerformancePredictor
from repro.hdfs.namenode import NameNode
from repro.simulator.engine import EventHandle, Simulator
from repro.simulator.events import (
    EventBus,
    NodeDeclaredDead,
    NodeDown,
    NodePurged,
    NodeReturned,
    NodeUp,
    PartitionHealed,
    PartitionStarted,
)
from repro.util.validation import check_positive


class HeartbeatService:
    """Schedules beats for every node and turns misses into death marks."""

    name = "heartbeat-detector"

    def __init__(
        self,
        sim: Simulator,
        namenode: NameNode,
        interval: float = 3.0,
        miss_threshold: int = 3,
        bus: Optional[EventBus] = None,
    ) -> None:
        self._sim = sim
        self._namenode = namenode
        self._bus = bus if bus is not None else EventBus()
        self._interval = check_positive("interval", interval)
        if miss_threshold < 1:
            raise ValueError(f"miss_threshold must be >= 1, got {miss_threshold}")
        self._miss_threshold = miss_threshold
        self._last_beat: Dict[NodeId, float] = {}
        self._beat_events: Dict[NodeId, Optional[EventHandle]] = {}
        self._watchdogs: Dict[NodeId, Optional[EventHandle]] = {}
        self._down_since: Dict[NodeId, Optional[float]] = {}
        self._is_up: Dict[NodeId, bool] = {}
        #: Nodes whose beats are lost in transit (chaos partitions with
        #: heartbeats blocked); counted so overlapping partitions nest.
        self._suppress_counts: Dict[NodeId, int] = {}
        self._on_dead: List[Callable[[str, float], None]] = []
        self._on_returned: List[Callable[[str, float], None]] = []

    @property
    def interval(self) -> float:
        return self._interval

    @property
    def timeout(self) -> float:
        """Silence length after which a node is declared dead."""
        return self._interval * self._miss_threshold

    def subscribe(
        self,
        on_dead: Optional[Callable[[str, float], None]] = None,
        on_returned: Optional[Callable[[str, float], None]] = None,
    ) -> None:
        """Register ``(node_id, time)`` belief-change callbacks (legacy API).

        Cluster wiring consumes the bus's ``NodeDeclaredDead`` /
        ``NodeReturned`` events instead; this remains for standalone use.
        """
        if on_dead is not None:
            self._on_dead.append(on_dead)
        if on_returned is not None:
            self._on_returned.append(on_returned)

    # -- wiring -----------------------------------------------------------------

    def track(self, node_id: NodeId) -> None:
        """Start heartbeating for a node (assumed up now)."""
        if node_id in self._is_up:
            raise ValueError(f"node {node_id!r} already tracked")
        self._is_up[node_id] = True
        self._down_since[node_id] = None
        self._last_beat[node_id] = self._sim.now
        self._beat_events[node_id] = None
        self._watchdogs[node_id] = None
        self._schedule_beat(node_id)
        self._arm_watchdog(node_id)

    def untrack(self, node_id: NodeId) -> None:
        """Stop heartbeating for one node and disarm its events.

        Idempotent; use for nodes leaving the cluster for good (e.g. a
        permanent failure, once detected) or when tearing a cluster down.
        """
        if node_id not in self._is_up:
            return
        for events in (self._beat_events, self._watchdogs):
            event = events.pop(node_id, None)
            if event is not None:
                event.cancel()
        del self._is_up[node_id]
        del self._down_since[node_id]
        del self._last_beat[node_id]
        self._suppress_counts.pop(node_id, None)

    def start(self) -> None:
        """No startup work; beats are armed per node by :meth:`track`."""

    def stop(self) -> None:
        """Disarm every beat and watchdog (cluster teardown).

        A stopped service fires nothing further; cancelled clusters must
        not leave armed events behind in the simulator heap.
        """
        for node_id in list(self._is_up):
            self.untrack(node_id)

    def describe(self) -> Dict[str, object]:
        return {
            "tracked_nodes": len(self._is_up),
            "interval": self._interval,
            "miss_threshold": self._miss_threshold,
        }

    def is_tracked(self, node_id: NodeId) -> bool:
        return node_id in self._is_up

    @property
    def tracked_nodes(self) -> List[str]:
        return sorted(self._is_up)

    def handle_node_down(self, event: NodeDown) -> None:
        """Bus handler (DETECTION phase): the node's beats stop."""
        self.node_down(event.node_id, event.time)

    def handle_node_up(self, event: NodeUp) -> None:
        """Bus handler (DETECTION phase): beat immediately, resume cadence."""
        self.node_up(event.node_id, event.time)

    def handle_node_purged(self, event: NodePurged) -> None:
        """Bus handler (DETECTION phase): a permanently failed node was
        purged from the location map — drop its watchdog instead of letting
        it fire forever."""
        self.untrack(event.node_id)

    def node_down(self, node_id: NodeId, time: float) -> None:
        """Physical interruption: beats stop (injector callback).

        Idempotent: a second down for an already-down node (overlapping
        chaos outages) keeps the original ``down_since``, so the beat-gap
        downtime observation spans the whole silent window.
        """
        if node_id not in self._is_up or not self._is_up[node_id]:
            return
        self._is_up[node_id] = False
        self._down_since[node_id] = time
        event = self._beat_events.get(node_id)
        if event is not None:
            event.cancel()
            self._beat_events[node_id] = None

    def node_up(self, node_id: NodeId, time: float) -> None:
        """Physical return: beat immediately, then resume the cadence.

        Idempotent: an up for an already-up node is ignored instead of
        injecting an off-cadence beat.
        """
        if node_id not in self._is_up or self._is_up[node_id]:
            return
        self._is_up[node_id] = True
        self._beat(node_id, returning=True)

    # -- chaos partitions ---------------------------------------------------------

    def handle_partition_started(self, event: PartitionStarted) -> None:
        """Bus handler (DETECTION phase): a heartbeat-blocking partition
        swallows its members' beats — the watchdog then declares them dead
        even though they are physically up (belief diverges from truth)."""
        if not event.heartbeats_blocked:
            return
        for node_id in event.members:
            self.suppress(node_id)

    def handle_partition_healed(self, event: PartitionHealed) -> None:
        """Bus handler (DETECTION phase): beats flow again."""
        for node_id in event.members:
            self.unsuppress(node_id)

    def suppress(self, node_id: NodeId) -> None:
        """Drop the node's beats in transit (it keeps running)."""
        if node_id not in self._is_up:
            return
        count = self._suppress_counts.get(node_id, 0)
        self._suppress_counts[node_id] = count + 1
        if count:
            return
        event = self._beat_events.get(node_id)
        if event is not None:
            event.cancel()
            self._beat_events[node_id] = None

    def unsuppress(self, node_id: NodeId) -> None:
        """Let the node's beats through again (idempotent).

        If the node is physically up, it beats immediately — the collector
        sees one long gap, observed as downtime only if the node actually
        crashed somewhere inside it.
        """
        count = self._suppress_counts.get(node_id, 0)
        if count == 0:
            return
        if count > 1:
            self._suppress_counts[node_id] = count - 1
            return
        del self._suppress_counts[node_id]
        if self._is_up.get(node_id, False):
            self._beat(node_id, returning=self._down_since[node_id] is not None)

    # -- internals ------------------------------------------------------------------

    def _schedule_beat(self, node_id: NodeId) -> None:
        self._beat_events[node_id] = self._sim.schedule(
            self._interval, lambda: self._beat(node_id), label=f"beat:{node_id}"
        )

    def _beat(self, node_id: NodeId, returning: bool = False) -> None:
        if not self._is_up.get(node_id, False):
            return
        if self._suppress_counts.get(node_id):
            return  # beat lost in transit (partitioned); watchdog runs on
        now = self._sim.now
        predictor = self._namenode.predictor
        down_since = self._down_since[node_id]
        if returning and down_since is not None:
            # The collector can only see the beat gap; report the physical
            # downtime it implies (gap minus the silent uptime before the
            # crash, bounded by one interval of quantisation error).
            predictor.observe_downtime(node_id, now - down_since)
            self._down_since[node_id] = None
        else:
            predictor.observe_uptime(node_id, now - self._last_beat[node_id])
        self._last_beat[node_id] = now
        if not self._namenode.is_live(node_id):
            self._namenode.mark_alive(node_id)
            for callback in self._on_returned:
                callback(node_id, now)
            self._bus.publish(NodeReturned(time=now, node_id=node_id))
        self._schedule_beat(node_id)
        self._arm_watchdog(node_id)

    def _arm_watchdog(self, node_id: NodeId) -> None:
        old = self._watchdogs.get(node_id)
        if old is not None:
            old.cancel()
        deadline = self._last_beat[node_id] + self.timeout
        self._watchdogs[node_id] = self._sim.schedule_at(
            deadline, lambda: self._check_timeout(node_id), label=f"watchdog:{node_id}"
        )

    def _check_timeout(self, node_id: NodeId) -> None:
        if node_id not in self._is_up:
            return  # untracked while the watchdog was in flight
        self._watchdogs[node_id] = None
        now = self._sim.now
        if now - self._last_beat[node_id] < self.timeout:
            return
        if self._namenode.is_live(node_id):
            self._namenode.mark_dead(node_id)
            for callback in self._on_dead:
                callback(node_id, now)
            self._bus.publish(NodeDeclaredDead(time=now, node_id=node_id))
