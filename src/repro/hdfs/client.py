"""The HDFS client shell: ``copyFromLocal``, ``cp``, and ``adapt``.

Section IV.A defines three interfaces to ADAPT: ``copyFromLocal`` and
``cp`` gain an extra flag that enables availability-aware placement for the
written file, and a new ``adapt`` command redistributes an existing file's
blocks (analogous to the native rebalancer). :class:`DfsClient` exposes all
three against a :class:`~repro.hdfs.namenode.NameNode`; with ADAPT disabled
(``adapt_enabled=False``) the stock random placement runs, so the original
behaviour is fully preserved ("HDFS can be configured and used in its
original implementation, if ADAPT is disabled").
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import Dict, List, Optional

from repro.core.ids import NodeId
from repro.core.placement import AdaptPlacement, PlacementPolicy, RandomPlacement
from repro.core.rebalance import RebalanceMove
from repro.hdfs.blocks import DfsFile
from repro.hdfs.namenode import NameNode
from repro.util.rng import RandomSource
from repro.util.validation import check_positive


@dataclass(frozen=True)
class AdaptReport:
    """Outcome of an ``adapt <file>`` invocation."""

    file_name: str
    moves: List[RebalanceMove]
    bytes_moved: int

    @property
    def move_count(self) -> int:
        return len(self.moves)


class DfsClient:
    """Client-side shell operations against one NameNode."""

    def __init__(
        self,
        namenode: NameNode,
        rng: RandomSource,
        default_block_size: int = 64 * 1024 * 1024,
        default_gamma: float = 12.0,
    ) -> None:
        self._namenode = namenode
        self._rng = rng
        self._block_size = int(check_positive("default_block_size", default_block_size))
        self._gamma = check_positive("default_gamma", default_gamma)

    @property
    def namenode(self) -> NameNode:
        return self._namenode

    def _policy(self, adapt_enabled: bool, policy: Optional[PlacementPolicy]) -> PlacementPolicy:
        if policy is not None:
            return policy
        return AdaptPlacement() if adapt_enabled else RandomPlacement()

    # -- shell commands -----------------------------------------------------------

    def copy_from_local(
        self,
        name: str,
        size_bytes: Optional[int] = None,
        num_blocks: Optional[int] = None,
        block_size: Optional[int] = None,
        replication: int = 1,
        adapt_enabled: bool = False,
        policy: Optional[PlacementPolicy] = None,
        gamma: Optional[float] = None,
    ) -> DfsFile:
        """``hdfs copyFromLocal [-adapt] <local> <name>``.

        Give either ``size_bytes`` (rounded up to whole blocks) or
        ``num_blocks``. The ``adapt_enabled`` flag is the paper's added
        shell argument; ``policy`` overrides it for experiments that need
        the naive baseline.
        """
        block = int(block_size) if block_size is not None else self._block_size
        if (size_bytes is None) == (num_blocks is None):
            raise ValueError("give exactly one of size_bytes or num_blocks")
        if num_blocks is None:
            assert size_bytes is not None
            check_positive("size_bytes", size_bytes)
            num_blocks = max(int(math.ceil(size_bytes / block)), 1)
        return self._namenode.create_file(
            name=name,
            num_blocks=num_blocks,
            block_size=block,
            replication=replication,
            policy=self._policy(adapt_enabled, policy),
            gamma=gamma if gamma is not None else self._gamma,
            rng=self._rng,
        )

    def cp(
        self,
        source: str,
        destination: str,
        adapt_enabled: bool = False,
        policy: Optional[PlacementPolicy] = None,
        gamma: Optional[float] = None,
    ) -> DfsFile:
        """``hdfs cp [-adapt] <src> <dst>``: copy with fresh placement."""
        src = self._namenode.file(source)
        return self._namenode.create_file(
            name=destination,
            num_blocks=src.num_blocks,
            block_size=src.block_size,
            replication=src.replication,
            policy=self._policy(adapt_enabled, policy),
            gamma=gamma if gamma is not None else self._gamma,
            rng=self._rng,
        )

    def adapt(
        self,
        name: str,
        policy: Optional[PlacementPolicy] = None,
        gamma: Optional[float] = None,
    ) -> AdaptReport:
        """``hdfs adapt <name>``: redistribute an existing file in place.

        Plans the availability-aware move set and applies it at the
        metadata level; the returned report carries the moves and total
        bytes relocated (the migration the command would generate).
        """
        chosen = policy if policy is not None else AdaptPlacement()
        moves = self._namenode.plan_adapt(
            name,
            policy=chosen,
            gamma=gamma if gamma is not None else self._gamma,
            rng=self._rng,
        )
        moved = 0
        for move in moves:
            self._namenode.apply_move(move)
            moved += self._namenode.block(move.block_id).size_bytes
        return AdaptReport(file_name=name, moves=moves, bytes_moved=moved)

    # -- inspection ------------------------------------------------------------------

    def ls(self) -> List[str]:
        """File names in the namespace."""
        return self._namenode.file_names

    def rm(self, name: str) -> None:
        """Delete a file."""
        self._namenode.delete_file(name)

    def block_distribution(self, name: str) -> Dict[NodeId, int]:
        """Replica count per node for a file."""
        return self._namenode.block_distribution(name)

    def storage_skew(self, name: str) -> float:
        """Max/mean replica count over nodes — the storage-fidelity metric
        the Section IV.C threshold is designed to bound."""
        counts = list(self._namenode.block_distribution(name).values())
        mean = sum(counts) / len(counts)
        if mean == 0:
            raise ValueError(f"file {name!r} has no replicas")
        return max(counts) / mean
