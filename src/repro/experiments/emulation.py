"""Figures 3 & 4: the emulated non-dedicated environment (Section V.B).

Three sweeps, each producing both the elapsed-time panel (Figure 3) and
the locality panel (Figure 4) from the same runs:

* ``sweep_interrupted_ratio`` — 1/4, 1/2, 3/4 of the nodes interrupted
  (Figures 3a / 4a);
* ``sweep_bandwidth`` — 4 to 32 Mb/s (Figures 3b / 4b);
* ``sweep_node_count`` — 32 to 256 nodes (Figures 3c / 4c).

Every scenario is repeated ``repetitions`` times with derived seeds and
averaged, mirroring the paper's 10-run means. Within one repetition the
same seed drives every strategy, so strategies face identical interruption
realisations (the random streams are keyed per node, not shared).

Cells are independent, so every sweep accepts a
:class:`~repro.experiments.parallel.SweepExecutor` to fan them out over
worker processes and/or serve them from the run cache; results are
reassembled in sweep order, byte-identical to a serial run.
"""

from __future__ import annotations

from typing import List, Optional, Sequence, Tuple

from repro.experiments.config import EMULATION_STRATEGIES, EmulationConfig, Strategy
from repro.experiments.parallel import CellSpec, SweepExecutor
from repro.experiments.results import ExperimentRow, SweepResult
from repro.runtime.runner import MapPhaseResult, run_map_phase
from repro.simulator.scenarios import ChaosCampaign
from repro.util.rng import derive_seed

#: Paper sweep values.
RATIO_VALUES = (0.25, 0.5, 0.75)
BANDWIDTH_VALUES = (4.0, 8.0, 16.0, 32.0)
NODE_COUNT_VALUES = (32, 64, 128, 256)


def run_emulation_point(
    config: EmulationConfig,
    strategy: Strategy,
    seed: Optional[int] = None,
    trace_out: Optional[str] = None,
    executor: Optional[SweepExecutor] = None,
    audit: Optional[str] = None,
    audit_out: Optional[str] = None,
    chaos: Optional[ChaosCampaign] = None,
) -> MapPhaseResult:
    """Run one (configuration, strategy) cell once.

    ``trace_out`` exports the run's bus-event stream as JSON Lines.
    ``audit`` / ``audit_out`` enable cross-layer invariant auditing and
    export its report. ``chaos`` layers a scripted campaign on the run.
    With an ``executor`` the cell goes through its run cache; tracing,
    auditing and chaos always run live — they are side effects (or extra
    result surface) the cache key does not cover.
    """
    run_seed = config.seed if seed is None else seed
    if (
        executor is not None
        and trace_out is None
        and audit is None
        and audit_out is None
        and chaos is None
    ):
        return executor.run_cell(CellSpec("emulation", config, strategy, run_seed))
    hosts = config.hosts()
    return run_map_phase(
        hosts=hosts,
        config=config.cluster_config(seed=run_seed),
        policy=strategy.policy,
        replication=strategy.replication,
        blocks_per_node=config.blocks_per_node,
        trace_out=trace_out,
        audit=audit,
        audit_out=audit_out,
        chaos=chaos,
    )


def _sweep(
    name: str,
    x_label: str,
    base: EmulationConfig,
    field: str,
    values: Sequence[float],
    strategies: Sequence[Strategy],
    repetitions: int,
    executor: Optional[SweepExecutor] = None,
) -> SweepResult:
    if repetitions < 1:
        raise ValueError("repetitions must be >= 1")
    runner = executor if executor is not None else SweepExecutor()
    sweep = SweepResult(name=name, x_label=x_label)
    cells: List[Tuple[ExperimentRow, CellSpec]] = []
    for value in values:
        config = base.with_(**{field: value})
        for strategy in strategies:
            row = ExperimentRow(
                x=float(value),
                strategy_key=strategy.key,
                policy=strategy.policy,
                replication=strategy.replication,
            )
            sweep.rows.append(row)
            for rep in range(repetitions):
                seed = derive_seed(base.seed, name, value, rep)
                cells.append((row, CellSpec("emulation", config, strategy, seed)))
    results = runner.run_cells([spec for _, spec in cells])
    for (row, _), result in zip(cells, results, strict=True):
        row.add(result)
    return sweep


def sweep_interrupted_ratio(
    base: Optional[EmulationConfig] = None,
    values: Sequence[float] = RATIO_VALUES,
    strategies: Sequence[Strategy] = tuple(EMULATION_STRATEGIES),
    repetitions: int = 1,
    executor: Optional[SweepExecutor] = None,
) -> SweepResult:
    """Figures 3(a) / 4(a): vary the ratio of interrupted nodes."""
    return _sweep(
        "fig3a/4a",
        "interrupted_ratio",
        base if base is not None else EmulationConfig(),
        "interrupted_ratio",
        values,
        strategies,
        repetitions,
        executor,
    )


def sweep_bandwidth(
    base: Optional[EmulationConfig] = None,
    values: Sequence[float] = BANDWIDTH_VALUES,
    strategies: Sequence[Strategy] = tuple(EMULATION_STRATEGIES),
    repetitions: int = 1,
    executor: Optional[SweepExecutor] = None,
) -> SweepResult:
    """Figures 3(b) / 4(b): vary the network bandwidth."""
    return _sweep(
        "fig3b/4b",
        "bandwidth_mbps",
        base if base is not None else EmulationConfig(),
        "bandwidth_mbps",
        values,
        strategies,
        repetitions,
        executor,
    )


def sweep_node_count(
    base: Optional[EmulationConfig] = None,
    values: Sequence[int] = NODE_COUNT_VALUES,
    strategies: Sequence[Strategy] = tuple(EMULATION_STRATEGIES),
    repetitions: int = 1,
    executor: Optional[SweepExecutor] = None,
) -> SweepResult:
    """Figures 3(c) / 4(c): vary the cluster size."""
    return _sweep(
        "fig3c/4c",
        "node_count",
        base if base is not None else EmulationConfig(),
        "node_count",
        values,
        strategies,
        repetitions,
        executor,
    )
