"""Figure 5 and Table 1: the large-scale trace-driven simulation (Section V.C).

The paper replays SETI@home Failure Trace Archive data over 1024-16384
simulated nodes and reports per-component overhead ratios (rework,
recovery, migration, misc) against the aggregate failure-free execution
time. We draw hosts from the Table-1-calibrated synthetic SETI model (see
:mod:`repro.availability.seti`) and run the same sweeps:

* ``sweep_sim_bandwidth`` — Figure 5(a): 4 to 32 Mb/s;
* ``sweep_sim_block_size`` — Figure 5(b): 16 MB to 256 MB blocks;
* ``sweep_sim_node_count`` — Figure 5(c): 1024 to 16384 nodes.

``table1_statistics`` regenerates Table 1 itself: pooled MTBI/duration
statistics of the synthetic traces, to be compared against the paper's
numbers.

Each sweep accepts a :class:`~repro.experiments.parallel.SweepExecutor`
— the 16384-node Figure 5(c) points are the slowest cells in the whole
harness, and they parallelise perfectly (cells share nothing).
"""

from __future__ import annotations

from typing import Dict, List, Optional, Sequence, Tuple

from repro.availability.seti import SetiTraceGenerator
from repro.availability.traces import pooled_summary
from repro.experiments.config import SIMULATION_STRATEGIES, SimulationConfig, Strategy
from repro.experiments.parallel import CellSpec, SweepExecutor
from repro.experiments.results import ExperimentRow, SweepResult
from repro.runtime.runner import MapPhaseResult, run_map_phase
from repro.util.rng import RandomSource, derive_seed
from repro.util.stats import SummaryStats
from repro.util.units import MB

#: Paper sweep values.
SIM_BANDWIDTH_VALUES = (4.0, 8.0, 16.0, 32.0)
SIM_BLOCK_SIZE_VALUES = (16 * MB, 32 * MB, 64 * MB, 128 * MB, 256 * MB)
SIM_NODE_COUNT_VALUES = (1024, 2048, 4096, 8192, 16384)


def table1_statistics(
    node_count: int = 4096,
    horizon: float = 0.5 * 365 * 86400.0,
    seed: int = 0,
    config: Optional[SimulationConfig] = None,
) -> Dict[str, SummaryStats]:
    """Regenerate Table 1 from the synthetic SETI trace model.

    Materialises ``node_count`` host traces over ``horizon`` seconds and
    pools their interruption inter-arrivals and durations. Larger counts
    and horizons tighten the heavy-tail estimates at linear cost.
    """
    base = config if config is not None else SimulationConfig(seed=seed)
    generator = SetiTraceGenerator(
        base.seti_params(), RandomSource(seed).substream("table1")
    )
    traces = generator.sample_traces(node_count, horizon)
    return pooled_summary(traces)


def run_simulation_point(
    config: SimulationConfig,
    strategy: Strategy,
    seed: Optional[int] = None,
    executor: Optional[SweepExecutor] = None,
) -> MapPhaseResult:
    """Run one (configuration, strategy) cell of Figure 5 once."""
    run_seed = config.seed if seed is None else seed
    if executor is not None:
        return executor.run_cell(CellSpec("simulation", config, strategy, run_seed))
    hosts = config.hosts(seed=run_seed)
    return run_map_phase(
        hosts=hosts,
        config=config.cluster_config(seed=run_seed),
        policy=strategy.policy,
        replication=strategy.replication,
        blocks_per_node=config.tasks_per_node,
    )


def _sweep(
    name: str,
    x_label: str,
    base: SimulationConfig,
    field: str,
    values: Sequence[float],
    strategies: Sequence[Strategy],
    repetitions: int,
    executor: Optional[SweepExecutor] = None,
) -> SweepResult:
    if repetitions < 1:
        raise ValueError("repetitions must be >= 1")
    runner = executor if executor is not None else SweepExecutor()
    sweep = SweepResult(name=name, x_label=x_label)
    cells: List[Tuple[ExperimentRow, CellSpec]] = []
    for value in values:
        config = base.with_(**{field: int(value) if field != "bandwidth_mbps" else value})
        for strategy in strategies:
            row = ExperimentRow(
                x=float(value),
                strategy_key=strategy.key,
                policy=strategy.policy,
                replication=strategy.replication,
            )
            sweep.rows.append(row)
            for rep in range(repetitions):
                seed = derive_seed(base.seed, name, value, rep)
                cells.append((row, CellSpec("simulation", config, strategy, seed)))
    results = runner.run_cells([spec for _, spec in cells])
    for (row, _), result in zip(cells, results, strict=True):
        row.add(result)
    return sweep


def sweep_sim_bandwidth(
    base: Optional[SimulationConfig] = None,
    values: Sequence[float] = SIM_BANDWIDTH_VALUES,
    strategies: Sequence[Strategy] = tuple(SIMULATION_STRATEGIES),
    repetitions: int = 1,
    executor: Optional[SweepExecutor] = None,
) -> SweepResult:
    """Figure 5(a): overhead breakdown vs network bandwidth."""
    return _sweep(
        "fig5a",
        "bandwidth_mbps",
        base if base is not None else SimulationConfig(),
        "bandwidth_mbps",
        values,
        strategies,
        repetitions,
        executor,
    )


def sweep_sim_block_size(
    base: Optional[SimulationConfig] = None,
    values: Sequence[float] = SIM_BLOCK_SIZE_VALUES,
    strategies: Sequence[Strategy] = tuple(SIMULATION_STRATEGIES),
    repetitions: int = 1,
    executor: Optional[SweepExecutor] = None,
) -> SweepResult:
    """Figure 5(b): overhead breakdown vs block size.

    The number of tasks shrinks as blocks grow (fixed input bytes per
    node), and gamma scales with the block size, as in the paper.
    """
    if repetitions < 1:
        raise ValueError("repetitions must be >= 1")
    base_config = base if base is not None else SimulationConfig()
    runner = executor if executor is not None else SweepExecutor()
    sweep = SweepResult(name="fig5b", x_label="block_size_mb")
    cells: List[Tuple[ExperimentRow, CellSpec]] = []
    for value in values:
        block = int(value)
        # Keep per-node input constant: tasks_per_node scales inversely.
        scale = base_config.block_size_bytes / block
        config = base_config.with_(
            block_size_bytes=block,
            tasks_per_node=max(base_config.tasks_per_node * scale, 1.0),
        )
        for strategy in strategies:
            row = ExperimentRow(
                x=block / MB,
                strategy_key=strategy.key,
                policy=strategy.policy,
                replication=strategy.replication,
            )
            sweep.rows.append(row)
            for rep in range(repetitions):
                seed = derive_seed(base_config.seed, "fig5b", block, rep)
                cells.append((row, CellSpec("simulation", config, strategy, seed)))
    results = runner.run_cells([spec for _, spec in cells])
    for (row, _), result in zip(cells, results, strict=True):
        row.add(result)
    return sweep


def sweep_sim_node_count(
    base: Optional[SimulationConfig] = None,
    values: Sequence[int] = SIM_NODE_COUNT_VALUES,
    strategies: Sequence[Strategy] = tuple(SIMULATION_STRATEGIES),
    repetitions: int = 1,
    executor: Optional[SweepExecutor] = None,
) -> SweepResult:
    """Figure 5(c): overhead breakdown vs cluster size."""
    return _sweep(
        "fig5c",
        "node_count",
        base if base is not None else SimulationConfig(),
        "node_count",
        values,
        strategies,
        repetitions,
        executor,
    )
