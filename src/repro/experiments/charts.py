"""ASCII charts for experiment results.

The paper presents Figures 3-5 as bar charts; these helpers render the
same visual structure in plain text so a terminal run of the benchmark
harness communicates shape at a glance (who wins, which component
dominates), complementing the numeric tables in
:mod:`repro.experiments.reporting`.
"""

from __future__ import annotations

from typing import Dict, List, Mapping, Sequence

from repro.experiments.results import SweepResult

#: Glyph per overhead component, used in stacked bars.
_COMPONENT_GLYPHS = (
    ("rework", "r"),
    ("recovery", "R"),
    ("migration", "M"),
    ("misc", "#"),
)


def bar_chart(
    values: Mapping[str, float],
    width: int = 50,
    title: str = "",
) -> str:
    """Horizontal bars for a label -> value mapping (natural order kept)."""
    if not values:
        raise ValueError("nothing to chart")
    if width < 1:
        raise ValueError(f"width must be >= 1, got {width}")
    peak = max(values.values())
    if peak < 0:
        raise ValueError("bar values must be non-negative")
    label_width = max(len(str(k)) for k in values)
    lines: List[str] = [title] if title else []
    for label, value in values.items():
        if value < 0:
            raise ValueError(f"bar value for {label!r} is negative")
        filled = 0 if peak == 0 else int(round(width * value / peak))
        lines.append(f"{str(label).ljust(label_width)} | {'█' * filled} {value:g}")
    return "\n".join(lines)


def elapsed_chart(sweep: SweepResult, x: float, width: int = 50) -> str:
    """One x-value of a Figure 3 panel as bars (one bar per strategy)."""
    values = {key: sweep.row(x, key).elapsed for key in sweep.strategy_keys()}
    return bar_chart(values, width=width, title=f"{sweep.name} @ {sweep.x_label}={x:g} (s)")


def stacked_overhead_chart(
    sweep: SweepResult,
    x: float,
    width: int = 60,
) -> str:
    """One x-value of a Figure 5 panel as stacked component bars.

    Each strategy's bar is segmented by component glyph (r=rework,
    R=recovery, M=migration, #=misc); segment lengths are proportional to
    the component's overhead ratio on a scale shared across strategies.
    """
    keys = sweep.strategy_keys()
    if not keys:
        raise ValueError("sweep has no strategies")
    totals = {key: sweep.row(x, key).overhead("total") for key in keys}
    peak = max(totals.values())
    label_width = max(len(k) for k in keys)
    lines = [
        f"{sweep.name} @ {sweep.x_label}={x:g} "
        "(r=rework R=recovery M=migration #=misc; length ∝ overhead ratio)"
    ]
    for key in keys:
        row = sweep.row(x, key)
        bar = ""
        for component, glyph in _COMPONENT_GLYPHS:
            ratio = row.overhead(component)
            segment = 0 if peak == 0 else int(round(width * ratio / peak))
            bar += glyph * segment
        lines.append(f"{key.ljust(label_width)} | {bar} {totals[key]:.2f}")
    return "\n".join(lines)


def series_sparkline(values: Sequence[float], levels: str = "▁▂▃▄▅▆▇█") -> str:
    """A one-line sparkline of a metric series (trend at a glance)."""
    if not values:
        raise ValueError("nothing to sparkline")
    low = min(values)
    high = max(values)
    if high == low:
        return levels[0] * len(values)
    span = high - low
    out = []
    for value in values:
        index = int((value - low) / span * (len(levels) - 1))
        out.append(levels[index])
    return "".join(out)
