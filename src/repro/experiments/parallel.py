"""Parallel sweep execution with a content-addressed run cache.

The paper's evaluation is a grid of *independent* (configuration,
strategy, seed) simulation cells — Figures 3–5 and Table 1 never share
state between cells. :class:`SweepExecutor` exploits that: a sweep is
flattened into a list of picklable :class:`CellSpec` records, fanned out
over a :class:`concurrent.futures.ProcessPoolExecutor`, and reassembled
**keyed by cell position** — never by completion order — so parallel
output is byte-identical to a serial run (every cell is a deterministic
function of its spec; the golden-determinism tests assert the equality
end-to-end).

``jobs=1`` bypasses the pool entirely and runs cells in-process, so CI,
debuggers, and profilers see exactly the code path they always did. The
worker count comes from (in priority order) an explicit ``jobs=``
argument, the CLI's ``--jobs``, or the ``REPRO_JOBS`` environment
variable.

The run cache (``cache_dir=`` / ``--cache-dir``) is content-addressed:
each cell hashes its config dataclass, strategy, seed, and a code-version
salt to a JSON result file. Re-running a benchmark after an unrelated
edit skips every completed cell; bumping :data:`CACHE_SALT` (done
whenever simulation semantics change) invalidates all prior entries at
once. Cached results round-trip through JSON exactly — Python floats
serialise via shortest-repr, so a cache hit reproduces the original
``MapPhaseResult`` bit for bit.
"""

from __future__ import annotations

import dataclasses
import hashlib
import json
import os
from concurrent.futures import ProcessPoolExecutor
from dataclasses import dataclass
from pathlib import Path
from typing import Dict, List, Optional, Sequence, Union

from repro.experiments.config import EmulationConfig, SimulationConfig, Strategy
from repro.runtime.runner import MapPhaseResult
from repro.simulator.metrics import DurabilityMetrics, OverheadBreakdown

#: Code-version salt folded into every cache key. Bump whenever a change
#: alters simulated trajectories (placement, scheduling, network,
#: failure semantics, ...) so stale results cannot leak into new sweeps.
CACHE_SALT = "adapt-cells-v1"

#: Environment variable consulted when no explicit worker count is given.
JOBS_ENV = "REPRO_JOBS"

ExperimentConfig = Union[EmulationConfig, SimulationConfig]


def default_jobs() -> int:
    """Worker count from ``REPRO_JOBS``; 1 (serial) when unset/invalid."""
    raw = os.environ.get(JOBS_ENV, "").strip()
    if not raw:
        return 1
    try:
        return max(int(raw), 1)
    except ValueError:
        raise ValueError(f"{JOBS_ENV} must be an integer, got {raw!r}") from None


@dataclass(frozen=True)
class CellSpec:
    """One independent sweep cell: everything a worker needs, picklable.

    ``kind`` selects the experiment driver (``"emulation"`` runs
    :func:`repro.experiments.emulation.run_emulation_point`,
    ``"simulation"`` runs
    :func:`repro.experiments.largescale.run_simulation_point`); the
    ``config`` dataclass, ``strategy``, and resolved ``seed`` pin the
    cell's entire trajectory.
    """

    kind: str
    config: ExperimentConfig
    strategy: Strategy
    seed: int

    def __post_init__(self) -> None:
        if self.kind not in ("emulation", "simulation"):
            raise ValueError(f"unknown cell kind {self.kind!r}")


def execute_cell(spec: CellSpec) -> MapPhaseResult:
    """Run one cell to completion (the worker-process entry point)."""
    # Imports are deferred: this module is imported *by* the drivers it
    # dispatches to, and workers only pay for the branch they take.
    if spec.kind == "emulation":
        from repro.experiments.emulation import run_emulation_point

        return run_emulation_point(spec.config, spec.strategy, seed=spec.seed)
    from repro.experiments.largescale import run_simulation_point

    return run_simulation_point(spec.config, spec.strategy, seed=spec.seed)


def cell_cache_key(spec: CellSpec, salt: str = CACHE_SALT) -> str:
    """Content hash identifying a cell's result file.

    Covers the config dataclass (field by field), the config *type* (the
    same field values mean different things to different drivers), the
    strategy, the resolved seed, and the code-version salt.
    """
    payload = {
        "kind": spec.kind,
        "config_type": type(spec.config).__name__,
        "config": dataclasses.asdict(spec.config),
        "policy": spec.strategy.policy,
        "replication": spec.strategy.replication,
        "seed": spec.seed,
        "salt": salt,
    }
    blob = json.dumps(payload, sort_keys=True, separators=(",", ":"))
    return hashlib.sha256(blob.encode("utf-8")).hexdigest()


# -- MapPhaseResult <-> JSON ---------------------------------------------------


def result_to_jsonable(result: MapPhaseResult) -> Dict[str, object]:
    """Flatten a result to JSON-safe primitives (exact float round-trip)."""
    payload = dataclasses.asdict(result)
    durability = payload.get("durability")
    if durability is not None:
        # DurabilityMetrics carries a set of lost block ids; JSON needs a list.
        durability["_lost_ids"] = sorted(durability["_lost_ids"])
    return payload


def result_from_jsonable(payload: Dict[str, object]) -> MapPhaseResult:
    """Rebuild a :class:`MapPhaseResult` from :func:`result_to_jsonable`."""
    fields = dict(payload)
    fields["breakdown"] = OverheadBreakdown(**fields["breakdown"])  # type: ignore[arg-type]
    durability = fields.get("durability")
    if durability is not None:
        durability = dict(durability)  # type: ignore[arg-type]
        durability["_lost_ids"] = set(durability["_lost_ids"])
        fields["durability"] = DurabilityMetrics(**durability)
    return MapPhaseResult(**fields)  # type: ignore[arg-type]


class SweepExecutor:
    """Runs sweep cells — serially, in parallel, and/or from cache.

    One executor can serve many sweeps; its hit/miss counters accumulate
    across :meth:`run_cells` calls (benchmarks report them per session).
    """

    def __init__(
        self,
        jobs: Optional[int] = None,
        cache_dir: Optional[Union[str, Path]] = None,
        salt: str = CACHE_SALT,
    ) -> None:
        self.jobs = default_jobs() if jobs is None else max(int(jobs), 1)
        self.cache_dir = Path(cache_dir) if cache_dir is not None else None
        self.salt = salt
        self.cache_hits = 0
        self.cache_misses = 0

    def run_cell(self, spec: CellSpec) -> MapPhaseResult:
        """Run a single cell through the cache (never forks for one cell)."""
        cached = self._cache_load(spec)
        if cached is not None:
            self.cache_hits += 1
            return cached
        self.cache_misses += 1
        result = execute_cell(spec)
        self._cache_store(spec, result)
        return result

    def run_cells(self, specs: Sequence[CellSpec]) -> List[MapPhaseResult]:
        """Run every cell; results align index-for-index with ``specs``.

        Cached cells never reach the pool. Uncached cells run either
        in-process (``jobs=1``) or across worker processes; either way the
        returned list is ordered by spec position, so downstream
        aggregation is oblivious to scheduling.
        """
        results: List[Optional[MapPhaseResult]] = [None] * len(specs)
        pending: List[int] = []
        for index, spec in enumerate(specs):
            cached = self._cache_load(spec)
            if cached is not None:
                self.cache_hits += 1
                results[index] = cached
            else:
                self.cache_misses += 1
                pending.append(index)
        if pending:
            if self.jobs == 1:
                for index in pending:
                    results[index] = execute_cell(specs[index])
            else:
                workers = min(self.jobs, len(pending))
                with ProcessPoolExecutor(max_workers=workers) as pool:
                    futures = [
                        (index, pool.submit(execute_cell, specs[index]))
                        for index in pending
                    ]
                    for index, future in futures:
                        results[index] = future.result()
            for index in pending:
                result = results[index]
                assert result is not None
                self._cache_store(specs[index], result)
        ordered: List[MapPhaseResult] = []
        for result in results:
            assert result is not None  # every index is cached or pending
            ordered.append(result)
        return ordered

    # -- cache internals -------------------------------------------------------

    def _cache_path(self, spec: CellSpec) -> Optional[Path]:
        if self.cache_dir is None:
            return None
        return self.cache_dir / f"{cell_cache_key(spec, self.salt)}.json"

    def _cache_load(self, spec: CellSpec) -> Optional[MapPhaseResult]:
        path = self._cache_path(spec)
        if path is None or not path.exists():
            return None
        try:
            payload = json.loads(path.read_text(encoding="utf-8"))
        except (OSError, ValueError):
            return None  # corrupt/truncated entry: recompute and overwrite
        return result_from_jsonable(payload)

    def _cache_store(self, spec: CellSpec, result: MapPhaseResult) -> None:
        path = self._cache_path(spec)
        if path is None:
            return
        path.parent.mkdir(parents=True, exist_ok=True)
        blob = json.dumps(result_to_jsonable(result))
        # Write-then-rename so concurrent sweeps sharing a cache directory
        # never observe a half-written entry.
        tmp = path.with_suffix(f".tmp{os.getpid()}")
        tmp.write_text(blob, encoding="utf-8")
        os.replace(tmp, path)

    def describe(self) -> Dict[str, object]:
        return {
            "jobs": self.jobs,
            "cache_dir": str(self.cache_dir) if self.cache_dir else None,
            "salt": self.salt,
            "cache_hits": self.cache_hits,
            "cache_misses": self.cache_misses,
        }
