"""Paper experiment drivers: one entry point per table/figure.

* Table 1 — :func:`repro.experiments.largescale.table1_statistics`
* Figures 3 & 4 (emulation) — :mod:`repro.experiments.emulation`
* Figure 5 (large-scale simulation) — :mod:`repro.experiments.largescale`

Each driver returns structured rows *and* can render the ASCII table with
the same axes/series the paper plots, so every benchmark prints a
recognisable reproduction of its figure.
"""

from repro.experiments.config import (
    EMULATION_STRATEGIES,
    SIMULATION_STRATEGIES,
    EmulationConfig,
    SimulationConfig,
    Strategy,
)
from repro.experiments.emulation import (
    run_emulation_point,
    sweep_bandwidth,
    sweep_interrupted_ratio,
    sweep_node_count,
)
from repro.experiments.largescale import (
    run_simulation_point,
    sweep_sim_bandwidth,
    sweep_sim_block_size,
    sweep_sim_node_count,
    table1_statistics,
)
from repro.experiments.parallel import CACHE_SALT, CellSpec, SweepExecutor
from repro.experiments.results import ExperimentRow, SweepResult
from repro.experiments.reporting import render_sweep

__all__ = [
    "CACHE_SALT",
    "CellSpec",
    "SweepExecutor",
    "Strategy",
    "EmulationConfig",
    "SimulationConfig",
    "EMULATION_STRATEGIES",
    "SIMULATION_STRATEGIES",
    "run_emulation_point",
    "sweep_interrupted_ratio",
    "sweep_bandwidth",
    "sweep_node_count",
    "run_simulation_point",
    "sweep_sim_bandwidth",
    "sweep_sim_block_size",
    "sweep_sim_node_count",
    "table1_statistics",
    "ExperimentRow",
    "SweepResult",
    "render_sweep",
]
