"""Experiment configurations: the paper's Tables 2, 3, and 4 as defaults.

``EmulationConfig`` captures Section V.A/V.B (the Magellan emulation
driving Figures 3 and 4): Table 3 defaults — 64 MB blocks, half the nodes
interrupted (Table 2 groups), 8 Mb/s, 128 nodes, 20 blocks per node.

``SimulationConfig`` captures Section V.C (Figure 5): Table 4 defaults —
8 Mb/s, 64 MB blocks, 8196 nodes, 100 tasks per node, 12 s failure-free
task time, with hosts drawn from the Table-1-calibrated SETI@home model.
"""

from __future__ import annotations

from dataclasses import dataclass, replace
from typing import List, Optional, Sequence

from repro.availability.generator import HostAvailability, build_group_hosts
from repro.availability.seti import SetiModelParams, SetiTraceGenerator
from repro.runtime.cluster import ClusterConfig
from repro.util.rng import RandomSource
from repro.util.units import MB
from repro.util.validation import check_positive, check_probability


@dataclass(frozen=True)
class Strategy:
    """One plotted series: a placement policy at a replication degree."""

    policy: str
    replication: int

    def __post_init__(self) -> None:
        if self.replication < 1:
            raise ValueError("replication must be >= 1")

    @property
    def label(self) -> str:
        noun = "replica" if self.replication == 1 else "replicas"
        return f"{self.policy} ({self.replication} {noun})"

    @property
    def key(self) -> str:
        return f"{self.policy}x{self.replication}"


#: Figure 3/4 series: existing vs ADAPT at 1 and 2 replicas (Section V.B).
EMULATION_STRATEGIES: List[Strategy] = [
    Strategy("existing", 1),
    Strategy("adapt", 1),
    Strategy("existing", 2),
    Strategy("adapt", 2),
]

#: Figure 5 series: existing x{1,2,3}, naive x1, ADAPT x{1,2} (Section V.C).
SIMULATION_STRATEGIES: List[Strategy] = [
    Strategy("existing", 1),
    Strategy("existing", 2),
    Strategy("existing", 3),
    Strategy("naive", 1),
    Strategy("adapt", 1),
    Strategy("adapt", 2),
]


@dataclass(frozen=True)
class EmulationConfig:
    """Table 3 defaults for the emulated environment (Figures 3 & 4)."""

    node_count: int = 128
    interrupted_ratio: float = 0.5
    bandwidth_mbps: float = 8.0
    block_size_bytes: int = 64 * MB
    blocks_per_node: float = 20.0
    seed: int = 0
    detection: str = "heartbeat"
    fair_sharing: bool = True
    access_during_downtime: bool = True
    oracle_estimates: bool = True
    speculation_enabled: bool = True
    #: Durability pipeline knobs (see ClusterConfig): heal under-replicated
    #: blocks, and optionally destroy nodes for good during the run.
    replication_monitor: bool = False
    permanent_failure_rate: float = 0.0
    permanent_failure_horizon: float = 600.0
    fetch_retries: int = 2
    #: Network topology (see ClusterConfig): "flat" or "clos", with rack
    #: count and trunk oversubscription; rack_aware_placement enforces the
    #: HDFS off-rack replica rule on ingest.
    topology: str = "flat"
    racks: int = 1
    oversubscription: float = 1.0
    rack_aware_placement: bool = False
    #: Response to DegradedLink chaos windows ("none" disables).
    link_mitigation: str = "none"

    def __post_init__(self) -> None:
        check_positive("node_count", self.node_count)
        check_probability("interrupted_ratio", self.interrupted_ratio)
        check_positive("bandwidth_mbps", self.bandwidth_mbps)
        check_positive("block_size_bytes", self.block_size_bytes)
        check_positive("blocks_per_node", self.blocks_per_node)
        check_probability("permanent_failure_rate", self.permanent_failure_rate)

    def with_(self, **overrides: object) -> "EmulationConfig":
        """Immutable update (sweep axes replace one field at a time)."""
        return replace(self, **overrides)  # type: ignore[arg-type]

    def hosts(self) -> List[HostAvailability]:
        """The Table 2 host population at this config's size and ratio."""
        return build_group_hosts(self.node_count, self.interrupted_ratio)

    def cluster_config(self, seed: Optional[int] = None) -> ClusterConfig:
        return ClusterConfig(
            bandwidth_mbps=self.bandwidth_mbps,
            block_size_bytes=self.block_size_bytes,
            detection=self.detection,
            fair_sharing=self.fair_sharing,
            access_during_downtime=self.access_during_downtime,
            oracle_estimates=self.oracle_estimates,
            speculation_enabled=self.speculation_enabled,
            replication_monitor=self.replication_monitor,
            permanent_failure_rate=self.permanent_failure_rate,
            permanent_failure_horizon=self.permanent_failure_horizon,
            fetch_retries=self.fetch_retries,
            topology=self.topology,
            racks=self.racks,
            oversubscription=self.oversubscription,
            rack_aware_placement=self.rack_aware_placement,
            link_mitigation=self.link_mitigation,
            seed=self.seed if seed is None else seed,
        )


@dataclass(frozen=True)
class SimulationConfig:
    """Table 4 defaults for the large-scale simulation (Figure 5).

    The network uses the fixed-cost transfer model (``fair_sharing=False``,
    one block always costs blocksize/bandwidth) and oracle failure
    detection, matching the granularity of the paper's own discrete-event
    simulator; the emulation config keeps the full contention model.
    """

    node_count: int = 8196
    bandwidth_mbps: float = 8.0
    block_size_bytes: int = 64 * MB
    tasks_per_node: float = 100.0
    seed: int = 0
    #: Hadoop-realistic failure detection: heartbeats every 60 s, a node is
    #: declared dead after 10 misses (~600 s, Hadoop's task/TaskTracker
    #: expiry). Fast oracle detection hides most of the paper's misc cost.
    detection: str = "heartbeat"
    heartbeat_interval: float = 60.0
    heartbeat_miss_threshold: int = 10
    fair_sharing: bool = False
    access_during_downtime: bool = True
    oracle_estimates: bool = True
    speculation_enabled: bool = True
    #: Start each host mid-trace (stationary window) rather than fresh-up;
    #: ~10^7 s of burn-in is several population MTBIs.
    stationary_burn_in: float = 1.0e7
    #: Input data was loaded into the DFS well before the measured job, so
    #: placement cannot condition on momentary liveness — only on the
    #: long-run availability statistics ADAPT models (Section III).
    placement_liveness_filter: bool = False
    #: Within-host duration CoV of the synthetic SETI model.
    duration_within_cov: float = 2.0
    #: Network topology (see ClusterConfig). Fixed-cost transfers still
    #: take the path min, so an oversubscribed Clos trunk can bind.
    topology: str = "flat"
    racks: int = 1
    oversubscription: float = 1.0
    rack_aware_placement: bool = False
    link_mitigation: str = "none"

    def __post_init__(self) -> None:
        check_positive("node_count", self.node_count)
        check_positive("bandwidth_mbps", self.bandwidth_mbps)
        check_positive("block_size_bytes", self.block_size_bytes)
        check_positive("tasks_per_node", self.tasks_per_node)

    def with_(self, **overrides: object) -> "SimulationConfig":
        return replace(self, **overrides)  # type: ignore[arg-type]

    def seti_params(self) -> SetiModelParams:
        from repro.availability.seti import CALIBRATED_TABLE1_PARAMS

        if self.duration_within_cov == CALIBRATED_TABLE1_PARAMS.duration_within_cov:
            # The empirically calibrated fit (see seti.py); matches Table 1
            # far better than the closed form, which ignores window merging
            # and horizon censoring.
            return CALIBRATED_TABLE1_PARAMS
        return SetiModelParams.calibrated_to_table1(
            duration_within_cov=self.duration_within_cov
        )

    def hosts(self, seed: Optional[int] = None) -> List[HostAvailability]:
        """Draw the SETI host population (host k is seed-stable)."""
        generator = SetiTraceGenerator(
            self.seti_params(),
            RandomSource(self.seed if seed is None else seed).substream("seti"),
        )
        return generator.sample_hosts(self.node_count)

    def cluster_config(self, seed: Optional[int] = None) -> ClusterConfig:
        return ClusterConfig(
            bandwidth_mbps=self.bandwidth_mbps,
            block_size_bytes=self.block_size_bytes,
            detection=self.detection,
            heartbeat_interval=self.heartbeat_interval,
            heartbeat_miss_threshold=self.heartbeat_miss_threshold,
            fair_sharing=self.fair_sharing,
            access_during_downtime=self.access_during_downtime,
            oracle_estimates=self.oracle_estimates,
            speculation_enabled=self.speculation_enabled,
            stationary_burn_in=self.stationary_burn_in,
            placement_liveness_filter=self.placement_liveness_filter,
            topology=self.topology,
            racks=self.racks,
            oversubscription=self.oversubscription,
            rack_aware_placement=self.rack_aware_placement,
            link_mitigation=self.link_mitigation,
            seed=self.seed if seed is None else seed,
        )
