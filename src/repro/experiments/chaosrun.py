"""Chaos campaign experiment: one run under fire, one baseline, one report.

``run_chaos_point`` executes a (configuration, strategy) cell twice:
once with a :class:`~repro.simulator.scenarios.ChaosCampaign` layered on
the cluster, and once as the baseline the campaign's SLO is judged
against. The chaos run's :class:`~repro.simulator.chaos.ResilienceReport`
then gets the baseline makespan folded in (makespan inflation, SLO
attainment). Both runs share the seed, so the stochastic interruption
realisation — where the baseline keeps it — is identical and the delta
isolates the campaign's effect.

Baseline modes:

* ``"fault-free"`` (default) — no stochastic interruptions and no
  campaign: the paper's dedicated-cluster reference point. Inflation
  then reads as "total price of the failure environment".
* ``"no-chaos"`` — same stochastic interruptions, campaign removed:
  inflation isolates the scripted scenarios alone.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional

from repro.experiments.config import EmulationConfig, Strategy
from repro.experiments.emulation import run_emulation_point
from repro.runtime.runner import MapPhaseResult
from repro.simulator.chaos import ResilienceReport
from repro.simulator.scenarios import ChaosCampaign

BASELINE_MODES = ("fault-free", "no-chaos")

__all__ = ["BASELINE_MODES", "ChaosRunOutcome", "run_chaos_point"]


@dataclass(frozen=True)
class ChaosRunOutcome:
    """Both runs of a chaos cell plus the baseline-aware report."""

    result: MapPhaseResult
    baseline: MapPhaseResult
    report: ResilienceReport


def run_chaos_point(
    config: EmulationConfig,
    strategy: Strategy,
    campaign: ChaosCampaign,
    seed: Optional[int] = None,
    audit: Optional[str] = None,
    trace_out: Optional[str] = None,
    baseline_mode: str = "fault-free",
) -> ChaosRunOutcome:
    """Run one chaos cell and its baseline; return the folded report."""
    if baseline_mode not in BASELINE_MODES:
        raise ValueError(
            f"baseline_mode must be one of {BASELINE_MODES}, got {baseline_mode!r}"
        )
    chaos_result = run_emulation_point(
        config,
        strategy,
        seed=seed,
        audit=audit,
        trace_out=trace_out,
        chaos=campaign,
    )
    if chaos_result.resilience is None:  # pragma: no cover - runner contract
        raise RuntimeError("chaos run produced no ResilienceReport")
    baseline_config = (
        config.with_(interrupted_ratio=0.0)
        if baseline_mode == "fault-free"
        else config
    )
    baseline_result = run_emulation_point(
        baseline_config, strategy, seed=seed, audit=audit
    )
    report = chaos_result.resilience.with_baseline(baseline_result.elapsed)
    return ChaosRunOutcome(
        result=chaos_result, baseline=baseline_result, report=report
    )
