"""Experiment result records and repetition aggregation.

The paper runs every emulation scenario 10 times and reports the mean
(Section V.A). :class:`SweepResult` holds one row per (x-value, strategy)
pair with means over repetitions; rows keep every raw repetition value so
variance can be inspected.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence

from repro.runtime.runner import MapPhaseResult
from repro.util.stats import mean


@dataclass
class ExperimentRow:
    """Aggregated measurements for one (x, strategy) cell of a figure."""

    x: float
    strategy_key: str
    policy: str
    replication: int
    elapsed_values: List[float] = field(default_factory=list)
    locality_values: List[float] = field(default_factory=list)
    overhead_values: Dict[str, List[float]] = field(default_factory=dict)

    def add(self, result: MapPhaseResult) -> None:
        """Fold in one repetition."""
        self.elapsed_values.append(result.elapsed)
        self.locality_values.append(result.data_locality)
        for component, value in result.overhead_ratios.items():
            self.overhead_values.setdefault(component, []).append(value)

    @property
    def repetitions(self) -> int:
        return len(self.elapsed_values)

    @property
    def elapsed(self) -> float:
        """Mean map-phase elapsed time (Figure 3's metric)."""
        return mean(self.elapsed_values)

    @property
    def locality(self) -> float:
        """Mean data locality (Figure 4's metric)."""
        return mean(self.locality_values)

    def overhead(self, component: str) -> float:
        """Mean overhead ratio of one component (Figure 5's metric)."""
        return mean(self.overhead_values[component])

    @property
    def overheads(self) -> Dict[str, float]:
        return {c: mean(v) for c, v in sorted(self.overhead_values.items())}


@dataclass
class SweepResult:
    """All rows of one figure panel."""

    name: str
    x_label: str
    rows: List[ExperimentRow] = field(default_factory=list)

    def row(self, x: float, strategy_key: str) -> ExperimentRow:
        """Find one cell; raises KeyError when absent."""
        for row in self.rows:
            if row.x == x and row.strategy_key == strategy_key:
                return row
        raise KeyError(f"no row for x={x}, strategy={strategy_key!r} in {self.name}")

    def x_values(self) -> List[float]:
        seen: List[float] = []
        for row in self.rows:
            if row.x not in seen:
                seen.append(row.x)
        return seen

    def strategy_keys(self) -> List[str]:
        seen: List[str] = []
        for row in self.rows:
            if row.strategy_key not in seen:
                seen.append(row.strategy_key)
        return seen

    def series(self, strategy_key: str, metric: str = "elapsed") -> List[float]:
        """One plotted line: metric values in x order for one strategy.

        ``metric`` is ``"elapsed"``, ``"locality"``, or an overhead
        component name (``"rework"``, ``"recovery"``, ``"migration"``,
        ``"misc"``, ``"total"``).
        """
        values = []
        for x in self.x_values():
            row = self.row(x, strategy_key)
            if metric == "elapsed":
                values.append(row.elapsed)
            elif metric == "locality":
                values.append(row.locality)
            else:
                values.append(row.overhead(metric))
        return values
