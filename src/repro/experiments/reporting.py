"""Render sweep results as the tables the paper plots.

``render_sweep`` prints one row per x-value with one column per strategy —
the textual equivalent of a Figure 3/4 panel — and, for overhead metrics,
one block per strategy with the component breakdown (Figure 5 bars).
"""

from __future__ import annotations

from typing import List, Sequence

from repro.experiments.results import SweepResult
from repro.util.tables import format_table

_COMPONENTS = ("rework", "recovery", "migration", "misc", "total")


def render_sweep(
    sweep: SweepResult,
    metric: str = "elapsed",
    title: str = "",
) -> str:
    """One figure panel as an ASCII table (columns = strategies)."""
    strategies = sweep.strategy_keys()
    headers = [sweep.x_label, *strategies]
    rows: List[List[object]] = []
    for x in sweep.x_values():
        cells: List[object] = [_fmt_x(x)]
        for key in strategies:
            row = sweep.row(x, key)
            if metric == "elapsed":
                cells.append(f"{row.elapsed:.1f}")
            elif metric == "locality":
                cells.append(f"{row.locality:.3f}")
            else:
                cells.append(f"{row.overhead(metric):.3f}")
        rows.append(cells)
    return format_table(headers, rows, title=title or f"{sweep.name} [{metric}]")


def render_overhead_breakdown(sweep: SweepResult, title: str = "") -> str:
    """Figure 5 style: per (x, strategy) the full component breakdown."""
    headers = [sweep.x_label, "strategy", *(f"{c}%" for c in _COMPONENTS)]
    rows: List[List[object]] = []
    for x in sweep.x_values():
        for key in sweep.strategy_keys():
            row = sweep.row(x, key)
            cells: List[object] = [_fmt_x(x), key]
            for component in _COMPONENTS:
                cells.append(f"{100 * row.overhead(component):.1f}")
            rows.append(cells)
    return format_table(headers, rows, title=title or f"{sweep.name} [overhead breakdown]")


def _fmt_x(x: float) -> str:
    if float(x).is_integer():
        return str(int(x))
    return f"{x:g}"
