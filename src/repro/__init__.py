"""repro: a from-scratch reproduction of ADAPT (ICDCS 2012).

ADAPT — Availability-aware DAta PlacemenT — dispatches MapReduce/HDFS data
blocks in proportion to each host's block-processing efficiency 1/E[T]
under interruptions, improving map-phase time and data locality in
non-dedicated distributed environments without extra replication.

Public entry points
-------------------
* the stochastic model: :func:`repro.core.expected_task_time` and friends;
* placement policies: :func:`repro.core.make_policy`
  (``existing`` / ``naive`` / ``adapt``);
* host populations: :func:`repro.availability.build_group_hosts` (Table 2
  emulation) and :class:`repro.availability.SetiTraceGenerator` (Table 1
  calibrated traces);
* end-to-end runs: :func:`repro.runtime.run_map_phase`;
* paper experiments: :mod:`repro.experiments` (one driver per figure).
"""

from repro.availability import (
    HostAvailability,
    SetiModelParams,
    SetiTraceGenerator,
    build_group_hosts,
    table2_groups,
)
from repro.core import (
    AdaptPlacement,
    NaivePlacement,
    PerformancePredictor,
    RandomPlacement,
    TaskExecutionModel,
    WeightedHashTable,
    expected_task_time,
    make_policy,
)
from repro.hdfs import DfsClient, NameNode
from repro.mapreduce import JobConf, JobTracker, MapJob
from repro.runtime import ClusterConfig, MapPhaseResult, build_cluster, run_map_phase
from repro.workloads import TerasortWorkload, make_workload

__version__ = "1.0.0"

__all__ = [
    "__version__",
    "expected_task_time",
    "TaskExecutionModel",
    "WeightedHashTable",
    "make_policy",
    "RandomPlacement",
    "NaivePlacement",
    "AdaptPlacement",
    "PerformancePredictor",
    "HostAvailability",
    "build_group_hosts",
    "table2_groups",
    "SetiTraceGenerator",
    "SetiModelParams",
    "NameNode",
    "DfsClient",
    "JobConf",
    "MapJob",
    "JobTracker",
    "ClusterConfig",
    "build_cluster",
    "run_map_phase",
    "MapPhaseResult",
    "TerasortWorkload",
    "make_workload",
]
