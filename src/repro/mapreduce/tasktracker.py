"""TaskTracker: per-node task execution under interruptions.

Executes attempts the JobTracker assigns: a local attempt runs for the
task's failure-free length gamma; a remote attempt first streams its block
from the source node over the shared network ("migration"), then runs.

Interruption semantics follow Section II.B: when the node goes down, every
live attempt dies instantly — its partial execution is *rework*, its
partial fetch wasted *migration* — and the blocks it stores persist. The
TaskTracker does all physical accounting at the instant of failure; the
JobTracker decides *when* to reschedule (it may not learn of the failure
until a heartbeat timeout or the node's return).

Hardened read path: when a remote fetch is torn down from the *source*
side (the holder died mid-stream, or its disk was wiped), the attempt is
not failed outright. If another readable replica exists, the fetch is
retried against it after an exponential backoff, up to ``fetch_retries``
times per attempt; only when the retries run out — or no surviving
replica is readable — does the attempt fail back to the JobTracker. The
backoff wait is charged to migration time (the slot is occupied acquiring
remote data), which keeps the slot-time conservation law exact.
"""

from __future__ import annotations

from typing import TYPE_CHECKING, Dict, Optional

from repro.core.ids import NodeId, NodeIds
from repro.mapreduce.job import AttemptState, TaskAttempt
from repro.simulator.engine import EventHandle, Simulator
from repro.simulator.metrics import DurabilityMetrics, MapPhaseMetrics
from repro.simulator.network import Network, Transfer
from repro.util.validation import check_positive

if TYPE_CHECKING:  # pragma: no cover - typing only
    from repro.mapreduce.jobtracker import JobTracker
    from repro.simulator.events import NodeDegraded, NodeDown, NodeRestored, NodeUp


class TaskTracker:
    """Execution agent for one node.

    Instances are slotted and the service ``name`` renders lazily (see
    :class:`~repro.hdfs.datanode.DataNode` for the rationale — per-host
    ``__dict__`` s and eager f-strings dominate construction at 226k
    nodes). Wired clusters pass ``names=`` (the cluster's id table) and
    the ``tasktracker:<host>`` string materialises on first access.
    """

    __slots__ = (
        "_sim",
        "_node_id",
        "_name",
        "_names",
        "_network",
        "_metrics",
        "_slots",
        "_fetch_retries",
        "_fetch_backoff",
        "_durability",
        "_is_up",
        "_jobtracker",
        "_live",
        "_exec_events",
        "_transfers",
        "_retry_events",
        "_retries_used",
        "_busy_seconds",
        "_exec_factor",
        "_exec_durations",
    )

    def __init__(
        self,
        sim: Simulator,
        node_id: NodeId,
        network: Network,
        metrics: MapPhaseMetrics,
        slots: int = 1,
        fetch_retries: int = 0,
        fetch_backoff: float = 1.0,
        durability: Optional[DurabilityMetrics] = None,
        name: Optional[str] = None,
        names: Optional[NodeIds] = None,
    ) -> None:
        if slots < 1:
            raise ValueError(f"slots must be >= 1, got {slots}")
        if fetch_retries < 0:
            raise ValueError(f"fetch_retries must be >= 0, got {fetch_retries}")
        check_positive("fetch_backoff", fetch_backoff)
        self._sim = sim
        self._node_id = node_id
        #: Service name; unique per node so a registry can hold all of
        #: them. Wired clusters pass the host name (reporting boundary).
        self._name = name
        self._names = names
        self._network = network
        self._metrics = metrics
        self._slots = slots
        self._fetch_retries = fetch_retries
        self._fetch_backoff = fetch_backoff
        self._durability = durability
        self._is_up = True
        self._jobtracker: Optional["JobTracker"] = None
        self._live: Dict[str, TaskAttempt] = {}
        self._exec_events: Dict[str, EventHandle] = {}
        self._transfers: Dict[str, Transfer] = {}
        self._retry_events: Dict[str, EventHandle] = {}
        self._retries_used: Dict[str, int] = {}
        self._busy_seconds = 0.0
        #: Gray-node execution slowdown (1.0 = nominal). Applies to
        #: attempts *starting* execution while degraded.
        self._exec_factor = 1.0
        #: Scheduled execution length per live attempt — useful time must
        #: match the slot time actually occupied, so a slowed attempt's
        #: completion credits its stretched duration, keeping the
        #: conservation law exact.
        self._exec_durations: Dict[str, float] = {}

    def bind(self, jobtracker: "JobTracker") -> None:
        """Attach the JobTracker (after construction, to break the cycle)."""
        self._jobtracker = jobtracker

    # -- state -------------------------------------------------------------------

    @property
    def name(self) -> str:
        if self._name is None:
            if self._names is not None:
                self._name = f"tasktracker:{self._names.name_of(self._node_id)}"
            else:
                self._name = f"tasktracker:{self._node_id}"
        return self._name

    @name.setter
    def name(self, value: str) -> None:
        self._name = value

    @property
    def node_id(self) -> NodeId:
        return self._node_id

    @property
    def is_up(self) -> bool:
        return self._is_up

    @property
    def slots(self) -> int:
        return self._slots

    @property
    def free_slots(self) -> int:
        return self._slots - len(self._live)

    @property
    def busy_seconds(self) -> float:
        """Cumulative slot-occupied time of terminal attempts (for idle
        accounting); live attempts are folded in when they end."""
        return self._busy_seconds

    @property
    def running_attempts(self) -> int:
        return len(self._live)

    def live_attempts(self) -> "list[TaskAttempt]":
        """Snapshot of the attempts currently occupying slots (for audits)."""
        return list(self._live.values())

    # -- execution ------------------------------------------------------------------

    def execute(self, attempt: TaskAttempt) -> None:
        """Run an attempt (fetch first if it is remote)."""
        if not self._is_up:
            raise RuntimeError(f"{self._node_id} is down; cannot execute {attempt}")
        if self.free_slots <= 0:
            raise RuntimeError(f"{self._node_id} has no free slot for {attempt}")
        if attempt.node_id != self._node_id:
            raise ValueError(f"{attempt} belongs to {attempt.node_id}, not {self._node_id}")
        self._live[attempt.attempt_id] = attempt
        if attempt.source_node is None:
            self._start_exec(attempt)
        else:
            attempt.state = AttemptState.FETCHING
            self._start_fetch(attempt, attempt.source_node)

    def _start_fetch(self, attempt: TaskAttempt, source: NodeId) -> None:
        attempt.source_node = source
        attempt.fetch_started = self._sim.now
        transfer = self._network.start_transfer(
            source=source,
            destination=self._node_id,
            size_bytes=attempt.task.block.size_bytes,
            on_complete=lambda t, a=attempt: self._on_fetch_done(a, t),
            on_cancel=lambda t, a=attempt: self._on_fetch_cancelled(a, t),
            label=f"fetch:{attempt.attempt_id}",
        )
        self._transfers[attempt.attempt_id] = transfer

    def _start_exec(self, attempt: TaskAttempt) -> None:
        attempt.state = AttemptState.RUNNING
        attempt.exec_started = self._sim.now
        duration = attempt.task.gamma * self._exec_factor
        self._exec_durations[attempt.attempt_id] = duration
        self._exec_events[attempt.attempt_id] = self._sim.schedule(
            duration,
            lambda: self._on_exec_done(attempt),
            label=f"exec:{attempt.attempt_id}",
        )

    def _on_exec_done(self, attempt: TaskAttempt) -> None:
        self._exec_events.pop(attempt.attempt_id, None)
        duration = self._exec_durations.get(attempt.attempt_id, attempt.task.gamma)
        self._retire(attempt, AttemptState.SUCCEEDED)
        self._metrics.add_useful(duration)
        assert self._jobtracker is not None
        self._jobtracker.on_attempt_succeeded(attempt)

    def _on_fetch_done(self, attempt: TaskAttempt, transfer: Transfer) -> None:
        if attempt.state is not AttemptState.FETCHING:
            return  # already failed/killed; late completion is moot
        self._transfers.pop(attempt.attempt_id, None)
        self._metrics.add_migration(transfer.duration)
        self._start_exec(attempt)

    def _on_fetch_cancelled(self, attempt: TaskAttempt, transfer: Transfer) -> None:
        """The network tore the fetch down (source side went unreadable).

        If the node itself is still up, another readable replica exists and
        the retry budget allows, the fetch is retried against a surviving
        replica after an exponential backoff instead of failing the attempt.
        """
        if attempt.state is not AttemptState.FETCHING:
            return  # we initiated the cancel ourselves; already accounted
        self._transfers.pop(attempt.attempt_id, None)
        assert attempt.fetch_started is not None
        self._metrics.add_migration(self._sim.now - attempt.fetch_started)
        assert self._jobtracker is not None
        used = self._retries_used.get(attempt.attempt_id, 0)
        if (
            self._is_up
            and used < self._fetch_retries
            and self._jobtracker.alternative_source(
                attempt.task, reader=self._node_id, exclude=transfer.source
            )
            is not None
        ):
            self._retries_used[attempt.attempt_id] = used + 1
            if self._durability is not None:
                self._durability.degraded_read_retries += 1
            # The attempt keeps its slot while waiting; fetch_started marks
            # the start of the wait so the backoff is charged to migration
            # when it ends (retry fires, node dies, or speculation kills us).
            attempt.fetch_started = self._sim.now
            delay = self._fetch_backoff * (2.0 ** used)
            self._retry_events[attempt.attempt_id] = self._sim.schedule(
                delay,
                lambda: self._refetch(attempt),
                label=f"refetch:{attempt.attempt_id}",
            )
            return
        self._retire(attempt, AttemptState.FAILED)
        self._jobtracker.on_attempt_failed(attempt)

    def _refetch(self, attempt: TaskAttempt) -> None:
        """Backoff elapsed: fetch again from the best surviving replica."""
        self._retry_events.pop(attempt.attempt_id, None)
        if attempt.state is not AttemptState.FETCHING or not self._is_up:
            return  # killed / node died while waiting; already accounted
        assert attempt.fetch_started is not None
        self._metrics.add_migration(self._sim.now - attempt.fetch_started)
        assert self._jobtracker is not None
        source = self._jobtracker.alternative_source(
            attempt.task, reader=self._node_id, exclude=attempt.source_node
        )
        if source is None:
            # The replica set changed during the backoff; give up cleanly.
            self._retire(attempt, AttemptState.FAILED)
            self._jobtracker.on_attempt_failed(attempt)
            return
        self._start_fetch(attempt, source)

    # -- interruption handling ---------------------------------------------------------

    def handle_node_down(self, event: "NodeDown") -> None:
        """Bus handler (COMPUTE phase, keyed by this node's id)."""
        self.on_node_down(event.time)

    def handle_node_up(self, event: "NodeUp") -> None:
        """Bus handler (SCHEDULING phase, keyed by this node's id): the
        node asks for work only after storage and detection have settled."""
        self.on_node_up(event.time)

    def handle_node_degraded(self, event: "NodeDegraded") -> None:
        """Bus handler (COMPUTE phase, keyed): enter the gray regime."""
        self.set_exec_factor(event.exec_factor)

    def handle_node_restored(self, event: "NodeRestored") -> None:
        """Bus handler (COMPUTE phase, keyed): back to nominal speed."""
        self.set_exec_factor(1.0)

    def set_exec_factor(self, factor: float) -> None:
        """Scale execution time for attempts that start while in force.

        Attempts already running keep their scheduled completion; their
        useful-time credit was fixed at start, so accounting stays exact
        whichever side of a window boundary they straddle.
        """
        if factor < 1.0:
            raise ValueError(f"exec factor must be >= 1, got {factor}")
        self._exec_factor = factor

    def on_node_down(self, time: float) -> None:
        """The host was interrupted: every live attempt dies right now."""
        self._is_up = False
        for attempt in list(self._live.values()):
            if attempt.state is AttemptState.RUNNING:
                assert attempt.exec_started is not None
                self._metrics.add_rework(self._sim.now - attempt.exec_started)
                event = self._exec_events.pop(attempt.attempt_id, None)
                if event is not None:
                    event.cancel()
            elif attempt.state is AttemptState.FETCHING:
                # An armed retry has no transfer; fetch_started then marks
                # the start of the backoff wait, charged the same way.
                assert attempt.fetch_started is not None
                self._metrics.add_migration(self._sim.now - attempt.fetch_started)
            self._retire(attempt, AttemptState.FAILED)
            transfer = self._transfers.pop(attempt.attempt_id, None)
            if transfer is not None:
                self._network.cancel(transfer)  # guarded: state is FAILED now
            assert self._jobtracker is not None
            self._jobtracker.on_attempt_failed(attempt)

    def on_node_up(self, time: float) -> None:
        """The host returned; ask for work."""
        self._is_up = True
        assert self._jobtracker is not None
        self._jobtracker.on_node_available(self._node_id)

    def kill(self, attempt: TaskAttempt) -> None:
        """Abort an attempt that lost a speculation race (or job teardown)."""
        if not attempt.is_live:
            return
        if attempt.state is AttemptState.RUNNING:
            assert attempt.exec_started is not None
            self._metrics.add_duplicate(self._sim.now - attempt.exec_started)
            event = self._exec_events.pop(attempt.attempt_id, None)
            if event is not None:
                event.cancel()
        elif attempt.state is AttemptState.FETCHING:
            assert attempt.fetch_started is not None
            self._metrics.add_migration(self._sim.now - attempt.fetch_started)
        self._retire(attempt, AttemptState.KILLED)
        transfer = self._transfers.pop(attempt.attempt_id, None)
        if transfer is not None:
            self._network.cancel(transfer)

    # -- service lifecycle ---------------------------------------------------------------

    def start(self) -> None:
        """No startup work; execution begins when the JobTracker assigns."""

    def stop(self) -> None:
        """Kill every live attempt (teardown): frees exec timers, fetch
        transfers and armed retries so the simulator heap can drain."""
        for attempt in list(self._live.values()):
            self.kill(attempt)

    def describe(self) -> Dict[str, object]:
        return {
            "node": self._node_id,
            "up": self._is_up,
            "live_attempts": len(self._live),
            "busy_seconds": self._busy_seconds,
            "exec_factor": self._exec_factor,
        }

    # -- internals -----------------------------------------------------------------------

    def _retire(self, attempt: TaskAttempt, state: AttemptState) -> None:
        attempt.retire(state, self._sim.now)
        self._live.pop(attempt.attempt_id, None)
        self._retries_used.pop(attempt.attempt_id, None)
        self._exec_durations.pop(attempt.attempt_id, None)
        retry = self._retry_events.pop(attempt.attempt_id, None)
        if retry is not None:
            retry.cancel()
        assert attempt.finished_at is not None
        self._busy_seconds += attempt.finished_at - attempt.created_at

    def __repr__(self) -> str:
        state = "up" if self._is_up else "down"
        return f"TaskTracker({self._node_id!r}, {state}, live={len(self._live)})"
