"""The JobTracker: schedules map tasks onto TaskTrackers.

Implements the Hadoop behaviour the paper describes (Section II.B):

* locality-first assignment through a pluggable
  :class:`~repro.mapreduce.scheduler.TaskScheduler`;
* remote execution ("straggler allocation to idle nodes") with block
  migration over the shared network;
* re-execution of interrupted tasks — on the same node once it returns, or
  elsewhere once the failure is detected, whichever comes first;
* speculative duplicates of straggling tasks, with losers killed;
* the full rework / recovery / migration / misc accounting of Figure 5.

Failure *detection* is decoupled from failure *occurrence*: TaskTrackers do
the physical accounting instantly, while the JobTracker only requeues work
when told (``on_node_dead`` from the heartbeat watchdog or an oracle, or
``on_node_available`` when the node itself returns). Until then a stalled
task stays "running" from the JobTracker's point of view — which is exactly
what makes it a speculation candidate.

``access_during_downtime`` (default True) models interruptions that evict
guest *computation* while the host's stored blocks stay streamable —
consistent with the paper's own semantics ("the interrupted task could also
be considered as a straggler, and be scheduled to another idle node,
leading to non-trivial data migration", with no replica constraints).
Setting it to False gives hard process-kill semantics where a down node's
replicas are unreadable (ablation).
"""

from __future__ import annotations

from typing import Callable, Dict, List, Optional, Sequence, Set, Tuple

from repro.core.ids import NodeId
from repro.core.predictor import PerformancePredictor
from repro.hdfs.namenode import NameNode
from repro.mapreduce.job import AttemptState, MapJob, MapTask, TaskAttempt, TaskState
from repro.mapreduce.scheduler import SchedulerContext, TaskScheduler, make_scheduler
from repro.mapreduce.speculation import SpeculationPolicy
from repro.mapreduce.tasktracker import TaskTracker
from repro.simulator.engine import EventHandle, Simulator
from repro.simulator.events import (
    BlockLost,
    EventBus,
    NodeDeclaredDead,
    NodeDown,
    NodeUp,
    ReplicaAdded,
    TaskStateChange,
)
from repro.simulator.metrics import MapPhaseMetrics
from repro.simulator.network import Network
from repro.util.validation import check_positive


class JobTracker(SchedulerContext):
    """Central scheduler for a single map phase at a time."""

    name = "jobtracker"

    def __init__(
        self,
        sim: Simulator,
        namenode: NameNode,
        network: Network,
        trackers: Dict[NodeId, TaskTracker],
        metrics: MapPhaseMetrics,
        access_during_downtime: bool = True,
        speculation: Optional[SpeculationPolicy] = None,
        sweep_interval: float = 3.0,
        bus: Optional[EventBus] = None,
    ) -> None:
        self._sim = sim
        self._namenode = namenode
        self._network = network
        self._trackers = dict(sorted(trackers.items()))
        self._metrics = metrics
        self._access_down = access_during_downtime
        if speculation is None:
            # Default policy: derive the remote-fetch term from the wired
            # network's uncontended rate. A bare SpeculationPolicy() would
            # hold remote attempts to the local threshold (zero fetch
            # allowance) and speculate on every contended fetch.
            speculation = SpeculationPolicy(fetch_rate_bps=network.nominal_rate_bps)
        self._speculation = speculation
        self._sweep_interval = check_positive("sweep_interval", sweep_interval)
        self._bus = bus if bus is not None else EventBus()
        self._stopped = False

        self._job: Optional[MapJob] = None
        self._scheduler: Optional[TaskScheduler] = None
        self._tasks_by_block: Dict[str, MapTask] = {}
        self._running: Dict[MapTask, None] = {}  # insertion-ordered set
        self._limbo: Dict[NodeId, List] = {}  # node -> failed, not-yet-requeued attempts
        self._idle: Dict[NodeId, None] = {}  # insertion-ordered set of starved nodes
        self._down_since: Dict[NodeId, Optional[float]] = {}
        self._down_overlap: Dict[NodeId, float] = {}
        self._busy_baseline: Dict[NodeId, float] = {}
        self._completed = 0
        self._abandoned = 0
        #: Blocks with zero surviving physical replicas — storage-level
        #: fact, so it survives across jobs.
        self._lost_blocks: Set[str] = set()
        self._sweep_event: Optional[EventHandle] = None
        self._on_complete: Optional[Callable[[MapJob], None]] = None
        # Straggler scan memoised per timestamp (cleared when time advances).
        self._spec_cache_time = -1.0
        self._spec_candidates: List[MapTask] = []

    # -- lifecycle ------------------------------------------------------------------

    @property
    def job(self) -> Optional[MapJob]:
        return self._job

    @property
    def is_done(self) -> bool:
        return self._job is not None and self._job.finished_at is not None

    @property
    def predictor(self) -> PerformancePredictor:
        return self._namenode.predictor

    def submit(
        self,
        job: MapJob,
        on_complete: Optional[Callable[[MapJob], None]] = None,
    ) -> None:
        """Start the map phase of ``job`` at the current simulation time."""
        if self._job is not None and not self.is_done:
            raise RuntimeError("a job is already running")
        self._job = job
        self._on_complete = on_complete
        self._scheduler = make_scheduler(job.conf.scheduler)
        self._running.clear()
        self._limbo.clear()
        self._idle.clear()
        self._completed = 0
        job.submitted_at = self._sim.now
        self._busy_baseline = {}
        for node_id, tracker in self._trackers.items():
            self._down_since.setdefault(node_id, None)
            self._down_overlap[node_id] = 0.0
            self._busy_baseline[node_id] = tracker.busy_seconds
        self._abandoned = 0
        self._tasks_by_block = {task.block.block_id: task for task in job.tasks}
        for task in job.tasks:
            self._metrics.add_base(task.gamma)
            self._scheduler.enqueue(task, sorted(self.holders(task)))
        # A job submitted over already-destroyed blocks must not wait on
        # tasks that can never run.
        for task in job.tasks:
            if task.block.block_id in self._lost_blocks:
                self._abandon(task)
        if self.is_done:
            return
        for node_id, tracker in self._trackers.items():
            if tracker.is_up:
                self.try_assign(node_id)
        self._arm_sweep()

    # -- SchedulerContext -----------------------------------------------------------

    def is_assignable(self, task: MapTask) -> bool:
        return task.state is TaskState.PENDING

    def holders(self, task: MapTask) -> Sequence[str]:
        return sorted(self._namenode.replica_holders(task.block.block_id))

    def readable_holders(self, task: MapTask) -> Sequence[str]:
        block_id = task.block.block_id
        # A holder whose physical storage lost the block (permanently failed
        # node, wiped but not yet purged from the location map) can never
        # serve it — even under soft access_during_downtime semantics.
        holders = [
            h for h in self.holders(task) if self._namenode.datanode(h).has_block(block_id)
        ]
        if self._access_down:
            return holders
        return [h for h in holders if self._namenode.datanode(h).is_up]

    def alternative_source(
        self,
        task: MapTask,
        reader: NodeId,
        exclude: Optional[NodeId] = None,
    ) -> Optional[NodeId]:
        """Best readable replica for a degraded-read retry, or None.

        ``exclude`` is the source that just failed; it is avoided when any
        other replica is readable, but allowed back as a last resort (it
        may have recovered by the time the backoff fires).
        """
        sources = [h for h in self.readable_holders(task) if h != reader]
        if not sources:
            return None
        pool = [h for h in sources if h != exclude] or sources
        return self.choose_source(task, pool)

    def choose_source(self, task: MapTask, sources: Sequence[str]) -> str:
        """Stream from the least-loaded replica (ties broken lexically)."""
        return min(sources, key=lambda h: (self._network.outgoing_count(h), h))

    def holder_unavailability(self, node_id: NodeId) -> float:
        estimate = self._namenode.predictor.estimate(node_id)
        return 1.0 - estimate.steady_state_availability

    def _note_task_state(self, task: MapTask, node_id: Optional[NodeId] = None) -> None:
        """Publish a :class:`TaskStateChange` (observability only).

        Guarded by :meth:`EventBus.wants` so the hot path pays nothing —
        not even event construction — when no tap or handler listens.
        """
        if self._bus.wants(TaskStateChange):
            self._bus.publish(
                TaskStateChange(
                    time=self._sim.now,
                    task_id=task.task_id,
                    state=task.state.name,
                    node_id=node_id,
                )
            )

    # -- assignment -------------------------------------------------------------------

    def try_assign(self, node_id: NodeId) -> None:
        """Hand the node as much work as its slots allow."""
        if self._stopped or self._job is None or self.is_done or self._scheduler is None:
            return
        tracker = self._trackers[node_id]
        if not tracker.is_up:
            self._idle.pop(node_id, None)
            return
        while tracker.free_slots > 0:
            picked = self._scheduler.pick(node_id, self)
            speculative = False
            if picked is None and self._speculation.enabled:
                picked = self._pick_speculative(node_id)
                speculative = picked is not None
            if picked is None:
                break
            task, source = picked
            self._assign(node_id, task, source, speculative)
        if tracker.free_slots > 0:
            self._idle[node_id] = None
        else:
            self._idle.pop(node_id, None)

    def _assign(
        self,
        node_id: NodeId,
        task: MapTask,
        source: Optional[NodeId],
        speculative: bool,
    ) -> None:
        attempt = task.new_attempt(
            node_id=node_id,
            local=source is None,
            speculative=speculative,
            now=self._sim.now,
            source_node=source,
        )
        if speculative:
            self._metrics.speculative_attempts += 1
        task.state = TaskState.RUNNING
        self._running[task] = None
        self._note_task_state(task, node_id)
        self._trackers[node_id].execute(attempt)

    def _straggler_candidates(self) -> List[MapTask]:
        """Straggling tasks with speculation capacity, worst first.

        The scan over all running tasks is memoised per simulation
        timestamp: straggler status only depends on the clock and on
        attempt events, and every attempt event advances or reuses the
        cached list (picked tasks are removed from it eagerly).
        """
        now = self._sim.now
        # Monotonic clock: "cache stale" is "clock advanced", not float
        # identity (simlint D004).
        if self._spec_cache_time < now:
            scored: List[Tuple[int, float, MapTask]] = []
            for task in self._running:
                if not self._speculation.is_straggling(task, now):
                    continue
                if task.speculative_count() >= self._speculation.max_per_task:
                    continue
                live = task.live_attempts()
                if live:
                    scored.append((1, -max(a.elapsed(now) for a in live), task))
                else:
                    scored.append((0, 0.0, task))  # stalled: node died silently
            scored.sort(key=lambda item: (item[0], item[1]))
            self._spec_candidates = [task for _stalled, _score, task in scored]
            self._spec_cache_time = now
        return self._spec_candidates

    def _pick_speculative(self, node_id: NodeId) -> Optional[Tuple[MapTask, Optional[NodeId]]]:
        """Find the most-stalled straggler this node can duplicate."""
        now = self._sim.now
        for task in list(self._straggler_candidates()):
            if not self._speculation.may_speculate(task, node_id, now):
                if task.is_completed or task.speculative_count() >= self._speculation.max_per_task:
                    self._spec_candidates.remove(task)
                continue
            if node_id in self.holders(task) and self._namenode.datanode(node_id).has_block(
                task.block.block_id
            ):
                self._spec_candidates.remove(task)
                return task, None
            sources = [h for h in self.readable_holders(task) if h != node_id]
            if not sources:
                continue
            self._spec_candidates.remove(task)
            return task, self.choose_source(task, sources)
        return None

    # -- attempt outcomes ---------------------------------------------------------------

    def on_attempt_succeeded(self, attempt: TaskAttempt) -> None:
        """A TaskTracker finished an attempt."""
        task: MapTask = attempt.task
        if task.is_completed:
            return
        task.state = TaskState.COMPLETED
        task.completed_by = attempt
        self._running.pop(task, None)
        self._note_task_state(task, attempt.node_id)
        self._completed += 1
        self._metrics.record_completion(local=attempt.local)
        freed = [attempt.node_id]
        for other in task.live_attempts():
            self._trackers[other.node_id].kill(other)
            freed.append(other.node_id)
        assert self._job is not None
        if self._completed + self._abandoned == self._job.num_tasks:
            self._finish()
            return
        for node_id in freed:
            self.try_assign(node_id)

    def on_attempt_failed(self, attempt: TaskAttempt) -> None:
        """A TaskTracker reports an attempt died (accounting already done)."""
        if self._job is None or self.is_done:
            return
        task: MapTask = attempt.task
        if task.is_completed:
            return
        node_id = attempt.node_id
        if self._trackers[node_id].is_up:
            # The node survived (the *source* side broke a fetch): retry now.
            self._maybe_requeue(task)
            self.try_assign(node_id)
        else:
            # The node died with the attempt; requeue when the JobTracker
            # hears about it (detection or the node's return).
            self._limbo.setdefault(node_id, []).append(attempt)

    def _maybe_requeue(self, task: MapTask) -> None:
        if task.is_completed or task.has_live_attempt():
            return
        if task.state is TaskState.ABANDONED:
            return
        if task.block.block_id in self._lost_blocks:
            self._abandon(task)
            return
        if task.state is TaskState.PENDING:
            return  # already queued
        task.state = TaskState.PENDING
        self._running.pop(task, None)
        self._note_task_state(task)
        assert self._scheduler is not None
        holders = sorted(self.holders(task))
        self._scheduler.enqueue(task, holders)
        # Poke the nodes that could take it: its holders first, else any
        # starved node (one is enough; any idle node can steal remotely).
        for holder in holders:
            if holder in self._idle:
                self.try_assign(holder)
                if not self.is_assignable(task):
                    return
        # Any starved node can steal it remotely; a few pokes almost always
        # place it, and the periodic sweep mops up the rare leftover.
        for node_id in list(self._idle)[:4]:
            self.try_assign(node_id)
            if not self.is_assignable(task):
                return

    def _abandon(self, task: MapTask) -> None:
        """Give up on a task whose input block no longer exists anywhere."""
        if task.is_completed or task.state is TaskState.ABANDONED:
            return
        task.state = TaskState.ABANDONED
        self._running.pop(task, None)
        self._note_task_state(task)
        self._abandoned += 1
        assert self._job is not None
        if self._completed + self._abandoned == self._job.num_tasks:
            self._finish()

    def on_block_lost(self, block_id: str) -> None:
        """Permanent failures destroyed the block's last physical replica.

        Tasks over the block can never (re-)run. A live attempt already
        streamed (or holds) its input, so it may still succeed — if it later
        fails, :meth:`_maybe_requeue` abandons the task then.
        """
        self._lost_blocks.add(block_id)
        if self._job is None or self.is_done:
            return
        task = self._tasks_by_block.get(block_id)
        if task is None or task.is_completed:
            return
        if not task.has_live_attempt():
            self._abandon(task)

    # -- bus adapters ---------------------------------------------------------------------

    def handle_node_down_physical(self, event: NodeDown) -> None:
        """Bus handler (ACCOUNTING phase): open the downtime interval."""
        self._metrics.record_interruption()
        self.on_node_down_physical(event.node_id, event.time)

    def handle_node_up_physical(self, event: NodeUp) -> None:
        """Bus handler (ACCOUNTING phase): close the downtime interval."""
        self._metrics.record_node_return()
        self.on_node_up_physical(event.node_id, event.time)

    def handle_node_dead(self, event: NodeDeclaredDead) -> None:
        """Bus handler (SCHEDULING phase): requeue the dead node's limbo."""
        self.on_node_dead(event.node_id, event.time)

    def handle_block_lost(self, event: BlockLost) -> None:
        """Bus handler (SCHEDULING phase): the block is gone everywhere."""
        self.on_block_lost(event.block_id)

    def handle_replica_added(self, event: ReplicaAdded) -> None:
        """Bus handler (SCHEDULING phase): fresh locality opportunity."""
        self.on_replica_added(event.block_id, event.node_id)

    # -- cluster signals ------------------------------------------------------------------

    def on_node_available(self, node_id: NodeId) -> None:
        """The node (physically) returned and is asking for work."""
        for attempt in self._limbo.pop(node_id, []):
            self._maybe_requeue(attempt.task)
        released = 0
        if self._scheduler is not None:
            released = self._scheduler.on_node_returned(node_id)
        if self._job is None or self.is_done:
            return
        self.try_assign(node_id)
        if released:
            # Previously-unreachable blocks are streamable again; starved
            # nodes can pick them up (requeues above poke idle nodes
            # themselves inside _maybe_requeue).
            for idle_node in list(self._idle):
                self.try_assign(idle_node)

    def on_node_dead(self, node_id: NodeId, time: float) -> None:
        """Failure detection fired (heartbeat timeout or oracle)."""
        for attempt in self._limbo.pop(node_id, []):
            self._maybe_requeue(attempt.task)

    def on_replica_added(self, block_id: str, node_id: NodeId) -> None:
        """A re-replication copy landed: the replica map moved under us.

        If the block's task is still pending, the new holder opens a fresh
        locality opportunity — enqueue it node-locally and poke the node.
        """
        if self._job is None or self.is_done or self._scheduler is None:
            return
        task = self._tasks_by_block.get(block_id)
        if task is None:
            return
        if self.is_assignable(task):
            self._scheduler.enqueue(task, [node_id])
        self.try_assign(node_id)

    def on_node_down_physical(self, node_id: NodeId, time: float) -> None:
        """Raw injector signal, used only for recovery-time accounting."""
        self._down_since[node_id] = time
        self._idle.pop(node_id, None)

    def on_node_up_physical(self, node_id: NodeId, time: float) -> None:
        """Raw injector signal closing a downtime interval."""
        started = self._down_since.get(node_id)
        self._down_since[node_id] = None
        if started is None:
            return
        if self._job is not None and self._job.submitted_at is not None and not self.is_done:
            overlap_start = max(started, self._job.submitted_at)
            if time > overlap_start:
                self._down_overlap[node_id] = (
                    self._down_overlap.get(node_id, 0.0) + time - overlap_start
                )

    # -- end-game sweep ----------------------------------------------------------------------

    def _arm_sweep(self) -> None:
        if self._stopped:
            return
        self._sweep_event = self._sim.schedule(
            self._sweep_interval, self._sweep, label="jt-sweep"
        )

    def _sweep(self) -> None:
        """Periodic re-poll of starved nodes (speculation windows open with
        time, so idleness is not a stable state)."""
        self._sweep_event = None
        if self._job is None or self.is_done:
            return
        for node_id in list(self._idle):
            self.try_assign(node_id)
        self._arm_sweep()

    # -- completion -------------------------------------------------------------------------

    def _finish(self) -> None:
        assert self._job is not None and self._job.submitted_at is not None
        job = self._job
        job.finished_at = self._sim.now
        if self._sweep_event is not None:
            self._sweep_event.cancel()
            self._sweep_event = None
        submitted = job.submitted_at
        finished = job.finished_at
        recovery_total = 0.0
        idle_total = 0.0
        for node_id, tracker in self._trackers.items():
            overlap = self._down_overlap.get(node_id, 0.0)
            started = self._down_since.get(node_id)
            if started is not None:
                open_start = max(started, submitted)
                if finished > open_start:
                    overlap += finished - open_start
            recovery_total += overlap
            makespan = finished - submitted
            busy = tracker.busy_seconds - self._busy_baseline.get(node_id, 0.0)
            idle = makespan - busy - overlap
            idle_total += max(idle, 0.0)
        self._metrics.add_recovery(recovery_total)
        self._metrics.add_idle(idle_total)
        if self._on_complete is not None:
            self._on_complete(job)

    # -- service lifecycle --------------------------------------------------------------------

    def start(self) -> None:
        """No startup work; scheduling begins at :meth:`submit`."""

    def stop(self) -> None:
        """Disarm the sweep and refuse further assignment (teardown)."""
        self._stopped = True
        if self._sweep_event is not None:
            self._sweep_event.cancel()
            self._sweep_event = None

    def describe(self) -> Dict[str, object]:
        return {
            "job": None if self._job is None else self._job.conf.name,
            "done": self.is_done,
            "running_tasks": len(self._running),
            "completed": self._completed,
            "abandoned": self._abandoned,
            "stopped": self._stopped,
        }
