"""Straggler detection and speculative re-execution.

"A task is referred to as straggler if its progress is significantly slower
than other tasks ... JobTracker will allocate stragglers to the idle node"
(Section II.B). Our model has two straggler causes: attempts on a node that
was interrupted (stalled until the JobTracker notices), and attempts whose
fetch or execution is simply taking much longer than expected (network
contention, repeated failures).

:class:`SpeculationPolicy` encapsulates eligibility; the JobTracker asks it
whether a running task deserves a duplicate attempt. The losing duplicate's
execution time is the "duplicated straggler execution" charged to the
paper's *misc* overhead.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.core.ids import NodeId
from repro.mapreduce.job import MapTask
from repro.util.validation import check_non_negative, check_positive


@dataclass(frozen=True)
class SpeculationPolicy:
    """Eligibility rules for speculative execution.

    ``slowdown`` — an attempt is a straggler once its elapsed time exceeds
    ``slowdown`` times its expected duration (gamma, plus the nominal fetch
    time for remote attempts). ``max_per_task`` bounds concurrent
    duplicates. ``enabled=False`` disables speculation entirely (ablation
    A5).

    The remote fetch term comes from ``nominal_fetch_seconds`` when set;
    otherwise it is derived per task from the block size and
    ``fetch_rate_bps`` (the uncontended link rate). With both at zero a
    remote attempt is held to the same threshold as a local one — every
    ordinary remote fetch under contention then looks like a straggler and
    triggers spurious duplicates, so wiring code should always provide one
    of the two.
    """

    enabled: bool = True
    slowdown: float = 2.0
    max_per_task: int = 1
    nominal_fetch_seconds: float = 0.0
    fetch_rate_bps: float = 0.0

    def __post_init__(self) -> None:
        if self.slowdown <= 1.0:
            raise ValueError(f"slowdown must exceed 1, got {self.slowdown}")
        if self.max_per_task < 0:
            raise ValueError("max_per_task must be >= 0")
        check_non_negative("nominal_fetch_seconds", self.nominal_fetch_seconds)
        check_non_negative("fetch_rate_bps", self.fetch_rate_bps)

    def fetch_seconds(self, task: MapTask) -> float:
        """Nominal uncontended fetch time for the task's input block."""
        if self.nominal_fetch_seconds > 0.0:
            return self.nominal_fetch_seconds
        if self.fetch_rate_bps > 0.0:
            return task.block.size_bytes / self.fetch_rate_bps
        return 0.0

    def expected_duration(self, task: MapTask, remote: bool) -> float:
        """Nominal attempt duration used for the straggler threshold."""
        return task.gamma + (self.fetch_seconds(task) if remote else 0.0)

    def is_straggling(self, task: MapTask, now: float) -> bool:
        """Whether the task's live attempts justify a duplicate.

        A task with *no* live attempt (its only attempt died with its node
        and the JobTracker has not been told yet) is always a straggler; a
        task whose live attempts all exceed the slowdown threshold is too.
        """
        if not self.enabled or task.is_completed:
            return False
        live = task.live_attempts()
        if not live:
            return True
        threshold_ok = True
        for attempt in live:
            expected = self.expected_duration(task, remote=attempt.source_node is not None)
            if attempt.elapsed(now) <= self.slowdown * expected:
                threshold_ok = False
                break
        return threshold_ok

    def may_speculate(self, task: MapTask, node_id: NodeId, now: float) -> bool:
        """Full eligibility: straggling, capacity left, node not already on it."""
        if not self.is_straggling(task, now):
            return False
        if task.speculative_count() >= self.max_per_task:
            return False
        if any(a.node_id == node_id for a in task.live_attempts()):
            return False
        return True
