"""MapReduce runtime substrate (Hadoop-analogous, event-driven).

Models the Hadoop runtime pieces the paper's evaluation depends on
(Section II.B): a JobTracker scheduling map tasks onto TaskTrackers with
locality-first assignment, data migration for remote tasks, task
re-execution after interruptions, and speculative execution of stragglers.
The reduce phase is out of the paper's scope ("we target at improving the
map phase cost"); a minimal shuffle model ships as an extension in
:mod:`repro.mapreduce.shuffle`.
"""

from repro.mapreduce.job import (
    AttemptState,
    JobConf,
    MapJob,
    MapTask,
    TaskAttempt,
    TaskState,
)
from repro.mapreduce.jobtracker import JobTracker
from repro.mapreduce.scheduler import (
    AvailabilityAwareScheduler,
    LocalityFirstScheduler,
    TaskScheduler,
    make_scheduler,
)
from repro.mapreduce.shuffle import ShufflePhase, ShuffleResult, select_reducer_nodes
from repro.mapreduce.speculation import SpeculationPolicy
from repro.mapreduce.tasktracker import TaskTracker

__all__ = [
    "JobConf",
    "MapJob",
    "MapTask",
    "TaskAttempt",
    "TaskState",
    "AttemptState",
    "JobTracker",
    "TaskTracker",
    "TaskScheduler",
    "LocalityFirstScheduler",
    "AvailabilityAwareScheduler",
    "make_scheduler",
    "SpeculationPolicy",
    "ShufflePhase",
    "ShuffleResult",
    "select_reducer_nodes",
]
