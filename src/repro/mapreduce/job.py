"""Job, task, and attempt state machines.

One map task per input block (Section II.B). A task may be executed by
several *attempts* over its lifetime: re-executions after interruptions and
speculative duplicates; the first attempt to succeed completes the task.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass, field
from typing import Dict, List, Optional

from repro.core.ids import NodeId
from repro.hdfs.blocks import Block, DfsFile
from repro.util.validation import check_non_negative, check_positive


class TaskState(enum.Enum):
    """Task life cycle."""

    PENDING = "pending"
    RUNNING = "running"
    COMPLETED = "completed"
    #: The task's input block has zero surviving replicas (permanent node
    #: losses destroyed them all); it can never run and no longer blocks
    #: job completion. Real Hadoop fails such jobs outright — abandoning
    #: the task instead keeps the makespan measurable under data loss.
    ABANDONED = "abandoned"


class AttemptState(enum.Enum):
    """Attempt life cycle."""

    FETCHING = "fetching"  # remote attempt streaming its input block
    RUNNING = "running"    # executing the map function
    SUCCEEDED = "succeeded"
    FAILED = "failed"      # the node was interrupted (or the fetch aborted)
    KILLED = "killed"      # lost a speculation race / job torn down


#: Attempt states that still occupy a slot.
LIVE_ATTEMPT_STATES = frozenset({AttemptState.FETCHING, AttemptState.RUNNING})


@dataclass(frozen=True)
class JobConf:
    """Tunables of the MapReduce runtime.

    ``speculative_slowdown`` is the factor over the expected attempt
    duration after which a running attempt counts as a straggler;
    ``scheduler`` selects the task-assignment policy (``"locality"`` is
    Hadoop's; ``"availability"`` is this repo's future-work extension).
    """

    name: str = "job"
    speculative: bool = True
    speculative_slowdown: float = 2.0
    max_speculative_per_task: int = 1
    scheduler: str = "locality"

    def __post_init__(self) -> None:
        if self.speculative_slowdown <= 1.0:
            raise ValueError(
                f"speculative_slowdown must exceed 1, got {self.speculative_slowdown}"
            )
        if self.max_speculative_per_task < 0:
            raise ValueError("max_speculative_per_task must be >= 0")


@dataclass(eq=False)
class TaskAttempt:
    """One execution attempt of a map task on a specific node.

    Identity semantics (``eq=False``): two attempts are the same object or
    different attempts, and both task and attempt are usable as dict keys.
    """

    attempt_id: str
    task: "MapTask"
    node_id: NodeId
    local: bool
    speculative: bool
    created_at: float
    state: AttemptState = AttemptState.FETCHING
    source_node: Optional[NodeId] = None
    fetch_started: Optional[float] = None
    exec_started: Optional[float] = None
    finished_at: Optional[float] = None

    @property
    def is_live(self) -> bool:
        return self.state is AttemptState.FETCHING or self.state is AttemptState.RUNNING

    def retire(self, state: AttemptState, now: float) -> None:
        """Move to a terminal state and drop out of the task's live set."""
        if state in LIVE_ATTEMPT_STATES:
            raise ValueError(f"{state} is not a terminal attempt state")
        self.state = state
        self.finished_at = now
        self.task.drop_live(self)

    def elapsed(self, now: float) -> float:
        """Wall time since the attempt was created."""
        return now - self.created_at

    def __repr__(self) -> str:
        kind = "local" if self.local else f"remote<-{self.source_node}"
        return f"TaskAttempt({self.attempt_id}, {kind}, {self.state.value})"


@dataclass(eq=False)
class MapTask:
    """One map task: processes one input block for ``gamma`` seconds.

    Identity semantics (``eq=False``) so tasks can key dicts/sets.
    """

    task_id: str
    block: Block
    gamma: float
    state: TaskState = TaskState.PENDING
    attempts: List[TaskAttempt] = field(default_factory=list)
    completed_by: Optional[TaskAttempt] = None
    _attempt_counter: int = 0
    _live: List[TaskAttempt] = field(default_factory=list)

    def __post_init__(self) -> None:
        check_positive("gamma", self.gamma)

    @property
    def is_completed(self) -> bool:
        return self.state is TaskState.COMPLETED

    def live_attempts(self) -> List[TaskAttempt]:
        return list(self._live)

    def has_live_attempt(self) -> bool:
        return bool(self._live)

    def drop_live(self, attempt: TaskAttempt) -> None:
        """Remove a retired attempt from the live set (idempotent)."""
        try:
            self._live.remove(attempt)
        except ValueError:
            pass

    def speculative_count(self) -> int:
        """Live speculative attempts currently racing."""
        return sum(1 for a in self._live if a.speculative)

    def new_attempt(
        self,
        node_id: NodeId,
        local: bool,
        speculative: bool,
        now: float,
        source_node: Optional[NodeId] = None,
    ) -> TaskAttempt:
        """Create (and register) the next attempt of this task."""
        self._attempt_counter += 1
        attempt = TaskAttempt(
            attempt_id=f"{self.task_id}_a{self._attempt_counter}",
            task=self,
            node_id=node_id,
            local=local,
            speculative=speculative,
            created_at=now,
            source_node=source_node,
        )
        self.attempts.append(attempt)
        self._live.append(attempt)
        return attempt

    def __repr__(self) -> str:
        return f"MapTask({self.task_id}, {self.state.value}, attempts={len(self.attempts)})"


class MapJob:
    """A submitted job: one map task per block of the input file."""

    def __init__(self, conf: JobConf, input_file: DfsFile, gammas: List[float]) -> None:
        if len(gammas) != input_file.num_blocks:
            raise ValueError(
                f"need one gamma per block: {len(gammas)} gammas for "
                f"{input_file.num_blocks} blocks"
            )
        self._conf = conf
        self._file = input_file
        self._tasks = [
            MapTask(task_id=f"{conf.name}_m{block.index:06d}", block=block, gamma=gamma)
            for block, gamma in zip(input_file.blocks, gammas, strict=True)
        ]
        self._by_id: Dict[str, MapTask] = {t.task_id: t for t in self._tasks}
        self.submitted_at: Optional[float] = None
        self.finished_at: Optional[float] = None

    @property
    def conf(self) -> JobConf:
        return self._conf

    @property
    def input_file(self) -> DfsFile:
        return self._file

    @property
    def tasks(self) -> List[MapTask]:
        return list(self._tasks)

    @property
    def num_tasks(self) -> int:
        return len(self._tasks)

    def task(self, task_id: str) -> MapTask:
        return self._by_id[task_id]

    @property
    def total_base_work(self) -> float:
        """Aggregate failure-free execution time (the Figure 5 baseline)."""
        return sum(t.gamma for t in self._tasks)

    @property
    def is_complete(self) -> bool:
        return all(t.is_completed for t in self._tasks)

    @property
    def completed_count(self) -> int:
        return sum(1 for t in self._tasks if t.is_completed)

    @property
    def abandoned_count(self) -> int:
        """Tasks whose input block was destroyed (see TaskState.ABANDONED)."""
        return sum(1 for t in self._tasks if t.state is TaskState.ABANDONED)

    @property
    def makespan(self) -> float:
        """Map-phase elapsed time (defined once the job finished)."""
        if self.submitted_at is None or self.finished_at is None:
            raise ValueError("job has not finished")
        return self.finished_at - self.submitted_at

    @staticmethod
    def uniform(conf: JobConf, input_file: DfsFile, gamma: float) -> "MapJob":
        """Job whose tasks all share one failure-free length."""
        check_positive("gamma", gamma)
        return MapJob(conf, input_file, [gamma] * input_file.num_blocks)
