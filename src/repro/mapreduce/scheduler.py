"""Task assignment policies.

Hadoop's rule (Section II.B): "under the design principle of data locality,
each host first uses its best effort to run local tasks"; only a node with
no local pending work steals a pending task from elsewhere, triggering data
migration. :class:`LocalityFirstScheduler` implements exactly that with a
per-node local queue plus a global FIFO.

:class:`AvailabilityAwareScheduler` is the paper's *future work* ("we plan
to develop an availability-aware MapReduce job scheduling strategy")
implemented as an extension: remote steals drain the backlog of the
least-available holders first, so blocks stranded on doomed nodes migrate
before the end-game.
"""

from __future__ import annotations

from abc import ABC, abstractmethod
from collections import deque
from typing import Callable, Deque, Dict, List, Optional, Sequence, Tuple

from repro.core.ids import NodeId
from repro.mapreduce.job import MapTask

#: An assignment: the task plus the node to stream the block from
#: (``None`` for a local read).
Assignment = Tuple[MapTask, Optional[NodeId]]


class SchedulerContext(ABC):
    """What a scheduler may ask the JobTracker."""

    @abstractmethod
    def is_assignable(self, task: MapTask) -> bool:
        """Pending, not completed, and with no live attempt."""

    @abstractmethod
    def holders(self, task: MapTask) -> Sequence[str]:
        """All replica holders of the task's block."""

    @abstractmethod
    def readable_holders(self, task: MapTask) -> Sequence[str]:
        """Holders whose stored replica can currently be streamed."""

    @abstractmethod
    def choose_source(self, task: MapTask, sources: Sequence[str]) -> str:
        """Pick the replica to stream from."""

    @abstractmethod
    def holder_unavailability(self, node_id: NodeId) -> float:
        """Score in [0, 1]: how unavailable the holder is believed to be."""


class TaskScheduler(ABC):
    """Owns the pending-task structures and picks work for idle nodes."""

    @abstractmethod
    def enqueue(self, task: MapTask, holders: Sequence[str]) -> None:
        """Add a (newly pending or requeued) task."""

    @abstractmethod
    def pick(self, node_id: NodeId, ctx: SchedulerContext) -> Optional[Assignment]:
        """Choose work for an idle node, or None if nothing is assignable."""

    @abstractmethod
    def on_node_returned(self, node_id: NodeId) -> int:
        """A holder came back: blocked tasks may be streamable again.

        Returns the number of parked tasks released back into the queue.
        """

    @abstractmethod
    def pending_hint(self) -> int:
        """Upper bound on pending entries (may include stale ones)."""


class LocalityFirstScheduler(TaskScheduler):
    """Hadoop's locality-first FIFO."""

    def __init__(self) -> None:
        self._local: Dict[NodeId, Deque[MapTask]] = {}
        self._global: Deque[MapTask] = deque()
        self._blocked: List[MapTask] = []

    def enqueue(self, task: MapTask, holders: Sequence[str]) -> None:
        for node_id in holders:
            self._local.setdefault(node_id, deque()).append(task)
        self._global.append(task)

    def on_node_returned(self, node_id: NodeId) -> int:
        released = len(self._blocked)
        if released:
            self._global.extend(self._blocked)
            self._blocked.clear()
        return released

    def pending_hint(self) -> int:
        return len(self._global) + len(self._blocked)

    def pick(self, node_id: NodeId, ctx: SchedulerContext) -> Optional[Assignment]:
        local = self._local.get(node_id)
        if local:
            while local:
                task = local.popleft()
                if ctx.is_assignable(task) and node_id in ctx.holders(task):
                    return task, None
        return self._pick_remote(node_id, ctx)

    def _pick_remote(self, node_id: NodeId, ctx: SchedulerContext) -> Optional[Assignment]:
        while self._global:
            task = self._global.popleft()
            if not ctx.is_assignable(task):
                continue  # stale entry (running or completed)
            if node_id in ctx.holders(task):
                return task, None  # turned out to be local after all
            sources = ctx.readable_holders(task)
            if not sources:
                # No replica is streamable right now; park it until a
                # holder returns.
                self._blocked.append(task)
                continue
            return task, ctx.choose_source(task, sources)
        return None


class AvailabilityAwareScheduler(LocalityFirstScheduler):
    """Extension: steal from the least-available holders first.

    Remote picks scan a bounded window of the global queue and take the
    task whose best holder has the highest believed unavailability. Local
    assignment (and everything else) is inherited from locality-first, so
    the extension changes *migration order* only.
    """

    def __init__(self, scan_window: int = 32) -> None:
        super().__init__()
        if scan_window < 1:
            raise ValueError(f"scan_window must be >= 1, got {scan_window}")
        self._window = scan_window

    def _pick_remote(self, node_id: NodeId, ctx: SchedulerContext) -> Optional[Assignment]:
        candidates: List[Tuple[float, MapTask, Optional[NodeId]]] = []
        scanned: List[MapTask] = []
        while self._global and len(candidates) < self._window:
            task = self._global.popleft()
            if not ctx.is_assignable(task):
                continue
            if node_id in ctx.holders(task):
                # Local work trumps any steal ordering.
                self._global.extendleft(reversed(scanned))
                return task, None
            sources = ctx.readable_holders(task)
            if not sources:
                self._blocked.append(task)
                continue
            score = min(ctx.holder_unavailability(h) for h in ctx.holders(task))
            candidates.append((score, task, ctx.choose_source(task, sources)))
            scanned.append(task)
        if not candidates:
            return None
        best = max(candidates, key=lambda item: item[0])
        _score, chosen, source = best
        for task in scanned:
            if task is not chosen:
                self._global.append(task)
        return chosen, source


_SCHEDULERS: Dict[str, Callable[[], TaskScheduler]] = {
    "locality": LocalityFirstScheduler,
    "availability": AvailabilityAwareScheduler,
}


def make_scheduler(name: str) -> TaskScheduler:
    """Build a scheduler by name: ``locality`` or ``availability``."""
    try:
        factory = _SCHEDULERS[name.lower()]
    except KeyError:
        known = ", ".join(sorted(_SCHEDULERS))
        raise ValueError(f"unknown scheduler {name!r}; known: {known}") from None
    return factory()
