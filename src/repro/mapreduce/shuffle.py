"""Minimal shuffle/reduce-phase model (extension).

The paper explicitly scopes ADAPT to the map phase ("there is no immediate
relationship between the data placement strategy and the reduce phase ...
we leave the reduce phase optimization for future work", Section IV.C).
This module ships a deliberately small shuffle model so examples can show
an end-to-end job: each reducer streams its partition of every map output
over the shared network and then runs for a fixed reduce length.
Interruptions during the reduce phase are *not* modelled — the model exists
to measure how placement-induced map-output locations shape shuffle
traffic, not to extend ADAPT's claims.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, Dict, List, Optional, Sequence

from repro.core.placement import NodeView
from repro.simulator.engine import Simulator
from repro.simulator.network import Network, Transfer
from repro.util.rng import RandomSource
from repro.util.validation import check_non_negative, check_positive


def select_reducer_nodes(
    views: Sequence[NodeView],
    count: int,
    rng: RandomSource,
    availability_aware: bool = True,
) -> List[str]:
    """Choose the nodes to host reduce tasks (future-work extension).

    A reducer holds all of its partition's intermediate data for the whole
    phase, so an interruption costs a full re-shuffle. With
    ``availability_aware=True`` reducers go to the ``count`` nodes with the
    lowest expected task time factor — i.e. the most dependable hosts, the
    reduce-phase analogue of ADAPT's map-side placement. Otherwise,
    uniformly random (stock Hadoop), matching the paper's baseline.

    ``views`` is a sequence of :class:`repro.core.placement.NodeView`.
    """
    up = [v for v in views if v.is_up]
    if count < 1:
        raise ValueError(f"count must be >= 1, got {count}")
    if len(up) < count:
        raise ValueError(f"need {count} up nodes, have {len(up)}")
    if not availability_aware:
        return sorted(rng.sample([v.node_id for v in up], count))

    def dependability(view: NodeView) -> float:
        return view.estimate.steady_state_availability

    ranked = sorted(up, key=lambda v: (-dependability(v), v.node_id))
    return [v.node_id for v in ranked[:count]]


@dataclass(frozen=True)
class ShuffleResult:
    """Outcome of a shuffle+reduce phase."""

    started_at: float
    finished_at: float
    bytes_shuffled: float
    transfers: int
    local_fetches: int

    @property
    def elapsed(self) -> float:
        return self.finished_at - self.started_at


class ShufflePhase:
    """Runs reducers that fetch map outputs and then execute."""

    def __init__(self, sim: Simulator, network: Network) -> None:
        self._sim = sim
        self._network = network

    def run(
        self,
        map_output_nodes: Dict[str, str],
        map_output_bytes: float,
        reducer_nodes: Sequence[str],
        reduce_gamma: float,
        on_complete: Optional[Callable[[ShuffleResult], None]] = None,
    ) -> None:
        """Start the phase; ``on_complete`` fires when every reducer is done.

        ``map_output_nodes`` maps task id -> node that holds its output;
        each reducer fetches ``map_output_bytes / len(reducers)`` from every
        map output (hash partitioning of intermediate keys), co-located
        fetches being free.
        """
        if not map_output_nodes:
            raise ValueError("no map outputs to shuffle")
        if not reducer_nodes:
            raise ValueError("need at least one reducer")
        check_non_negative("map_output_bytes", map_output_bytes)
        check_positive("reduce_gamma", reduce_gamma)

        started = self._sim.now
        partition = map_output_bytes / len(reducer_nodes)
        state = {
            "pending_reducers": len(reducer_nodes),
            "bytes": 0.0,
            "transfers": 0,
            "local": 0,
        }

        def reducer_done() -> None:
            state["pending_reducers"] -= 1
            if state["pending_reducers"] == 0 and on_complete is not None:
                on_complete(
                    ShuffleResult(
                        started_at=started,
                        finished_at=self._sim.now,
                        bytes_shuffled=state["bytes"],
                        transfers=state["transfers"],
                        local_fetches=state["local"],
                    )
                )

        for reducer in reducer_nodes:
            sources = []
            for _task_id, node in sorted(map_output_nodes.items()):
                if node == reducer or partition <= 0.0:
                    state["local"] += 1
                else:
                    sources.append(node)
            self._run_reducer(reducer, sources, partition, reduce_gamma, reducer_done, state)

    def _run_reducer(
        self,
        reducer: str,
        sources: List[str],
        partition: float,
        reduce_gamma: float,
        done: Callable[[], None],
        state: dict,
    ) -> None:
        remaining = {"fetches": len(sources)}

        def start_reduce() -> None:
            self._sim.schedule(reduce_gamma, done, label=f"reduce:{reducer}")

        if not sources:
            start_reduce()
            return

        def on_fetch(transfer: Transfer) -> None:
            state["bytes"] += transfer.size
            remaining["fetches"] -= 1
            if remaining["fetches"] == 0:
                start_reduce()

        for source in sources:
            state["transfers"] += 1
            self._network.start_transfer(
                source=source,
                destination=reducer,
                size_bytes=partition,
                on_complete=on_fetch,
                label=f"shuffle:{source}->{reducer}",
            )
