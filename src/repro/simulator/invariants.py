"""Cross-layer invariant auditing: the simulator's runtime self-checks.

The reproduction's results rest on two kinds of consistency that nothing
else verifies end-to-end: *conservation* (the Figure 5 slot-time
decomposition must account for every slot-second exactly) and *agreement*
(the NameNode's replica map, the DataNodes' physical disks, the failure
injector's ground truth, and the JobTracker's attempt state must tell one
coherent story between events). Silent divergence in either is invisible
in ordinary test assertions — a double-counted interval just shifts the
overhead bars; a stale replica-map entry just changes a trajectory.

:class:`InvariantAuditor` is a :class:`~repro.runtime.services.Service`
that observes the cluster through a bus tap (pure observation: it never
publishes, never mutates, and never draws randomness, so attaching it
cannot change a seeded trajectory) and sweeps ~a dozen invariants at a
configurable cadence plus mandatorily at teardown:

* **replica-map-physical** — every (block, holder) in the location map is
  physically present on that DataNode, except holders whose disk a
  permanent failure wiped but whose purge has not fired yet (the stale
  metadata window is a modelled feature, not a bug).
* **orphan-replica** — every physically stored block is registered in the
  location map with that node as a holder.
* **lost-block-has-replicas** — a block announced via ``BlockLost`` has
  zero surviving physical replicas among its recorded holders.
* **unannounced-block-loss** — a block with zero surviving physical
  replicas was announced (catches a dropped ``BlockLost`` publication).
* **liveness-disagreement** — TaskTracker, DataNode, and injector agree on
  each node's physical up/down state between events.
* **purged-node-believed-live** — a node erased from the location map
  (``NodePurged``) is never believed alive again.
* **attempt-on-down-node** / **slot-overcommit** / **live-attempt-task-state**
  — no live attempt on a physically-down (or believed-dead *and* down)
  node, never more live attempts than slots, and every live attempt's task
  is RUNNING. (A believed-dead but physically-up node may legitimately run
  attempts: under heartbeat detection a returned node asks for work before
  its next beat flips the belief.)
* **link-capacity** — flow rates sum to at most capacity on *every*
  directed link of every transfer's path — host access links and
  oversubscribed fabric trunks alike — under fair sharing (the simple
  model oversubscribes by design and is exempt).
* **event-time-monotonic** / **event-time-behind-clock** /
  **event-heap-time** — published event times never regress, and the event
  heap's next event is never in the simulator's past.
* **interruption-count** / **node-return-count** / **permanent-failure-count**
  / **lost-block-count** — metrics counters equal the tap-observed event
  counts.
* **failed-attempt-count** / **speculative-attempt-count** /
  **migration-undercount** — attempt-level counters equal (or, for
  migrations, at least cover) what the job's attempt records show.
* **conservation-residual** — once every observed job has finished,
  ``slots * sum(makespans)`` equals the useful + rework + recovery +
  migration + duplicate + idle bins within float tolerance.

Violations **raise** :class:`InvariantViolationError` in ``strict`` mode
(tests, golden scenarios, CI) or **accumulate** into the JSON-exportable
:class:`AuditReport` in ``report`` mode (long experiment sweeps, where one
bad cell should not kill the batch).
"""

from __future__ import annotations

import json
import math
from dataclasses import dataclass, field
from typing import TYPE_CHECKING, Dict, List, Mapping, Optional, Set, Tuple

from repro.core.ids import NodeId
from repro.simulator.engine import EventHandle, Simulator
from repro.simulator.events import (
    BlockLost,
    Event,
    EventBus,
    NodeDown,
    NodePurged,
    NodeUp,
    PermanentFailure,
    Phase,
    TaskStateChange,
)
from repro.simulator.failures import FailureInjector
from repro.simulator.metrics import DurabilityMetrics, MapPhaseMetrics
from repro.simulator.network import Network

if TYPE_CHECKING:  # pragma: no cover - typing only
    from repro.hdfs.namenode import NameNode
    from repro.mapreduce.job import MapJob
    from repro.mapreduce.jobtracker import JobTracker
    from repro.mapreduce.tasktracker import TaskTracker

#: Valid audit modes, also used by ClusterConfig validation.
AUDIT_MODES = ("off", "report", "strict")

#: Slack for same-instant float timestamps in the monotonicity checks.
_TIME_EPSILON = 1e-9

#: Relative headroom for per-link rate sums (max-min allocation arithmetic).
_RATE_EPSILON = 1e-9


@dataclass(frozen=True)
class Violation:
    """One observed invariant breach."""

    invariant: str
    time: float
    message: str

    def to_jsonable(self) -> Dict[str, object]:
        return {"invariant": self.invariant, "time": self.time, "message": self.message}


class InvariantViolationError(AssertionError):
    """Raised in strict mode when an audit finds violations."""

    def __init__(self, violations: List[Violation]) -> None:
        self.violations = list(violations)
        lines = [f"{len(violations)} invariant violation(s):"]
        lines += [f"  [{v.invariant}] t={v.time:g}: {v.message}" for v in violations[:10]]
        if len(violations) > 10:
            lines.append(f"  ... and {len(violations) - 10} more")
        super().__init__("\n".join(lines))


@dataclass
class AuditReport:
    """Structured outcome of a run's audits (report mode accumulates here)."""

    mode: str = "report"
    audits_run: int = 0
    events_observed: int = 0
    final_audit_run: bool = False
    violations: List[Violation] = field(default_factory=list)

    @property
    def ok(self) -> bool:
        return not self.violations

    def counts_by_invariant(self) -> Dict[str, int]:
        counts: Dict[str, int] = {}
        for violation in self.violations:
            counts[violation.invariant] = counts.get(violation.invariant, 0) + 1
        return counts

    def to_jsonable(self) -> Dict[str, object]:
        return {
            "mode": self.mode,
            "audits_run": self.audits_run,
            "events_observed": self.events_observed,
            "final_audit_run": self.final_audit_run,
            "ok": self.ok,
            "violation_counts": self.counts_by_invariant(),
            "violations": [v.to_jsonable() for v in self.violations],
        }

    def export_json(self, path: str) -> None:
        with open(path, "w", encoding="utf-8") as handle:
            json.dump(self.to_jsonable(), handle, indent=2, sort_keys=True)
            handle.write("\n")


class InvariantAuditor:
    """Service that audits cross-layer invariants over a wired cluster.

    Construct it with the same objects ``build_cluster`` wires together and
    register it *last* in the service registry: registries stop services in
    reverse registration order, so the mandatory teardown audit observes
    the cluster before trackers kill their live attempts.
    """

    name = "invariant-auditor"

    DEFAULT_INTERVAL = 25.0
    RESIDUAL_REL_TOL = 1e-9
    RESIDUAL_ABS_TOL = 1e-6

    def __init__(
        self,
        sim: Simulator,
        bus: EventBus,
        namenode: "NameNode",
        injector: FailureInjector,
        network: Network,
        trackers: Mapping[str, "TaskTracker"],
        metrics: MapPhaseMetrics,
        jobtracker: Optional["JobTracker"] = None,
        durability: Optional[DurabilityMetrics] = None,
        mode: str = "report",
        interval: Optional[float] = DEFAULT_INTERVAL,
        residual_rel_tol: float = RESIDUAL_REL_TOL,
        residual_abs_tol: float = RESIDUAL_ABS_TOL,
    ) -> None:
        if mode not in AUDIT_MODES or mode == "off":
            raise ValueError(f"mode must be 'report' or 'strict', got {mode!r}")
        if interval is not None and interval <= 0:
            raise ValueError(f"interval must be positive, got {interval}")
        self._sim = sim
        self._bus = bus
        self._namenode = namenode
        self._injector = injector
        self._network = network
        self._trackers = dict(sorted(trackers.items()))
        self._metrics = metrics
        self._jobtracker = jobtracker
        self._durability = durability
        self._mode = mode
        self._interval = interval
        self._residual_rel_tol = residual_rel_tol
        self._residual_abs_tol = residual_abs_tol

        self._report = AuditReport(mode=mode)
        #: Violations detected inside the tap, surfaced at the next audit.
        self._pending: List[Violation] = []
        self._last_event_time = -math.inf
        self._node_down_count = 0
        self._node_up_count = 0
        self._permanent_count = 0
        self._lost_announced: Set[str] = set()
        self._purged: Set[str] = set()
        self._jobs_seen: List["MapJob"] = []
        self._job_ids_seen: Set[int] = set()
        self._audit_event: Optional[EventHandle] = None
        self._stopped = False
        bus.add_tap(self._tap)

    # -- observation (bus tap) --------------------------------------------------

    @property
    def report(self) -> AuditReport:
        return self._report

    @property
    def mode(self) -> str:
        return self._mode

    def _tap(self, event: Event, phases: Tuple[Phase, ...]) -> None:
        self._report.events_observed += 1
        if event.time < self._last_event_time - _TIME_EPSILON:
            self._pending.append(
                Violation(
                    "event-time-monotonic",
                    self._sim.now,
                    f"{type(event).__name__} at t={event.time:g} after an event "
                    f"at t={self._last_event_time:g}",
                )
            )
        if event.time < self._sim.now - _TIME_EPSILON:
            self._pending.append(
                Violation(
                    "event-time-behind-clock",
                    self._sim.now,
                    f"{type(event).__name__} carries t={event.time:g} but the "
                    f"clock reads {self._sim.now:g}",
                )
            )
        if event.time > self._last_event_time:
            self._last_event_time = event.time
        if isinstance(event, NodeDown):
            self._node_down_count += 1
        elif isinstance(event, NodeUp):
            self._node_up_count += 1
        elif isinstance(event, PermanentFailure):
            self._permanent_count += 1
        elif isinstance(event, NodePurged):
            self._purged.add(event.node_id)
        elif isinstance(event, BlockLost):
            self._lost_announced.add(event.block_id)
        elif isinstance(event, TaskStateChange):
            self._note_current_job()

    def _note_current_job(self) -> None:
        if self._jobtracker is None:
            return
        job = self._jobtracker.job
        if job is not None and id(job) not in self._job_ids_seen:
            self._job_ids_seen.add(id(job))
            self._jobs_seen.append(job)

    # -- the audit ---------------------------------------------------------------

    def audit(self, final: bool = False) -> List[Violation]:
        """Sweep every invariant once; returns (and records) violations.

        In strict mode a non-empty sweep raises
        :class:`InvariantViolationError` after recording.
        """
        self._note_current_job()
        found: List[Violation] = list(self._pending)
        self._pending.clear()
        self._check_storage(found)
        self._check_liveness(found)
        self._check_attempts(found)
        self._check_network(found)
        self._check_heap(found)
        self._check_counters(found)
        self._check_conservation(found)
        self._report.audits_run += 1
        if final:
            self._report.final_audit_run = True
        self._report.violations.extend(found)
        if found and self._mode == "strict":
            raise InvariantViolationError(found)
        return found

    # -- individual invariant families -------------------------------------------

    def _violate(self, found: List[Violation], invariant: str, message: str) -> None:
        found.append(Violation(invariant, self._sim.now, message))

    def _is_down_physical(self, node_id: NodeId) -> bool:
        try:
            return self._injector.is_down(node_id)
        except KeyError:
            return False

    def _is_permanently_failed(self, node_id: NodeId) -> bool:
        try:
            return self._injector.is_permanently_failed(node_id)
        except KeyError:
            return False

    def _check_storage(self, found: List[Violation]) -> None:
        namenode = self._namenode
        snapshot = namenode.location_snapshot()
        for block_id in sorted(snapshot):
            for holder in sorted(snapshot[block_id]):
                if namenode.datanode(holder).has_block(block_id):
                    continue
                if self._is_permanently_failed(holder):
                    continue  # wiped-but-unpurged stale-metadata window
                self._violate(
                    found,
                    "replica-map-physical",
                    f"location map lists {holder} for {block_id} but the "
                    f"DataNode does not hold it",
                )
        for node_id in namenode.datanode_ids:
            for block_id in sorted(namenode.blocks_on(node_id)):
                if node_id not in snapshot.get(block_id, set()):
                    self._violate(
                        found,
                        "orphan-replica",
                        f"{node_id} physically stores {block_id} but the "
                        f"location map does not list it as a holder",
                    )
        for block_id in sorted(self._lost_announced):
            holders = snapshot.get(block_id)
            if holders is None:
                continue  # file deleted since the loss
            survivors = [h for h in holders if namenode.datanode(h).has_block(block_id)]
            if survivors:
                self._violate(
                    found,
                    "lost-block-has-replicas",
                    f"{block_id} was announced lost but {sorted(survivors)} "
                    f"still physically hold it",
                )
        for block_id in sorted(snapshot):
            if block_id in self._lost_announced:
                continue
            holders = snapshot[block_id]
            physically_held = any(
                namenode.datanode(h).has_block(block_id) for h in holders
            )
            if not physically_held:
                self._violate(
                    found,
                    "unannounced-block-loss",
                    f"{block_id} has zero surviving physical replicas but no "
                    f"BlockLost was published",
                )

    def _check_liveness(self, found: List[Violation]) -> None:
        namenode = self._namenode
        for node_id, tracker in self._trackers.items():
            physically_up = not self._is_down_physical(node_id)
            if tracker.is_up != physically_up:
                self._violate(
                    found,
                    "liveness-disagreement",
                    f"TaskTracker {node_id} is_up={tracker.is_up} but the "
                    f"injector says up={physically_up}",
                )
            try:
                datanode_up = namenode.datanode(node_id).is_up
            except KeyError:
                continue
            if datanode_up != physically_up:
                self._violate(
                    found,
                    "liveness-disagreement",
                    f"DataNode {node_id} is_up={datanode_up} but the "
                    f"injector says up={physically_up}",
                )
        for node_id in sorted(self._purged):
            try:
                believed_live = namenode.is_live(node_id)
            except KeyError:
                continue
            if believed_live:
                self._violate(
                    found,
                    "purged-node-believed-live",
                    f"{node_id} was purged from the location map but the "
                    f"NameNode believes it alive",
                )

    def _check_attempts(self, found: List[Violation]) -> None:
        from repro.mapreduce.job import TaskState

        namenode = self._namenode
        for node_id, tracker in self._trackers.items():
            live = tracker.live_attempts()
            if not live:
                continue
            if len(live) > tracker.slots:
                self._violate(
                    found,
                    "slot-overcommit",
                    f"{node_id} runs {len(live)} live attempts on "
                    f"{tracker.slots} slot(s)",
                )
            physically_down = self._is_down_physical(node_id)
            if not tracker.is_up or physically_down:
                self._violate(
                    found,
                    "attempt-on-down-node",
                    f"{node_id} (tracker up={tracker.is_up}, physically "
                    f"down={physically_down}) holds {len(live)} live attempt(s)",
                )
            try:
                believed_live = namenode.is_live(node_id)
            except KeyError:
                believed_live = True
            if not believed_live and physically_down:
                self._violate(
                    found,
                    "attempt-on-down-node",
                    f"{node_id} is believed dead and physically down yet "
                    f"holds {len(live)} live attempt(s)",
                )
            for attempt in live:
                if attempt.node_id != node_id:
                    self._violate(
                        found,
                        "live-attempt-task-state",
                        f"{attempt.attempt_id} lives on {node_id} but claims "
                        f"node {attempt.node_id}",
                    )
                if attempt.task.state is not TaskState.RUNNING:
                    self._violate(
                        found,
                        "live-attempt-task-state",
                        f"{attempt.attempt_id} is live but its task is "
                        f"{attempt.task.state.value}",
                    )

    def _check_network(self, found: List[Violation]) -> None:
        network = self._network
        if not network.fair_sharing:
            return  # the simple model oversubscribes links by design
        # Sum rates over every directed link on every transfer's path, so
        # oversubscribed fabric trunks (ToR/aggregation) are audited with
        # exactly the same rule as host access links.
        link_sums: Dict[Tuple[str, object], float] = {}
        for transfer in network.active_transfers:
            for link in transfer.path:
                link_sums[link] = link_sums.get(link, 0.0) + transfer.rate
        for link in sorted(link_sums, key=lambda key: (key[0], str(key[1]))):
            capacity = network.link_capacity(link)
            if link_sums[link] > capacity * (1.0 + _RATE_EPSILON) + 1e-6:
                self._violate(
                    found,
                    "link-capacity",
                    f"link {link[0]}:{link[1]}: flow rates sum to "
                    f"{link_sums[link]:.6g} B/s > capacity {capacity:.6g} B/s",
                )

    def _check_heap(self, found: List[Violation]) -> None:
        next_time = self._sim.peek_next_time()
        if next_time is not None and next_time < self._sim.now - _TIME_EPSILON:
            self._violate(
                found,
                "event-heap-time",
                f"next pending event at t={next_time:g} is before the clock "
                f"({self._sim.now:g})",
            )

    def _check_counters(self, found: List[Violation]) -> None:
        metrics = self._metrics
        if metrics.interruptions != self._node_down_count:
            self._violate(
                found,
                "interruption-count",
                f"metrics counted {metrics.interruptions} interruptions but "
                f"{self._node_down_count} NodeDown events were published",
            )
        if metrics.node_returns != self._node_up_count:
            self._violate(
                found,
                "node-return-count",
                f"metrics counted {metrics.node_returns} node returns but "
                f"{self._node_up_count} NodeUp events were published",
            )
        durability = self._durability
        if durability is not None:
            if durability.permanent_failures != self._permanent_count:
                self._violate(
                    found,
                    "permanent-failure-count",
                    f"durability counted {durability.permanent_failures} "
                    f"permanent failures but {self._permanent_count} "
                    f"PermanentFailure events were published",
                )
            if durability.blocks_lost != len(self._lost_announced):
                self._violate(
                    found,
                    "lost-block-count",
                    f"durability counted {durability.blocks_lost} lost blocks "
                    f"but {len(self._lost_announced)} BlockLost events were "
                    f"published",
                )
        self._check_attempt_counters(found)

    def _check_attempt_counters(self, found: List[Violation]) -> None:
        from repro.mapreduce.job import AttemptState

        if not self._jobs_seen:
            return
        metrics = self._metrics
        failed_exec = 0
        speculative = 0
        for job in self._jobs_seen:
            for task in job.tasks:
                for attempt in task.attempts:
                    if attempt.speculative:
                        speculative += 1
                    if (
                        attempt.state is AttemptState.FAILED
                        and attempt.exec_started is not None
                    ):
                        failed_exec += 1
        if metrics.failed_attempts != failed_exec:
            self._violate(
                found,
                "failed-attempt-count",
                f"metrics counted {metrics.failed_attempts} failed (rework) "
                f"attempts but job records show {failed_exec}",
            )
        if metrics.speculative_attempts != speculative:
            self._violate(
                found,
                "speculative-attempt-count",
                f"metrics counted {metrics.speculative_attempts} speculative "
                f"attempts but job records show {speculative}",
            )
        if metrics.migrations < metrics.remote_tasks:
            self._violate(
                found,
                "migration-undercount",
                f"{metrics.remote_tasks} remote completions but only "
                f"{metrics.migrations} migration charges were recorded",
            )

    def _check_conservation(self, found: List[Violation]) -> None:
        jobs = self._jobs_seen
        if not jobs or any(job.finished_at is None for job in jobs):
            return  # only checkable once every observed job has finished
        metrics = self._metrics
        slots = sum(tracker.slots for tracker in self._trackers.values())
        span = sum(job.makespan for job in jobs)
        slot_time = slots * span
        accounted = (
            metrics.useful_time
            + metrics.rework_time
            + metrics.recovery_time
            + metrics.migration_time
            + metrics.duplicate_time
            + metrics.idle_time
        )
        residual = slot_time - accounted
        tolerance = self._residual_rel_tol * max(slot_time, 1.0) + self._residual_abs_tol
        if abs(residual) > tolerance:
            self._violate(
                found,
                "conservation-residual",
                f"slot time {slot_time:.6f} vs accounted {accounted:.6f}: "
                f"residual {residual:.3e} exceeds tolerance {tolerance:.3e}",
            )

    # -- service lifecycle --------------------------------------------------------

    def start(self) -> None:
        """Arm the periodic audit (teardown still audits when disabled)."""
        if self._interval is not None:
            self._arm()

    def stop(self) -> None:
        """Disarm the cadence and run the mandatory teardown audit."""
        if self._stopped:
            return
        self._stopped = True
        if self._audit_event is not None:
            self._audit_event.cancel()
            self._audit_event = None
        self.audit(final=True)

    def describe(self) -> Dict[str, object]:
        return {
            "service": self.name,
            "mode": self._mode,
            "interval": self._interval,
            "audits_run": self._report.audits_run,
            "events_observed": self._report.events_observed,
            "violations": len(self._report.violations),
        }

    # -- internals ----------------------------------------------------------------

    def _arm(self) -> None:
        assert self._interval is not None
        self._audit_event = self._sim.schedule(
            self._interval, self._on_timer, label="invariant-audit"
        )

    def _on_timer(self) -> None:
        self._audit_event = None
        if self._stopped:
            return
        self.audit()
        self._arm()


__all__ = [
    "AUDIT_MODES",
    "AuditReport",
    "InvariantAuditor",
    "InvariantViolationError",
    "Violation",
]
