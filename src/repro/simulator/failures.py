"""Failure injection: drives per-node up/down state during a simulation.

Each attached node is either driven by a lazy
:class:`~repro.availability.process.InterruptionProcess` (the emulation
mode — interruptions drawn live from the Table 2 distributions) or by a
pre-materialised :class:`~repro.availability.traces.AvailabilityTrace`
(the large-scale mode — replaying SETI@home-style traces).

Transitions are published on the cluster's typed event bus
(:mod:`repro.simulator.events`) as :class:`~repro.simulator.events.NodeDown`
/ :class:`~repro.simulator.events.NodeUp` /
:class:`~repro.simulator.events.PermanentFailure` events, dispatched
through the bus's explicit phases at the exact simulated instant of the
transition. The legacy ``subscribe(on_down=..., on_up=...,
on_permanent=...)`` helper remains as a thin wrapper that registers
bus handlers (all in one phase, preserving subscription order) for tests
and standalone use.

Beyond the recoverable episodes above, the injector can model *permanent*
node loss (a downtime episode that never ends — the volunteer left and the
disk is gone) via :meth:`FailureInjector.schedule_permanent_failure`, and
*correlated* multi-node outages (a switch or site failure taking several
hosts down at once) via :meth:`FailureInjector.schedule_outage`. Permanent
loss fires a dedicated ``on_permanent`` chain *first* (the disk is
destroyed at the failure instant — storage layers wipe and account before
anything reacts), then the ordinary ``on_down`` chain (if the node was
still up), so subscribers can distinguish "blocks temporarily unreachable"
from "replicas destroyed".

:meth:`FailureInjector.stop` tears the injector down: every armed event is
cancelled, so an abandoned cluster cannot fire transitions into torn-down
state.
"""

from __future__ import annotations

from typing import Callable, Dict, Iterator, List, Optional, Sequence

from repro.availability.generator import HostAvailability
from repro.availability.pregen import materialise_prefix, shift_episodes
from repro.availability.process import DowntimeEpisode, InterruptionProcess
from repro.availability.traces import AvailabilityTrace
from repro.core.ids import NodeId
from repro.simulator.engine import EventHandle, Simulator
from repro.simulator.events import (
    EventBus,
    NodeDown,
    NodeUp,
    PermanentFailure,
    Phase,
)
from repro.util.rng import RandomSource

DownListener = Callable[[NodeId, float], None]
UpListener = Callable[[NodeId, float], None]
PermanentListener = Callable[[NodeId, float], None]

#: Phase used for legacy ``subscribe()`` wrappers: subscription order alone
#: determines their relative order, as the old callback lists did.
_LEGACY_PHASE = Phase.SCHEDULING


def _adapt_listener(listener: Callable[[str, float], None]) -> Callable[..., None]:
    """Wrap a ``(node_id, time)`` callback as a node-event bus handler."""

    def handler(event: "NodeDown | NodeUp | PermanentFailure") -> None:
        listener(event.node_id, event.time)

    return handler


class FailureInjector:
    """Schedules downtime episodes and publishes transitions on the bus."""

    name = "failure-injector"

    def __init__(
        self, sim: Simulator, rng: RandomSource, bus: Optional[EventBus] = None
    ) -> None:
        self._sim = sim
        self._rng = rng
        self._bus = bus if bus is not None else EventBus()
        self._episode_streams: Dict[NodeId, Iterator[DowntimeEpisode]] = {}
        self._is_down: Dict[NodeId, bool] = {}
        self._episode_counts: Dict[NodeId, int] = {}
        self._downtime_totals: Dict[NodeId, float] = {}
        self._permanent: Dict[NodeId, bool] = {}
        #: When each currently-down node went down (downtime accounting).
        self._down_since: Dict[NodeId, Optional[float]] = {}
        #: Chaos delayed-recovery: per-node multiplier applied to the
        #: remaining downtime of episodes that *begin* while it is set.
        self._recovery_stretch: Dict[NodeId, float] = {}
        #: The one armed stream event per node (next begin, or current end).
        self._stream_events: Dict[NodeId, Optional[EventHandle]] = {}
        #: Armed events from schedule_outage / schedule_permanent_failure.
        self._injected_events: List[EventHandle] = []
        self._stopped = False

    # -- subscriptions -----------------------------------------------------------

    @property
    def bus(self) -> EventBus:
        """The bus this injector publishes transitions on."""
        return self._bus

    def subscribe(
        self,
        on_down: Optional[DownListener] = None,
        on_up: Optional[UpListener] = None,
        on_permanent: Optional[PermanentListener] = None,
    ) -> None:
        """Register ``(node_id, time)`` transition callbacks (legacy API).

        Wraps each callback as a bus handler in a single fixed phase, so
        relative order among ``subscribe`` callers stays subscription
        order — the old callback-list contract. New code should subscribe
        on :attr:`bus` with an explicit phase instead.

        ``on_permanent`` fires once per permanently failed node, *before*
        the ``on_down`` chain (if the node was up at that instant): the
        disk is gone the moment the failure strikes, and detection-side
        reactions in the down chain must observe the wiped state.
        """
        if on_down is not None:
            self._bus.subscribe(
                NodeDown,
                _adapt_listener(on_down),
                phase=_LEGACY_PHASE,
            )
        if on_up is not None:
            self._bus.subscribe(
                NodeUp,
                _adapt_listener(on_up),
                phase=_LEGACY_PHASE,
            )
        if on_permanent is not None:
            self._bus.subscribe(
                PermanentFailure,
                _adapt_listener(on_permanent),
                phase=_LEGACY_PHASE,
            )

    # -- attachment ---------------------------------------------------------------

    def attach_host(
        self,
        host: HostAvailability,
        burn_in: float = 0.0,
        pregen_horizon: Optional[float] = None,
        node_id: Optional[NodeId] = None,
        episodes: Optional[Sequence[DowntimeEpisode]] = None,
    ) -> None:
        """Drive a node from its availability description.

        Dedicated hosts are registered but never interrupted.

        ``burn_in`` shifts the interruption process ``burn_in`` seconds into
        its own past, so the simulation window starts in (approximately)
        stationary state — like cutting a random window out of a long trace:
        a host may already be down at t=0, with the correct residual
        downtime. A burn-in of several population MTBIs is enough; 0 keeps
        the legacy fresh start.

        ``pregen_horizon`` eagerly materialises every episode starting
        before that simulated time at attach, then *closes* the per-host
        episode generator so its suspended frame holds no memory for the
        rest of the run. The stream is per-node and values are position-
        determined, so up to the horizon the delivered episodes (and the
        engine's event sequence numbers) are byte-identical to the lazy
        path. The horizon is a contract: a run that advances past it sees
        no further interruptions, so callers must pick a horizon at or
        beyond the simulated window they intend to run (the scale-kernel
        bench opts in; see tools/bench_engine.py).

        ``node_id`` is the dense int id the injector keys its runtime
        state (and published events) by; it defaults to ``host.host_id``
        so standalone components keep routing by name. The RNG substream
        is *always* keyed by the host's name, so failure realisations are
        invariant under the identity representation.

        ``episodes`` injects an externally materialised episode prefix
        (bulk pregeneration — :mod:`repro.availability.pregen`) instead of
        sampling one here: no per-host RNG substream is derived and no
        generator is built, so attach becomes pure bookkeeping. The prefix
        must already include any burn-in shift, which is why combining
        ``episodes`` with ``burn_in`` or ``pregen_horizon`` is rejected.
        Pass None (not an empty sequence) for dedicated hosts.
        """
        if node_id is None:
            node_id = host.host_id  # type: ignore[assignment]
        if node_id in self._is_down:
            raise ValueError(f"node {node_id!r} already attached")
        if burn_in < 0:
            raise ValueError(f"burn_in must be non-negative, got {burn_in}")
        if pregen_horizon is not None and pregen_horizon < 0:
            raise ValueError(
                f"pregen_horizon must be non-negative, got {pregen_horizon}"
            )
        if episodes is not None and (pregen_horizon is not None or burn_in > 0.0):
            raise ValueError(
                "episodes is an already-materialised prefix; it cannot be "
                "combined with pregen_horizon or a non-zero burn_in"
            )
        self._register(node_id)
        if episodes is not None:
            self._episode_streams[node_id] = iter(episodes)
            self._schedule_next(node_id)
            return
        process = host.process(self._rng.substream("failures", host.host_id))
        if process is None:
            return
        raw = process.episodes(float("inf"))
        if burn_in > 0.0:
            stream: Iterator[DowntimeEpisode] = self._shift_stream(raw, burn_in)
        else:
            stream = raw
        if pregen_horizon is not None:
            stream = self._pregenerate(stream, pregen_horizon)
        self._episode_streams[node_id] = stream
        self._schedule_next(node_id)

    @staticmethod
    def _pregenerate(
        stream: Iterator[DowntimeEpisode], horizon: float
    ) -> Iterator[DowntimeEpisode]:
        """Materialise the prefix of episodes starting before ``horizon``.

        The first episode at or past the horizon is kept too (it was pulled
        to detect the boundary, and keeping it preserves the engine's
        ``schedule_at`` sequence allocation exactly), then the source
        generator is *closed*: its suspended frame — per-host RNG
        substreams, loop locals — is freed immediately, which at 226k
        concurrent hosts is the difference between hundreds of megabytes
        and none. The trade: a run that advances past the horizon sees no
        interruptions beyond it, which is why ``attach_host`` documents
        the horizon as a contract, not a hint.

        The source generator is closed even when the materialised prefix is
        empty or materialisation raises (``materialise_prefix`` closes in a
        ``finally``), so no attach path can leave a suspended frame behind.
        """
        return iter(materialise_prefix(stream, horizon))

    @staticmethod
    def _shift_stream(
        episodes: Iterator[DowntimeEpisode], burn_in: float
    ) -> Iterator[DowntimeEpisode]:
        """Shift episodes ``burn_in`` seconds earlier, clipping at t=0."""
        return shift_episodes(episodes, burn_in)

    def attach_trace(
        self, trace: AvailabilityTrace, node_id: Optional[NodeId] = None
    ) -> None:
        """Drive a node by replaying a materialised trace.

        ``node_id`` defaults to the trace's host name (standalone use);
        ``build_cluster`` passes the interned int id.
        """
        if node_id is None:
            node_id = trace.host_id  # type: ignore[assignment]
        if node_id in self._is_down:
            raise ValueError(f"node {node_id!r} already attached")
        self._register(node_id)
        episodes = (
            DowntimeEpisode(start=start, end=end, interruption_count=1)
            for start, end in trace.down_windows
        )
        self._episode_streams[node_id] = episodes
        self._schedule_next(node_id)

    def _register(self, node_id: NodeId) -> None:
        self._is_down[node_id] = False
        self._episode_counts[node_id] = 0
        self._downtime_totals[node_id] = 0.0
        self._permanent[node_id] = False
        self._down_since[node_id] = None
        self._stream_events[node_id] = None

    # -- injected failures ---------------------------------------------------------

    def schedule_permanent_failure(self, node_id: NodeId, at_time: float) -> None:
        """Arm a permanent loss of ``node_id`` at ``at_time``.

        At that instant the node goes (or stays) down forever: its episode
        stream is dropped, any pending recovery is cancelled, and the
        ``on_permanent`` chain fires. A second permanent failure for the
        same node is a silent no-op at fire time.
        """
        self._require_node(node_id)
        handle = self._sim.schedule_at(
            at_time,
            lambda: self._begin_permanent(node_id),
            label=f"permafail:{node_id}",
        )
        self._injected_events.append(handle)

    def schedule_outage(
        self, node_ids: Sequence[NodeId], start: float, duration: float
    ) -> None:
        """Arm a correlated outage: every node goes down at ``start`` for
        ``duration`` seconds.

        Nodes already down at ``start`` simply stay down (their own episode
        governs the return); nodes taken down by the outage come back at
        ``start + duration`` unless permanently failed in between.
        """
        if duration <= 0:
            raise ValueError(f"duration must be positive, got {duration}")
        for node_id in node_ids:
            self._require_node(node_id)
        episode = DowntimeEpisode(
            start=start, end=start + duration, interruption_count=1
        )
        for node_id in node_ids:
            handle = self._sim.schedule_at(
                start,
                lambda n=node_id: self._begin_injected(n, episode),
                label=f"outage:{node_id}",
            )
            self._injected_events.append(handle)

    def set_recovery_stretch(self, node_id: NodeId, stretch: float) -> None:
        """Stretch remaining downtime of episodes beginning from now on.

        Chaos delayed-recovery hook: while set, any episode of ``node_id``
        that *begins* lasts ``stretch`` times its remaining sampled
        duration — return times drift past the predictor's fitted
        distribution. Episodes already in progress are unaffected.
        """
        self._require_node(node_id)
        if stretch < 1.0:
            raise ValueError(f"stretch must be >= 1, got {stretch}")
        self._recovery_stretch[node_id] = stretch

    def clear_recovery_stretch(self, node_id: NodeId) -> None:
        """Remove a delayed-recovery stretch (idempotent)."""
        self._require_node(node_id)
        self._recovery_stretch.pop(node_id, None)

    def _begin_injected(self, node_id: NodeId, episode: DowntimeEpisode) -> None:
        if self._stopped or self._permanent[node_id] or self._is_down[node_id]:
            return
        # An armed stream begin-event would double-fire on_down while the
        # outage holds the node; _begin_episode guards on is_down and folds
        # such overlaps away, so the stream stays consistent.
        self._begin_episode(node_id, episode, from_stream=False)

    def _begin_permanent(self, node_id: NodeId) -> None:
        if self._stopped or self._permanent[node_id]:
            return
        self._permanent[node_id] = True
        self._episode_streams.pop(node_id, None)
        event = self._stream_events.get(node_id)
        if event is not None:
            event.cancel()
            self._stream_events[node_id] = None
        now = self._sim.now
        # Destruction before detection: the permanent chain (disk wipe,
        # durability accounting) runs first so the down chain — trackers,
        # heartbeats, oracle detection — sees the post-wipe state.
        self._bus.publish(PermanentFailure(time=now, node_id=node_id))
        if not self._is_down[node_id]:
            self._is_down[node_id] = True
            self._episode_counts[node_id] += 1
            self._down_since[node_id] = now
            self._bus.publish(NodeDown(time=now, node_id=node_id))

    # -- lifecycle --------------------------------------------------------------------

    def start(self) -> None:
        """No-op: attachment arms the streams (Service protocol)."""

    def describe(self) -> Dict[str, object]:
        return {
            "service": self.name,
            "nodes": len(self._is_down),
            "down": sorted(n for n, down in self._is_down.items() if down),
            "permanent": sorted(n for n, p in self._permanent.items() if p),
            "stopped": self._stopped,
        }

    def stop(self) -> None:
        """Cancel every armed event; the injector goes permanently quiet.

        Use when abandoning a cluster mid-run so stray transitions cannot
        fire into torn-down subscribers.
        """
        self._stopped = True
        for node_id, event in self._stream_events.items():
            if event is not None:
                event.cancel()
                self._stream_events[node_id] = None
        for event in self._injected_events:
            event.cancel()
        self._injected_events.clear()
        self._episode_streams.clear()

    @property
    def stopped(self) -> bool:
        return self._stopped

    # -- queries --------------------------------------------------------------------

    @property
    def node_ids(self) -> List[NodeId]:
        return sorted(self._is_down)

    def is_down(self, node_id: NodeId) -> bool:
        """Current state of a node."""
        return self._is_down[node_id]

    def is_permanently_failed(self, node_id: NodeId) -> bool:
        """Whether the node is gone for good (disk and all)."""
        return self._permanent[node_id]

    def episode_count(self, node_id: NodeId) -> int:
        """Downtime episodes this node has *started* so far."""
        return self._episode_counts[node_id]

    def downtime_total(self, node_id: NodeId) -> float:
        """Seconds of completed downtime so far."""
        return self._downtime_totals[node_id]

    def _require_node(self, node_id: NodeId) -> None:
        if node_id not in self._is_down:
            raise KeyError(f"unknown node {node_id!r}")

    # -- internals --------------------------------------------------------------------

    def _schedule_next(self, node_id: NodeId) -> None:
        stream = self._episode_streams.get(node_id)
        if stream is None:
            return
        episode = next(stream, None)
        if episode is None:
            self._stream_events[node_id] = None
            return
        start = max(episode.start, self._sim.now)
        self._stream_events[node_id] = self._sim.schedule_at(
            start, lambda: self._begin_episode(node_id, episode), label=f"down:{node_id}"
        )

    def _begin_episode(
        self, node_id: NodeId, episode: DowntimeEpisode, from_stream: bool = True
    ) -> None:
        if self._stopped or self._permanent[node_id]:
            return
        if self._is_down[node_id]:
            # Overlap with an injected outage: fold this episode away and
            # keep the stream advancing (its own episodes never overlap).
            if from_stream:
                self._schedule_next(node_id)
            return
        self._is_down[node_id] = True
        self._episode_counts[node_id] += 1
        now = self._sim.now
        self._down_since[node_id] = now
        self._bus.publish(NodeDown(time=now, node_id=node_id))
        end = max(episode.end, now)
        stretch = self._recovery_stretch.get(node_id)
        if stretch is not None:
            # Delayed-recovery chaos: the remaining downtime of an episode
            # beginning inside the window lasts ``stretch`` times as long.
            # Guarded so the untouched path stays float-identical.
            end = now + (end - now) * stretch
        handle = self._sim.schedule_at(
            end,
            lambda: self._end_episode(node_id, episode, from_stream),
            label=f"up:{node_id}",
        )
        if from_stream:
            self._stream_events[node_id] = handle
        else:
            self._injected_events.append(handle)

    def _end_episode(
        self, node_id: NodeId, episode: DowntimeEpisode, from_stream: bool = True
    ) -> None:
        if self._stopped or self._permanent[node_id]:
            return
        if not self._is_down[node_id]:
            # Idempotent up transition: a concurrent end (overlapping
            # injected outage, or a chaos cycle racing the stream) already
            # brought the node back — don't double-publish or double-count.
            if from_stream:
                self._schedule_next(node_id)
            return
        self._is_down[node_id] = False
        now = self._sim.now
        down_since = self._down_since[node_id]
        self._down_since[node_id] = None
        # Account the downtime actually served: a stretched or clipped
        # episode's wall window, not the sampled episode length.
        if down_since is not None:
            self._downtime_totals[node_id] += now - down_since
        else:  # pragma: no cover - begin always records down_since
            self._downtime_totals[node_id] += episode.duration
        self._bus.publish(NodeUp(time=now, node_id=node_id))
        if from_stream:
            self._schedule_next(node_id)
