"""Failure injection: drives per-node up/down state during a simulation.

Each attached node is either driven by a lazy
:class:`~repro.availability.process.InterruptionProcess` (the emulation
mode — interruptions drawn live from the Table 2 distributions) or by a
pre-materialised :class:`~repro.availability.traces.AvailabilityTrace`
(the large-scale mode — replaying SETI@home-style traces).

Subscribers (cluster nodes, the heartbeat service, the network) receive
``on_down(node_id, time)`` / ``on_up(node_id, time)`` callbacks in
subscription order, at the exact simulated instant of the transition.
"""

from __future__ import annotations

from typing import Callable, Dict, Iterator, List, Optional

from repro.availability.generator import HostAvailability
from repro.availability.process import DowntimeEpisode, InterruptionProcess
from repro.availability.traces import AvailabilityTrace
from repro.simulator.engine import Simulator
from repro.util.rng import RandomSource

DownListener = Callable[[str, float], None]
UpListener = Callable[[str, float], None]


class FailureInjector:
    """Schedules downtime episodes and notifies subscribers."""

    def __init__(self, sim: Simulator, rng: RandomSource) -> None:
        self._sim = sim
        self._rng = rng
        self._down_listeners: List[DownListener] = []
        self._up_listeners: List[UpListener] = []
        self._episode_streams: Dict[str, Iterator[DowntimeEpisode]] = {}
        self._is_down: Dict[str, bool] = {}
        self._episode_counts: Dict[str, int] = {}
        self._downtime_totals: Dict[str, float] = {}

    # -- subscriptions -----------------------------------------------------------

    def subscribe(
        self,
        on_down: Optional[DownListener] = None,
        on_up: Optional[UpListener] = None,
    ) -> None:
        """Register transition callbacks."""
        if on_down is not None:
            self._down_listeners.append(on_down)
        if on_up is not None:
            self._up_listeners.append(on_up)

    # -- attachment ---------------------------------------------------------------

    def attach_host(self, host: HostAvailability, burn_in: float = 0.0) -> None:
        """Drive a node from its availability description.

        Dedicated hosts are registered but never interrupted.

        ``burn_in`` shifts the interruption process ``burn_in`` seconds into
        its own past, so the simulation window starts in (approximately)
        stationary state — like cutting a random window out of a long trace:
        a host may already be down at t=0, with the correct residual
        downtime. A burn-in of several population MTBIs is enough; 0 keeps
        the legacy fresh start.
        """
        node_id = host.host_id
        if node_id in self._is_down:
            raise ValueError(f"node {node_id!r} already attached")
        if burn_in < 0:
            raise ValueError(f"burn_in must be non-negative, got {burn_in}")
        self._is_down[node_id] = False
        self._episode_counts[node_id] = 0
        self._downtime_totals[node_id] = 0.0
        process = host.process(self._rng.substream("failures", node_id))
        if process is None:
            return
        raw = process.episodes(float("inf"))
        if burn_in > 0.0:
            stream: Iterator[DowntimeEpisode] = self._shift_stream(raw, burn_in)
        else:
            stream = raw
        self._episode_streams[node_id] = stream
        self._schedule_next(node_id)

    @staticmethod
    def _shift_stream(
        episodes: Iterator[DowntimeEpisode], burn_in: float
    ) -> Iterator[DowntimeEpisode]:
        """Shift episodes ``burn_in`` seconds earlier, clipping at t=0."""
        for episode in episodes:
            end = episode.end - burn_in
            if end <= 0.0:
                continue
            start = max(episode.start - burn_in, 0.0)
            yield DowntimeEpisode(
                start=start, end=end, interruption_count=episode.interruption_count
            )

    def attach_trace(self, trace: AvailabilityTrace) -> None:
        """Drive a node by replaying a materialised trace."""
        node_id = trace.host_id
        if node_id in self._is_down:
            raise ValueError(f"node {node_id!r} already attached")
        self._is_down[node_id] = False
        self._episode_counts[node_id] = 0
        self._downtime_totals[node_id] = 0.0
        episodes = (
            DowntimeEpisode(start=start, end=end, interruption_count=1)
            for start, end in trace.down_windows
        )
        self._episode_streams[node_id] = episodes
        self._schedule_next(node_id)

    # -- queries --------------------------------------------------------------------

    @property
    def node_ids(self) -> List[str]:
        return sorted(self._is_down)

    def is_down(self, node_id: str) -> bool:
        """Current state of a node."""
        return self._is_down[node_id]

    def episode_count(self, node_id: str) -> int:
        """Downtime episodes this node has *started* so far."""
        return self._episode_counts[node_id]

    def downtime_total(self, node_id: str) -> float:
        """Seconds of completed downtime so far."""
        return self._downtime_totals[node_id]

    # -- internals --------------------------------------------------------------------

    def _schedule_next(self, node_id: str) -> None:
        stream = self._episode_streams.get(node_id)
        if stream is None:
            return
        episode = next(stream, None)
        if episode is None:
            return
        start = max(episode.start, self._sim.now)
        self._sim.schedule_at(
            start, lambda: self._begin_episode(node_id, episode), label=f"down:{node_id}"
        )

    def _begin_episode(self, node_id: str, episode: DowntimeEpisode) -> None:
        self._is_down[node_id] = True
        self._episode_counts[node_id] += 1
        now = self._sim.now
        for listener in self._down_listeners:
            listener(node_id, now)
        end = max(episode.end, now)
        self._sim.schedule_at(
            end, lambda: self._end_episode(node_id, episode), label=f"up:{node_id}"
        )

    def _end_episode(self, node_id: str, episode: DowntimeEpisode) -> None:
        self._is_down[node_id] = False
        self._downtime_totals[node_id] += episode.duration
        now = self._sim.now
        for listener in self._up_listeners:
            listener(node_id, now)
        self._schedule_next(node_id)
