"""Flow-level network model with per-node uplink/downlink capacities.

Non-dedicated environments have asymmetric broadband links (Section I: the
uplink of a typical Internet host is far slower than its downlink), and the
paper's emulation caps per-VM bandwidth between 4 and 32 Mb/s. We model a
transfer as a fluid flow from a source node to a destination node; a flow's
instantaneous rate is limited by the source's uplink and the destination's
downlink, with concurrent flows sharing links **max-min fairly**
(progressive filling). Rates are recomputed at every flow arrival,
completion or cancellation — the standard flow-level approximation of TCP
fair sharing.

``fair_sharing=False`` selects a cheaper model where each transfer runs at
``min(uplink, downlink)`` with no contention; the large-scale simulations
(Section V.C, up to 16384 nodes) use it for speed, matching the paper's own
simulator granularity.

The *links* a transfer crosses come from a pluggable
:class:`~repro.simulator.topology.Topology`. Under the default
:class:`~repro.simulator.topology.FlatStar` a path is exactly the classic
(source uplink, destination downlink) pair — allocations are bit-for-bit
what the two-link special case produced. Under a
:class:`~repro.simulator.topology.ClosTopology` cross-rack paths also
cross oversubscribed ToR/aggregation trunks, and progressive filling runs
over every link on the path unchanged.
"""

from __future__ import annotations

import enum
import itertools
from collections import defaultdict
from typing import Callable, Dict, List, Optional, Set, Tuple

from repro.core.ids import NodeId
from repro.simulator.engine import EventHandle, Simulator
from repro.simulator.events import (
    NodeDegraded,
    NodeDown,
    NodeRestored,
    PartitionHealed,
    PartitionStarted,
    PermanentFailure,
)
from repro.simulator.topology import FlatStar, LinkKey, Topology
from repro.util.validation import check_positive

#: Remaining-bytes tolerance under which a transfer counts as finished.
#: Both completion paths honor it: the fair-sharing sweep completes any
#: flow whose residue is within it, and the simple model schedules a
#: zero-length completion instead of a timed one.
_DONE_EPSILON = 0.5


def _product(factors: List[float]) -> float:
    """Left-to-right product of a throttle/scale stack.

    Multiplying in push order keeps the single-factor case bit-identical
    to applying the factor directly (golden trajectories pin this).
    """
    result = factors[0]
    for factor in factors[1:]:
        result *= factor
    return result


class TransferState(enum.Enum):
    """Life cycle of a transfer."""

    ACTIVE = "active"
    COMPLETED = "completed"
    CANCELLED = "cancelled"


class Transfer:
    """One data movement between two nodes."""

    __slots__ = (
        "transfer_id",
        "source",
        "destination",
        "size",
        "remaining",
        "rate",
        "started_at",
        "anchor",
        "finished_at",
        "state",
        "label",
        "on_complete",
        "on_cancel",
        "_event",
        "path",
    )

    def __init__(
        self,
        transfer_id: int,
        source: NodeId,
        destination: NodeId,
        size: float,
        started_at: float,
        label: str,
        on_complete: Callable[["Transfer"], None],
        on_cancel: Optional[Callable[["Transfer"], None]],
        path: Tuple[LinkKey, ...],
    ) -> None:
        self.transfer_id = transfer_id
        self.source = source
        self.destination = destination
        self.size = float(size)
        self.remaining = float(size)
        self.rate = 0.0
        self.started_at = started_at
        #: Time the current constant-rate segment began (simple mode).
        #: Equals ``started_at`` until a stall or re-rate moves it.
        self.anchor = started_at
        self.finished_at: Optional[float] = None
        self.state = TransferState.ACTIVE
        self.label = label
        self.on_complete = on_complete
        self.on_cancel = on_cancel
        self._event: Optional[EventHandle] = None
        # Directed link keys, interned once at transfer start: every rate
        # allocation round indexes capacities/membership by these, so they
        # must not be rebuilt per round (or per allocation).
        self.path = path

    @property
    def transferred(self) -> float:
        """Bytes moved so far."""
        return self.size - self.remaining

    @property
    def duration(self) -> float:
        """Wall time the transfer occupied the network (terminal states only)."""
        if self.finished_at is None:
            raise ValueError("transfer has not finished yet")
        return self.finished_at - self.started_at

    def __repr__(self) -> str:
        return (
            f"Transfer(#{self.transfer_id} {self.source}->{self.destination} "
            f"{self.size:.0f}B, {self.state.value})"
        )


class Network:
    """Shared network connecting every node in the cluster."""

    name = "network"

    def __init__(
        self,
        sim: Simulator,
        uplink_bps: float,
        downlink_bps: Optional[float] = None,
        fair_sharing: bool = True,
        topology: Optional[Topology] = None,
    ) -> None:
        self._sim = sim
        self._default_up = check_positive("uplink_bps", uplink_bps)
        self._default_down = (
            check_positive("downlink_bps", downlink_bps)
            if downlink_bps is not None
            else self._default_up
        )
        self._fair = fair_sharing
        self._topology: Topology = topology if topology is not None else FlatStar()
        self._uplinks: Dict[NodeId, float] = {}
        self._downlinks: Dict[NodeId, float] = {}
        # Insertion-ordered: Transfer hashes by identity, so iterating a
        # plain set would depend on memory addresses and break seed
        # determinism. Every iteration below relies on this ordering.
        self._active: Dict[Transfer, None] = {}
        self._outgoing: Dict[NodeId, int] = defaultdict(int)
        self._ids = itertools.count()
        self._last_update = sim.now
        self._sweep: Optional[EventHandle] = None
        #: Active partitions: id -> member set. A transfer crossing any
        #: partition boundary is stalled (rate 0) until the cut heals.
        self._partitions: Dict[str, frozenset] = {}
        #: Gray-node throttles: node -> stack of multiplicative factors,
        #: one per active throttle window, in arming order. Overlapping
        #: windows on one node compose multiplicatively; each restore
        #: releases exactly one factor, so the second window survives the
        #: first window's restore. The base link configuration (defaults
        #: and :meth:`set_link` overrides) is never rewritten by
        #: throttles, so overrides made mid-window compose too.
        self._throttles: Dict[NodeId, List[float]] = {}
        #: Cached product of each node's throttle stack (hot-path read).
        self._throttle_scale: Dict[NodeId, float] = {}
        #: Degraded-link scales: link -> stack of multiplicative factors
        #: (mitigation services push/pop these), plus the cached product.
        self._link_scales: Dict[LinkKey, List[float]] = {}
        self._link_scale: Dict[LinkKey, float] = {}

    # -- configuration ----------------------------------------------------------

    def set_link(
        self,
        node_id: NodeId,
        uplink_bps: Optional[float] = None,
        downlink_bps: Optional[float] = None,
    ) -> None:
        """Override one node's link capacities."""
        if uplink_bps is not None:
            self._uplinks[node_id] = check_positive("uplink_bps", uplink_bps)
        if downlink_bps is not None:
            self._downlinks[node_id] = check_positive("downlink_bps", downlink_bps)

    def uplink(self, node_id: NodeId) -> float:
        """The node's uplink capacity in bytes/second (throttles applied)."""
        base = self._uplinks.get(node_id, self._default_up)
        if self._throttle_scale:
            factor = self._throttle_scale.get(node_id)
            if factor is not None:
                return base * factor
        return base

    def downlink(self, node_id: NodeId) -> float:
        """The node's downlink capacity in bytes/second (throttles applied)."""
        base = self._downlinks.get(node_id, self._default_down)
        if self._throttle_scale:
            factor = self._throttle_scale.get(node_id)
            if factor is not None:
                return base * factor
        return base

    def link_capacity(self, link: LinkKey) -> float:
        """Capacity of any directed link, degraded-link scales applied.

        Host tiers (``up``/``down``) read the per-node configuration —
        defaults, :meth:`set_link` overrides, and gray-node throttles all
        compose; fabric tiers read the topology's oversubscribed trunk
        capacity. Scales pushed by :meth:`scale_link` multiply on top.
        """
        tier = link[0]
        if tier == "up":
            base = self.uplink(link[1])
        elif tier == "down":
            base = self.downlink(link[1])
        else:
            base = self._topology.fabric_capacity(link)
        scales = self._link_scale
        if scales:
            factor = scales.get(link)
            if factor is not None:
                return base * factor
        return base

    @property
    def topology(self) -> Topology:
        """The link structure transfers route through."""
        return self._topology

    @property
    def fair_sharing(self) -> bool:
        """Whether flows contend max-min fairly (vs the uncontended model)."""
        return self._fair

    @property
    def nominal_rate_bps(self) -> float:
        """Uncontended streaming rate between two default-link nodes."""
        return min(self._default_up, self._default_down)

    @property
    def active_transfers(self) -> List[Transfer]:
        return list(self._active)

    def outgoing_count(self, node_id: NodeId) -> int:
        """Active transfers currently streaming *from* this node."""
        return self._outgoing.get(node_id, 0)

    # -- transfer control ---------------------------------------------------------

    def start_transfer(
        self,
        source: NodeId,
        destination: NodeId,
        size_bytes: float,
        on_complete: Callable[[Transfer], None],
        on_cancel: Optional[Callable[[Transfer], None]] = None,
        label: str = "",
    ) -> Transfer:
        """Begin moving ``size_bytes`` from ``source`` to ``destination``.

        ``on_complete(transfer)`` fires at completion time; ``on_cancel``
        fires if the transfer is torn down (e.g. an endpoint was
        interrupted). Zero-sized transfers complete via an immediate event.
        """
        if source == destination:
            raise ValueError("source and destination must differ (local reads are free)")
        if size_bytes < 0:
            raise ValueError(f"size must be non-negative, got {size_bytes}")
        transfer = Transfer(
            transfer_id=next(self._ids),
            source=source,
            destination=destination,
            size=size_bytes,
            started_at=self._sim.now,
            label=label,
            on_complete=on_complete,
            on_cancel=on_cancel,
            path=self._topology.path(source, destination),
        )
        self._outgoing[source] += 1
        if self._fair:
            self._advance()
            self._active[transfer] = None
            self._reallocate_and_reschedule()
        else:
            self._active[transfer] = None
            if self._partitions and self._is_stalled(transfer):
                transfer.rate = 0.0  # born into a partition; thawed on heal
            else:
                self._thaw_simple(transfer)
        return transfer

    def cancel(self, transfer: Transfer) -> None:
        """Tear down an active transfer (idempotent for terminal ones)."""
        if transfer.state is not TransferState.ACTIVE:
            return
        if self._fair:
            self._advance()
            self._active.pop(transfer, None)
            self._finalize(transfer, TransferState.CANCELLED)
            self._reallocate_and_reschedule()
        else:
            if transfer._event is not None:
                transfer._event.cancel()
            # Record partial progress for accounting (since the last
            # constant-rate anchor; == started_at unless a stall moved it).
            elapsed = self._sim.now - transfer.anchor
            transfer.remaining = max(transfer.remaining - transfer.rate * elapsed, 0.0)
            self._active.pop(transfer, None)
            self._finalize(transfer, TransferState.CANCELLED)

    def cancel_involving(self, node_id: NodeId) -> List[Transfer]:
        """Cancel every active transfer touching ``node_id`` (node went down)."""
        doomed = [
            t for t in self._active if t.source == node_id or t.destination == node_id
        ]
        for transfer in doomed:
            self.cancel(transfer)
        return doomed

    # -- bus handlers --------------------------------------------------------------

    def handle_node_down(self, event: NodeDown) -> None:
        """Hard-downtime semantics (NETWORK phase): a down node's flows die.

        Only wired when ``access_during_downtime`` is off — under the
        paper's default soft semantics a down host's stored blocks stay
        streamable.
        """
        self.cancel_involving(event.node_id)

    def handle_permanent_failure(self, event: PermanentFailure) -> None:
        """Wiped disk (NETWORK phase): nothing is left to stream, either
        direction — tear down every flow touching the node."""
        self.cancel_involving(event.node_id)

    def handle_partition_started(self, event: PartitionStarted) -> None:
        """Chaos partition (NETWORK phase): stall boundary-crossing flows."""
        self.begin_partition(event.partition_id, event.members)

    def handle_partition_healed(self, event: PartitionHealed) -> None:
        """Partition healed (NETWORK phase): resume stalled flows."""
        self.end_partition(event.partition_id)

    def handle_node_degraded(self, event: NodeDegraded) -> None:
        """Gray node (NETWORK phase): throttle its links mid-flight."""
        self.throttle_node(event.node_id, event.link_factor)

    def handle_node_restored(self, event: NodeRestored) -> None:
        """Gray node recovered (NETWORK phase): lift the throttle."""
        self.restore_node(event.node_id)

    # -- chaos: partitions and gray throttles ------------------------------------------

    def begin_partition(self, partition_id: str, members: Tuple[NodeId, ...]) -> None:
        """Cut ``members`` off: transfers crossing the boundary stall.

        Stalled transfers keep their progress and resume from it at
        :meth:`end_partition`; intra-partition and outside flows are
        untouched (and, under fair sharing, inherit the freed capacity).
        """
        if partition_id in self._partitions:
            raise ValueError(f"partition {partition_id!r} already active")
        if self._fair:
            self._advance()
            self._partitions[partition_id] = frozenset(members)
            self._reallocate_and_reschedule()
        else:
            self._partitions[partition_id] = frozenset(members)
            for transfer in list(self._active):
                if transfer._event is not None and self._is_stalled(transfer):
                    self._freeze_simple(transfer)

    def end_partition(self, partition_id: str) -> None:
        """Heal a partition; flows it stalled resume from their progress."""
        if partition_id not in self._partitions:
            raise ValueError(f"partition {partition_id!r} is not active")
        del self._partitions[partition_id]
        if self._fair:
            self._advance()
            self._reallocate_and_reschedule()
        else:
            for transfer in list(self._active):
                if transfer._event is None and not (
                    self._partitions and self._is_stalled(transfer)
                ):
                    self._thaw_simple(transfer)

    def throttle_node(self, node_id: NodeId, link_factor: float) -> None:
        """Scale one node's link capacities by ``link_factor`` (gray node).

        Throttles *stack*: overlapping gray windows on one node compose
        multiplicatively, and each :meth:`restore_node` releases exactly
        one window — so the first window's restore no longer lifts a
        second, still-active throttle. The base configuration (defaults
        and :meth:`set_link` overrides) is left untouched, which also
        means an override made mid-window survives the restore instead of
        being clobbered by a pre-throttle snapshot.
        """
        check_positive("link_factor", link_factor)
        stack = self._throttles.setdefault(node_id, [])
        stack.append(link_factor)
        self._throttle_scale[node_id] = _product(stack)
        self._rerate_node(node_id)

    def restore_node(self, node_id: NodeId) -> None:
        """Release one gray-node throttle window (oldest first).

        Restores are matched to throttles first-in-first-out: scenario
        windows close in the order they opened whenever durations are
        equal, and the *product* of the remaining stack is correct under
        any interleaving. A restore with no active throttle is a no-op.
        """
        stack = self._throttles.get(node_id)
        if not stack:
            return
        stack.pop(0)
        if stack:
            self._throttle_scale[node_id] = _product(stack)
        else:
            del self._throttles[node_id]
            del self._throttle_scale[node_id]
        self._rerate_node(node_id)

    # -- chaos: degraded links -------------------------------------------------------

    def scale_link(self, link: LinkKey, factor: float) -> None:
        """Push a multiplicative capacity scale onto one directed link.

        Mitigation services call this when a :class:`DegradedLink`
        scenario opens; scales stack exactly like node throttles, so
        overlapping degradations on one link compose.
        """
        check_positive("factor", factor)
        stack = self._link_scales.setdefault(link, [])
        stack.append(factor)
        self._link_scale[link] = _product(stack)
        self._rerate_link(link)

    def unscale_link(self, link: LinkKey, factor: Optional[float] = None) -> None:
        """Pop one scale from a link (the first matching ``factor``, or
        the oldest when unspecified). Raises if the link carries none."""
        stack = self._link_scales.get(link)
        if not stack:
            raise KeyError(f"link {link!r} carries no active scale")
        if factor is None:
            stack.pop(0)
        else:
            try:
                stack.remove(factor)
            except ValueError:
                raise KeyError(
                    f"link {link!r} carries no active scale of {factor!r}"
                ) from None
        if stack:
            self._link_scale[link] = _product(stack)
        else:
            del self._link_scales[link]
            del self._link_scale[link]
        self._rerate_link(link)

    def _rerate_node(self, node_id: NodeId) -> None:
        """Re-rate in-flight transfers after a capacity change on a node."""
        if self._fair:
            self._advance()
            self._reallocate_and_reschedule()
        else:
            for transfer in list(self._active):
                if transfer._event is None:
                    continue  # stalled; heal-time thaw reads new capacities
                if transfer.source == node_id or transfer.destination == node_id:
                    self._freeze_simple(transfer)
                    self._thaw_simple(transfer)

    def _rerate_link(self, link: LinkKey) -> None:
        """Re-rate in-flight transfers after a capacity change on a link."""
        if self._fair:
            self._advance()
            self._reallocate_and_reschedule()
        else:
            for transfer in list(self._active):
                if transfer._event is None:
                    continue  # stalled; heal-time thaw reads new capacities
                if link in transfer.path:
                    self._freeze_simple(transfer)
                    self._thaw_simple(transfer)

    def _is_stalled(self, transfer: Transfer) -> bool:
        """Whether the transfer crosses any active partition boundary."""
        for partition_members in self._partitions.values():
            inside = transfer.source in partition_members
            if inside != (transfer.destination in partition_members):
                return True
        return False

    def _freeze_simple(self, transfer: Transfer) -> None:
        """Stop a simple-mode transfer, banking progress at its old rate."""
        if transfer._event is not None:
            transfer._event.cancel()
            transfer._event = None
        elapsed = self._sim.now - transfer.anchor
        transfer.remaining = max(transfer.remaining - transfer.rate * elapsed, 0.0)
        transfer.anchor = self._sim.now
        transfer.rate = 0.0

    def _thaw_simple(self, transfer: Transfer) -> None:
        """(Re)start a simple-mode transfer at current link capacities."""
        path = transfer.path
        if len(path) == 2:
            rate = min(self.link_capacity(path[0]), self.link_capacity(path[1]))
        else:
            rate = min(self.link_capacity(link) for link in path)
        transfer.rate = rate
        transfer.anchor = self._sim.now
        # Residue within _DONE_EPSILON counts as finished — the same
        # tolerance the fair path applies — so progress banked across many
        # freeze/thaw cycles by repeated float subtraction can never leave
        # a sub-epsilon remainder that still schedules a timed completion.
        eta = (
            transfer.remaining / rate if transfer.remaining > _DONE_EPSILON else 0.0
        )
        transfer._event = self._sim.schedule(
            eta,
            lambda: self._complete_simple(transfer),
            label=f"xfer-{transfer.transfer_id}",
        )

    # -- service lifecycle -----------------------------------------------------------

    def start(self) -> None:
        """No-op: the network is passive until transfers start."""

    def stop(self) -> None:
        """Cancel every active transfer and disarm the rate sweep."""
        for transfer in list(self._active):
            self.cancel(transfer)
        if self._sweep is not None:
            self._sweep.cancel()
            self._sweep = None

    def describe(self) -> Dict[str, object]:
        return {
            "service": self.name,
            "active_transfers": len(self._active),
            "fair_sharing": self._fair,
            "uplink_bps": self._default_up,
            "downlink_bps": self._default_down,
            "partitions": len(self._partitions),
            "throttled_nodes": len(self._throttles),
            "degraded_links": len(self._link_scales),
        }

    # -- internals: simple mode ----------------------------------------------------

    def _complete_simple(self, transfer: Transfer) -> None:
        if transfer.state is not TransferState.ACTIVE:
            return
        transfer.remaining = 0.0
        self._active.pop(transfer, None)
        self._finalize(transfer, TransferState.COMPLETED)

    # -- internals: fair-sharing mode ------------------------------------------------

    def _advance(self) -> None:
        """Drain bytes for the time elapsed since the last rate change."""
        now = self._sim.now
        dt = now - self._last_update
        if dt > 0:
            for transfer in self._active:
                transfer.remaining = max(transfer.remaining - transfer.rate * dt, 0.0)
        self._last_update = now

    def _reallocate_and_reschedule(self) -> None:
        self._allocate_rates()
        if self._sweep is not None:
            self._sweep.cancel()
            self._sweep = None
        # Complete anything already drained before looking for the next ETA
        # (stalled transfers hold their residue until the partition heals).
        finished = [
            t
            for t in self._active
            if t.remaining <= _DONE_EPSILON
            and not (self._partitions and self._is_stalled(t))
        ]
        for transfer in finished:
            if transfer.state is not TransferState.ACTIVE:
                # A completion callback re-entered the network (started or
                # cancelled transfers) and an inner reallocation already
                # finalized this one; finalizing again would double-fire
                # callbacks and corrupt the outgoing counts.
                continue
            self._active.pop(transfer, None)
            transfer.remaining = 0.0
            self._finalize(transfer, TransferState.COMPLETED)
        if finished:
            self._allocate_rates()
        eta = None
        for transfer in self._active:
            if transfer.rate > 0:
                candidate = transfer.remaining / transfer.rate
                if eta is None or candidate < eta:
                    eta = candidate
        if eta is not None:
            self._sweep = self._sim.schedule(eta, self._on_sweep, label="net-sweep")

    def _on_sweep(self) -> None:
        self._sweep = None
        self._advance()
        self._reallocate_and_reschedule()

    def _allocate_rates(self) -> None:
        """Max-min fair (progressive-filling) rate allocation.

        Each link carries a *live-member counter* maintained as flows get
        fixed, so a filling round costs O(links) instead of re-scanning
        every link's membership against the unfixed set — O(flows·links)
        overall rather than O(flows²·links). The round structure, float
        arithmetic, and tie-breaking (first minimum in link insertion
        order) are identical to the naive scan, so allocations are
        bit-for-bit unchanged (golden-seed tests pin this).
        """
        if not self._active:
            return
        capacity: Dict[LinkKey, float] = {}
        members: Dict[LinkKey, List[Transfer]] = {}
        live: Dict[LinkKey, int] = {}
        for transfer in self._active:
            # Stalled flows join no links: they take no rate (the final
            # loop zeroes them) and free their capacity for the rest.
            if self._partitions and self._is_stalled(transfer):
                continue
            for link in transfer.path:
                if link not in capacity:
                    capacity[link] = self.link_capacity(link)
                    members[link] = []
                    live[link] = 0
                members[link].append(transfer)
                live[link] += 1

        unfixed: Set[Transfer] = set(self._active)
        rates: Dict[Transfer, float] = {}
        while unfixed:
            # The bottleneck link is the one with the smallest fair share.
            bottleneck = None
            bottleneck_share = None
            for link, count in live.items():
                if not count:
                    continue
                share = max(capacity[link], 0.0) / count
                if bottleneck_share is None or share < bottleneck_share:
                    bottleneck_share = share
                    bottleneck = link
            if bottleneck is None:
                break
            assert bottleneck_share is not None
            for transfer in members[bottleneck]:
                if transfer not in unfixed:
                    continue
                rates[transfer] = bottleneck_share
                unfixed.discard(transfer)
                # Consume this flow's share on its *other* links, and
                # retire it from every path link's live count.
                for link in transfer.path:
                    live[link] -= 1
                    if link != bottleneck:
                        capacity[link] -= bottleneck_share
            capacity[bottleneck] = 0.0
        for transfer in self._active:
            transfer.rate = max(rates.get(transfer, 0.0), 0.0)

    def _finalize(self, transfer: Transfer, state: TransferState) -> None:
        transfer.state = state
        transfer.finished_at = self._sim.now
        transfer.rate = 0.0
        count = self._outgoing[transfer.source] - 1
        assert count >= 0, f"negative outgoing count for {transfer.source!r}"
        if count == 0:
            # Prune so outgoing_count/choose_source tie-breaks stay exact
            # and the dict does not grow without bound over long runs.
            del self._outgoing[transfer.source]
        else:
            self._outgoing[transfer.source] = count
        if state is TransferState.COMPLETED:
            transfer.on_complete(transfer)
        elif transfer.on_cancel is not None:
            transfer.on_cancel(transfer)
