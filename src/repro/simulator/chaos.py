"""Chaos campaign engine: arms scripted fault scenarios, measures recovery.

The :class:`ChaosEngine` is a registered
:class:`~repro.runtime.services.Service` that layers the declarative
scenarios of :mod:`repro.simulator.scenarios` on top of the stochastic
:class:`~repro.simulator.failures.FailureInjector`. Every injection goes
through the published machinery the cluster already reacts to — outages
via :meth:`~repro.simulator.failures.FailureInjector.schedule_outage`,
partitions and gray nodes via bus events — so the
:class:`~repro.simulator.invariants.InvariantAuditor` keeps running in
strict mode throughout a campaign, and the
:class:`~repro.simulator.trace.TraceRecorder` (a bus tap) records every
chaos action for byte-exact replay.

Scenario primitives map to injections as follows:

=================  ==========================================================
Primitive          Injection path
=================  ==========================================================
storm              ``FailureInjector.schedule_outage`` per target (staggered)
flap               one ``schedule_outage`` per cycle per target
partition          ``PartitionStarted`` / ``PartitionHealed`` bus events
                   (Network stalls crossing flows; HeartbeatService
                   suppresses member beats when ``isolate_heartbeats``)
gray               ``NodeDegraded`` / ``NodeRestored`` bus events (Network
                   throttles links; TaskTracker stretches execution)
degraded-link      ``LinkDegraded`` / ``LinkRestored`` bus events (the
                   ``LinkMitigationService`` applies its strategy's verdict
                   as capacity scales on the Network)
delayed-recovery   ``FailureInjector.set_recovery_stretch`` over the window
=================  ==========================================================

Alongside injection the engine *measures*: it subscribes (ACCOUNTING
phase, so it observes raw transitions before any reaction) to the
physical and belief events and produces a :class:`ResilienceReport` —
time-to-detect, time-to-re-replicate, makespan inflation against a
fault-free baseline, and SLO attainment.
"""

from __future__ import annotations

import dataclasses
import json
from dataclasses import dataclass
from typing import Callable, Dict, List, Optional, Tuple

from repro.core.ids import NodeId, NodeIds
from repro.hdfs.namenode import NameNode
from repro.simulator.engine import EventHandle, Simulator
from repro.simulator.events import (
    ChaosScenarioEnded,
    ChaosScenarioStarted,
    EventBus,
    LinkDegraded,
    LinkRestored,
    NodeDeclaredDead,
    NodeDegraded,
    NodeDown,
    NodeRestored,
    NodeReturned,
    NodeUp,
    PartitionHealed,
    PartitionStarted,
    ReplicaAdded,
)
from repro.simulator.failures import FailureInjector
from repro.simulator.network import Network
from repro.simulator.scenarios import (
    ChaosCampaign,
    DegradedLink,
    DelayedRecovery,
    FailureStorm,
    FlappingNode,
    GrayNode,
    NetworkPartition,
    Scenario,
)
from repro.simulator.topology import FlatStar, HOST_TIERS, LinkKey, Topology
from repro.util.rng import RandomSource

__all__ = ["ChaosEngine", "ResilienceReport", "ScenarioActivation"]


@dataclass(frozen=True)
class ScenarioActivation:
    """One armed scenario: its kind, campaign index, and resolved targets."""

    kind: str
    index: int
    targets: Tuple[str, ...]

    def to_jsonable(self) -> Dict[str, object]:
        return {"kind": self.kind, "index": self.index, "targets": list(self.targets)}


def _mean(values: List[float]) -> float:
    return sum(values) / len(values) if values else 0.0


@dataclass(frozen=True)
class ResilienceReport:
    """What a campaign did to the cluster, and how fast it healed.

    Lag metrics are zero when the corresponding transition never
    happened (e.g. no detections under sub-timeout flapping). The
    baseline comparison fields stay ``None`` until
    :meth:`with_baseline` folds in a fault-free run's makespan.
    """

    campaign: str
    slo_factor: float
    activations: Tuple[ScenarioActivation, ...]
    makespan: float
    #: Physical NodeDown transitions observed during the run.
    interruptions: int
    #: Physical NodeUp transitions observed during the run.
    node_returns: int
    #: NodeDeclaredDead events matched to a preceding physical down.
    detections: int
    mean_time_to_detect: float
    max_time_to_detect: float
    #: Interruptions never detected before the run ended (e.g. the node
    #: returned inside the heartbeat timeout — flapping's signature).
    undetected_downs: int
    #: Blocks re-replicated after their holder was declared dead.
    rereplications: int
    mean_time_to_rereplicate: float
    max_time_to_rereplicate: float
    #: Blocks still awaiting a new replica when the run ended.
    unrecovered_blocks: int
    baseline_makespan: Optional[float] = None
    makespan_inflation: Optional[float] = None
    slo_attained: Optional[bool] = None

    def with_baseline(self, baseline_makespan: float) -> "ResilienceReport":
        """Fold in a fault-free run: inflation and SLO attainment."""
        if baseline_makespan <= 0:
            raise ValueError(
                f"baseline makespan must be positive, got {baseline_makespan}"
            )
        inflation = self.makespan / baseline_makespan
        return dataclasses.replace(
            self,
            baseline_makespan=baseline_makespan,
            makespan_inflation=inflation,
            slo_attained=inflation <= self.slo_factor,
        )

    def to_jsonable(self) -> Dict[str, object]:
        data: Dict[str, object] = {
            "campaign": self.campaign,
            "slo_factor": self.slo_factor,
            "activations": [a.to_jsonable() for a in self.activations],
            "makespan": self.makespan,
            "interruptions": self.interruptions,
            "node_returns": self.node_returns,
            "detections": self.detections,
            "mean_time_to_detect": self.mean_time_to_detect,
            "max_time_to_detect": self.max_time_to_detect,
            "undetected_downs": self.undetected_downs,
            "rereplications": self.rereplications,
            "mean_time_to_rereplicate": self.mean_time_to_rereplicate,
            "max_time_to_rereplicate": self.max_time_to_rereplicate,
            "unrecovered_blocks": self.unrecovered_blocks,
            "baseline_makespan": self.baseline_makespan,
            "makespan_inflation": self.makespan_inflation,
            "slo_attained": self.slo_attained,
        }
        return data

    def to_json(self) -> str:
        return json.dumps(self.to_jsonable(), indent=2, sort_keys=True)


class ChaosEngine:
    """Arms a campaign's scenarios and measures the cluster's recovery."""

    name = "chaos-engine"

    def __init__(
        self,
        sim: Simulator,
        bus: EventBus,
        campaign: ChaosCampaign,
        rng: RandomSource,
        injector: FailureInjector,
        namenode: Optional[NameNode] = None,
        ids: Optional[NodeIds] = None,
        network: Optional[Network] = None,
    ) -> None:
        self._sim = sim
        self._bus = bus
        self._campaign = campaign
        self._rng = rng
        self._injector = injector
        self._namenode = namenode
        #: Degraded-link scenarios resolve their targets against this
        #: network's topology; without one they fall back to a flat star
        #: (explicit link specs only).
        self._network = network
        #: Name <-> int identity table. When present, scenario specs name
        #: targets by host name, the engine arms them by int id, and the
        #: resilience report translates back — names at both human edges,
        #: ints everywhere the cluster routes.
        self._ids = ids
        self._handles: List[EventHandle] = []
        self._activations: List[ScenarioActivation] = []
        self._armed = False
        # -- measurement state (fed by ACCOUNTING-phase subscriptions) ----
        self._interruptions = 0
        self._node_returns = 0
        self._pending_detect: Dict[NodeId, float] = {}
        self._detect_lags: List[float] = []
        self._pending_rerepl: Dict[NodeId, float] = {}
        self._rerepl_lags: List[float] = []

    # -- service lifecycle --------------------------------------------------

    def start(self) -> None:
        """Resolve every scenario's targets and arm its window events.

        Target selection draws from a per-scenario keyed substream over
        the sorted node-id list, so it is a pure function of the campaign
        and the cluster seed. Idempotent: a second start is a no-op.
        """
        if self._armed:
            return
        self._armed = True
        node_ids = self._injector.node_ids
        intern = self._ids.id_of if self._ids is not None else None
        for index, scenario in enumerate(self._campaign.scenarios):
            rng = self._rng.substream("chaos", index)
            if isinstance(scenario, DegradedLink):
                links = scenario.resolve_links(
                    self._topology(), rng, intern=intern
                )
                display = tuple(self._display_link(link) for link in links)
                self._activations.append(
                    ScenarioActivation(
                        kind=scenario.kind, index=index, targets=display
                    )
                )
                self._arm_degraded_links(index, scenario, display)
                continue
            targets = scenario.resolve_targets(node_ids, rng, intern=intern)
            display = (
                targets
                if self._ids is None
                else tuple(self._ids.name_of(n) for n in targets)
            )
            self._activations.append(
                ScenarioActivation(kind=scenario.kind, index=index, targets=display)
            )
            self._arm(index, scenario, targets, display)

    def stop(self) -> None:
        """Disarm every pending scenario event (cluster teardown)."""
        for handle in self._handles:
            handle.cancel()
        self._handles.clear()

    def describe(self) -> Dict[str, object]:
        return {
            "service": self.name,
            "campaign": self._campaign.name,
            "scenarios": len(self._campaign.scenarios),
            "interruptions": self._interruptions,
            "detections": len(self._detect_lags),
            "rereplications": len(self._rerepl_lags),
        }

    # -- arming -------------------------------------------------------------

    def _schedule(self, at_time: float, action: Callable[[], None]) -> None:
        self._handles.append(
            self._sim.schedule_at(
                max(at_time, self._sim.now), action, label="chaos"
            )
        )

    def _topology(self) -> Topology:
        if self._network is not None:
            return self._network.topology
        return FlatStar()

    def _display_link(self, link: LinkKey) -> str:
        """Render a link key in the campaign's (human) vocabulary."""
        tier, ident = link
        if tier in HOST_TIERS and self._ids is not None and isinstance(ident, int):
            return f"{tier}:{self._ids.name_of(ident)}"
        return f"{tier}:{ident}"

    def _arm_degraded_links(
        self, index: int, scenario: DegradedLink, links: Tuple[str, ...]
    ) -> None:
        """Arm one degraded-link window: per-link degrade/restore events.

        The events carry link specs in the display vocabulary (the same
        one :class:`ChaosScenarioStarted` speaks); the mitigation service
        parses them back through the cluster's id table.
        """
        start = max(scenario.start, self._sim.now)
        end = max(scenario.end(), start)
        spec = scenario.spec_json()
        kind = scenario.kind
        capacity_factor = scenario.capacity_factor
        corruption_rate = scenario.corruption_rate
        self._schedule(
            start,
            lambda: self._bus.publish(
                ChaosScenarioStarted(
                    time=self._sim.now,
                    kind=kind,
                    index=index,
                    targets=links,
                    spec=spec,
                )
            ),
        )
        for link in links:
            self._schedule(
                start,
                lambda spec_str=link: self._bus.publish(
                    LinkDegraded(
                        time=self._sim.now,
                        link=spec_str,
                        capacity_factor=capacity_factor,
                        corruption_rate=corruption_rate,
                    )
                ),
            )
            self._schedule(
                end,
                lambda spec_str=link: self._bus.publish(
                    LinkRestored(
                        time=self._sim.now,
                        link=spec_str,
                        capacity_factor=capacity_factor,
                        corruption_rate=corruption_rate,
                    )
                ),
            )
        self._schedule(
            end,
            lambda: self._bus.publish(
                ChaosScenarioEnded(time=self._sim.now, kind=kind, index=index)
            ),
        )

    def _arm(
        self,
        index: int,
        scenario: Scenario,
        targets: Tuple[NodeId, ...],
        display: Tuple[str, ...],
    ) -> None:
        start = max(scenario.start, self._sim.now)
        end = max(scenario.end(), start)
        spec = scenario.spec_json()
        kind = scenario.kind
        self._schedule(
            start,
            lambda: self._bus.publish(
                ChaosScenarioStarted(
                    time=self._sim.now,
                    kind=kind,
                    index=index,
                    targets=display,
                    spec=spec,
                )
            ),
        )
        if isinstance(scenario, FailureStorm):
            for offset, node_id in enumerate(targets):
                self._injector.schedule_outage(
                    [node_id],
                    start + offset * scenario.stagger,
                    scenario.duration,
                )
        elif isinstance(scenario, FlappingNode):
            period = scenario.down_time + scenario.up_time
            for node_id in targets:
                for cycle in range(int(scenario.cycles)):
                    self._injector.schedule_outage(
                        [node_id], start + cycle * period, scenario.down_time
                    )
        elif isinstance(scenario, NetworkPartition):
            partition_id = f"chaos-{index}"
            blocked = scenario.isolate_heartbeats
            self._schedule(
                start,
                lambda: self._bus.publish(
                    PartitionStarted(
                        time=self._sim.now,
                        partition_id=partition_id,
                        members=targets,
                        heartbeats_blocked=blocked,
                    )
                ),
            )
            self._schedule(
                end,
                lambda: self._bus.publish(
                    PartitionHealed(
                        time=self._sim.now,
                        partition_id=partition_id,
                        members=targets,
                    )
                ),
            )
        elif isinstance(scenario, GrayNode):
            link_factor = scenario.link_factor
            exec_factor = scenario.exec_factor
            for node_id in targets:
                self._schedule(
                    start,
                    lambda n=node_id: self._bus.publish(
                        NodeDegraded(
                            time=self._sim.now,
                            node_id=n,
                            link_factor=link_factor,
                            exec_factor=exec_factor,
                        )
                    ),
                )
                self._schedule(
                    end,
                    lambda n=node_id: self._bus.publish(
                        NodeRestored(time=self._sim.now, node_id=n)
                    ),
                )
        elif isinstance(scenario, DelayedRecovery):
            stretch = scenario.stretch
            for node_id in targets:
                self._schedule(
                    start,
                    lambda n=node_id: self._injector.set_recovery_stretch(n, stretch),
                )
                self._schedule(
                    end,
                    lambda n=node_id: self._injector.clear_recovery_stretch(n),
                )
        else:  # pragma: no cover - scenarios module defines the closed set
            raise TypeError(f"unsupported scenario type: {type(scenario).__name__}")
        self._schedule(
            end,
            lambda: self._bus.publish(
                ChaosScenarioEnded(time=self._sim.now, kind=kind, index=index)
            ),
        )

    # -- measurement (bus handlers, ACCOUNTING phase) -------------------------

    def handle_node_down(self, event: NodeDown) -> None:
        """Open a detection interval for the interrupted node."""
        self._interruptions += 1
        self._pending_detect.setdefault(event.node_id, event.time)

    def handle_node_up(self, event: NodeUp) -> None:
        """The node returned before detection fired: close the interval
        unmatched (flapping invisible to the collector)."""
        self._node_returns += 1
        self._pending_detect.pop(event.node_id, None)

    def handle_declared_dead(self, event: NodeDeclaredDead) -> None:
        """Close the detection interval; open re-replication intervals for
        every block the dead node held."""
        down_at = self._pending_detect.pop(event.node_id, None)
        if down_at is not None:
            self._detect_lags.append(event.time - down_at)
        if self._namenode is not None:
            for block_id in self._namenode.located_on(event.node_id):
                self._pending_rerepl.setdefault(block_id, event.time)

    def handle_node_returned(self, event: NodeReturned) -> None:
        """A believed-dead holder came back: void the pending intervals of
        blocks its return made whole again (another holder may still be
        dead — those intervals stay open)."""
        if self._namenode is None:
            return
        for block_id in self._namenode.located_on(event.node_id):
            if block_id not in self._pending_rerepl:
                continue
            target = self._namenode.replication_target(block_id)
            if len(self._namenode.up_holders(block_id)) >= target:
                del self._pending_rerepl[block_id]

    def handle_replica_added(self, event: ReplicaAdded) -> None:
        """A re-replication landed: close the block's interval."""
        started = self._pending_rerepl.pop(event.block_id, None)
        if started is not None:
            self._rerepl_lags.append(event.time - started)

    # -- reporting ------------------------------------------------------------

    @property
    def campaign(self) -> ChaosCampaign:
        return self._campaign

    @property
    def activations(self) -> Tuple[ScenarioActivation, ...]:
        return tuple(self._activations)

    def report(self, makespan: float) -> ResilienceReport:
        """Snapshot the campaign's resilience metrics at ``makespan``."""
        return ResilienceReport(
            campaign=self._campaign.name,
            slo_factor=self._campaign.slo_factor,
            activations=tuple(self._activations),
            makespan=makespan,
            interruptions=self._interruptions,
            node_returns=self._node_returns,
            detections=len(self._detect_lags),
            mean_time_to_detect=_mean(self._detect_lags),
            max_time_to_detect=max(self._detect_lags, default=0.0),
            undetected_downs=len(self._pending_detect),
            rereplications=len(self._rerepl_lags),
            mean_time_to_rereplicate=_mean(self._rerepl_lags),
            max_time_to_rereplicate=max(self._rerepl_lags, default=0.0),
            unrecovered_blocks=len(self._pending_rerepl),
        )
