"""Overhead accounting for the map phase (Figure 5's decomposition).

The paper measures, besides elapsed time and data locality, the overhead of
each cost component relative to the application's aggregate failure-free
execution time (Section V.C):

* **rework** — partial task executions lost to interruptions;
* **recovery** — slot time lost while an interrupted node is down during
  the map phase;
* **migration** — network time spent streaming blocks to remote tasks;
* **misc** — everything else: scheduling delay, duplicated straggler
  (speculative) executions, and idle slot time at the end of the phase.

:class:`MapPhaseMetrics` collects raw quantities during a run;
:meth:`MapPhaseMetrics.breakdown` converts them into the paper's overhead
ratios. The slot-time conservation law

    slots * makespan = base + rework + recovery + migration
                       + duplicate + idle (+ rounding)

is exposed via :meth:`OverheadBreakdown.conservation_residual` and
property-tested.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, Iterable, List, Set

from repro.util.validation import check_non_negative


@dataclass
class MapPhaseMetrics:
    """Mutable accumulator used by the JobTracker / TaskTrackers."""

    #: Aggregate failure-free execution time of all distinct tasks (m * gamma).
    base_work: float = 0.0
    #: Partial execution time lost in failed attempts.
    rework_time: float = 0.0
    #: Node downtime overlapping the map phase (slot unavailable).
    recovery_time: float = 0.0
    #: Transfer wall-time for remote reads (including cancelled partials).
    migration_time: float = 0.0
    #: Execution time burnt by speculative attempts that lost the race.
    duplicate_time: float = 0.0
    #: Up-slot time with no attempt assigned.
    idle_time: float = 0.0
    #: Useful (winning) execution time actually spent; equals base_work
    #: unless task lengths vary between attempts.
    useful_time: float = 0.0

    local_tasks: int = 0
    remote_tasks: int = 0
    failed_attempts: int = 0
    speculative_attempts: int = 0
    migrations: int = 0
    #: Physical availability transitions observed over the cluster's whole
    #: lifetime (counted in the bus's ACCOUNTING phase; the trace
    #: integration test cross-checks these against the recorded
    #: NodeDown/NodeUp event stream).
    interruptions: int = 0
    node_returns: int = 0

    def record_interruption(self) -> None:
        self.interruptions += 1

    def record_node_return(self) -> None:
        self.node_returns += 1

    def add_base(self, gamma: float) -> None:
        self.base_work += check_non_negative("gamma", gamma)

    def add_rework(self, seconds: float) -> None:
        self.rework_time += check_non_negative("seconds", seconds)
        self.failed_attempts += 1

    def add_recovery(self, seconds: float) -> None:
        self.recovery_time += check_non_negative("seconds", seconds)

    def add_migration(self, seconds: float) -> None:
        self.migration_time += check_non_negative("seconds", seconds)
        self.migrations += 1

    def add_duplicate(self, seconds: float) -> None:
        self.duplicate_time += check_non_negative("seconds", seconds)

    def add_idle(self, seconds: float) -> None:
        self.idle_time += check_non_negative("seconds", seconds)

    def add_useful(self, seconds: float) -> None:
        self.useful_time += check_non_negative("seconds", seconds)

    def record_completion(self, local: bool) -> None:
        if local:
            self.local_tasks += 1
        else:
            self.remote_tasks += 1

    @property
    def total_tasks(self) -> int:
        return self.local_tasks + self.remote_tasks

    @property
    def data_locality(self) -> float:
        """Ratio of local tasks to all tasks (the paper's locality metric).

        NaN when no task completed (every task abandoned after total data
        loss): the ratio is undefined, but reporting must not abort — a
        data-loss sweep still wants the rest of the breakdown row.
        """
        total = self.total_tasks
        if total == 0:
            return float("nan")
        return self.local_tasks / total

    def breakdown(self, makespan: float, slots: int) -> "OverheadBreakdown":
        """Convert raw sums into the Figure 5 overhead ratios."""
        check_non_negative("makespan", makespan)
        if slots <= 0:
            raise ValueError(f"slots must be positive, got {slots}")
        if self.base_work <= 0:
            raise ValueError("base work is zero; did any task run?")
        return OverheadBreakdown(
            base_work=self.base_work,
            makespan=makespan,
            slot_time=makespan * slots,
            rework=self.rework_time,
            recovery=self.recovery_time,
            migration=self.migration_time,
            duplicate=self.duplicate_time,
            idle=self.idle_time,
            useful=self.useful_time,
            data_locality=self.data_locality,
        )


@dataclass
class DurabilityMetrics:
    """Durability accounting for the storage layer.

    Populated by the :class:`~repro.hdfs.replication_monitor.ReplicationMonitor`
    (re-replication traffic, retries, garbage collection), the cluster's
    permanent-failure wiring (replicas destroyed, blocks lost for good) and
    the TaskTrackers (degraded-read retries on the hardened fetch path).
    """

    #: Permanent node failures observed (at detection time).
    permanent_failures: int = 0
    #: Replicas destroyed by permanent failures (disk wiped).
    replicas_lost: int = 0
    #: Blocks with zero surviving replicas — unrecoverable data loss.
    blocks_lost: int = 0
    #: Re-replication copies started / completed over the network.
    rereplications_started: int = 0
    rereplications_completed: int = 0
    #: Bytes moved by re-replication (partial bytes of failed copies count:
    #: the traffic was spent either way).
    rereplication_bytes: float = 0.0
    #: Wall-clock transfer time consumed by re-replication copies.
    rereplication_seconds: float = 0.0
    #: Copies torn down mid-transfer by an endpoint death.
    rereplication_failures: int = 0
    #: Backoff retries scheduled after mid-copy failures.
    rereplication_retries: int = 0
    #: Blocks whose retry budget ran out (left for a later membership event).
    rereplication_abandoned: int = 0
    #: Redundant replicas removed when an interrupted holder returned.
    overreplicated_removed: int = 0
    #: Remote fetches retried against a surviving replica instead of
    #: failing the attempt outright (the hardened read path).
    degraded_read_retries: int = 0

    _lost_ids: Set[str] = field(default_factory=set, repr=False)

    def record_permanent_failure(self, replicas_destroyed: int) -> None:
        if replicas_destroyed < 0:
            raise ValueError(f"replicas_destroyed must be >= 0, got {replicas_destroyed}")
        self.permanent_failures += 1
        self.replicas_lost += replicas_destroyed

    def record_lost_blocks(self, block_ids: Iterable[str]) -> None:
        """Record unrecoverable blocks (idempotent per block id)."""
        for block_id in block_ids:
            if block_id not in self._lost_ids:
                self._lost_ids.add(block_id)
                self.blocks_lost += 1

    @property
    def lost_block_ids(self) -> List[str]:
        return sorted(self._lost_ids)

    def record_copy_traffic(self, transferred_bytes: float, seconds: float) -> None:
        self.rereplication_bytes += check_non_negative("bytes", transferred_bytes)
        self.rereplication_seconds += check_non_negative("seconds", seconds)

    def summary_row(self) -> Dict[str, object]:
        """Flat view for result tables / benchmark output."""
        return {
            "permanent_failures": self.permanent_failures,
            "replicas_lost": self.replicas_lost,
            "blocks_lost": self.blocks_lost,
            "rereplications_completed": self.rereplications_completed,
            "rereplication_bytes": self.rereplication_bytes,
            "rereplication_seconds": self.rereplication_seconds,
            "rereplication_failures": self.rereplication_failures,
            "rereplication_retries": self.rereplication_retries,
            "overreplicated_removed": self.overreplicated_removed,
            "degraded_read_retries": self.degraded_read_retries,
        }


@dataclass(frozen=True)
class OverheadBreakdown:
    """Immutable overhead report for one finished map phase."""

    base_work: float
    makespan: float
    slot_time: float
    rework: float
    recovery: float
    migration: float
    duplicate: float
    idle: float
    useful: float
    data_locality: float

    @property
    def misc_raw(self) -> float:
        """Signed slot-time remainder: slot_time - (useful + rework +
        recovery + migration).

        A remainder materially below zero means some interval was charged
        to two components at once — the invariant auditor checks it stays
        within float tolerance of the duplicate + idle share.
        """
        return (
            self.slot_time - self.useful - self.rework - self.recovery - self.migration
        )

    @property
    def misc(self) -> float:
        """Misc overhead: duplicate speculation + idle + scheduling slack.

        Derived as the slot-time remainder so the conservation law holds by
        construction; clamped at zero for display against float residue
        (see :attr:`misc_raw` for the signed value).
        """
        return max(self.misc_raw, 0.0)

    @property
    def total_overhead(self) -> float:
        """Everything that was not useful failure-free work."""
        return self.rework + self.recovery + self.migration + self.misc

    def ratios(self) -> Dict[str, float]:
        """Per-component overhead ratios relative to base work (Figure 5)."""
        base = self.base_work
        return {
            "rework": self.rework / base,
            "recovery": self.recovery / base,
            "migration": self.migration / base,
            "misc": self.misc / base,
            "total": self.total_overhead / base,
        }

    def conservation_residual(self) -> float:
        """slot_time - (useful + rework + recovery + migration + duplicate + idle).

        Any residual beyond float noise is time the accounting failed to
        attribute (it still lands in ``misc``, as scheduling slack).
        """
        accounted = (
            self.useful
            + self.rework
            + self.recovery
            + self.migration
            + self.duplicate
            + self.idle
        )
        return self.slot_time - accounted
