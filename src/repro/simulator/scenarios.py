"""Declarative chaos scenarios and campaign definitions.

The stochastic :class:`~repro.simulator.failures.FailureInjector` draws
independent per-node interruptions from fitted availability
distributions — the memoryless regime ADAPT evaluates against. Real
non-dedicated deployments also fail in *correlated, scripted* shapes:
a rack loses power (storm), a flaky NIC cycles a node (flap), a switch
wedges so storage traffic stalls while control traffic survives
(partition), a node limps along at a fraction of nominal speed (gray),
or an operator takes far longer to bring machines back than the fitted
recovery distribution promises (delayed recovery).

This module defines those shapes as frozen dataclasses, composable into
a :class:`ChaosCampaign` that is JSON round-trippable (CLI loadable),
seed-deterministic (target selection uses a keyed
:class:`~repro.util.rng.RandomSource` substream over *sorted* node ids),
and trace-recordable (each scenario serialises to canonical JSON carried
on :class:`~repro.simulator.events.ChaosScenarioStarted`). The engine
that arms them lives in :mod:`repro.simulator.chaos`.
"""

from __future__ import annotations

import json
from dataclasses import dataclass, fields
from typing import Callable, ClassVar, Dict, Mapping, Optional, Sequence, Tuple, Type

from repro.core.ids import NodeId
from repro.simulator.topology import LinkKey, Topology, parse_link_spec
from repro.util.rng import RandomSource
from repro.util.validation import check_non_negative, check_positive

__all__ = [
    "Scenario",
    "FailureStorm",
    "FlappingNode",
    "NetworkPartition",
    "GrayNode",
    "DegradedLink",
    "DelayedRecovery",
    "ChaosCampaign",
    "scenario_from_jsonable",
]


@dataclass(frozen=True)
class Scenario:
    """Base declarative scenario: a fault shape applied over a window.

    Targets are either ``nodes`` (explicit ids, used verbatim) or
    ``count`` nodes sampled deterministically from the cluster; with
    neither set, the scenario targets every node. Subclasses set
    :attr:`kind` and define their own window shape via :meth:`end`.
    """

    #: Simulation time the scenario activates.
    start: float

    kind: ClassVar[str] = "scenario"

    def __post_init__(self) -> None:
        check_non_negative("start", self.start)

    # -- window ------------------------------------------------------------

    def end(self) -> float:
        """Simulation time the scenario's window closes."""
        raise NotImplementedError

    # -- target selection --------------------------------------------------

    def resolve_targets(
        self,
        node_ids: Sequence[NodeId],
        rng: RandomSource,
        intern: Optional[Callable[[str], NodeId]] = None,
    ) -> Tuple[NodeId, ...]:
        """Pick the concrete node ids this scenario acts on.

        Explicit ``nodes`` name hosts in the spec's (human) vocabulary;
        when ``intern`` is given they are translated to the cluster's
        dense int ids, otherwise used verbatim (standalone components
        route by name). Without explicit nodes, ``count`` ids are sampled
        from the *sorted* id list via ``rng`` so the choice is a pure
        function of the campaign seed — and representation-invariant,
        because names are zero-padded so id order equals name order.
        ``count=0`` (the default) means every node.
        """
        explicit: Tuple[NodeId, ...] = getattr(self, "nodes", ())
        if explicit and intern is not None:
            resolved = []
            unknown = []
            for name in explicit:
                try:
                    resolved.append(intern(name))
                except KeyError:
                    unknown.append(name)
            if unknown:
                raise ValueError(
                    f"{self.kind} scenario targets unknown nodes: {unknown}"
                )
            explicit = tuple(resolved)
        known = frozenset(node_ids)
        if explicit:
            missing = [n for n in explicit if n not in known]
            if missing:
                raise ValueError(
                    f"{self.kind} scenario targets unknown nodes: {missing}"
                )
            return tuple(explicit)
        pool = sorted(node_ids)
        count = int(getattr(self, "count", 0))
        if count < 0:
            raise ValueError(f"count must be non-negative, got {count}")
        if count == 0 or count >= len(pool):
            return tuple(pool)
        return tuple(rng.sample(pool, count))

    # -- serialisation -----------------------------------------------------

    def to_jsonable(self) -> Dict[str, object]:
        """Flat dict view with the ``kind`` discriminator first."""
        data: Dict[str, object] = {"kind": self.kind}
        for f in fields(self):
            value = getattr(self, f.name)
            data[f.name] = list(value) if isinstance(value, tuple) else value
        return data

    def spec_json(self) -> str:
        """Canonical JSON (sorted keys, no spaces) for trace payloads."""
        return json.dumps(self.to_jsonable(), sort_keys=True, separators=(",", ":"))


@dataclass(frozen=True)
class FailureStorm(Scenario):
    """Correlated mass outage: every target goes down at ``start`` (plus
    a small deterministic stagger) and stays down for ``duration``."""

    duration: float
    #: Per-target activation stagger so the storm is a burst, not one tick.
    stagger: float = 0.0
    nodes: Tuple[str, ...] = ()
    count: int = 0

    kind: ClassVar[str] = "storm"

    def __post_init__(self) -> None:
        super().__post_init__()
        check_positive("duration", self.duration)
        check_non_negative("stagger", self.stagger)
        object.__setattr__(self, "nodes", tuple(self.nodes))

    def end(self) -> float:
        return self.start + self.duration + self.stagger


@dataclass(frozen=True)
class FlappingNode(Scenario):
    """Rapid up/down cycling: each target repeats ``cycles`` episodes of
    ``down_time`` down then ``up_time`` up, starting at ``start``."""

    cycles: int
    down_time: float
    up_time: float
    nodes: Tuple[str, ...] = ()
    count: int = 0

    kind: ClassVar[str] = "flap"

    def __post_init__(self) -> None:
        super().__post_init__()
        if int(self.cycles) < 1:
            raise ValueError(f"cycles must be >= 1, got {self.cycles}")
        check_positive("down_time", self.down_time)
        check_positive("up_time", self.up_time)
        object.__setattr__(self, "nodes", tuple(self.nodes))

    def end(self) -> float:
        return self.start + self.cycles * (self.down_time + self.up_time)


@dataclass(frozen=True)
class NetworkPartition(Scenario):
    """A node subset cut off from the rest: transfers crossing the
    boundary stall for ``duration`` while the nodes keep running. With
    ``isolate_heartbeats`` the members' heartbeats are lost too, so
    detection declares them dead even though storage and compute on the
    far side are intact — belief and ground truth diverge."""

    duration: float
    isolate_heartbeats: bool = False
    nodes: Tuple[str, ...] = ()
    count: int = 0

    kind: ClassVar[str] = "partition"

    def __post_init__(self) -> None:
        super().__post_init__()
        check_positive("duration", self.duration)
        object.__setattr__(self, "nodes", tuple(self.nodes))

    def end(self) -> float:
        return self.start + self.duration


@dataclass(frozen=True)
class GrayNode(Scenario):
    """A gray (degraded-but-alive) node: for ``duration`` its network
    links run at ``link_factor`` of nominal capacity and task execution
    takes ``exec_factor`` times as long — the straggler regime
    speculative execution exists to catch."""

    duration: float
    link_factor: float = 1.0
    exec_factor: float = 1.0
    nodes: Tuple[str, ...] = ()
    count: int = 0

    kind: ClassVar[str] = "gray"

    def __post_init__(self) -> None:
        super().__post_init__()
        check_positive("duration", self.duration)
        check_positive("link_factor", self.link_factor)
        if self.link_factor > 1.0:
            raise ValueError(
                f"link_factor must be <= 1 (a throttle), got {self.link_factor}"
            )
        if self.exec_factor < 1.0:
            raise ValueError(
                f"exec_factor must be >= 1 (a slowdown), got {self.exec_factor}"
            )
        object.__setattr__(self, "nodes", tuple(self.nodes))

    def end(self) -> float:
        return self.start + self.duration


@dataclass(frozen=True)
class DegradedLink(Scenario):
    """A *link* limps while both its endpoints stay healthy: for
    ``duration`` the targeted links carry traffic at ``capacity_factor``
    of nominal and corrupt ``corruption_rate`` of what they forward —
    the LinkGuardian failure mode, where a flapping optic degrades a
    trunk member without any node ever missing a heartbeat.

    Targets are *links*, not nodes: either explicit ``links`` specs
    (``"tor-up:3"``, ``"up:node-00042"``) or ``count`` links sampled
    deterministically from the topology's fabric links. How much of the
    degradation reaches transfers depends on the cluster's link
    mitigation service (do-nothing, disable-and-reroute, retransmit-tax).
    """

    duration: float
    links: Tuple[str, ...] = ()
    count: int = 0
    capacity_factor: float = 1.0
    corruption_rate: float = 0.0

    kind: ClassVar[str] = "degraded-link"

    def __post_init__(self) -> None:
        super().__post_init__()
        check_positive("duration", self.duration)
        check_positive("capacity_factor", self.capacity_factor)
        if self.capacity_factor > 1.0:
            raise ValueError(
                f"capacity_factor must be <= 1 (a degradation), got "
                f"{self.capacity_factor}"
            )
        check_non_negative("corruption_rate", self.corruption_rate)
        if self.corruption_rate >= 1.0:
            raise ValueError(
                f"corruption_rate must be < 1, got {self.corruption_rate}"
            )
        if self.capacity_factor == 1.0 and self.corruption_rate == 0.0:
            raise ValueError(
                "degraded-link must degrade something: set capacity_factor < 1 "
                "and/or corruption_rate > 0"
            )
        object.__setattr__(self, "links", tuple(self.links))

    def end(self) -> float:
        return self.start + self.duration

    def resolve_links(
        self,
        topology: Topology,
        rng: RandomSource,
        intern: Optional[Callable[[str], NodeId]] = None,
    ) -> Tuple[LinkKey, ...]:
        """Pick the concrete links this scenario degrades.

        Explicit ``links`` specs are parsed verbatim (host names interned
        through ``intern`` when given). Without explicit links, ``count``
        links are sampled from the topology's fabric links — already in
        deterministic (tier, index) order — via ``rng``; ``count=0``
        means every fabric link. A flat star has no fabric, so there the
        spec must name links explicitly.
        """
        if self.links:
            return tuple(parse_link_spec(spec, intern=intern) for spec in self.links)
        pool = list(topology.fabric_links())
        if not pool:
            raise ValueError(
                "degraded-link scenario has no links: the topology has no "
                "fabric links to sample, so name targets explicitly via 'links'"
            )
        count = int(self.count)
        if count == 0 or count >= len(pool):
            return tuple(pool)
        return tuple(rng.sample(pool, count))


@dataclass(frozen=True)
class DelayedRecovery(Scenario):
    """Return times stretched past the predictor's fitted distribution:
    any interruption of a target beginning inside the window lasts
    ``stretch`` times its sampled duration."""

    duration: float
    stretch: float
    nodes: Tuple[str, ...] = ()
    count: int = 0

    kind: ClassVar[str] = "delayed-recovery"

    def __post_init__(self) -> None:
        super().__post_init__()
        check_positive("duration", self.duration)
        if self.stretch < 1.0:
            raise ValueError(f"stretch must be >= 1, got {self.stretch}")
        object.__setattr__(self, "nodes", tuple(self.nodes))

    def end(self) -> float:
        return self.start + self.duration


_SCENARIO_TYPES: Tuple[Type[Scenario], ...] = (
    FailureStorm,
    FlappingNode,
    NetworkPartition,
    GrayNode,
    DegradedLink,
    DelayedRecovery,
)
_BY_KIND: Dict[str, Type[Scenario]] = {cls.kind: cls for cls in _SCENARIO_TYPES}


def scenario_from_jsonable(data: Mapping[str, object]) -> Scenario:
    """Rebuild a scenario from its :meth:`Scenario.to_jsonable` form."""
    payload = dict(data)
    kind = payload.pop("kind", None)
    if not isinstance(kind, str) or kind not in _BY_KIND:
        raise ValueError(
            f"unknown scenario kind {kind!r}; expected one of {sorted(_BY_KIND)}"
        )
    cls = _BY_KIND[kind]
    names = {f.name for f in fields(cls)}
    unknown = sorted(k for k in payload if k not in names)
    if unknown:
        raise ValueError(f"{kind} scenario has unknown fields: {unknown}")
    if "nodes" in payload:
        nodes = payload["nodes"]
        if not isinstance(nodes, (list, tuple)):
            raise ValueError(f"{kind} scenario 'nodes' must be a list")
        payload["nodes"] = tuple(str(n) for n in nodes)
    if "links" in payload:
        links = payload["links"]
        if not isinstance(links, (list, tuple)):
            raise ValueError(f"{kind} scenario 'links' must be a list")
        payload["links"] = tuple(str(link) for link in links)
    return cls(**payload)  # type: ignore[arg-type]


@dataclass(frozen=True)
class ChaosCampaign:
    """An ordered composition of scenarios run against one cluster.

    ``slo_factor`` defines the campaign's service-level objective: the
    run attains its SLO when makespan stays within ``slo_factor`` times
    the fault-free baseline (measured by
    :meth:`~repro.simulator.chaos.ResilienceReport.with_baseline`).
    """

    name: str
    scenarios: Tuple[Scenario, ...]
    slo_factor: float = 2.0

    def __post_init__(self) -> None:
        if not self.name:
            raise ValueError("campaign name must be non-empty")
        object.__setattr__(self, "scenarios", tuple(self.scenarios))
        if not self.scenarios:
            raise ValueError("campaign must contain at least one scenario")
        for scenario in self.scenarios:
            if not isinstance(scenario, Scenario):
                raise TypeError(f"not a Scenario: {scenario!r}")
        check_positive("slo_factor", self.slo_factor)

    # -- serialisation -----------------------------------------------------

    def to_jsonable(self) -> Dict[str, object]:
        return {
            "name": self.name,
            "slo_factor": self.slo_factor,
            "scenarios": [s.to_jsonable() for s in self.scenarios],
        }

    @classmethod
    def from_jsonable(cls, data: Mapping[str, object]) -> "ChaosCampaign":
        if not isinstance(data, Mapping):
            raise ValueError(f"campaign must be a JSON object, got {type(data)}")
        raw = data.get("scenarios")
        if not isinstance(raw, list):
            raise ValueError("campaign 'scenarios' must be a list")
        scenarios = tuple(scenario_from_jsonable(item) for item in raw)
        return cls(
            name=str(data.get("name", "")),
            scenarios=scenarios,
            slo_factor=float(data.get("slo_factor", 2.0)),  # type: ignore[arg-type]
        )

    @classmethod
    def load(cls, path: str) -> "ChaosCampaign":
        """Load a campaign from a JSON file (the CLI's ``--campaign``)."""
        with open(path, "r", encoding="utf-8") as handle:
            return cls.from_jsonable(json.load(handle))

    def dump(self, path: str) -> None:
        with open(path, "w", encoding="utf-8") as handle:
            json.dump(self.to_jsonable(), handle, indent=2, sort_keys=True)
            handle.write("\n")

    def horizon(self) -> float:
        """Latest scenario end time (campaign observation window)."""
        return max(s.end() for s in self.scenarios)
