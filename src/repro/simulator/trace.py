"""Structured event tracing: every bus dispatch as an exportable record.

The event bus doubles as the cluster's observability layer: a
:class:`TraceRecorder` taps the bus and captures one structured record per
published event — sequence, simulation time, event type, routing key
(node or block), the dispatch phases that had handlers, and the full event
payload. Records accumulate in memory in causal (publish) order and export
as JSON Lines, one object per line, so any future scenario gets tracing
for free by passing ``--trace-out`` (or setting
``ClusterConfig.trace_events``).
"""

from __future__ import annotations

import json
from dataclasses import dataclass
from typing import Dict, Iterator, List, Mapping, Optional, Tuple, Type

from repro.core.ids import NodeIds
from repro.simulator.events import Event, EventBus, Phase

#: Payload fields that carry dense node ids; exported records translate
#: them back to host names (ids are an in-memory representation, names
#: are the reporting vocabulary).
_NODE_FIELDS = ("node_id",)
_NODE_TUPLE_FIELDS = ("members",)


@dataclass(frozen=True)
class TraceRecord:
    """One captured bus event."""

    #: Publish order (0-based) — total order over the whole run.
    seq: int
    #: Simulation time the event carries.
    time: float
    #: Event class name (``NodeDown``, ``BlockLost``, ...).
    type: str
    #: Routing key: the node or block the event is about (None = global).
    key: Optional[str]
    #: Names of the dispatch phases that had at least one handler.
    phases: Tuple[str, ...]
    #: Every field of the event, JSON-ready.
    payload: Mapping[str, object]

    def to_json(self) -> str:
        return json.dumps(
            {
                "seq": self.seq,
                "time": self.time,
                "type": self.type,
                "key": self.key,
                "phases": list(self.phases),
                "payload": dict(self.payload),
            },
            sort_keys=True,
        )


class TraceRecorder:
    """Bus tap that materialises the event stream (a lifecycle service)."""

    name = "trace-recorder"

    def __init__(self, bus: EventBus, ids: Optional[NodeIds] = None) -> None:
        self._records: List[TraceRecord] = []
        self._recording = True
        self._ids = ids
        bus.add_tap(self._on_event)

    # -- service lifecycle -------------------------------------------------------

    def start(self) -> None:
        self._recording = True

    def stop(self) -> None:
        """Stop capturing; already-captured records stay readable."""
        self._recording = False

    def describe(self) -> Dict[str, object]:
        return {
            "service": self.name,
            "records": len(self._records),
            "recording": self._recording,
        }

    # -- capture ------------------------------------------------------------------

    def _on_event(self, event: Event, phases: Tuple[Phase, ...]) -> None:
        if not self._recording:
            return
        self._records.append(
            TraceRecord(
                seq=len(self._records),
                time=event.time,
                type=type(event).__name__,
                key=self._display(event.routing_key),
                phases=tuple(phase.name for phase in phases),
                payload=self._display_payload(event.payload()),
            )
        )

    def _display(self, key: object) -> Optional[str]:
        """Render a routing key for export (int node id -> host name)."""
        if key is None:
            return None
        if self._ids is not None and isinstance(key, int):
            return self._ids.name_of(key)
        return str(key)

    def _display_payload(self, payload: Dict[str, object]) -> Dict[str, object]:
        """Translate node-id fields back to host names for export."""
        if self._ids is None:
            return payload
        name_of = self._ids.name_of
        for field in _NODE_FIELDS:
            value = payload.get(field)
            if isinstance(value, int):
                payload[field] = name_of(value)
        for field in _NODE_TUPLE_FIELDS:
            value = payload.get(field)
            if isinstance(value, tuple):
                payload[field] = tuple(
                    name_of(v) if isinstance(v, int) else v for v in value
                )
        return payload

    # -- access -------------------------------------------------------------------

    @property
    def records(self) -> List[TraceRecord]:
        return list(self._records)

    def __len__(self) -> int:
        return len(self._records)

    def __iter__(self) -> Iterator[TraceRecord]:
        return iter(self._records)

    def count_by_type(self) -> Dict[str, int]:
        """Event-type histogram of the captured stream."""
        counts: Dict[str, int] = {}
        for record in self._records:
            counts[record.type] = counts.get(record.type, 0) + 1
        return counts

    def events_of(self, event_type: Type[Event]) -> List[TraceRecord]:
        wanted = event_type.__name__
        return [record for record in self._records if record.type == wanted]

    # -- export -------------------------------------------------------------------

    def export_jsonl(self, path: str) -> int:
        """Write one JSON object per record; returns the record count."""
        with open(path, "w", encoding="utf-8") as handle:
            for record in self._records:
                handle.write(record.to_json())
                handle.write("\n")
        return len(self._records)


__all__ = ["TraceRecord", "TraceRecorder"]
