"""The discrete-event engine.

A minimal, fast event loop: events are ``(time, sequence, action)`` triples
in a binary heap. The sequence number breaks time ties in scheduling order,
which makes every simulation a deterministic function of its root seed —
a property the reproducibility tests assert end-to-end.

Cancellation is lazy (a cancelled handle stays in the heap and is skipped
when popped), which keeps both ``schedule`` and ``cancel`` O(log n) / O(1).
Long runs with recurring reschedule/cancel cycles (heartbeat watchdogs,
network sweeps) would otherwise accumulate dead entries without bound, so
the heap is compacted — cancelled entries filtered out and the heap
re-heapified — whenever they outnumber the live ones (amortised O(1) per
cancellation; :attr:`Simulator.pending_events` stays within a constant
factor of the live event count).
"""

from __future__ import annotations

import heapq
import itertools
import math
from typing import Callable, List, Optional, Tuple

#: Never compact below this heap size: tiny heaps don't need the churn.
_COMPACT_MIN_SIZE = 64


class EventHandle:
    """A scheduled event; call :meth:`cancel` to revoke it."""

    __slots__ = ("time", "action", "label", "_cancelled", "_sim")

    def __init__(
        self,
        time: float,
        action: Callable[[], None],
        label: str,
        sim: Optional["Simulator"] = None,
    ) -> None:
        self.time = time
        self.action: Optional[Callable[[], None]] = action
        self.label = label
        self._cancelled = False
        #: Owning simulator, told about cancellations for heap hygiene.
        self._sim = sim

    @property
    def cancelled(self) -> bool:
        return self._cancelled

    def cancel(self) -> None:
        """Revoke the event; a no-op if it already fired."""
        if self._cancelled:
            return
        self._cancelled = True
        self.action = None  # release the closure promptly
        if self._sim is not None:
            self._sim._note_cancelled()

    def _consume(self) -> None:
        """Mark fired (already popped — no hygiene accounting)."""
        self._cancelled = True
        self.action = None

    def __repr__(self) -> str:
        state = "cancelled" if self._cancelled else "pending"
        return f"EventHandle(t={self.time:g}, label={self.label!r}, {state})"


class Simulator:
    """Deterministic discrete-event simulator."""

    def __init__(self, start_time: float = 0.0) -> None:
        self._now = float(start_time)
        self._heap: List[Tuple[float, int, EventHandle]] = []
        self._sequence = itertools.count()
        self._events_fired = 0
        self._running = False
        self._cancelled_in_heap = 0

    @property
    def now(self) -> float:
        """Current simulation time (seconds)."""
        return self._now

    @property
    def events_fired(self) -> int:
        """Number of events executed so far."""
        return self._events_fired

    @property
    def pending_events(self) -> int:
        """Events still in the heap (including lazily-cancelled ones)."""
        return len(self._heap)

    @property
    def cancelled_pending(self) -> int:
        """Lazily-cancelled entries currently occupying the heap."""
        return self._cancelled_in_heap

    def schedule(
        self,
        delay: float,
        action: Callable[[], None],
        label: str = "",
    ) -> EventHandle:
        """Schedule ``action`` to run ``delay`` seconds from now."""
        if delay < 0:
            raise ValueError(f"cannot schedule into the past (delay={delay})")
        return self.schedule_at(self._now + delay, action, label)

    def schedule_at(
        self,
        time: float,
        action: Callable[[], None],
        label: str = "",
    ) -> EventHandle:
        """Schedule ``action`` at an absolute simulation time."""
        if time < self._now:
            raise ValueError(f"cannot schedule at {time} before now ({self._now})")
        if not math.isfinite(time):
            raise ValueError(f"event time must be finite, got {time}")
        handle = EventHandle(time, action, label, sim=self)
        heapq.heappush(self._heap, (time, next(self._sequence), handle))
        return handle

    def step(self) -> bool:
        """Execute the next event. Returns False when the heap is empty."""
        while self._heap:
            time, _seq, handle = heapq.heappop(self._heap)
            if handle.cancelled:
                self._cancelled_in_heap -= 1
                continue
            self._now = time
            action = handle.action
            handle._consume()  # mark fired; also drops the closure ref
            self._events_fired += 1
            assert action is not None
            action()
            return True
        return False

    def run(
        self,
        until: Optional[float] = None,
        max_events: Optional[int] = None,
    ) -> int:
        """Run events until the heap drains, ``until`` passes, or the budget ends.

        Returns the number of events executed by this call. Events scheduled
        exactly at ``until`` still run; the clock never advances past the
        last executed event.
        """
        if self._running:
            raise RuntimeError("simulator is already running (re-entrant run())")
        self._running = True
        executed = 0
        try:
            while self._heap:
                if max_events is not None and executed >= max_events:
                    break
                next_time = self._peek_time()
                if next_time is None:
                    break
                if until is not None and next_time > until:
                    break
                # _peek_time left a live handle at the heap head; pop it
                # directly instead of letting step() rescan for one.
                time, _seq, handle = heapq.heappop(self._heap)
                self._now = time
                action = handle.action
                handle._consume()  # mark fired; also drops the closure ref
                self._events_fired += 1
                assert action is not None
                action()
                executed += 1
        finally:
            self._running = False
        return executed

    def peek_next_time(self) -> Optional[float]:
        """Time of the next live event, or None when the heap is drained.

        Never earlier than :attr:`now` — the invariant auditor checks this;
        a violation would mean heap ordering itself broke.
        """
        return self._peek_time()

    def _peek_time(self) -> Optional[float]:
        """Time of the next live event, discarding cancelled heads."""
        while self._heap:
            time, _seq, handle = self._heap[0]
            if handle.cancelled:
                heapq.heappop(self._heap)
                self._cancelled_in_heap -= 1
                continue
            return time
        return None

    def _note_cancelled(self) -> None:
        """A pending handle was cancelled; compact when the dead outnumber
        the living (and the heap is big enough to care)."""
        self._cancelled_in_heap += 1
        if (
            len(self._heap) >= _COMPACT_MIN_SIZE
            and self._cancelled_in_heap * 2 > len(self._heap)
        ):
            self._heap = [entry for entry in self._heap if not entry[2].cancelled]
            heapq.heapify(self._heap)
            self._cancelled_in_heap = 0

    def __repr__(self) -> str:
        return f"Simulator(now={self._now:g}, pending={len(self._heap)})"
