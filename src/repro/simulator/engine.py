"""The discrete-event engine.

A minimal, fast event loop: events are ``(time, sequence, action)`` triples
in a pluggable :class:`EventQueue`. The sequence number breaks time ties in
scheduling order, which makes every simulation a deterministic function of
its root seed — a property the reproducibility tests assert end-to-end.

Two queue implementations are provided, selectable via
``Simulator(queue=...)`` / ``ClusterConfig.event_queue``:

* :class:`HeapEventQueue` (default) — a compacting binary heap;
  O(log n) push/pop regardless of event-time distribution.
* :class:`CalendarEventQueue` — a bucketed calendar queue (R. Brown,
  CACM 1988): amortised O(1) push/pop when event times are spread over
  many buckets, the regime a 226k-node failure kernel lives in.

Both are **exact**: pops come out in strict ``(time, seq)`` order, so the
simulated trajectory is byte-identical whichever queue runs it (pinned by
``tests/simulator/test_event_queues.py`` and the golden determinism suite).

Cancellation is lazy (a cancelled handle stays queued and is skipped when
popped), which keeps both ``schedule`` and ``cancel`` cheap. Long runs with
recurring reschedule/cancel cycles (heartbeat watchdogs, network sweeps)
would otherwise accumulate dead entries without bound, so the queue is
compacted — cancelled entries dropped — whenever they outnumber the live
ones (amortised O(1) per cancellation; :attr:`Simulator.pending_events`
stays within a constant factor of the live event count).
"""

from __future__ import annotations

import heapq
import itertools
import math
from typing import Callable, List, Optional, Protocol, Tuple, Union

#: Never compact below this queue size: tiny queues don't need the churn.
_COMPACT_MIN_SIZE = 64

#: Valid ``Simulator(queue=...)`` / ``ClusterConfig.event_queue`` names.
EVENT_QUEUES = ("heap", "calendar")


class EventHandle:
    """A scheduled event; call :meth:`cancel` to revoke it."""

    __slots__ = ("time", "action", "label", "_cancelled", "_sim")

    def __init__(
        self,
        time: float,
        action: Callable[[], None],
        label: str,
        sim: Optional["Simulator"] = None,
    ) -> None:
        self.time = time
        self.action: Optional[Callable[[], None]] = action
        self.label = label
        self._cancelled = False
        #: Owning simulator, told about cancellations for heap hygiene.
        self._sim = sim

    @property
    def cancelled(self) -> bool:
        return self._cancelled

    def cancel(self) -> None:
        """Revoke the event; a no-op if it already fired."""
        if self._cancelled:
            return
        self._cancelled = True
        self.action = None  # release the closure promptly
        if self._sim is not None:
            self._sim._note_cancelled()

    def _consume(self) -> None:
        """Mark fired (already popped — no hygiene accounting)."""
        self._cancelled = True
        self.action = None

    def __repr__(self) -> str:
        state = "cancelled" if self._cancelled else "pending"
        return f"EventHandle(t={self.time:g}, label={self.label!r}, {state})"


#: One queued event: (time, sequence, handle). Tuple comparison gives the
#: total (time, seq) order; sequences are unique so handle comparison is
#: never reached.
QueueEntry = Tuple[float, int, EventHandle]


class EventQueue(Protocol):
    """Priority queue of :data:`QueueEntry` items in ``(time, seq)`` order.

    Implementations must be *exact*: :meth:`pop` returns the globally
    smallest entry, every time — approximate orderings (e.g. ladder queues
    with intra-rung disorder) would silently break golden byte-determinism.
    Cancelled-entry skipping and accounting live in :class:`Simulator`;
    queues just store and order.
    """

    def push(self, entry: QueueEntry) -> None:
        """Insert an entry."""
        ...

    def pop(self) -> QueueEntry:
        """Remove and return the smallest entry; IndexError when empty."""
        ...

    def peek(self) -> Optional[QueueEntry]:
        """The smallest entry without removing it, or None when empty."""
        ...

    def compact(self) -> int:
        """Drop cancelled entries; return how many were dropped."""
        ...

    def __len__(self) -> int:
        ...


class HeapEventQueue:
    """The default queue: a plain binary heap (``heapq``)."""

    __slots__ = ("_heap",)

    def __init__(self) -> None:
        self._heap: List[QueueEntry] = []

    def push(self, entry: QueueEntry) -> None:
        heapq.heappush(self._heap, entry)

    def pop(self) -> QueueEntry:
        return heapq.heappop(self._heap)

    def peek(self) -> Optional[QueueEntry]:
        return self._heap[0] if self._heap else None

    def compact(self) -> int:
        before = len(self._heap)
        self._heap = [entry for entry in self._heap if not entry[2].cancelled]
        heapq.heapify(self._heap)
        return before - len(self._heap)

    def __len__(self) -> int:
        return len(self._heap)


class CalendarEventQueue:
    """A bucketed calendar queue with exact ``(time, seq)`` pop order.

    Entries hash into ``nbuckets`` time buckets of ``width`` simulated
    seconds each (bucket = ``int(t / width) % nbuckets``); each bucket is a
    small heap. Popping scans forward from the current *virtual bucket*
    (``int(t / width)``, unwrapped); an entry is delivered only when the
    scan stands in the virtual bucket its time hashes to, which guarantees
    global minimality — all earlier buckets of the lap were empty and
    earlier laps contain nothing. A full fruitless lap (sparse regime)
    falls back to a direct min scan over bucket heads, so pops always
    terminate and order stays exact.

    The table doubles/halves to keep bucket occupancy O(1) and re-derives
    the width from the live entries' time span on every resize. All
    adaptivity affects only speed — never order.
    """

    __slots__ = ("_buckets", "_nbuckets", "_width", "_size", "_vbucket")

    def __init__(self, nbuckets: int = 16, width: float = 1.0) -> None:
        if nbuckets < 1:
            raise ValueError(f"nbuckets must be >= 1, got {nbuckets}")
        if width <= 0.0:
            raise ValueError(f"width must be positive, got {width}")
        self._nbuckets = nbuckets
        self._width = width
        self._buckets: List[List[QueueEntry]] = [[] for _ in range(nbuckets)]
        self._size = 0
        #: Virtual (unwrapped) bucket index the pop scan stands in.
        self._vbucket = 0

    def push(self, entry: QueueEntry) -> None:
        vb = int(entry[0] / self._width)
        if vb < self._vbucket:
            # An entry behind the scan position (only possible before the
            # first pop, or from direct queue use in tests): back the scan
            # up so nothing is skipped.
            self._vbucket = vb
        heapq.heappush(self._buckets[vb % self._nbuckets], entry)
        self._size += 1
        if self._size > 2 * self._nbuckets and self._nbuckets < 1 << 20:
            self._resize(2 * self._nbuckets)

    def pop(self) -> QueueEntry:
        if self._size == 0:
            raise IndexError("pop from empty CalendarEventQueue")
        entry = self._find_head(advance=True)
        assert entry is not None
        bucket = self._buckets[int(entry[0] / self._width) % self._nbuckets]
        popped = heapq.heappop(bucket)
        self._size -= 1
        if self._size < self._nbuckets // 4 and self._nbuckets > 16:
            self._resize(max(self._nbuckets // 2, 16))
        return popped

    def peek(self) -> Optional[QueueEntry]:
        if self._size == 0:
            return None
        return self._find_head(advance=True)

    def _find_head(self, advance: bool) -> Optional[QueueEntry]:
        """Locate the globally smallest entry (size > 0 assumed).

        Scans forward from the current virtual bucket; after one full
        fruitless lap, jumps straight to the minimum bucket head.
        ``advance`` moves the scan position up to the found entry's virtual
        bucket (always safe: nothing smaller exists).
        """
        width = self._width
        n = self._nbuckets
        vb = self._vbucket
        for _ in range(n):
            bucket = self._buckets[vb % n]
            if bucket and int(bucket[0][0] / width) == vb:
                if advance:
                    self._vbucket = vb
                return bucket[0]
            vb += 1
        # Sparse regime: nothing within a full lap of the scan. Take the
        # minimum over bucket heads directly (exactness over speed).
        best: Optional[QueueEntry] = None
        for bucket in self._buckets:
            if bucket and (best is None or bucket[0] < best):
                best = bucket[0]
        assert best is not None
        if advance:
            self._vbucket = int(best[0] / width)
        return best

    def _resize(self, nbuckets: int) -> None:
        entries = [entry for bucket in self._buckets for entry in bucket]
        lo = min(entry[0] for entry in entries) if entries else 0.0
        hi = max(entry[0] for entry in entries) if entries else 0.0
        span = hi - lo
        if span > 0.0 and len(entries) > 1:
            # ~3 expected entries per bucket across the live span.
            self._width = max(span * 3.0 / len(entries), 1e-9)
        self._nbuckets = nbuckets
        self._buckets = [[] for _ in range(nbuckets)]
        self._size = 0
        self._vbucket = int(lo / self._width)
        for entry in entries:
            self.push(entry)

    def compact(self) -> int:
        dropped = 0
        for i, bucket in enumerate(self._buckets):
            live = [entry for entry in bucket if not entry[2].cancelled]
            dropped += len(bucket) - len(live)
            heapq.heapify(live)
            self._buckets[i] = live
        self._size -= dropped
        return dropped

    def __len__(self) -> int:
        return self._size


def make_event_queue(name: str) -> EventQueue:
    """Build a queue implementation by its config name."""
    if name == "heap":
        return HeapEventQueue()
    if name == "calendar":
        return CalendarEventQueue()
    raise ValueError(f"event queue must be one of {EVENT_QUEUES}, got {name!r}")


class Simulator:
    """Deterministic discrete-event simulator."""

    def __init__(
        self,
        start_time: float = 0.0,
        queue: Union[str, EventQueue] = "heap",
    ) -> None:
        self._now = float(start_time)
        self._queue: EventQueue = (
            make_event_queue(queue) if isinstance(queue, str) else queue
        )
        self._sequence = itertools.count()
        self._events_fired = 0
        self._running = False
        self._cancelled_in_heap = 0

    @property
    def now(self) -> float:
        """Current simulation time (seconds)."""
        return self._now

    @property
    def events_fired(self) -> int:
        """Number of events executed so far."""
        return self._events_fired

    @property
    def pending_events(self) -> int:
        """Events still queued (including lazily-cancelled ones)."""
        return len(self._queue)

    @property
    def cancelled_pending(self) -> int:
        """Lazily-cancelled entries currently occupying the queue."""
        return self._cancelled_in_heap

    @property
    def queue(self) -> EventQueue:
        """The live event-queue implementation (introspection/tests)."""
        return self._queue

    def schedule(
        self,
        delay: float,
        action: Callable[[], None],
        label: str = "",
    ) -> EventHandle:
        """Schedule ``action`` to run ``delay`` seconds from now."""
        if delay < 0:
            raise ValueError(f"cannot schedule into the past (delay={delay})")
        return self.schedule_at(self._now + delay, action, label)

    def schedule_at(
        self,
        time: float,
        action: Callable[[], None],
        label: str = "",
    ) -> EventHandle:
        """Schedule ``action`` at an absolute simulation time."""
        if time < self._now:
            raise ValueError(f"cannot schedule at {time} before now ({self._now})")
        if not math.isfinite(time):
            raise ValueError(f"event time must be finite, got {time}")
        handle = EventHandle(time, action, label, sim=self)
        self._queue.push((time, next(self._sequence), handle))
        return handle

    def step(self) -> bool:
        """Execute the next event. Returns False when the queue is empty."""
        while len(self._queue):
            time, _seq, handle = self._queue.pop()
            if handle.cancelled:
                self._cancelled_in_heap -= 1
                continue
            self._now = time
            action = handle.action
            handle._consume()  # mark fired; also drops the closure ref
            self._events_fired += 1
            assert action is not None
            action()
            return True
        return False

    def run(
        self,
        until: Optional[float] = None,
        max_events: Optional[int] = None,
    ) -> int:
        """Run events until the queue drains, ``until`` passes, or the budget ends.

        Returns the number of events executed by this call. Events scheduled
        exactly at ``until`` still run; the clock never advances past the
        last executed event.
        """
        if self._running:
            raise RuntimeError("simulator is already running (re-entrant run())")
        self._running = True
        executed = 0
        try:
            while len(self._queue):
                if max_events is not None and executed >= max_events:
                    break
                next_time = self._peek_time()
                if next_time is None:
                    break
                if until is not None and next_time > until:
                    break
                # _peek_time left a live handle at the queue head; pop it
                # directly instead of letting step() rescan for one.
                time, _seq, handle = self._queue.pop()
                self._now = time
                action = handle.action
                handle._consume()  # mark fired; also drops the closure ref
                self._events_fired += 1
                assert action is not None
                action()
                executed += 1
        finally:
            self._running = False
        return executed

    def peek_next_time(self) -> Optional[float]:
        """Time of the next live event, or None when the queue is drained.

        Never earlier than :attr:`now` — the invariant auditor checks this;
        a violation would mean queue ordering itself broke.
        """
        return self._peek_time()

    def _peek_time(self) -> Optional[float]:
        """Time of the next live event, discarding cancelled heads."""
        queue = self._queue
        while True:
            entry = queue.peek()
            if entry is None:
                return None
            if entry[2].cancelled:
                queue.pop()
                self._cancelled_in_heap -= 1
                continue
            return entry[0]

    def _note_cancelled(self) -> None:
        """A pending handle was cancelled; compact when the dead outnumber
        the living (and the queue is big enough to care)."""
        self._cancelled_in_heap += 1
        if (
            len(self._queue) >= _COMPACT_MIN_SIZE
            and self._cancelled_in_heap * 2 > len(self._queue)
        ):
            self._queue.compact()
            self._cancelled_in_heap = 0

    def __repr__(self) -> str:
        return f"Simulator(now={self._now:g}, pending={len(self._queue)})"
