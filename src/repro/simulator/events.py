"""Typed, priority-phased event bus: the cluster's nervous system.

Every availability transition in the simulated deployment fans out to many
subsystems — accounting, storage, compute, network, failure detection,
scheduling — and the *order* of those reactions is load-bearing (a
DataNode must be marked down before detection requeues its work; a wiped
disk must be accounted before the scheduler abandons tasks). The seed
cluster enforced that order implicitly, through the subscription order of
~15 callbacks in ``build_cluster``; this module makes the contract
explicit and typed.

Dispatch contract
-----------------
* Events are frozen dataclasses (:class:`NodeDown`, :class:`NodeUp`,
  :class:`PermanentFailure`, :class:`NodeDeclaredDead`,
  :class:`NodeReturned`, :class:`NodePurged`, :class:`BlockLost`,
  :class:`ReplicaAdded`, :class:`TaskStateChange`). Matching is by exact
  type — no subclass dispatch, so adding an event type never changes the
  delivery set of existing subscriptions.
* Each subscription names a :class:`Phase`. On ``publish`` the handlers of
  the event's type run grouped by phase, ``ACCOUNTING`` through
  ``SCHEDULING``; within a phase, in subscription order. This replaces
  "subscription order is the contract" with "phase order is the contract".
* Dispatch is synchronous and depth-first: a handler that publishes a
  nested event (a wipe publishing :class:`BlockLost`) has the nested
  dispatch complete before the outer dispatch resumes — exactly the
  semantics of the direct callback chains it replaces.
* Subscriptions may be *keyed* by the event's routing key (a node id or
  block id). A keyed handler only runs for events carrying that key, and
  delivery cost is O(handlers that care), not O(nodes) — per-node agents
  (TaskTrackers, DataNodes) subscribe keyed so a 10k-node cluster pays two
  dict lookups per transition, not 10k predicate calls.
* Taps (:meth:`EventBus.add_tap`) observe every published event once, at
  publish entry, before any handler runs — so a trace reads in causal
  (publish) order. The :class:`~repro.simulator.trace.TraceRecorder`
  service is a tap.

Determinism: handler invocation order is a pure function of (phase,
subscription sequence), both of which are fixed at wiring time, so a bus
dispatch is as deterministic as the callback chains it replaced — the
golden-seed tests assert this end-to-end.
"""

from __future__ import annotations

import bisect
import enum
from dataclasses import dataclass, fields
from typing import Any, Callable, Dict, Iterable, Iterator, List, Optional, Tuple, Type, TypeVar, Union

from repro.core.ids import NodeId

#: Keyed-subscription match value: a dense node id (int) on node events,
#: a block/task id string elsewhere.
RoutingKey = Union[int, str]


class Phase(enum.IntEnum):
    """Dispatch phases, in execution order.

    ACCOUNTING  raw bookkeeping of the physical transition (metrics,
                downtime intervals) — must see the pre-reaction state.
    STORAGE     storage-layer state: DataNode up/down toggles, disk wipes,
                replica-map maintenance (re-replication queueing, purges).
    COMPUTE     execution-layer state: TaskTrackers killing or accounting
                the attempts that lived on the transitioning node.
    NETWORK     in-flight transfer teardown (hard-downtime semantics,
                wiped sources).
    DETECTION   belief updates: heartbeat bookkeeping or oracle marking,
                which may publish NodeDeclaredDead / NodeReturned.
    SCHEDULING  reactions that hand out new work (requeues, assignment
                pokes) — always last, so they observe a settled cluster.
    """

    ACCOUNTING = 0
    STORAGE = 1
    COMPUTE = 2
    NETWORK = 3
    DETECTION = 4
    SCHEDULING = 5


@dataclass(frozen=True, slots=True)
class Event:
    """Base class for everything the bus carries."""

    #: Simulation time at which the event occurred.
    time: float

    @property
    def routing_key(self) -> Optional[RoutingKey]:
        """Key used to match keyed subscriptions (None = unkeyed only)."""
        return None

    def payload(self) -> Dict[str, object]:
        """Flat field view for structured tracing."""
        return {f.name: getattr(self, f.name) for f in fields(self)}


@dataclass(frozen=True, slots=True)
class NodeEvent(Event):
    """An event about one node; routed by its dense int node id.

    ``node_id`` is the cluster-interned :data:`~repro.core.ids.NodeId`;
    the name lives in the cluster's ``NodeIds`` table and is re-attached
    only at the reporting boundary. (Standalone components constructed
    outside ``build_cluster`` may route by any hashable id — the bus only
    ever hashes and compares keys.)"""

    node_id: NodeId

    @property
    def routing_key(self) -> Optional[RoutingKey]:
        return self.node_id


@dataclass(frozen=True, slots=True)
class NodeDown(NodeEvent):
    """Physical interruption began (the injector's ground truth)."""


@dataclass(frozen=True, slots=True)
class NodeUp(NodeEvent):
    """Physical recovery: the node is running again."""


@dataclass(frozen=True, slots=True)
class PermanentFailure(NodeEvent):
    """The node is gone for good — disk and all. Published *before* the
    accompanying :class:`NodeDown` (destruction precedes detection)."""


@dataclass(frozen=True, slots=True)
class NodeDeclaredDead(NodeEvent):
    """Failure *detection* fired: the masters now believe the node dead
    (heartbeat timeout, or instantly under oracle detection).

    Dispatch-root: published from inside detector handlers; this event
    starts a fresh phase cycle (belief change, not physical change), so
    its subscribers legitimately run in phases earlier than the
    publishing detector's phase."""


@dataclass(frozen=True, slots=True)
class NodeReturned(NodeEvent):
    """The masters believe a previously-dead node is back.

    Dispatch-root: like :class:`NodeDeclaredDead`, this belief-change
    event restarts the phase cycle when published from a detector."""


@dataclass(frozen=True, slots=True)
class NodePurged(NodeEvent):
    """A permanently failed node was erased from the location map; it will
    never beat, serve, or store again."""


@dataclass(frozen=True, slots=True)
class BlockLost(Event):
    """Zero physical replicas of the block survive anywhere."""

    block_id: str

    @property
    def routing_key(self) -> Optional[RoutingKey]:
        return self.block_id


@dataclass(frozen=True, slots=True)
class ReplicaAdded(Event):
    """A re-replication copy landed: ``node_id`` now holds ``block_id``.

    Dispatch-root: re-replication completes inside the STORAGE-phase
    monitor, and accounting subscribers observe the completed copy as a
    fresh occurrence rather than a same-cycle reaction."""

    block_id: str
    node_id: NodeId

    @property
    def routing_key(self) -> Optional[RoutingKey]:
        return self.block_id


@dataclass(frozen=True, slots=True)
class TaskStateChange(Event):
    """A map task changed state (observability; no cluster logic reacts)."""

    task_id: str
    state: str
    node_id: Optional[NodeId] = None

    @property
    def routing_key(self) -> Optional[RoutingKey]:
        return self.task_id


@dataclass(frozen=True, slots=True)
class NodeDegraded(NodeEvent):
    """The node entered a gray state: alive and beating, but its links
    and/or task execution run at a fraction of nominal speed."""

    link_factor: float = 1.0
    exec_factor: float = 1.0


@dataclass(frozen=True, slots=True)
class NodeRestored(NodeEvent):
    """A previously gray node runs at nominal speed again."""


@dataclass(frozen=True, slots=True)
class LinkDegraded(Event):
    """A directed link entered a degraded state: it carries traffic at
    ``capacity_factor`` of nominal and corrupts ``corruption_rate`` of
    what it forwards. ``link`` is a ``"tier:id"`` spec in the campaign's
    (human) vocabulary — host tiers name hosts, fabric tiers carry rack
    or pod indices — parsed by
    :func:`repro.simulator.topology.parse_link_spec`. The cluster's link
    mitigation service decides how much of the degradation transfers
    actually feel."""

    link: str
    capacity_factor: float = 1.0
    corruption_rate: float = 0.0

    @property
    def routing_key(self) -> Optional[RoutingKey]:
        return self.link


@dataclass(frozen=True, slots=True)
class LinkRestored(Event):
    """A previously degraded link runs at nominal again. Carries the
    same factors as the opening :class:`LinkDegraded` so the mitigation
    service can release exactly the effect it applied, even when
    degradations overlap on one link."""

    link: str
    capacity_factor: float = 1.0
    corruption_rate: float = 0.0

    @property
    def routing_key(self) -> Optional[RoutingKey]:
        return self.link


@dataclass(frozen=True, slots=True)
class PartitionStarted(Event):
    """A network partition began: transfers crossing the boundary between
    ``members`` and the rest of the cluster stall until healed. When
    ``heartbeats_blocked`` is true, detection loses heartbeats from the
    members too; otherwise belief and storage see different truths."""

    partition_id: str
    members: Tuple[NodeId, ...]
    heartbeats_blocked: bool = False


@dataclass(frozen=True, slots=True)
class PartitionHealed(Event):
    """The partition identified by ``partition_id`` healed; stalled
    transfers resume from their drained progress."""

    partition_id: str
    members: Tuple[NodeId, ...]


@dataclass(frozen=True, slots=True)
class ChaosScenarioStarted(Event):
    """A chaos scenario became active (observability; carries the full
    declarative spec so a recorded trace replays the campaign exactly)."""

    kind: str
    index: int
    #: Host *names* (the spec's vocabulary), not int ids — the event
    #: carries the declarative campaign for replay, so it speaks the
    #: same language the spec does.
    targets: Tuple[str, ...]
    spec: str


@dataclass(frozen=True, slots=True)
class ChaosScenarioEnded(Event):
    """A chaos scenario's window closed (observability)."""

    kind: str
    index: int


E = TypeVar("E", bound=Event)
Handler = Callable[[E], None]
#: A tap sees (event, phases that have at least one handler registered).
Tap = Callable[[Event, Tuple[Phase, ...]], None]
#: A dispatch interceptor wraps each handler invocation: it receives the
#: handler, the phase it was registered at, and the event, and must call
#: ``handler(event)`` itself (see ``EventBus.set_dispatch_interceptor``).
DispatchInterceptor = Callable[[Callable[[Event], None], Phase, Event], None]

#: (phase, sequence, handler) — sequence is global, so sorting by this
#: tuple yields phase-major, subscription-order-minor dispatch.
_Entry = Tuple[int, int, Callable[[Event], None]]


class Subscription:
    """Handle for one registered handler; ``cancel()`` detaches it."""

    __slots__ = ("_entries", "_entry", "_active", "_invalidate")

    def __init__(
        self,
        entries: List[_Entry],
        entry: _Entry,
        invalidate: Optional[Callable[[], None]] = None,
    ) -> None:
        self._entries = entries
        self._entry = entry
        self._active = True
        self._invalidate = invalidate

    @property
    def active(self) -> bool:
        return self._active

    def cancel(self) -> None:
        """Detach the handler; a no-op if already cancelled."""
        if not self._active:
            return
        self._active = False
        try:
            self._entries.remove(self._entry)
        except ValueError:  # pragma: no cover - double bookkeeping guard
            pass
        if self._invalidate is not None:
            self._invalidate()


class EventBus:
    """Synchronous, phase-ordered, typed publish/subscribe hub."""

    def __init__(self) -> None:
        #: type -> routing key (None = unkeyed) -> entries in seq order.
        self._subs: Dict[Type[Event], Dict[Optional[RoutingKey], List[_Entry]]] = {}
        self._taps: List[Tap] = []
        self._seq = 0
        self._published = 0
        self._dispatched = 0
        #: Optional dispatch wrapper (see :meth:`set_dispatch_interceptor`).
        self._interceptor: Optional[DispatchInterceptor] = None
        #: Per-type frozen snapshot of the unkeyed entry list, rebuilt
        #: lazily after any unkeyed (un)subscription. ``publish`` iterates
        #: the tuple directly — the no-keyed-match fast path allocates
        #: nothing per event, where the old code copied a list every time.
        self._unkeyed_cache: Dict[Type[Event], Tuple[_Entry, ...]] = {}

    # -- registration ------------------------------------------------------------

    def subscribe(
        self,
        event_type: Type[E],
        handler: Handler[E],
        phase: Phase,
        key: Optional[RoutingKey] = None,
    ) -> Subscription:
        """Register ``handler`` for events of exactly ``event_type``.

        ``key`` restricts delivery to events whose :attr:`Event.routing_key`
        equals it (used by per-node / per-block agents). Handlers run in
        (phase, subscription) order; see the module docstring.
        """
        if not (isinstance(event_type, type) and issubclass(event_type, Event)):
            raise TypeError(f"event_type must be an Event subclass, got {event_type!r}")
        entries = self._subs.setdefault(event_type, {}).setdefault(key, [])
        self._seq += 1
        entry: _Entry = (int(phase), self._seq, handler)  # type: ignore[arg-type]
        # Keep each list in (phase, seq) order so dispatch never re-sorts
        # the common single-list case. Sequence numbers are unique, so the
        # comparison never reaches the (uncomparable) handler element.
        bisect.insort(entries, entry)
        if key is None:
            self._unkeyed_cache.pop(event_type, None)
            return Subscription(
                entries, entry, lambda: self._unkeyed_cache.pop(event_type, None)
            )
        return Subscription(entries, entry)

    def subscribe_many(
        self,
        event_type: Type[E],
        phase: Phase,
        handlers: Iterable[Tuple[Optional[RoutingKey], Handler[E]]],
    ) -> int:
        """Bulk-register ``(key, handler)`` pairs for one type and phase.

        Dispatch is indistinguishable from calling :meth:`subscribe` once
        per pair in iteration order — each pair takes the next global
        sequence number, so phase-major/subscription-order-minor dispatch
        is preserved exactly (pinned by ``tests/simulator/test_events.py``).
        The difference is constant-factor: the type is validated once, the
        per-type dict is resolved once, and the common case of a fresh or
        tail-appended key skips ``bisect`` — at 226k nodes, cluster bus
        wiring issues ~6 keyed subscriptions per host through this path.

        Returns the number of handlers registered. Bulk wiring is
        permanent: no :class:`Subscription` handles are created (build-time
        wiring is never cancelled; use :meth:`subscribe` for cancellable
        registrations).
        """
        if not (isinstance(event_type, type) and issubclass(event_type, Event)):
            raise TypeError(f"event_type must be an Event subclass, got {event_type!r}")
        by_key = self._subs.setdefault(event_type, {})
        phase_int = int(phase)
        seq = self._seq
        count = 0
        unkeyed_touched = False
        for key, handler in handlers:
            seq += 1
            count += 1
            entry: _Entry = (phase_int, seq, handler)  # type: ignore[arg-type]
            entries = by_key.get(key)
            if entries is None:
                by_key[key] = [entry]
            elif entry >= entries[-1]:
                entries.append(entry)
            else:
                bisect.insort(entries, entry)
            if key is None:
                unkeyed_touched = True
        self._seq = seq
        if unkeyed_touched:
            self._unkeyed_cache.pop(event_type, None)
        return count

    def add_tap(self, tap: Tap) -> None:
        """Register an observer of *every* published event (tracing)."""
        self._taps.append(tap)

    def set_dispatch_interceptor(self, interceptor: Optional["DispatchInterceptor"]) -> None:
        """Route every handler invocation through ``interceptor``.

        The interceptor is called as ``interceptor(handler, phase, event)``
        and is responsible for invoking ``handler(event)`` itself — that
        lets it bracket the call (push/pop a dispatch-context stack, time
        it, trace it) with nested publishes attributed correctly. Where a
        tap sees each *event* once at publish entry, the interceptor sees
        each *handler invocation* with its dispatch metadata. One
        interceptor at a time; pass ``None`` to restore direct dispatch.
        simflow's runtime effect crosscheck is the shipped consumer.
        """
        self._interceptor = interceptor

    # -- introspection -----------------------------------------------------------

    def iter_subscriptions(
        self,
    ) -> Iterator[Tuple[Type[Event], Optional[RoutingKey], Phase, Handler[Any]]]:
        """Live ``(event type, key, phase, handler)`` tuples, wiring order.

        Unlike :meth:`registry_snapshot` (a name-level view for the static
        crosscheck), this yields the handler *objects*, so callers can
        reach bound-method owners — simflow's effect recorder uses it to
        find the classes to instrument.
        """
        entries: List[Tuple[int, Type[Event], Optional[RoutingKey], Phase, Handler[Any]]] = []
        for event_type, by_key in self._subs.items():
            for key, subs in by_key.items():
                for phase, seq, handler in subs:
                    entries.append((seq, event_type, key, Phase(phase), handler))
        entries.sort(key=lambda item: item[0])
        for _seq, event_type, key, phase, handler in entries:
            yield event_type, key, phase, handler

    def wants(self, event_type: Type[Event]) -> bool:
        """Whether publishing ``event_type`` would reach anything.

        Lets hot paths skip constructing high-volume events (e.g.
        :class:`TaskStateChange`) when nobody is listening.
        """
        if self._taps:
            return True
        by_key = self._subs.get(event_type)
        return bool(by_key) and any(by_key.values())

    @property
    def published_count(self) -> int:
        """Events published so far (including those nobody received)."""
        return self._published

    @property
    def dispatched_count(self) -> int:
        """Handler invocations executed so far."""
        return self._dispatched

    def handler_count(self, event_type: Type[Event]) -> int:
        by_key = self._subs.get(event_type, {})
        return sum(len(entries) for entries in by_key.values())

    def registry_snapshot(self) -> List[Dict[str, object]]:
        """Structured view of every live subscription, in wiring order.

        Each entry carries the event type name, the phase name, whether
        the subscription is keyed, the handler's name, and — for bound
        methods — the owning class name. ``simlint`` cross-checks this
        against its statically-extracted bus graph, so the wiring the
        linter reasons about provably matches the wiring that runs.
        """
        entries: List[Tuple[int, Dict[str, object]]] = []
        for event_type, by_key in self._subs.items():
            for key, subs in by_key.items():
                for phase, seq, handler in subs:
                    bound_self = getattr(handler, "__self__", None)
                    entries.append(
                        (
                            seq,
                            {
                                "event": event_type.__name__,
                                "phase": Phase(phase).name,
                                "keyed": key is not None,
                                "handler": getattr(handler, "__name__", repr(handler)),
                                "owner": type(bound_self).__name__
                                if bound_self is not None
                                else None,
                            },
                        )
                    )
        entries.sort(key=lambda item: item[0])
        return [entry for _seq, entry in entries]

    # -- dispatch -----------------------------------------------------------------

    def publish(self, event: Event) -> None:
        """Deliver ``event`` to its handlers, phase by phase, synchronously.

        The common case — no keyed match — iterates a frozen per-type
        snapshot of the unkeyed entries, so it allocates nothing. The
        snapshot is immutable, so a handler that (un)subscribes mid-
        dispatch affects the *next* publish, exactly like the defensive
        list copy it replaces. A keyed match still merges and sorts into
        a fresh list (rare: one node's transitions, not every event).
        """
        self._published += 1
        event_type = type(event)
        by_key = self._subs.get(event_type)
        merged: Tuple[_Entry, ...] | List[_Entry]
        if by_key is None:
            merged = ()
        else:
            merged = self._unkeyed_cache.get(event_type)  # type: ignore[assignment]
            if merged is None:
                merged = tuple(by_key.get(None, ()))
                self._unkeyed_cache[event_type] = merged
            key = event.routing_key
            if key is not None:
                keyed = by_key.get(key)
                if keyed:
                    merged = sorted(merged + tuple(keyed))
        if self._taps:
            phases = tuple(sorted({Phase(entry[0]) for entry in merged}))
            for tap in self._taps:
                tap(event, phases)
        interceptor = self._interceptor
        if interceptor is None:
            for _phase, _seq, handler in merged:
                self._dispatched += 1
                handler(event)
        else:
            for _phase, _seq, handler in merged:
                self._dispatched += 1
                interceptor(handler, Phase(_phase), event)


__all__ = [
    "Phase",
    "RoutingKey",
    "Event",
    "NodeEvent",
    "NodeDown",
    "NodeUp",
    "PermanentFailure",
    "NodeDeclaredDead",
    "NodeReturned",
    "NodePurged",
    "BlockLost",
    "ReplicaAdded",
    "TaskStateChange",
    "NodeDegraded",
    "NodeRestored",
    "LinkDegraded",
    "LinkRestored",
    "PartitionStarted",
    "PartitionHealed",
    "ChaosScenarioStarted",
    "ChaosScenarioEnded",
    "EventBus",
    "Subscription",
    "DispatchInterceptor",
]
