"""Link-degradation mitigation: how the cluster answers a limping link.

A :class:`~repro.simulator.scenarios.DegradedLink` scenario says *what*
happened to a link — it forwards at ``capacity_factor`` of nominal and
corrupts ``corruption_rate`` of what it carries. What transfers actually
feel depends on the operator's response, and the whole point of the
scenario family is comparing responses. :class:`LinkMitigationService`
is one service class with three interchangeable strategies (selected by
``ClusterConfig.link_mitigation``), so swapping the response never
rewires the bus:

``do-nothing``
    The degradation passes straight through to end-to-end transport.
    Corrupted bytes are detected and re-sent across the *whole path*
    after recovery stalls, so goodput takes the survival rate twice:
    ``capacity_factor * (1 - corruption_rate)**2``.

``retransmit-tax``
    LinkGuardian-style link-local retransmission: corruption is repaired
    hop-locally, invisible to transport, at the price of the corrupted
    fraction of the link's remaining capacity:
    ``capacity_factor * (1 - corruption_rate)``.

``disable-and-reroute``
    The degraded trunk member is administratively disabled and its
    traffic rerouted over the remaining ECMP members: corruption
    disappears entirely and the trunk keeps ``(width-1)/width`` of its
    capacity. A single-cable link (width 1, e.g. a host access link)
    cannot be rerouted, so the strategy degrades to ``do-nothing`` there.

The service subscribes to :class:`~repro.simulator.events.LinkDegraded`
/ :class:`~repro.simulator.events.LinkRestored` at the NETWORK phase and
applies its verdict by pushing/popping multiplicative capacity scales on
the :class:`~repro.simulator.network.Network` — overlapping degradations
on one link therefore compose, and every restore releases exactly the
effect its opening event applied.
"""

from __future__ import annotations

from typing import Dict, List, Optional, Tuple

from repro.core.ids import NodeIds
from repro.simulator.events import LinkDegraded, LinkRestored
from repro.simulator.network import Network
from repro.simulator.topology import LinkKey, parse_link_spec

__all__ = ["LinkMitigationService", "MITIGATIONS"]

#: Valid ``link_mitigation=`` spellings ("none" disables the service).
MITIGATIONS = ("do-nothing", "disable-reroute", "retransmit-tax")


class LinkMitigationService:
    """Applies one mitigation strategy to every degraded-link window."""

    name = "link-mitigation"

    def __init__(
        self,
        network: Network,
        strategy: str = "do-nothing",
        ids: Optional[NodeIds] = None,
    ) -> None:
        if strategy not in MITIGATIONS:
            raise ValueError(
                f"unknown mitigation strategy {strategy!r}; expected one of "
                f"{MITIGATIONS}"
            )
        self._network = network
        self._strategy = strategy
        self._ids = ids
        #: Scales currently held, keyed by the event's link spec; each
        #: entry is (parsed link, applied factor) in arming order so a
        #: restore releases the oldest matching application.
        self._held: Dict[str, List[Tuple[LinkKey, float]]] = {}
        self._applied_total = 0

    @property
    def strategy(self) -> str:
        return self._strategy

    # -- strategy verdict --------------------------------------------------

    def effective_factor(
        self, link: LinkKey, capacity_factor: float, corruption_rate: float
    ) -> float:
        """The capacity scale transfers feel on ``link`` under this strategy."""
        if self._strategy == "disable-reroute":
            width = self._network.topology.link_width(link)
            if width > 1:
                # Disable the bad member; siblings absorb its share.
                return (width - 1) / width
            # An unreroutable single cable: nothing to disable onto.
        if self._strategy == "retransmit-tax":
            return capacity_factor * (1.0 - corruption_rate)
        survival = 1.0 - corruption_rate
        return capacity_factor * survival * survival

    # -- bus handlers ------------------------------------------------------

    def handle_link_degraded(self, event: LinkDegraded) -> None:
        """Degradation window opened (NETWORK phase): apply the verdict."""
        link = self._parse(event.link)
        factor = self.effective_factor(
            link, event.capacity_factor, event.corruption_rate
        )
        self._network.scale_link(link, factor)
        self._held.setdefault(event.link, []).append((link, factor))
        self._applied_total += 1

    def handle_link_restored(self, event: LinkRestored) -> None:
        """Window closed (NETWORK phase): release what its opening applied."""
        held = self._held.get(event.link)
        if not held:
            return  # restore without a matching degrade: nothing to lift
        link, factor = held.pop(0)
        if not held:
            del self._held[event.link]
        self._network.unscale_link(link, factor)

    def _parse(self, spec: str) -> LinkKey:
        intern = self._ids.id_of if self._ids is not None else None
        return parse_link_spec(spec, intern=intern)

    # -- service lifecycle -------------------------------------------------

    def start(self) -> None:
        """No-op: the service is passive until a degradation arrives."""

    def stop(self) -> None:
        """Release every still-held scale (campaign cut short at teardown)."""
        for held in self._held.values():
            for link, factor in held:
                self._network.unscale_link(link, factor)
        self._held.clear()

    def describe(self) -> Dict[str, object]:
        return {
            "service": self.name,
            "strategy": self._strategy,
            "degraded_links_active": len(self._held),
            "degradations_applied": self._applied_total,
        }
