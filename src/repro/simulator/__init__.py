"""Discrete-event simulation substrate.

The paper evaluates ADAPT twice: on an emulated non-dedicated environment
(Magellan VMs with injected interruptions and traffic-shaped NICs) and with
"a discrete event simulator ... with mechanism analogous to that of Hadoop"
(Section V.C). This package is that simulator's foundation:

* :mod:`repro.simulator.engine` — the event loop (deterministic heap).
* :mod:`repro.simulator.network` — flow-level transfers with per-node
  uplink/downlink capacities and max-min fair sharing.
* :mod:`repro.simulator.failures` — node up/down driven by interruption
  processes or replayed traces.
* :mod:`repro.simulator.metrics` — the rework/recovery/migration/misc
  overhead decomposition of Figure 5.
* :mod:`repro.simulator.events` — the typed event bus every subsystem
  publishes to and subscribes on, with fixed dispatch phases.
* :mod:`repro.simulator.topology` — the fabric transfers cross: a flat
  star (default) or a hierarchical Clos with oversubscribable trunks.
* :mod:`repro.simulator.mitigation` — interchangeable responses to
  degraded-link chaos windows.
* :mod:`repro.simulator.trace` — bus-event capture and JSONL export.
"""

from repro.simulator.engine import EventHandle, Simulator
from repro.simulator.events import (
    BlockLost,
    Event,
    EventBus,
    LinkDegraded,
    LinkRestored,
    NodeDeclaredDead,
    NodeDown,
    NodeEvent,
    NodePurged,
    NodeReturned,
    NodeUp,
    PermanentFailure,
    Phase,
    ReplicaAdded,
    Subscription,
    TaskStateChange,
)
from repro.simulator.failures import FailureInjector
from repro.simulator.metrics import MapPhaseMetrics, OverheadBreakdown
from repro.simulator.mitigation import MITIGATIONS, LinkMitigationService
from repro.simulator.network import Network, Transfer, TransferState
from repro.simulator.topology import (
    TOPOLOGIES,
    ClosTopology,
    FlatStar,
    Topology,
    make_topology,
)
from repro.simulator.trace import TraceRecord, TraceRecorder

__all__ = [
    "Simulator",
    "EventHandle",
    "Network",
    "Transfer",
    "TransferState",
    "FailureInjector",
    "MapPhaseMetrics",
    "OverheadBreakdown",
    "EventBus",
    "Phase",
    "Subscription",
    "Event",
    "NodeEvent",
    "NodeDown",
    "NodeUp",
    "PermanentFailure",
    "NodeDeclaredDead",
    "NodeReturned",
    "NodePurged",
    "BlockLost",
    "ReplicaAdded",
    "TaskStateChange",
    "LinkDegraded",
    "LinkRestored",
    "Topology",
    "FlatStar",
    "ClosTopology",
    "TOPOLOGIES",
    "make_topology",
    "LinkMitigationService",
    "MITIGATIONS",
    "TraceRecord",
    "TraceRecorder",
]
