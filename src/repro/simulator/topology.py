"""Network topologies: the link structure under the flow-level model.

The paper's network (Section I, V.C) is a flat star — every host hangs
off an infinitely-fast core through one asymmetric access link, so a
transfer touches exactly two links: the source's uplink and the
destination's downlink. That is :class:`FlatStar`, and it remains the
default (golden trajectories are byte-identical through it).

:class:`ClosTopology` generalises to the datacenter shape the HDFS
off-rack replica rule presumes: hosts hang off a top-of-rack (ToR)
switch, racks off an aggregation tier, pods off a spine. A transfer's
*path* becomes a sequence of directed link keys, and the max-min
progressive-filling allocator in :mod:`repro.simulator.network` runs
over every link on the path — the per-link live-member counters
generalise with no change to the round structure. Fabric tiers carry an
*oversubscription* ratio: a ToR uplink trunk provides ``1/ratio`` of the
aggregate access bandwidth beneath it, so cross-rack shuffle contends
where a flat star never could.

Link keys
---------
A link is a ``(tier, id)`` tuple, directed by construction:

===========  ============================  =================================
tier         id                            meaning
===========  ============================  =================================
``up``       host :data:`NodeId`           host access link, host -> ToR
``down``     host :data:`NodeId`           host access link, ToR -> host
``tor-up``   rack index (int)              ToR trunk towards aggregation
``tor-down`` rack index (int)              aggregation trunk towards the ToR
``agg-up``   pod index (int)               pod trunk towards the spine
``agg-down`` pod index (int)               spine trunk towards the pod
===========  ============================  =================================

Host tiers take their capacity from the :class:`~.network.Network`'s
per-node configuration (so gray-node throttles compose); fabric tiers
take theirs from the topology (so oversubscription is a pure function of
the declared shape). Chaos specs name links as ``"tier:id"`` strings —
``"tor-up:3"``, ``"up:node-00042"`` — parsed by :func:`parse_link_spec`.
"""

from __future__ import annotations

from typing import Callable, Optional, Protocol, Tuple, Union

from repro.core.ids import NodeId
from repro.util.validation import check_positive

__all__ = [
    "LinkKey",
    "Topology",
    "FlatStar",
    "ClosTopology",
    "FABRIC_TIERS",
    "HOST_TIERS",
    "parse_link_spec",
    "format_link_spec",
    "make_topology",
    "TOPOLOGIES",
]

#: One directed link: ``(tier, id)``. Host tiers carry a node id, fabric
#: tiers an int rack/pod index.
LinkKey = Tuple[str, Union[NodeId, str, int]]

#: Tiers whose capacity the Network owns (per-node overrides, throttles).
HOST_TIERS = ("up", "down")
#: Tiers whose capacity the topology owns (oversubscribed trunks).
FABRIC_TIERS = ("tor-up", "tor-down", "agg-up", "agg-down")

#: Valid ``topology=`` spellings, used by ClusterConfig validation.
TOPOLOGIES = ("flat", "clos")


class Topology(Protocol):
    """The link structure transfers traverse.

    Implementations must be pure and stateless after construction:
    ``path`` is called once per transfer and its result is interned on
    the :class:`~.network.Transfer`, so it must be a deterministic
    function of the endpoints.
    """

    def path(self, source: NodeId, destination: NodeId) -> Tuple[LinkKey, ...]:
        """Directed links a ``source -> destination`` transfer crosses."""
        ...

    def fabric_capacity(self, link: LinkKey) -> float:
        """Capacity (bytes/s) of a fabric-tier link; KeyError otherwise."""
        ...

    def fabric_links(self) -> Tuple[LinkKey, ...]:
        """Every fabric link, in deterministic (tier, index) order."""
        ...

    def link_width(self, link: LinkKey) -> int:
        """Parallel trunk members behind the link (ECMP width).

        Host access links are single cables (width 1); fabric trunks
        bundle several, which is what makes disable-and-reroute
        mitigation possible: losing one member leaves ``(w-1)/w`` of the
        trunk.
        """
        ...

    def rack_of(self, node_id: NodeId) -> int:
        """The rack index a host lives in (0 for rackless topologies)."""
        ...


class FlatStar:
    """The paper's model: every pair of hosts two access links apart."""

    kind = "flat"

    def path(self, source: NodeId, destination: NodeId) -> Tuple[LinkKey, ...]:
        return (("up", source), ("down", destination))

    def fabric_capacity(self, link: LinkKey) -> float:
        raise KeyError(f"flat star has no fabric link {link!r}")

    def fabric_links(self) -> Tuple[LinkKey, ...]:
        return ()

    def link_width(self, link: LinkKey) -> int:
        return 1

    def rack_of(self, node_id: NodeId) -> int:
        return 0

    def __repr__(self) -> str:
        return "FlatStar()"


class ClosTopology:
    """Hosts -> ToR -> aggregation -> spine, with oversubscribed trunks.

    ``racks`` partitions hosts by ``node_id % racks`` (dense ids spread
    round-robin, so every rack stays balanced whatever the cluster
    size); ``pods`` partitions racks the same way. A same-rack transfer
    crosses only the two host access links — with ``racks=1`` and
    ``oversubscription=1`` the topology is therefore *path-identical* to
    :class:`FlatStar`, which the golden byte-identity tests pin.

    Trunk capacities derive from the declared shape: a ToR serves
    ``hosts/racks`` hosts, so its up (down) trunk provides that many
    host uplinks (downlinks) of aggregate bandwidth divided by
    ``oversubscription``; an aggregation trunk serves ``racks/pods``
    ToR trunks, divided by ``oversubscription`` again. ``trunk_width``
    models the ECMP member count of every fabric trunk (disable-and-
    reroute mitigation derates a degraded trunk to ``(w-1)/w``).
    """

    kind = "clos"

    def __init__(
        self,
        hosts: int,
        racks: int,
        host_uplink_bps: float,
        host_downlink_bps: Optional[float] = None,
        oversubscription: float = 1.0,
        pods: int = 1,
        trunk_width: int = 4,
    ) -> None:
        if hosts < 1:
            raise ValueError(f"hosts must be >= 1, got {hosts}")
        if racks < 1:
            raise ValueError(f"racks must be >= 1, got {racks}")
        if racks > hosts:
            raise ValueError(f"racks ({racks}) must not exceed hosts ({hosts})")
        if pods < 1:
            raise ValueError(f"pods must be >= 1, got {pods}")
        if pods > racks:
            raise ValueError(f"pods ({pods}) must not exceed racks ({racks})")
        if trunk_width < 1:
            raise ValueError(f"trunk_width must be >= 1, got {trunk_width}")
        check_positive("host_uplink_bps", host_uplink_bps)
        if host_downlink_bps is not None:
            check_positive("host_downlink_bps", host_downlink_bps)
        check_positive("oversubscription", oversubscription)
        self._hosts = int(hosts)
        self._racks = int(racks)
        self._pods = int(pods)
        self._oversub = float(oversubscription)
        self._trunk_width = int(trunk_width)
        up = float(host_uplink_bps)
        down = float(host_downlink_bps) if host_downlink_bps is not None else up
        hosts_per_rack = self._hosts / self._racks
        racks_per_pod = self._racks / self._pods
        self._tor_up = hosts_per_rack * up / self._oversub
        self._tor_down = hosts_per_rack * down / self._oversub
        self._agg_up = racks_per_pod * self._tor_up / self._oversub
        self._agg_down = racks_per_pod * self._tor_down / self._oversub

    # -- shape -------------------------------------------------------------

    @property
    def racks(self) -> int:
        return self._racks

    @property
    def pods(self) -> int:
        return self._pods

    @property
    def oversubscription(self) -> float:
        return self._oversub

    def rack_of(self, node_id: NodeId) -> int:
        return int(node_id) % self._racks

    def pod_of(self, rack: int) -> int:
        return rack % self._pods

    # -- Topology protocol -------------------------------------------------

    def path(self, source: NodeId, destination: NodeId) -> Tuple[LinkKey, ...]:
        src_rack = int(source) % self._racks
        dst_rack = int(destination) % self._racks
        if src_rack == dst_rack:
            # Same rack: the ToR switches locally; only access links count.
            return (("up", source), ("down", destination))
        src_pod = src_rack % self._pods
        dst_pod = dst_rack % self._pods
        if src_pod == dst_pod:
            return (
                ("up", source),
                ("tor-up", src_rack),
                ("tor-down", dst_rack),
                ("down", destination),
            )
        return (
            ("up", source),
            ("tor-up", src_rack),
            ("agg-up", src_pod),
            ("agg-down", dst_pod),
            ("tor-down", dst_rack),
            ("down", destination),
        )

    def fabric_capacity(self, link: LinkKey) -> float:
        tier, index = link
        if tier == "tor-up":
            return self._tor_up
        if tier == "tor-down":
            return self._tor_down
        if tier == "agg-up":
            return self._agg_up
        if tier == "agg-down":
            return self._agg_down
        raise KeyError(f"not a fabric link: {link!r}")

    def fabric_links(self) -> Tuple[LinkKey, ...]:
        links: list = []
        for tier in ("tor-up", "tor-down"):
            links.extend((tier, rack) for rack in range(self._racks))
        if self._pods > 1:
            for tier in ("agg-up", "agg-down"):
                links.extend((tier, pod) for pod in range(self._pods))
        return tuple(links)

    def link_width(self, link: LinkKey) -> int:
        return self._trunk_width if link[0] in FABRIC_TIERS else 1

    def __repr__(self) -> str:
        return (
            f"ClosTopology(hosts={self._hosts}, racks={self._racks}, "
            f"pods={self._pods}, oversubscription={self._oversub})"
        )


# -- link specs (chaos vocabulary) ---------------------------------------------


def format_link_spec(link: LinkKey) -> str:
    """Render a link key as the ``"tier:id"`` string chaos specs use."""
    return f"{link[0]}:{link[1]}"


def parse_link_spec(
    spec: str, intern: Optional[Callable[[str], NodeId]] = None
) -> LinkKey:
    """Parse a ``"tier:id"`` link spec into a :data:`LinkKey`.

    Fabric tiers take an integer rack/pod index. Host tiers take either
    a numeric node id or a host name; names are translated through
    ``intern`` when given (the cluster's :class:`~repro.core.ids.NodeIds`
    table) and kept verbatim otherwise (standalone components route by
    name).
    """
    tier, sep, ident = spec.partition(":")
    if not sep or not ident:
        raise ValueError(f"link spec must look like 'tier:id', got {spec!r}")
    if tier in FABRIC_TIERS:
        try:
            return (tier, int(ident))
        except ValueError:
            raise ValueError(
                f"fabric link spec needs an integer index, got {spec!r}"
            ) from None
    if tier in HOST_TIERS:
        if ident.isdigit():
            return (tier, int(ident))
        if intern is not None:
            return (tier, intern(ident))
        return (tier, ident)
    raise ValueError(
        f"unknown link tier {tier!r}; expected one of "
        f"{HOST_TIERS + FABRIC_TIERS}"
    )


def make_topology(
    kind: str,
    hosts: int,
    uplink_bps: float,
    downlink_bps: Optional[float] = None,
    racks: int = 1,
    oversubscription: float = 1.0,
    pods: int = 1,
    trunk_width: int = 4,
) -> Topology:
    """Build the topology a ``ClusterConfig`` names (``flat`` | ``clos``)."""
    if kind == "flat":
        return FlatStar()
    if kind == "clos":
        return ClosTopology(
            hosts=hosts,
            racks=racks,
            host_uplink_bps=uplink_bps,
            host_downlink_bps=downlink_bps,
            oversubscription=oversubscription,
            pods=pods,
            trunk_width=trunk_width,
        )
    raise ValueError(f"unknown topology {kind!r}; expected one of {TOPOLOGIES}")
