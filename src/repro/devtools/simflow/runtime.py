"""Runtime effect tracing: prove the static model over-approximates reality.

The static side of simflow (:mod:`repro.devtools.simflow.effects`) claims
that for every bus handler it knows a superset of the ``self`` fields the
handler reads and writes. This module checks that claim on live golden
scenarios, the same way ``tests/devtools/test_busgraph_crosscheck.py``
validates the bus graph:

* :meth:`EffectRecorder.install` registers a dispatch interceptor on the
  cluster's :class:`~repro.simulator.events.EventBus` (so the recorder
  knows which handler is on top of the dispatch stack at every moment,
  including nested publishes) and instruments every handler-owning class
  with tracing ``__getattribute__``/``__setattr__`` wrappers.
* While a handler runs, attribute accesses *on the handler's own
  instance* are recorded under ``(owner class, handler name)``. Accesses
  to other objects, and accesses outside any dispatch (deferred lambdas
  the engine runs later), are ignored — matching the static model's
  attribution rules.
* Method fetches are dropped (statically they are call edges, and their
  bodies' field effects are already folded in by the closure); property
  and data-field fetches are kept.

:func:`compare_observed_to_static` then asserts observed ⊆ static per
handler, against the callback-linked coverage closure
(:attr:`EffectIndex.covered`) — completion callbacks run synchronously
inside whichever handler triggered them, so the static side must link
stored-callback dispatch to match the runtime attribution. Instrumentation is class-level and reversible; use
:meth:`EffectRecorder.uninstall` (or the context manager form) so other
clusters in the same process are unaffected.
"""

from __future__ import annotations

import inspect
from typing import Any, Callable, Dict, List, Optional, Set, Tuple

from repro.devtools.simflow.effects import EffectIndex

#: Observation key: (concrete owner class name, handler method name).
ObservedKey = Tuple[str, str]


def _handler_name(handler: Callable[..., None]) -> str:
    """The handler's name, never via ``repr`` — a bound method's repr
    reprs its instance, whose traced field reads would re-enter the
    recorder and recurse."""
    return getattr(handler, "__name__", None) or f"<{type(handler).__name__}>"


class EffectRecorder:
    """Records per-handler field reads/writes during bus dispatch."""

    def __init__(self) -> None:
        self.reads: Dict[ObservedKey, Set[str]] = {}
        self.writes: Dict[ObservedKey, Set[str]] = {}
        #: (event type name, phase name, handler name) dispatch log.
        self.dispatches: List[Tuple[str, str, str]] = []
        self._stack: List[Callable[..., None]] = []
        self._instrumented: Dict[type, Tuple[Any, Any]] = {}
        self._bus: Optional[Any] = None

    # -- lifecycle ---------------------------------------------------------------

    def install(self, bus: Any) -> "EffectRecorder":
        """Intercept ``bus`` dispatch and instrument handler owners."""
        if self._bus is not None:
            raise RuntimeError("EffectRecorder is already installed")
        owners: List[type] = []
        for _event_type, _key, _phase, handler in bus.iter_subscriptions():
            bound_self = getattr(handler, "__self__", None)
            if bound_self is not None:
                owners.append(type(bound_self))
        for cls in sorted(set(owners), key=lambda c: c.__qualname__):
            self._instrument(cls)
        bus.set_dispatch_interceptor(self._dispatch)
        self._bus = bus
        return self

    def uninstall(self) -> None:
        """Restore every instrumented class and detach from the bus."""
        for cls, (orig_get, orig_set) in list(self._instrumented.items()):
            cls.__getattribute__ = orig_get  # type: ignore[method-assign, assignment]
            cls.__setattr__ = orig_set  # type: ignore[method-assign, assignment]
        self._instrumented.clear()
        if self._bus is not None:
            self._bus.set_dispatch_interceptor(None)
            self._bus = None

    def __enter__(self) -> "EffectRecorder":
        return self

    def __exit__(self, *_exc: object) -> None:
        self.uninstall()

    # -- interception ------------------------------------------------------------

    def _dispatch(self, handler: Callable[..., None], phase: Any, event: Any) -> None:
        self.dispatches.append(
            (
                type(event).__name__,
                getattr(phase, "name", str(phase)),
                _handler_name(handler),
            )
        )
        self._stack.append(handler)
        try:
            handler(event)
        finally:
            self._stack.pop()

    def _instrument(self, cls: type) -> None:
        if cls in self._instrumented:
            return
        orig_get = cls.__getattribute__
        orig_set = cls.__setattr__
        recorder = self

        def traced_getattribute(obj: object, name: str) -> object:
            recorder._note(obj, name, write=False)
            return orig_get(obj, name)

        def traced_setattr(obj: object, name: str, value: object) -> None:
            recorder._note(obj, name, write=True)
            orig_set(obj, name, value)

        cls.__getattribute__ = traced_getattribute  # type: ignore[method-assign, assignment]
        cls.__setattr__ = traced_setattr  # type: ignore[method-assign, assignment]
        self._instrumented[cls] = (orig_get, orig_set)

    def _note(self, obj: object, name: str, write: bool) -> None:
        stack = self._stack
        if not stack or name.startswith("__"):
            return
        handler = stack[-1]
        owner = getattr(handler, "__self__", None)
        if owner is None or obj is not owner:
            return  # only the running handler's own instance is attributed
        if not write:
            class_attr = getattr(type(obj), name, None)
            if inspect.isroutine(class_attr):
                return  # method fetch: statically a call edge, not a read
        key: ObservedKey = (type(obj).__name__, _handler_name(handler))
        target = self.writes if write else self.reads
        target.setdefault(key, set()).add(name)


def _own_fields(qualified: Set[str], own: Set[str]) -> Set[str]:
    """Bare field names of the entries qualified by one of ``own``."""
    fields: Set[str] = set()
    for entry in sorted(qualified):
        owner_cls, _, field_name = entry.partition(".")
        if owner_cls in own:
            fields.add(field_name)
    return fields


def compare_observed_to_static(
    recorder: EffectRecorder, index: EffectIndex
) -> List[str]:
    """Violations of observed ⊆ static, one human-readable line each."""
    violations: List[str] = []
    for key in sorted(set(recorder.reads) | set(recorder.writes)):
        cls, handler = key
        effects = index.lookup_covered(cls, handler)
        if effects is None:
            violations.append(f"{cls}.{handler}: handler has no static effect record")
            continue
        own = index.own_class_names(cls)
        extra_reads = recorder.reads.get(key, set()) - _own_fields(effects.reads, own)
        extra_writes = recorder.writes.get(key, set()) - _own_fields(effects.writes, own)
        if extra_reads:
            violations.append(
                f"{cls}.{handler}: observed reads not in static set: "
                + ", ".join(sorted(extra_reads))
            )
        if extra_writes:
            violations.append(
                f"{cls}.{handler}: observed writes not in static set: "
                + ", ".join(sorted(extra_writes))
            )
    return violations


__all__ = ["EffectRecorder", "ObservedKey", "compare_observed_to_static"]
