"""simflow command line: ``python -m repro.devtools.simflow``.

Runs the F-rule family (flow hazards) over the given paths with the same
engine, severity policy, suppression accounting (``# simflow:
ignore[...]`` comments), output formats and baseline handling as
simlint. ``--effects PATH`` additionally writes the closed effect-set
index as JSON — the CI artifact that makes handler effect diffs
reviewable the same way the bus graph diagram is.
"""

from __future__ import annotations

import argparse
import json
import sys
from pathlib import Path
from typing import Optional, Sequence

from repro.devtools.simflow.effects import build_index, effects_to_json
from repro.devtools.simlint.cli import (
    add_arguments as add_shared_arguments,
    emit_diagnostics,
    parse_select,
    subtract_baseline,
)
from repro.devtools.simlint.engine import lint_paths
from repro.devtools.simlint.registry import all_rules


def add_arguments(parser: argparse.ArgumentParser) -> None:
    """Attach simflow's options (shared core plus ``--effects``)."""
    add_shared_arguments(parser, tool="simflow")
    parser.add_argument(
        "--effects",
        metavar="PATH",
        default=None,
        help="write the closed per-function effect sets to PATH as JSON",
    )


def run(args: argparse.Namespace) -> int:
    """Execute a flow-analysis run; returns the exit code."""
    if args.list_rules:
        for code, rule_class in all_rules("simflow").items():
            print(f"{code}  {rule_class.summary}")
        return 0

    root = Path(args.root) if args.root else Path.cwd()
    try:
        result = lint_paths(
            [Path(p) for p in args.paths],
            root=root,
            select=parse_select(args.select),
            tool="simflow",
        )
    except FileNotFoundError as exc:
        print(f"simflow: {exc}", file=sys.stderr)
        return 2

    if args.effects is not None:
        assert result.graph is not None
        index = build_index(result.modules, result.graph)
        Path(args.effects).write_text(
            json.dumps(effects_to_json(index), indent=2, sort_keys=True) + "\n",
            encoding="utf-8",
        )

    diagnostics = subtract_baseline(result.diagnostics, args, "simflow")
    if diagnostics is None:
        return 0
    return emit_diagnostics(
        diagnostics, len(result.modules), args, "simflow", all_rules("simflow")
    )


def main(argv: Optional[Sequence[str]] = None) -> int:
    parser = argparse.ArgumentParser(
        prog="simflow",
        description="flow-sensitive effect, phase-hazard and RNG-discipline analysis",
    )
    add_arguments(parser)
    args = parser.parse_args(list(argv) if argv is not None else None)
    return run(args)


if __name__ == "__main__":  # pragma: no cover
    sys.exit(main())
