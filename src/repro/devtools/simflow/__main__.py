"""Entry point for ``python -m repro.devtools.simflow``."""

import sys

from repro.devtools.simflow.cli import main

if __name__ == "__main__":
    sys.exit(main())
