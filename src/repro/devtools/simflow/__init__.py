"""simflow: flow-sensitive effect and phase-hazard analysis.

Where simlint checks *syntax* (determinism rules) and *shape* (the
publish/subscribe graph), simflow checks *flow*: per handler and service
method it extracts field-level read/write effect sets, publish sites and
RNG draw sites from the AST, closes them over the call graph, and then
combines them with the phase-ordered bus graph to find ordering hazards
that no per-line rule can see:

* **F001** — a later-phase handler writes a field an earlier-phase
  handler of the same event read (cross-phase write-after-read).
* **F002** — a handler transitively publishes an event whose subscribers
  run in an earlier phase than the handler itself.
* **F003** — RNG draws on a path declared draw-free (``# simflow:
  draws=0`` or a draw-neutrality docstring), or draws from a stream
  seeded with a literal constant instead of being derived from the
  cluster root.
* **F004** — closures or bound methods shipped to a process-pool
  fan-out (they capture shared-mutable or unpicklable state).

The static model is validated against reality by
:mod:`repro.devtools.simflow.runtime`: an :class:`EffectRecorder`
intercepts bus dispatch and instruments handler-owner classes, and the
golden-scenario crosscheck test asserts every *observed* read/write set
is a subset of the *extracted* one.
"""

from repro.devtools.simflow.effects import EffectIndex, Effects, build_index
from repro.devtools.simflow.runtime import EffectRecorder, compare_observed_to_static

__all__ = [
    "EffectIndex",
    "EffectRecorder",
    "Effects",
    "build_index",
    "compare_observed_to_static",
]
