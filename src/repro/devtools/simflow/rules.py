"""The F-rule family: flow hazards over effect sets and the bus graph.

================  ==============================================================
F001              cross-phase write-after-read in one dispatch
F002              handler publishes an event consumed at an earlier phase
F003              RNG draw on a declared draw-free path / literal-seeded stream
F004              closure or bound method shipped to a process-pool fan-out
================  ==============================================================

Exemptions are part of the contract the rules enforce, not loopholes:

* **F001** skips readers in the ``ACCOUNTING`` phase. The phase's
  documented job is to "see the pre-reaction state" — later phases
  mutating what it read is the architecture, not a hazard.
* **F002** skips events whose docstring carries ``dispatch-root``: a
  publish starts a *new* dispatch whose phase cycle restarts, and some
  events (the detector belief events) are deliberately published from
  late-phase handlers. The marker makes that intent reviewable.
* Per-line ``# simflow: ignore[Fxxx]`` suppressions work exactly like
  simlint's, with the same unused-suppression (U001) accounting.
"""

from __future__ import annotations

import ast
from typing import Dict, Iterator, List, Optional, Set, Tuple

from repro.devtools.simlint.busgraph import BusGraph, SubscribeSite, _terminal
from repro.devtools.simlint.diagnostics import Finding
from repro.devtools.simlint.registry import (
    ModuleContext,
    ModuleRule,
    ProjectRule,
    register,
)
from repro.devtools.simflow.effects import DYNAMIC_PUBLISH, build_index

#: Fallback phase order, used only when the corpus does not define the
#: ``Phase`` enum (e.g. minimal fixture corpora).
_DEFAULT_PHASES = {
    "ACCOUNTING": 0,
    "STORAGE": 1,
    "COMPUTE": 2,
    "NETWORK": 3,
    "DETECTION": 4,
    "SCHEDULING": 5,
}

#: Docstring marker exempting an event from F002 (see module docstring).
DISPATCH_ROOT_MARKER = "dispatch-root"


def _phase_order(graph: BusGraph) -> Dict[str, int]:
    """Phase name -> rank, read from the corpus's ``Phase`` enum."""
    info = graph.classes.get("Phase")
    if info is None:
        return dict(_DEFAULT_PHASES)
    order: Dict[str, int] = {}
    for item in info.node.body:
        if (
            isinstance(item, ast.Assign)
            and len(item.targets) == 1
            and isinstance(item.targets[0], ast.Name)
            and isinstance(item.value, ast.Constant)
            and isinstance(item.value.value, int)
        ):
            order[item.targets[0].id] = item.value.value
    return order or dict(_DEFAULT_PHASES)


def _resolved_sites(
    graph: BusGraph, phases: Dict[str, int]
) -> List[Tuple[SubscribeSite, int]]:
    """Subscribe sites with event, owner and a known phase rank."""
    sites: List[Tuple[SubscribeSite, int]] = []
    for site in graph.subscribers:
        if site.event is None or site.owner_class is None or not site.handler:
            continue
        rank = phases.get(site.phase)
        if rank is None:
            continue
        sites.append((site, rank))
    return sites


def _module_map(modules: List[ModuleContext]) -> Dict[str, ModuleContext]:
    return {module.path: module for module in modules}


def _fields_preview(fields: Set[str], limit: int = 3) -> str:
    ordered = sorted(fields)
    if len(ordered) > limit:
        return ", ".join(ordered[:limit]) + f", … ({len(ordered)} fields)"
    return ", ".join(ordered)


@register
class CrossPhaseWriteAfterRead(ProjectRule):
    """F001: a later-phase handler mutates state an earlier one read."""

    code = "F001"
    summary = "cross-phase write-after-read hazard in one dispatch"
    family = "simflow"

    def check_project(
        self, modules: List[ModuleContext], graph: BusGraph
    ) -> Iterator[Tuple[ModuleContext, Finding]]:
        index = build_index(modules, graph)
        phases = _phase_order(graph)
        by_module = _module_map(modules)
        accounting = phases.get("ACCOUNTING", 0)
        by_event: Dict[str, List[Tuple[SubscribeSite, int]]] = {}
        for site, rank in _resolved_sites(graph, phases):
            by_event.setdefault(site.event or "", []).append((site, rank))
        reported: Set[Tuple[str, str, str, str, str]] = set()
        for event in sorted(by_event):
            entries = by_event[event]
            for reader, reader_rank in entries:
                if reader_rank == accounting:
                    continue  # ACCOUNTING reads the pre-reaction state by contract
                reader_eff = index.lookup(reader.owner_class or "", reader.handler)
                if reader_eff is None or not reader_eff.reads:
                    continue
                for writer, writer_rank in entries:
                    if writer_rank <= reader_rank:
                        continue
                    if (writer.owner_class, writer.handler) == (
                        reader.owner_class,
                        reader.handler,
                    ):
                        continue
                    writer_eff = index.lookup(writer.owner_class or "", writer.handler)
                    if writer_eff is None:
                        continue
                    conflict = writer_eff.writes & reader_eff.reads
                    if not conflict:
                        continue
                    dedup = (
                        event,
                        f"{reader.owner_class}.{reader.handler}",
                        f"{writer.owner_class}.{writer.handler}",
                        reader.phase,
                        writer.phase,
                    )
                    if dedup in reported:
                        continue
                    reported.add(dedup)
                    module = by_module.get(writer.module)
                    if module is None:
                        continue
                    yield (
                        module,
                        Finding(
                            writer.line,
                            writer.col,
                            f"{event} dispatch: {writer.owner_class}."
                            f"{writer.handler} (phase {writer.phase}) writes "
                            f"{_fields_preview(conflict)} read by "
                            f"{reader.owner_class}.{reader.handler} (phase "
                            f"{reader.phase}) earlier in the same dispatch",
                        ),
                    )


@register
class EarlierPhasePublish(ProjectRule):
    """F002: publish whose subscribers run before the publishing handler."""

    code = "F002"
    summary = "handler publishes an event subscribed at an earlier phase"
    family = "simflow"

    def check_project(
        self, modules: List[ModuleContext], graph: BusGraph
    ) -> Iterator[Tuple[ModuleContext, Finding]]:
        index = build_index(modules, graph)
        phases = _phase_order(graph)
        by_module = _module_map(modules)
        sites = _resolved_sites(graph, phases)
        by_event: Dict[str, List[Tuple[SubscribeSite, int]]] = {}
        for site, rank in sites:
            by_event.setdefault(site.event or "", []).append((site, rank))
        reported: Set[Tuple[str, str, str, str]] = set()
        for publisher, publisher_rank in sites:
            effects = index.lookup(publisher.owner_class or "", publisher.handler)
            if effects is None:
                continue
            for event in sorted(effects.publishes):
                if event == DYNAMIC_PUBLISH:
                    continue
                event_def = graph.events.get(event)
                if event_def is not None and DISPATCH_ROOT_MARKER in event_def.doc.lower():
                    continue
                origin = effects.publishes[event]
                for consumer, consumer_rank in by_event.get(event, []):
                    if consumer_rank >= publisher_rank:
                        continue
                    dedup = (
                        f"{publisher.owner_class}.{publisher.handler}",
                        event,
                        f"{consumer.owner_class}.{consumer.handler}",
                        consumer.phase,
                    )
                    if dedup in reported:
                        continue
                    reported.add(dedup)
                    module = by_module.get(origin.module)
                    if module is None:
                        continue
                    yield (
                        module,
                        Finding(
                            origin.line,
                            origin.col,
                            f"{publisher.owner_class}.{publisher.handler} "
                            f"(phase {publisher.phase}) transitively publishes "
                            f"{event}, consumed by {consumer.owner_class}."
                            f"{consumer.handler} at earlier phase "
                            f"{consumer.phase}; mark {event} as dispatch-root "
                            "in its docstring if the nested phase restart is "
                            "intended",
                        ),
                    )


@register
class RngDiscipline(ProjectRule):
    """F003: draws on declared draw-free paths, or literal-seeded streams."""

    code = "F003"
    summary = "RNG draw on a draws=0 path, or a literal-seeded stream"
    family = "simflow"

    def check_project(
        self, modules: List[ModuleContext], graph: BusGraph
    ) -> Iterator[Tuple[ModuleContext, Finding]]:
        index = build_index(modules, graph)
        by_module = _module_map(modules)
        for contract in sorted(index.contracts, key=lambda c: (c.module, c.line)):
            effects = index.closed.get(contract.key)
            if effects is None or not effects.draws:
                continue
            module = by_module.get(contract.module)
            if module is None:
                continue
            site = effects.draws[0]
            owner, name = contract.key
            yield (
                module,
                Finding(
                    contract.line,
                    0,
                    f"{owner}.{name} is declared draw-free "
                    f"({contract.origin} contract) but draws via "
                    f"{site.detail} at {site.module}:{site.line}"
                    + (f" (+{len(effects.draws) - 1} more)" if len(effects.draws) > 1 else ""),
                ),
            )
        yield from self._literal_seeds(modules)

    def _literal_seeds(
        self, modules: List[ModuleContext]
    ) -> Iterator[Tuple[ModuleContext, Finding]]:
        for module in modules:
            if module.category != "src":
                continue  # tests/benchmarks seed scenario *roots* by design
            if module.path.endswith("util/rng.py"):
                continue  # the stream implementation itself
            for node in ast.walk(module.tree):
                if (
                    isinstance(node, ast.Call)
                    and _terminal(node.func) == "RandomSource"
                    and node.args
                    and isinstance(node.args[0], ast.Constant)
                    and isinstance(node.args[0].value, int)
                ):
                    yield (
                        module,
                        Finding(
                            node.lineno,
                            node.col_offset,
                            "RandomSource seeded with a literal constant; "
                            "derive the stream from the run's root seed via "
                            "substream()/derive_seeds so substream discipline "
                            "holds",
                        ),
                    )


#: Pool-constructor names whose submit/map arguments must be picklable
#: module-level functions.
_POOL_CONSTRUCTORS = {"ProcessPoolExecutor", "SweepExecutor"}
#: Pool methods that ship their first argument to worker processes.
_POOL_SHIP_METHODS = {"submit", "map"}


@register
class PoolCaptureHazard(ModuleRule):
    """F004: closures/bound methods shipped to process-pool fan-out.

    A lambda, a nested ``def`` (it closes over the enclosing frame), or a
    bound method (it pickles the whole instance, sharing no mutation back)
    passed to ``ProcessPoolExecutor.submit/map`` either fails to pickle or
    silently diverges from the parent process. The sweep/pregen fan-out
    idiom is a module-level function plus an explicit spec argument.
    """

    code = "F004"
    summary = "closure or bound method shipped to a process-pool fan-out"
    family = "simflow"

    def check(self, module: ModuleContext) -> Iterator[Finding]:
        for scope in self._function_scopes(module.tree):
            yield from self._check_scope(scope)

    def _function_scopes(self, tree: ast.Module) -> Iterator[ast.AST]:
        for node in ast.walk(tree):
            if isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef)):
                yield node

    def _check_scope(self, func: ast.AST) -> Iterator[Finding]:
        assert isinstance(func, (ast.FunctionDef, ast.AsyncFunctionDef))
        pools: Set[str] = set()
        nested: Set[str] = set()
        for node in ast.walk(func):
            if node is not func and isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef)):
                nested.add(node.name)
            elif isinstance(node, ast.withitem) and node.optional_vars is not None:
                if self._is_pool_expr(node.context_expr) and isinstance(
                    node.optional_vars, ast.Name
                ):
                    pools.add(node.optional_vars.id)
            elif isinstance(node, ast.Assign) and len(node.targets) == 1:
                if self._is_pool_expr(node.value) and isinstance(node.targets[0], ast.Name):
                    pools.add(node.targets[0].id)
            elif isinstance(node, ast.AnnAssign) and isinstance(node.target, ast.Name):
                if _terminal(node.annotation) in _POOL_CONSTRUCTORS:
                    pools.add(node.target.id)
        if not pools:
            return
        for node in ast.walk(func):
            if not isinstance(node, ast.Call):
                continue
            call_func = node.func
            if not (
                isinstance(call_func, ast.Attribute)
                and call_func.attr in _POOL_SHIP_METHODS
                and isinstance(call_func.value, ast.Name)
                and call_func.value.id in pools
                and node.args
            ):
                continue
            problem = self._shipped_problem(node.args[0], nested)
            if problem is not None:
                yield Finding(
                    node.lineno,
                    node.col_offset,
                    f"process-pool {call_func.attr}() ships {problem}; pass a "
                    "module-level function (share-nothing, picklable) instead",
                )

    def _is_pool_expr(self, expr: ast.AST) -> bool:
        return isinstance(expr, ast.Call) and _terminal(expr.func) in _POOL_CONSTRUCTORS

    def _shipped_problem(self, fn: ast.AST, nested: Set[str]) -> Optional[str]:
        if isinstance(fn, ast.Lambda):
            return "a lambda (unpicklable closure)"
        if isinstance(fn, ast.Name) and fn.id in nested:
            return f"nested function {fn.id!r} (closes over the enclosing frame)"
        if isinstance(fn, ast.Attribute):
            return (
                f"bound method {ast.unparse(fn)!r} (pickles the whole instance; "
                "worker-side mutation is silently dropped)"
            )
        if isinstance(fn, ast.Call) and _terminal(fn.func) == "partial" and fn.args:
            return self._shipped_problem(fn.args[0], nested)
        return None


__all__ = [
    "DISPATCH_ROOT_MARKER",
    "CrossPhaseWriteAfterRead",
    "EarlierPhasePublish",
    "RngDiscipline",
    "PoolCaptureHazard",
]
