"""Field-level effect extraction over the parsed corpus.

For every class method and top-level function, this module computes an
:class:`Effects` record — which ``Class.field`` names the code reads and
writes, which event types it publishes, where it draws from a
:class:`~repro.util.rng.RandomSource`, and which other corpus functions
it calls — then closes those records over the call graph so a handler's
effect set includes everything its helpers do.

Two closures are produced. :attr:`EffectIndex.closed` follows direct
call edges only and backs the F rules. :attr:`EffectIndex.covered`
additionally links stored-callback dispatch — invoking a non-method
attribute of a corpus instance (``transfer.on_cancel(transfer)``)
reaches every callable any function registered under that keyword name
(``on_cancel=lambda t: ...``). Name-keyed linkage is too coarse for
hazard rules but is required for the runtime crosscheck's observed ⊆
static claim, because completion callbacks run synchronously inside
whichever handler triggered them.

Extraction is deliberately an *over*-approximation (the runtime
crosscheck in :mod:`repro.devtools.simflow.runtime` asserts observed ⊆
static, so the static side must never under-report):

* Nested ``def``/``lambda`` bodies count toward the enclosing function.
  Handlers schedule deferred work through closures; attributing the
  closure's effects to the scheduler is conservative for hazard rules
  and required for the inline cases (sort keys, filters).
* Fetching a bound method (``self._beat`` without calling it) adds a
  call edge — the reference may be invoked later.
* Mutating calls on a field (``self._queue.append(...)``) count as a
  write of the field as well as a read.

Receiver types come from a small annotation-driven inference: ``self``,
annotated parameters, ``var = Class(...)`` constructor calls, field
types harvested from ``__init__`` assignments, ``Dict[key, Class]``
value types, and method/property return annotations — the same style of
resolution :mod:`repro.devtools.simlint.busgraph` uses for handlers.

Draw contracts: a ``# simflow: draws=0`` comment on (or directly above)
a ``def``, or a docstring containing a draw-neutrality phrase
("consumes no randomness", "zero-draw", "draw-free", "draw-neutral"),
declares the whole transitive closure of that function draw-free; rule
F003 enforces the declaration.
"""

from __future__ import annotations

import ast
import io
import re
import tokenize
from dataclasses import dataclass, field
from typing import Dict, List, Optional, Set, Tuple

from repro.devtools.simlint.busgraph import BusGraph, ClassInfo, _terminal, _unwrap_optional
from repro.devtools.simlint.registry import ModuleContext

#: Effect keys are ``(owner, name)``: owner is a class name for methods
#: or ``"<module-path>"`` for top-level functions.
EffectKey = Tuple[str, str]

#: RandomSource methods that consume draws from the stream.
#: ``raw_random`` returns the underlying draw callable, so fetching it is
#: treated as a draw site (the callable draws on every later call).
DRAW_METHODS = frozenset(
    {
        "random",
        "random_many",
        "raw_random",
        "uniform",
        "randint",
        "randrange",
        "expovariate",
        "gauss",
        "lognormvariate",
        "weibullvariate",
        "paretovariate",
        "choice",
        "sample",
        "shuffle",
        "weighted_choice",
    }
)

#: RandomSource methods that derive child streams without drawing.
DERIVE_METHODS = frozenset({"substream", "from_derived", "derive_seed", "derive_seeds"})

#: Method names that mutate their receiver in place: a call through a
#: field (``self._queue.append(x)``) writes the field.
MUTATOR_METHODS = frozenset(
    {
        "append",
        "appendleft",
        "add",
        "clear",
        "discard",
        "extend",
        "insert",
        "pop",
        "popitem",
        "popleft",
        "remove",
        "reverse",
        "rotate",
        "setdefault",
        "sort",
        "update",
    }
)

#: Docstring phrases that declare a function draw-free (the rack
#: substitution / placement draw-neutrality contracts from PR 9).
DRAW_FREE_PHRASES = (
    "consumes no randomness",
    "consumes no rng",
    "zero-draw",
    "draw-free",
    "draw-neutral",
)

#: Event published through an expression the extractor cannot resolve to
#: a constructor call; rules treat it as "unknown event".
DYNAMIC_PUBLISH = "<dynamic>"

_DRAWS_ZERO_RE = re.compile(r"#\s*simflow:\s*draws\s*=\s*0\b")


@dataclass(frozen=True)
class DrawSite:
    """One RNG draw, as a reportable location."""

    module: str
    line: int
    col: int
    detail: str  # e.g. "RandomSource.choice"


@dataclass(frozen=True)
class PublishOrigin:
    """Representative source location for one published event type."""

    module: str
    line: int
    col: int


@dataclass
class Effects:
    """What one function does, field-by-field."""

    key: EffectKey
    module: str
    line: int
    reads: Set[str] = field(default_factory=set)
    writes: Set[str] = field(default_factory=set)
    #: event type name -> representative publish site (first seen).
    publishes: Dict[str, PublishOrigin] = field(default_factory=dict)
    draws: List[DrawSite] = field(default_factory=list)
    calls: Set[EffectKey] = field(default_factory=set)
    #: Non-method callable attributes this function invokes on corpus
    #: instances (``transfer.on_cancel(transfer)``): stored-callback
    #: dispatch, resolved against the kwarg-registration registry.
    opaque_calls: Set[str] = field(default_factory=set)

    def merge(self, other: "Effects") -> bool:
        """Fold ``other``'s effects in; True when anything was new."""
        changed = False
        if not other.reads <= self.reads:
            self.reads |= other.reads
            changed = True
        if not other.writes <= self.writes:
            self.writes |= other.writes
            changed = True
        for event, origin in other.publishes.items():
            if event not in self.publishes:
                self.publishes[event] = origin
                changed = True
        known = set(self.draws)
        for site in other.draws:
            if site not in known:
                self.draws.append(site)
                known.add(site)
                changed = True
        if not other.opaque_calls <= self.opaque_calls:
            self.opaque_calls |= other.opaque_calls
            changed = True
        return changed


@dataclass(frozen=True)
class DrawContract:
    """A declared ``draws=0`` obligation on one function."""

    key: EffectKey
    module: str
    line: int
    origin: str  # "comment" or "docstring"


@dataclass
class EffectIndex:
    """Every function's direct and transitive effects, plus contracts."""

    direct: Dict[EffectKey, Effects] = field(default_factory=dict)
    closed: Dict[EffectKey, Effects] = field(default_factory=dict)
    #: Like ``closed``, but additionally linking stored-callback dispatch
    #: (``transfer.on_cancel(...)``) to every callable registered under
    #: the same keyword name anywhere in the corpus. Name-keyed linkage
    #: is far too coarse for the hazard rules — one completion callback
    #: would smear near-global effect sets over every handler pair — but
    #: it is exactly what soundness of the runtime crosscheck needs:
    #: callbacks run synchronously inside whichever handler triggered
    #: them, so their effects are observed under that handler's key.
    covered: Dict[EffectKey, Effects] = field(default_factory=dict)
    contracts: List[DrawContract] = field(default_factory=list)
    #: class -> field -> inferred class of the field's value.
    field_types: Dict[str, Dict[str, str]] = field(default_factory=dict)
    classes: Dict[str, ClassInfo] = field(default_factory=dict)

    def defining_class(self, cls: str, method: str) -> Optional[str]:
        """The class in ``cls``'s base chain that defines ``method``."""
        seen: Set[str] = set()
        current: Optional[str] = cls
        while current is not None and current not in seen:
            seen.add(current)
            info = self.classes.get(current)
            if info is None:
                return None
            if method in info.methods:
                return current
            current = info.bases[0].rsplit(".", 1)[-1] if info.bases else None
        return None

    def lookup(self, cls: str, method: str) -> Optional[Effects]:
        """Transitive effects of ``cls.method``, following inheritance."""
        owner = self.defining_class(cls, method)
        if owner is None:
            return None
        return self.closed.get((owner, method))

    def lookup_covered(self, cls: str, method: str) -> Optional[Effects]:
        """Like :meth:`lookup` but over the callback-linked closure."""
        owner = self.defining_class(cls, method)
        if owner is None:
            return None
        return self.covered.get((owner, method))

    def own_class_names(self, cls: str) -> Set[str]:
        """``cls`` plus its corpus base classes (field-prefix filter)."""
        names: Set[str] = set()
        stack = [cls]
        while stack:
            current = stack.pop()
            if current in names:
                continue
            names.add(current)
            info = self.classes.get(current)
            if info is not None:
                stack.extend(base.rsplit(".", 1)[-1] for base in info.bases)
        return names


def _annotation_class(annotation: Optional[ast.AST], known: Set[str]) -> Optional[str]:
    """Class name out of an annotation, if it names a corpus class.

    String annotations are re-parsed both before and after unwrapping
    ``Optional`` — ``Optional["JobTracker"]`` keeps the quotes on the
    *inner* node, and missing that edge cost real call-graph coverage
    (the runtime crosscheck caught it).
    """
    if annotation is None:
        return None
    for _ in range(2):
        if isinstance(annotation, ast.Constant) and isinstance(annotation.value, str):
            try:
                annotation = ast.parse(annotation.value, mode="eval").body
            except SyntaxError:  # pragma: no cover - malformed string annotation
                return None
        annotation = _unwrap_optional(annotation)
    name = _terminal(annotation)
    return name if name in known else None


def _dict_value_class(annotation: Optional[ast.AST], known: Set[str]) -> Optional[str]:
    """Value class of a ``Dict[key, Class]``-style annotation."""
    if annotation is None:
        return None
    annotation = _unwrap_optional(annotation)
    if not isinstance(annotation, ast.Subscript):
        return None
    base = _terminal(annotation.value)
    if base not in {"Dict", "dict", "Mapping", "MutableMapping", "defaultdict"}:
        return None
    if isinstance(annotation.slice, ast.Tuple) and annotation.slice.elts:
        return _annotation_class(annotation.slice.elts[-1], known)
    return None


class _Scope:
    """Name -> class bindings for one function (plus dict value types)."""

    def __init__(self) -> None:
        self.var_class: Dict[str, str] = {}
        self.dict_value: Dict[str, str] = {}


class _Extractor:
    """Shared extraction state over one corpus."""

    def __init__(self, modules: List[ModuleContext], graph: BusGraph) -> None:
        self.modules = modules
        self.graph = graph
        self.classes = graph.classes
        self.known = set(graph.classes)
        self.index = EffectIndex(classes=graph.classes)
        #: class -> field -> inferred value class (working table).
        self._ft: Dict[str, Dict[str, str]] = {}
        #: class -> field -> value class of a Dict-typed field.
        self.field_dict_value: Dict[str, Dict[str, str]] = {}
        #: module path -> top-level function names (for call edges).
        self.module_functions: Dict[str, Set[str]] = {}
        #: module path -> set of lines carrying ``# simflow: draws=0``.
        self.contract_lines: Dict[str, Set[int]] = {}
        #: kwarg name -> functions that passed a callable reference under
        #: it (``on_cancel=lambda t: ...`` registers the enclosing
        #: function as a possible target of ``<obj>.on_cancel(...)``).
        self._callback_regs: Dict[str, Set[EffectKey]] = {}

    # -- corpus scan ------------------------------------------------------------

    def build(self) -> EffectIndex:
        for module in self.modules:
            self.module_functions[module.path] = {
                node.name
                for node in module.tree.body
                if isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef))
            }
            self.contract_lines[module.path] = _scan_contract_lines(module)
        # Field tables first (two passes: pass 2 resolves fields assigned
        # from other fields, e.g. ``self._pred = self._namenode.predictor``).
        for _ in range(2):
            for name in sorted(self.classes):
                self._harvest_fields(self.classes[name])
        self.index.field_types = {name: dict(table) for name, table in sorted(self._ft.items())}
        for module in self.modules:
            self._extract_module(module)
        self._close()
        return self.index

    # -- field typing -----------------------------------------------------------

    def _harvest_fields(self, info: ClassInfo) -> None:
        table = self._ft.setdefault(info.name, {})
        dict_table = self.field_dict_value.setdefault(info.name, {})
        for item in info.node.body:
            if isinstance(item, ast.AnnAssign) and isinstance(item.target, ast.Name):
                cls = _annotation_class(item.annotation, self.known)
                if cls is not None:
                    table.setdefault(item.target.id, cls)
                value_cls = _dict_value_class(item.annotation, self.known)
                if value_cls is not None:
                    dict_table.setdefault(item.target.id, value_cls)
        for method_name in sorted(info.methods):
            method = info.methods[method_name]
            scope = self._method_scope(info, method)
            for node in ast.walk(method):
                target: Optional[ast.AST] = None
                value: Optional[ast.AST] = None
                annotation: Optional[ast.AST] = None
                if isinstance(node, ast.Assign) and len(node.targets) == 1:
                    target, value = node.targets[0], node.value
                elif isinstance(node, ast.AnnAssign):
                    target, value, annotation = node.target, node.value, node.annotation
                if not (
                    isinstance(target, ast.Attribute)
                    and isinstance(target.value, ast.Name)
                    and target.value.id == "self"
                ):
                    continue
                cls = _annotation_class(annotation, self.known)
                if cls is None and value is not None:
                    cls = self._expr_class(value, info.name, scope)
                if cls is not None:
                    table.setdefault(target.attr, cls)
                value_cls = _dict_value_class(annotation, self.known)
                if value_cls is None and value is not None:
                    value_cls = self._expr_dict_value(value, info.name, scope)
                if value_cls is not None:
                    dict_table.setdefault(target.attr, value_cls)

    def _method_scope(
        self, info: Optional[ClassInfo], func: ast.AST, collect_locals: bool = False
    ) -> _Scope:
        scope = _Scope()
        if info is not None:
            scope.var_class["self"] = info.name
        assert isinstance(func, (ast.FunctionDef, ast.AsyncFunctionDef, ast.Lambda))
        args = func.args
        for arg in list(args.posonlyargs) + list(args.args) + list(args.kwonlyargs):
            annotation = getattr(arg, "annotation", None)
            cls = _annotation_class(annotation, self.known)
            if cls is not None:
                scope.var_class.setdefault(arg.arg, cls)
            value_cls = _dict_value_class(annotation, self.known)
            if value_cls is not None:
                scope.dict_value.setdefault(arg.arg, value_cls)
        if collect_locals and not isinstance(func, ast.Lambda):
            self._collect_locals(func.body, info, scope)
        return scope

    def _collect_locals(
        self, body: List[ast.stmt], info: Optional[ClassInfo], scope: _Scope
    ) -> None:
        """Order-insensitive local binds (two passes for chains)."""
        assigns: List[Tuple[ast.AST, Optional[ast.AST], Optional[ast.AST]]] = []
        loops: List[Tuple[ast.AST, ast.AST]] = []
        for stmt in body:
            for node in ast.walk(stmt):
                if isinstance(node, ast.Assign) and len(node.targets) == 1:
                    assigns.append((node.targets[0], node.value, None))
                elif isinstance(node, ast.AnnAssign):
                    assigns.append((node.target, node.value, node.annotation))
                elif isinstance(node, (ast.For, ast.AsyncFor)):
                    loops.append((node.target, node.iter))
                elif isinstance(node, ast.withitem) and node.optional_vars is not None:
                    assigns.append((node.optional_vars, node.context_expr, None))
        cls_name = info.name if info is not None else None
        for _ in range(2):
            # ``for tracker in d.values()`` / ``for k, tracker in d.items()``
            # bind the loop variable to the dict's value class.
            for target, iterable in loops:
                if not (
                    isinstance(iterable, ast.Call)
                    and isinstance(iterable.func, ast.Attribute)
                    and iterable.func.attr in {"items", "values"}
                ):
                    continue
                value_cls = self._expr_dict_value(iterable.func.value, cls_name, scope)
                if value_cls is None:
                    continue
                bound: Optional[ast.AST] = None
                if iterable.func.attr == "values" and isinstance(target, ast.Name):
                    bound = target
                elif (
                    iterable.func.attr == "items"
                    and isinstance(target, ast.Tuple)
                    and target.elts
                ):
                    bound = target.elts[-1]
                if isinstance(bound, ast.Name):
                    scope.var_class.setdefault(bound.id, value_cls)
            for target, value, annotation in assigns:
                if not isinstance(target, ast.Name):
                    continue
                cls = _annotation_class(annotation, self.known)
                if cls is None and value is not None:
                    cls = self._expr_class(value, cls_name, scope)
                if cls is not None:
                    scope.var_class.setdefault(target.id, cls)
                value_cls = _dict_value_class(annotation, self.known)
                if value_cls is None and value is not None:
                    value_cls = self._expr_dict_value(value, cls_name, scope)
                if value_cls is not None:
                    scope.dict_value.setdefault(target.id, value_cls)

    # -- expression typing ------------------------------------------------------

    def _expr_class(
        self, expr: ast.AST, own_class: Optional[str], scope: _Scope
    ) -> Optional[str]:
        if isinstance(expr, ast.Name):
            return scope.var_class.get(expr.id)
        if isinstance(expr, ast.Attribute):
            base = self._expr_class(expr.value, own_class, scope)
            if base is None:
                return None
            return self._member_class(base, expr.attr)
        if isinstance(expr, ast.Call):
            func = expr.func
            if isinstance(func, ast.Name):
                return func.id if func.id in self.known else None
            if isinstance(func, ast.Attribute):
                name = _terminal(func)
                if name in self.known and func.attr == name:
                    return name  # module-qualified constructor, e.g. events.NodeDown(...)
                base = self._expr_class(func.value, own_class, scope)
                if base is None:
                    return None
                return self._return_class(base, func.attr)
            return None
        if isinstance(expr, ast.Subscript):
            return self._expr_dict_value(expr.value, own_class, scope)
        if isinstance(expr, ast.Await):
            return self._expr_class(expr.value, own_class, scope)
        return None

    def _expr_dict_value(
        self, expr: ast.AST, own_class: Optional[str], scope: _Scope
    ) -> Optional[str]:
        if isinstance(expr, ast.Name):
            return scope.dict_value.get(expr.id)
        if (
            isinstance(expr, ast.Attribute)
            and isinstance(expr.value, ast.Name)
            and expr.value.id == "self"
            and own_class is not None
        ):
            return self.field_dict_value.get(own_class, {}).get(expr.attr)
        if isinstance(expr, ast.Call):
            func = expr.func
            # dict(sorted(trackers.items())) keeps the value type through
            # the rebuild — the registration-order idiom all the masters use.
            if isinstance(func, ast.Name) and func.id in {"dict", "sorted", "list"} and expr.args:
                return self._expr_dict_value(expr.args[0], own_class, scope)
            if isinstance(func, ast.Attribute) and func.attr in {"items", "values"}:
                return self._expr_dict_value(func.value, own_class, scope)
        return None

    def _member_class(self, cls: str, attr: str) -> Optional[str]:
        """Class of ``<cls instance>.attr`` — field type or property return."""
        seen: Set[str] = set()
        current: Optional[str] = cls
        while current is not None and current not in seen:
            seen.add(current)
            found = self._ft.get(current, {}).get(attr)
            if found is not None:
                return found
            info = self.classes.get(current)
            if info is None:
                return None
            method = info.methods.get(attr)
            if method is not None and isinstance(method, (ast.FunctionDef, ast.AsyncFunctionDef)):
                return _annotation_class(method.returns, self.known)
            current = info.bases[0].rsplit(".", 1)[-1] if info.bases else None
        return None

    def _return_class(self, cls: str, method_name: str) -> Optional[str]:
        seen: Set[str] = set()
        current: Optional[str] = cls
        while current is not None and current not in seen:
            seen.add(current)
            info = self.classes.get(current)
            if info is None:
                return None
            method = info.methods.get(method_name)
            if method is not None and isinstance(method, (ast.FunctionDef, ast.AsyncFunctionDef)):
                return _annotation_class(method.returns, self.known)
            current = info.bases[0].rsplit(".", 1)[-1] if info.bases else None
        return None

    # -- effect extraction ------------------------------------------------------

    def _extract_module(self, module: ModuleContext) -> None:
        for node in module.tree.body:
            if isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef)):
                key = (f"<{module.path}>", node.name)
                self._extract_function(key, None, node, module)
            elif isinstance(node, ast.ClassDef):
                info = self.classes.get(node.name)
                if info is None or info.module != module.path:
                    continue  # shadowed duplicate class name; first wins
                for item in node.body:
                    if isinstance(item, (ast.FunctionDef, ast.AsyncFunctionDef)):
                        self._extract_function((node.name, item.name), info, item, module)

    def _extract_function(
        self,
        key: EffectKey,
        info: Optional[ClassInfo],
        func: ast.AST,
        module: ModuleContext,
    ) -> None:
        assert isinstance(func, (ast.FunctionDef, ast.AsyncFunctionDef))
        effects = Effects(key=key, module=module.path, line=func.lineno)
        scope = self._method_scope(info, func, collect_locals=True)
        own_class = info.name if info is not None else None

        # Pre-pass: targets that imply a read as well as a write.
        aug_reads: Set[int] = set()
        subscript_writes: Set[int] = set()
        for node in ast.walk(func):
            if isinstance(node, ast.AugAssign):
                if isinstance(node.target, ast.Attribute):
                    aug_reads.add(id(node.target))
                elif isinstance(node.target, ast.Subscript) and isinstance(
                    node.target.value, ast.Attribute
                ):
                    subscript_writes.add(id(node.target.value))
            elif isinstance(node, ast.Assign):
                for target in node.targets:
                    for sub in ast.walk(target):
                        if isinstance(sub, ast.Subscript) and isinstance(
                            sub.value, ast.Attribute
                        ):
                            subscript_writes.add(id(sub.value))
            elif isinstance(node, ast.Delete):
                for target in node.targets:
                    if isinstance(target, ast.Subscript) and isinstance(
                        target.value, ast.Attribute
                    ):
                        subscript_writes.add(id(target.value))

        for node in ast.walk(func):
            if isinstance(node, ast.Attribute):
                self._record_attribute(
                    node,
                    effects,
                    own_class,
                    scope,
                    force_read=id(node) in aug_reads,
                    force_write=id(node) in subscript_writes,
                )
            elif isinstance(node, ast.Call):
                self._record_call(node, effects, own_class, scope, module)
        existing = self.index.direct.get(key)
        if existing is not None:
            existing.merge(effects)  # e.g. single-dispatch overloads sharing a name
        else:
            self.index.direct[key] = effects
        self._record_contract(key, func, module)

    def _record_attribute(
        self,
        node: ast.Attribute,
        effects: Effects,
        own_class: Optional[str],
        scope: _Scope,
        force_read: bool,
        force_write: bool,
    ) -> None:
        base = self._expr_class(node.value, own_class, scope)
        if base is None:
            return
        qualified = f"{base}.{node.attr}"
        is_method = self._is_plain_method(base, node.attr)
        if isinstance(node.ctx, (ast.Store, ast.Del)):
            effects.writes.add(qualified)
            if force_read:
                effects.reads.add(qualified)
            if is_method:  # property setter: its body runs on assignment
                effects.calls.add((base, node.attr))
            return
        if is_method:
            # Bound-method reference (callback/property): follow the body.
            effects.calls.add((base, node.attr))
            if self._is_property(base, node.attr):
                effects.reads.add(qualified)
        else:
            effects.reads.add(qualified)
        if force_write:
            effects.writes.add(qualified)

    def _is_plain_method(self, cls: str, attr: str) -> bool:
        seen: Set[str] = set()
        current: Optional[str] = cls
        while current is not None and current not in seen:
            seen.add(current)
            info = self.classes.get(current)
            if info is None:
                return False
            if attr in info.methods:
                return True
            current = info.bases[0].rsplit(".", 1)[-1] if info.bases else None
        return False

    def _is_property(self, cls: str, attr: str) -> bool:
        owner = self.index.defining_class(cls, attr)
        if owner is None:
            return False
        method = self.classes[owner].methods[attr]
        for decorator in method.decorator_list:
            name = _terminal(decorator)
            if name in {"property", "cached_property"} or (
                isinstance(decorator, ast.Attribute) and decorator.attr in {"setter", "getter"}
            ):
                return True
        return False

    def _record_call(
        self,
        node: ast.Call,
        effects: Effects,
        own_class: Optional[str],
        scope: _Scope,
        module: ModuleContext,
    ) -> None:
        # Callable references passed as keyword arguments register the
        # enclosing function as a stored-callback target under the kwarg
        # name (lambda bodies fold into the enclosing function already).
        for keyword in node.keywords:
            if keyword.arg is not None and isinstance(
                keyword.value, (ast.Lambda, ast.Attribute, ast.Name)
            ):
                self._callback_regs.setdefault(keyword.arg, set()).add(effects.key)
        func = node.func
        if isinstance(func, ast.Name):
            if func.id in self.module_functions.get(module.path, set()):
                effects.calls.add((f"<{module.path}>", func.id))
            return
        if not isinstance(func, ast.Attribute):
            return
        receiver = func.value
        base = self._expr_class(receiver, own_class, scope)
        if func.attr == "publish" and node.args:
            arg = node.args[0]
            event: str = DYNAMIC_PUBLISH
            if isinstance(arg, ast.Call):
                name = _terminal(arg.func)
                if name is not None and name in self.graph.events:
                    event = name
            elif isinstance(arg, ast.Name):
                cls = scope.var_class.get(arg.id)
                if cls is not None and cls in self.graph.events:
                    event = cls
            effects.publishes.setdefault(
                event, PublishOrigin(module=module.path, line=node.lineno, col=node.col_offset)
            )
        if base is None:
            return
        if base == "RandomSource":
            if func.attr in DRAW_METHODS:
                effects.draws.append(
                    DrawSite(
                        module=module.path,
                        line=node.lineno,
                        col=node.col_offset,
                        detail=f"RandomSource.{func.attr}",
                    )
                )
            return
        if self._is_plain_method(base, func.attr):
            effects.calls.add((base, func.attr))
        elif func.attr in MUTATOR_METHODS and isinstance(receiver, ast.Attribute):
            receiver_base = self._expr_class(receiver.value, own_class, scope)
            if receiver_base is not None:
                effects.writes.add(f"{receiver_base}.{receiver.attr}")
        else:
            # Invoking a non-method attribute of a corpus instance is
            # stored-callback dispatch; link it to every registration
            # under the same name during closure.
            effects.opaque_calls.add(func.attr)

    def _record_contract(self, key: EffectKey, func: ast.AST, module: ModuleContext) -> None:
        assert isinstance(func, (ast.FunctionDef, ast.AsyncFunctionDef))
        lines = self.contract_lines.get(module.path, set())
        candidates = {func.lineno, func.lineno - 1}
        candidates.update(d.lineno for d in func.decorator_list)
        origin: Optional[str] = None
        if candidates & lines:
            origin = "comment"
        else:
            doc = (ast.get_docstring(func) or "").lower()
            if any(phrase in doc for phrase in DRAW_FREE_PHRASES):
                origin = "docstring"
        if origin is not None:
            self.index.contracts.append(
                DrawContract(key=key, module=module.path, line=func.lineno, origin=origin)
            )

    # -- transitive closure -----------------------------------------------------

    def _close(self) -> None:
        self.index.closed = self._fixpoint(link_callbacks=False)
        self.index.covered = self._fixpoint(link_callbacks=True)

    def _fixpoint(self, link_callbacks: bool) -> Dict[EffectKey, Effects]:
        closed: Dict[EffectKey, Effects] = {}
        for key in sorted(self.index.direct):
            direct = self.index.direct[key]
            clone = Effects(key=key, module=direct.module, line=direct.line)
            clone.merge(direct)
            clone.calls = set(direct.calls)
            if link_callbacks:
                for attr in sorted(direct.opaque_calls):
                    clone.calls |= self._callback_regs.get(attr, set())
            closed[key] = clone
        for _ in range(len(closed) + 1):
            changed = False
            for key in sorted(closed):
                record = closed[key]
                for callee in sorted(record.calls):
                    target = self._resolve_callee(callee)
                    if target is None or target == key:
                        continue
                    callee_record = closed.get(target)
                    if callee_record is None:
                        continue
                    if record.merge(callee_record):
                        changed = True
                    if not callee_record.calls <= record.calls:
                        record.calls |= callee_record.calls
                        changed = True
            if not changed:
                break
        return closed

    def _resolve_callee(self, callee: EffectKey) -> Optional[EffectKey]:
        if callee in self.index.direct:
            return callee
        cls, method = callee
        owner = self.index.defining_class(cls, method)
        if owner is not None and (owner, method) in self.index.direct:
            return (owner, method)
        return None


def _scan_contract_lines(module: ModuleContext) -> Set[int]:
    """Lines carrying a ``# simflow: draws=0`` comment token."""
    lines: Set[int] = set()
    source = "\n".join(module.lines) + "\n"
    try:
        tokens = tokenize.generate_tokens(io.StringIO(source).readline)
        comments = [t for t in tokens if t.type == tokenize.COMMENT]
    except tokenize.TokenError:  # pragma: no cover - ast.parse succeeded already
        comments = []
    for token in comments:
        if _DRAWS_ZERO_RE.search(token.string):
            lines.add(token.start[0])
    return lines


def build_index(modules: List[ModuleContext], graph: BusGraph) -> EffectIndex:
    """Build (or fetch the cached) effect index for one corpus.

    The index is cached on the graph object so the four F rules sharing
    one :func:`~repro.devtools.simlint.engine.lint_paths` run pay for
    extraction once.
    """
    cached = getattr(graph, "_simflow_index", None)
    if cached is not None:
        return cached
    index = _Extractor(modules, graph).build()
    graph._simflow_index = index  # type: ignore[attr-defined]
    return index


def effects_to_json(index: EffectIndex) -> Dict[str, object]:
    """Stable JSON view of the effect index (the CI artifact)."""
    functions = {}
    for key in sorted(index.closed):
        record = index.closed[key]
        owner, name = key
        functions[f"{owner}.{name}"] = {
            "module": record.module,
            "line": record.line,
            "reads": sorted(record.reads),
            "writes": sorted(record.writes),
            "publishes": sorted(record.publishes),
            "draws": [
                {"module": s.module, "line": s.line, "detail": s.detail}
                for s in record.draws
            ],
            "calls": sorted(f"{c}.{m}" for c, m in record.calls),
        }
    return {
        "version": 1,
        "functions": functions,
        "contracts": [
            {
                "function": f"{c.key[0]}.{c.key[1]}",
                "module": c.module,
                "line": c.line,
                "origin": c.origin,
            }
            for c in sorted(index.contracts, key=lambda c: (c.module, c.line))
        ],
    }


__all__ = [
    "DRAW_METHODS",
    "DERIVE_METHODS",
    "DYNAMIC_PUBLISH",
    "DrawContract",
    "DrawSite",
    "EffectIndex",
    "EffectKey",
    "Effects",
    "build_index",
    "effects_to_json",
]
