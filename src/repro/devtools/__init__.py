"""Developer tooling that keeps the simulation honest at review time.

The runtime half of the correctness story is the cross-layer
:class:`~repro.simulator.invariants.InvariantAuditor`, which catches
violations while they execute. This package holds the static half:
:mod:`repro.devtools.simlint` analyses the source tree without running it
and rejects determinism hazards (wall-clock reads, unseeded RNG,
unordered-set iteration) and event-bus contract drift before they can
flake a golden-seed trajectory.
"""
