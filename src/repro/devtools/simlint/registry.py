"""Rule registry: one class per rule, registered by decoration.

Adding a rule is one class in :mod:`repro.devtools.simlint.rules`:
subclass :class:`ModuleRule` (pure per-file AST checks) or
:class:`ProjectRule` (checks that need the whole corpus — the event-bus
contract rules), give it a ``code``/``summary``, decorate with
:func:`register`, and the engine, the CLI's ``--select``, ``--list-rules``
and the fixture-corpus tests all pick it up automatically.
"""

from __future__ import annotations

import ast
from dataclasses import dataclass, field
from typing import TYPE_CHECKING, Dict, Iterable, Iterator, List, Optional, Set, Tuple, Type

from repro.devtools.simlint.diagnostics import Finding

if TYPE_CHECKING:  # pragma: no cover - typing only
    from repro.devtools.simlint.busgraph import BusGraph


@dataclass
class ModuleContext:
    """One parsed source file, as rules see it."""

    #: Display path (as reported in diagnostics), using ``/`` separators.
    path: str
    #: Path category: ``src`` / ``tests`` / ``benchmarks`` / ``tools`` / ``other``.
    category: str
    #: Parsed module body.
    tree: ast.Module
    #: Raw source, split into lines (for suppression scanning).
    lines: List[str] = field(default_factory=list)


class Rule:
    """Base class carrying rule identity; never instantiated directly."""

    #: Stable diagnostic code (``D001`` … / ``C001`` … / ``F001`` …).
    code: str = ""
    #: One-line description for ``--list-rules`` and the docs table.
    summary: str = ""
    #: Tool family the rule belongs to. ``simlint`` rules run under
    #: ``repro lint`` / ``python -m repro.devtools.simlint``; ``simflow``
    #: rules only run under ``python -m repro.devtools.simflow``. The two
    #: share one registry so codes stay globally unique.
    family: str = "simlint"


class ModuleRule(Rule):
    """A rule that inspects one module at a time."""

    def check(self, module: ModuleContext) -> Iterator[Finding]:
        raise NotImplementedError


class ProjectRule(Rule):
    """A rule that inspects the whole corpus (the bus-contract family)."""

    def check_project(
        self, modules: List[ModuleContext], graph: "BusGraph"
    ) -> Iterator[Tuple[ModuleContext, Finding]]:
        raise NotImplementedError


_RULES: Dict[str, Type[Rule]] = {}


def register(rule_class: Type[Rule]) -> Type[Rule]:
    """Class decorator: add a rule to the global registry."""
    if not rule_class.code:
        raise ValueError(f"{rule_class.__name__} has no code")
    if rule_class.code in _RULES:
        raise ValueError(f"duplicate rule code {rule_class.code}")
    _RULES[rule_class.code] = rule_class
    return rule_class


def all_rules(family: Optional[str] = None) -> Dict[str, Type[Rule]]:
    """Registered rules, keyed by code, in sorted-code order.

    ``family`` restricts the view to one tool's rules (``simlint`` /
    ``simflow``); ``None`` returns everything.
    """
    _ensure_loaded()
    return {
        code: rule_class
        for code, rule_class in sorted(_RULES.items())
        if family is None or rule_class.family == family
    }


def family_codes(family: str) -> Set[str]:
    """Every rule code belonging to one tool family."""
    return set(all_rules(family))


def _ensure_loaded() -> None:
    # Importing the rules packages populates the registry as a side
    # effect. simflow's rules live in a sibling package but share this
    # registry, so both CLIs see a single code namespace.
    from repro.devtools.simlint import rules  # noqa: F401
    from repro.devtools.simflow import rules as flow_rules  # noqa: F401


def iter_module_rules(family: str = "simlint") -> Iterable[ModuleRule]:
    _ensure_loaded()
    for rule_class in sorted(_RULES.values(), key=lambda r: r.code):
        if issubclass(rule_class, ModuleRule) and rule_class.family == family:
            yield rule_class()


def iter_project_rules(family: str = "simlint") -> Iterable[ProjectRule]:
    _ensure_loaded()
    for rule_class in sorted(_RULES.values(), key=lambda r: r.code):
        if issubclass(rule_class, ProjectRule) and rule_class.family == family:
            yield rule_class()


__all__ = [
    "ModuleContext",
    "Rule",
    "ModuleRule",
    "ProjectRule",
    "register",
    "all_rules",
    "family_codes",
    "iter_module_rules",
    "iter_project_rules",
]
