"""Rule registry: one class per rule, registered by decoration.

Adding a rule is one class in :mod:`repro.devtools.simlint.rules`:
subclass :class:`ModuleRule` (pure per-file AST checks) or
:class:`ProjectRule` (checks that need the whole corpus — the event-bus
contract rules), give it a ``code``/``summary``, decorate with
:func:`register`, and the engine, the CLI's ``--select``, ``--list-rules``
and the fixture-corpus tests all pick it up automatically.
"""

from __future__ import annotations

import ast
from dataclasses import dataclass, field
from typing import TYPE_CHECKING, Dict, Iterable, Iterator, List, Tuple, Type

from repro.devtools.simlint.diagnostics import Finding

if TYPE_CHECKING:  # pragma: no cover - typing only
    from repro.devtools.simlint.busgraph import BusGraph


@dataclass
class ModuleContext:
    """One parsed source file, as rules see it."""

    #: Display path (as reported in diagnostics), using ``/`` separators.
    path: str
    #: Path category: ``src`` / ``tests`` / ``benchmarks`` / ``tools`` / ``other``.
    category: str
    #: Parsed module body.
    tree: ast.Module
    #: Raw source, split into lines (for suppression scanning).
    lines: List[str] = field(default_factory=list)


class Rule:
    """Base class carrying rule identity; never instantiated directly."""

    #: Stable diagnostic code (``D001`` … / ``C001`` …).
    code: str = ""
    #: One-line description for ``--list-rules`` and the docs table.
    summary: str = ""


class ModuleRule(Rule):
    """A rule that inspects one module at a time."""

    def check(self, module: ModuleContext) -> Iterator[Finding]:
        raise NotImplementedError


class ProjectRule(Rule):
    """A rule that inspects the whole corpus (the bus-contract family)."""

    def check_project(
        self, modules: List[ModuleContext], graph: "BusGraph"
    ) -> Iterator[Tuple[ModuleContext, Finding]]:
        raise NotImplementedError


_RULES: Dict[str, Type[Rule]] = {}


def register(rule_class: Type[Rule]) -> Type[Rule]:
    """Class decorator: add a rule to the global registry."""
    if not rule_class.code:
        raise ValueError(f"{rule_class.__name__} has no code")
    if rule_class.code in _RULES:
        raise ValueError(f"duplicate rule code {rule_class.code}")
    _RULES[rule_class.code] = rule_class
    return rule_class


def all_rules() -> Dict[str, Type[Rule]]:
    """Registered rules, keyed by code, in sorted-code order."""
    _ensure_loaded()
    return dict(sorted(_RULES.items()))


def _ensure_loaded() -> None:
    # Importing the rules package populates the registry as a side effect.
    from repro.devtools.simlint import rules  # noqa: F401


def iter_module_rules() -> Iterable[ModuleRule]:
    _ensure_loaded()
    for rule_class in sorted(_RULES.values(), key=lambda r: r.code):
        if issubclass(rule_class, ModuleRule):
            yield rule_class()


def iter_project_rules() -> Iterable[ProjectRule]:
    _ensure_loaded()
    for rule_class in sorted(_RULES.values(), key=lambda r: r.code):
        if issubclass(rule_class, ProjectRule):
            yield rule_class()


__all__ = [
    "ModuleContext",
    "Rule",
    "ModuleRule",
    "ProjectRule",
    "register",
    "all_rules",
    "iter_module_rules",
    "iter_project_rules",
]
