"""Entry point for ``python -m repro.devtools.simlint``."""

import sys

from repro.devtools.simlint.cli import main

if __name__ == "__main__":
    sys.exit(main())
