"""simlint command line: ``python -m repro.devtools.simlint`` / ``repro lint``.

Output is one ``file:line:col CODE message`` line per diagnostic (or a
stable JSON document under ``--format json``). Exit status is 1 when any
*error*-severity diagnostic fires — findings in ``src/`` are errors,
findings elsewhere are warnings unless ``--strict`` promotes them.
``--graph`` additionally writes the statically-extracted event-bus graph
(DOT by default, JSON for ``.json`` paths).
"""

from __future__ import annotations

import argparse
import json
import sys
from pathlib import Path
from typing import Optional, Sequence

from repro.devtools.simlint.busgraph import to_dot, to_json
from repro.devtools.simlint.engine import lint_paths
from repro.devtools.simlint.registry import all_rules


def add_arguments(parser: argparse.ArgumentParser) -> None:
    """Attach simlint's options (shared with the ``repro lint`` subcommand)."""
    parser.add_argument(
        "paths",
        nargs="*",
        default=["src"],
        help="files or directories to lint (default: src)",
    )
    parser.add_argument(
        "--format",
        choices=["text", "json"],
        default="text",
        help="diagnostic output format (default: text)",
    )
    parser.add_argument(
        "--graph",
        metavar="PATH",
        default=None,
        help="write the extracted event-bus graph to PATH "
        "(.json for JSON, anything else for GraphViz DOT)",
    )
    parser.add_argument(
        "--select",
        metavar="CODES",
        default=None,
        help="comma-separated rule codes to run (default: all)",
    )
    parser.add_argument(
        "--strict",
        action="store_true",
        help="treat warnings (findings outside src/) as errors",
    )
    parser.add_argument(
        "--root",
        metavar="DIR",
        default=None,
        help="repository root for display paths and categories (default: cwd)",
    )
    parser.add_argument(
        "--list-rules",
        action="store_true",
        help="print the rule table and exit",
    )


def run(args: argparse.Namespace) -> int:
    """Execute a lint run from parsed arguments; returns the exit code."""
    if args.list_rules:
        for code, rule_class in all_rules().items():
            print(f"{code}  {rule_class.summary}")
        return 0

    select = None
    if args.select:
        select = {code.strip().upper() for code in args.select.split(",") if code.strip()}
    root = Path(args.root) if args.root else Path.cwd()
    try:
        result = lint_paths([Path(p) for p in args.paths], root=root, select=select)
    except FileNotFoundError as exc:
        print(f"simlint: {exc}", file=sys.stderr)
        return 2

    if args.graph is not None:
        graph_path = Path(args.graph)
        assert result.graph is not None
        if graph_path.suffix == ".json":
            graph_path.write_text(
                json.dumps(to_json(result.graph), indent=2, sort_keys=True) + "\n",
                encoding="utf-8",
            )
        else:
            graph_path.write_text(to_dot(result.graph), encoding="utf-8")

    if args.format == "json":
        document = {
            "version": 1,
            "diagnostics": [d.as_json() for d in result.diagnostics],
            "counts": {
                "errors": len(result.errors),
                "warnings": len(result.warnings),
                "files": len(result.modules),
            },
        }
        print(json.dumps(document, indent=2, sort_keys=True))
    else:
        for diagnostic in result.diagnostics:
            marker = "" if diagnostic.severity == "error" else " (warning)"
            print(f"{diagnostic.render()}{marker}")
        if result.diagnostics:
            print(
                f"simlint: {len(result.errors)} error(s), "
                f"{len(result.warnings)} warning(s) in {len(result.modules)} file(s)"
            )
    return result.exit_code(strict=args.strict)


def main(argv: Optional[Sequence[str]] = None) -> int:
    parser = argparse.ArgumentParser(
        prog="simlint",
        description="AST-based determinism & event-bus contract linter",
    )
    add_arguments(parser)
    args = parser.parse_args(list(argv) if argv is not None else None)
    return run(args)


if __name__ == "__main__":  # pragma: no cover
    sys.exit(main())
