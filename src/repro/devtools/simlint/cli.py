"""simlint command line: ``python -m repro.devtools.simlint`` / ``repro lint``.

Output is one ``file:line:col CODE message`` line per diagnostic, a
stable JSON document under ``--format json``, or a SARIF 2.1.0 document
under ``--format sarif`` (for GitHub code-scanning upload). Exit status
is 1 when any *error*-severity diagnostic fires — findings in ``src/``
are errors, findings elsewhere are warnings unless ``--strict`` promotes
them. ``--graph`` additionally writes the statically-extracted event-bus
graph (DOT by default, JSON for ``.json`` paths).

``--baseline FILE`` subtracts a committed finding snapshot so only new
findings gate; ``--write-baseline`` refreshes the snapshot from the
current run. Both are shared with simflow's CLI, which reuses the
helpers here (:func:`emit_diagnostics`, :func:`subtract_baseline`).
"""

from __future__ import annotations

import argparse
import json
import sys
from pathlib import Path
from typing import Dict, List, Optional, Sequence, Type

from repro.devtools.simlint.busgraph import to_dot, to_json
from repro.devtools.simlint.diagnostics import Diagnostic
from repro.devtools.simlint.engine import lint_paths
from repro.devtools.simlint.output import (
    apply_baseline,
    load_baseline,
    to_sarif,
    write_baseline,
)
from repro.devtools.simlint.registry import Rule, all_rules


def add_arguments(parser: argparse.ArgumentParser, tool: str = "simlint") -> None:
    """Attach the shared lint/flow options (``repro lint`` reuses this)."""
    parser.add_argument(
        "paths",
        nargs="*",
        default=["src"],
        help="files or directories to analyse (default: src)",
    )
    parser.add_argument(
        "--format",
        choices=["text", "json", "sarif"],
        default="text",
        help="diagnostic output format (default: text)",
    )
    if tool == "simlint":
        parser.add_argument(
            "--graph",
            metavar="PATH",
            default=None,
            help="write the extracted event-bus graph to PATH "
            "(.json for JSON, anything else for GraphViz DOT)",
        )
    parser.add_argument(
        "--select",
        metavar="CODES",
        default=None,
        help="comma-separated rule codes to run (default: all)",
    )
    parser.add_argument(
        "--strict",
        action="store_true",
        help="treat warnings (findings outside src/) as errors",
    )
    parser.add_argument(
        "--root",
        metavar="DIR",
        default=None,
        help="repository root for display paths and categories (default: cwd)",
    )
    parser.add_argument(
        "--baseline",
        metavar="FILE",
        default=None,
        help="subtract the findings recorded in FILE; only new findings gate",
    )
    parser.add_argument(
        "--write-baseline",
        action="store_true",
        help="record the current findings into --baseline FILE and exit 0",
    )
    parser.add_argument(
        "--list-rules",
        action="store_true",
        help="print the rule table and exit",
    )


def subtract_baseline(
    diagnostics: List[Diagnostic], args: argparse.Namespace, tool: str
) -> Optional[List[Diagnostic]]:
    """Handle ``--baseline`` / ``--write-baseline``.

    Returns the (possibly filtered) diagnostics to report, or ``None``
    when the invocation only wrote a baseline and should exit 0.
    """
    if args.write_baseline:
        if not args.baseline:
            print(f"{tool}: --write-baseline requires --baseline FILE", file=sys.stderr)
            raise SystemExit(2)
        write_baseline(Path(args.baseline), diagnostics, tool)
        print(f"{tool}: wrote {len(diagnostics)} finding(s) to {args.baseline}")
        return None
    if args.baseline:
        try:
            baseline = load_baseline(Path(args.baseline))
        except (OSError, ValueError, KeyError) as exc:
            print(f"{tool}: cannot load baseline: {exc}", file=sys.stderr)
            raise SystemExit(2) from exc
        filtered, matched = apply_baseline(diagnostics, baseline)
        if matched and args.format == "text":
            print(f"{tool}: {matched} baselined finding(s) suppressed")
        return filtered
    return diagnostics


def emit_diagnostics(
    diagnostics: List[Diagnostic],
    files: int,
    args: argparse.Namespace,
    tool: str,
    rules: Dict[str, Type[Rule]],
) -> int:
    """Render diagnostics in the selected format; returns the exit code."""
    errors = [d for d in diagnostics if d.severity == "error"]
    warnings = [d for d in diagnostics if d.severity == "warning"]
    if args.format == "json":
        document = {
            "version": 1,
            "diagnostics": [d.as_json() for d in diagnostics],
            "counts": {
                "errors": len(errors),
                "warnings": len(warnings),
                "files": files,
            },
        }
        print(json.dumps(document, indent=2, sort_keys=True))
    elif args.format == "sarif":
        print(json.dumps(to_sarif(diagnostics, tool, rules), indent=2, sort_keys=True))
    else:
        for diagnostic in diagnostics:
            marker = "" if diagnostic.severity == "error" else " (warning)"
            print(f"{diagnostic.render()}{marker}")
        if diagnostics:
            print(
                f"{tool}: {len(errors)} error(s), "
                f"{len(warnings)} warning(s) in {files} file(s)"
            )
    if errors:
        return 1
    if args.strict and warnings:
        return 1
    return 0


def parse_select(raw: Optional[str]) -> Optional[set]:
    if not raw:
        return None
    return {code.strip().upper() for code in raw.split(",") if code.strip()}


def run(args: argparse.Namespace) -> int:
    """Execute a lint run from parsed arguments; returns the exit code."""
    if args.list_rules:
        for code, rule_class in all_rules("simlint").items():
            print(f"{code}  {rule_class.summary}")
        return 0

    root = Path(args.root) if args.root else Path.cwd()
    try:
        result = lint_paths(
            [Path(p) for p in args.paths],
            root=root,
            select=parse_select(args.select),
            tool="simlint",
        )
    except FileNotFoundError as exc:
        print(f"simlint: {exc}", file=sys.stderr)
        return 2

    if getattr(args, "graph", None) is not None:
        graph_path = Path(args.graph)
        assert result.graph is not None
        if graph_path.suffix == ".json":
            graph_path.write_text(
                json.dumps(to_json(result.graph), indent=2, sort_keys=True) + "\n",
                encoding="utf-8",
            )
        else:
            graph_path.write_text(to_dot(result.graph), encoding="utf-8")

    diagnostics = subtract_baseline(result.diagnostics, args, "simlint")
    if diagnostics is None:
        return 0
    return emit_diagnostics(
        diagnostics, len(result.modules), args, "simlint", all_rules("simlint")
    )


def main(argv: Optional[Sequence[str]] = None) -> int:
    parser = argparse.ArgumentParser(
        prog="simlint",
        description="AST-based determinism & event-bus contract linter",
    )
    add_arguments(parser)
    args = parser.parse_args(list(argv) if argv is not None else None)
    return run(args)


if __name__ == "__main__":  # pragma: no cover
    sys.exit(main())
