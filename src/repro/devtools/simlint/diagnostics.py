"""Diagnostic records and severity policy.

A diagnostic is one ``file:line:col CODE message`` finding. Rules yield
bare :class:`Finding` tuples (position + message); the engine stamps them
with the rule code, the display path, and a severity derived from where
the file lives: findings in ``src/`` are errors (they gate CI), findings
everywhere else are warnings (reported, but only fatal under
``--strict``).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict

#: Severity a finding gets by path category. Simulation code must be
#: clean; tests/benchmarks/tools are surfaced but advisory by default.
SEVERITY_BY_CATEGORY = {
    "src": "error",
    "tests": "warning",
    "benchmarks": "warning",
    "tools": "warning",
    "other": "warning",
}


@dataclass(frozen=True)
class Finding:
    """A rule's raw output: where, and what is wrong."""

    line: int
    col: int
    message: str


@dataclass(frozen=True, order=True)
class Diagnostic:
    """One fully-attributed lint finding."""

    path: str
    line: int
    col: int
    code: str
    message: str
    severity: str = "error"

    def render(self) -> str:
        """The canonical ``file:line:col CODE message`` line."""
        return f"{self.path}:{self.line}:{self.col} {self.code} {self.message}"

    def as_json(self) -> Dict[str, object]:
        """Stable JSON-ready view (keys sorted by the serializer)."""
        return {
            "path": self.path,
            "line": self.line,
            "col": self.col,
            "code": self.code,
            "message": self.message,
            "severity": self.severity,
        }


__all__ = ["Diagnostic", "Finding", "SEVERITY_BY_CATEGORY"]
