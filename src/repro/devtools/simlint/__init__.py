"""simlint: static determinism & event-bus contract linter.

Run it as ``python -m repro.devtools.simlint src tests`` or via the
``repro lint`` subcommand. See DESIGN.md, "Static analysis: simlint" for
the rule table and the relationship to the runtime invariant auditor.

Public API:

* :func:`~repro.devtools.simlint.engine.lint_paths` — lint files/dirs,
  returning a :class:`~repro.devtools.simlint.engine.LintResult`.
* :func:`~repro.devtools.simlint.busgraph.extract_graph` — statically
  extract the event-bus publisher/subscriber graph.
* :func:`~repro.devtools.simlint.registry.all_rules` — the rule registry.
"""

from repro.devtools.simlint.busgraph import BusGraph, extract_graph, to_dot, to_json
from repro.devtools.simlint.diagnostics import Diagnostic, Finding
from repro.devtools.simlint.engine import LintResult, lint_paths
from repro.devtools.simlint.registry import all_rules

__all__ = [
    "BusGraph",
    "Diagnostic",
    "Finding",
    "LintResult",
    "all_rules",
    "extract_graph",
    "lint_paths",
    "to_dot",
    "to_json",
]
