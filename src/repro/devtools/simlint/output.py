"""Shared diagnostic output: SARIF rendering and finding baselines.

Both CLIs (``repro lint`` / ``python -m repro.devtools.simflow``) render
through this module so the formats stay byte-compatible:

* :func:`to_sarif` emits a minimal SARIF 2.1.0 document — the subset
  GitHub code scanning ingests — with one ``result`` per diagnostic and
  the tool's rule table in the driver metadata.
* A **baseline** is a JSON snapshot of current findings. Re-running with
  ``--baseline FILE`` subtracts the snapshot (per ``(path, code,
  message)``, with multiplicity) so only *new* findings remain — the
  mechanism that lets a new rule land before the cleanup sweep finishes.
  Baseline entries deliberately exclude line numbers: unrelated edits
  shift lines constantly, and a baseline that rots on every edit would
  get deleted, not maintained.
"""

from __future__ import annotations

import json
from collections import Counter
from pathlib import Path
from typing import Dict, List, Tuple, Type

from repro.devtools.simlint.diagnostics import Diagnostic
from repro.devtools.simlint.registry import Rule

#: SARIF schema pin (the version GitHub code scanning accepts).
SARIF_SCHEMA = "https://json.schemastore.org/sarif-2.1.0.json"
SARIF_VERSION = "2.1.0"

#: Baseline file format version.
BASELINE_VERSION = 1

_SARIF_LEVELS = {"error": "error", "warning": "warning"}


def to_sarif(
    diagnostics: List[Diagnostic],
    tool: str,
    rules: Dict[str, Type[Rule]],
) -> Dict[str, object]:
    """SARIF 2.1.0 document for one run (stable ordering throughout)."""
    emitted_codes = sorted({d.code for d in diagnostics} | set(rules))
    rule_entries = []
    for code in emitted_codes:
        summary = rules[code].summary if code in rules else code
        rule_entries.append(
            {
                "id": code,
                "shortDescription": {"text": summary or code},
            }
        )
    results = [
        {
            "ruleId": diagnostic.code,
            "level": _SARIF_LEVELS.get(diagnostic.severity, "warning"),
            "message": {"text": diagnostic.message},
            "locations": [
                {
                    "physicalLocation": {
                        "artifactLocation": {"uri": diagnostic.path},
                        "region": {
                            "startLine": diagnostic.line,
                            # SARIF columns are 1-based; diagnostics use
                            # 0-based AST offsets.
                            "startColumn": diagnostic.col + 1,
                        },
                    }
                }
            ],
        }
        for diagnostic in sorted(diagnostics)
    ]
    return {
        "$schema": SARIF_SCHEMA,
        "version": SARIF_VERSION,
        "runs": [
            {
                "tool": {
                    "driver": {
                        "name": tool,
                        "informationUri": "https://example.invalid/repro-devtools",
                        "rules": rule_entries,
                    }
                },
                "results": results,
            }
        ],
    }


def _baseline_key(diagnostic: Diagnostic) -> Tuple[str, str, str]:
    return (diagnostic.path, diagnostic.code, diagnostic.message)


def write_baseline(path: Path, diagnostics: List[Diagnostic], tool: str) -> None:
    """Snapshot current findings to ``path`` (sorted, line-free)."""
    counts = Counter(_baseline_key(d) for d in diagnostics)
    document = {
        "version": BASELINE_VERSION,
        "tool": tool,
        "entries": [
            {"path": key[0], "code": key[1], "message": key[2], "count": count}
            for key, count in sorted(counts.items())
        ],
    }
    path.write_text(json.dumps(document, indent=2, sort_keys=True) + "\n", encoding="utf-8")


def load_baseline(path: Path) -> Counter:
    """Baseline entry multiset from ``path``; raises on unknown versions."""
    document = json.loads(path.read_text(encoding="utf-8"))
    version = document.get("version")
    if version != BASELINE_VERSION:
        raise ValueError(f"unsupported baseline version {version!r} in {path}")
    counts: Counter = Counter()
    for entry in document.get("entries", []):
        key = (str(entry["path"]), str(entry["code"]), str(entry["message"]))
        counts[key] += int(entry.get("count", 1))
    return counts


def apply_baseline(
    diagnostics: List[Diagnostic], baseline: Counter
) -> Tuple[List[Diagnostic], int]:
    """Drop baselined findings; returns (new findings, matched count).

    Multiplicity-aware: a baseline entry with ``count: 2`` absorbs the
    first two identical findings and lets a third through.
    """
    budget = Counter(baseline)
    kept: List[Diagnostic] = []
    matched = 0
    for diagnostic in sorted(diagnostics):
        key = _baseline_key(diagnostic)
        if budget[key] > 0:
            budget[key] -= 1
            matched += 1
        else:
            kept.append(diagnostic)
    return kept, matched


__all__ = [
    "BASELINE_VERSION",
    "SARIF_SCHEMA",
    "SARIF_VERSION",
    "apply_baseline",
    "load_baseline",
    "to_sarif",
    "write_baseline",
]
