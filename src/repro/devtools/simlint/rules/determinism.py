"""Determinism rules (D-family).

Everything the evaluation rests on — golden-seed pins, the parallel
sweep's run cache, the invariant auditor's byte-identical trajectories —
assumes a run is a pure function of its config and seed. These rules
reject the ways that assumption silently breaks: ambient randomness,
wall-clock reads, unordered-set iteration, float equality on simulated
times, and mutable defaults shared across calls.
"""

from __future__ import annotations

import ast
from typing import Dict, Iterator, List, Optional, Set, Tuple

from repro.devtools.simlint.diagnostics import Finding
from repro.devtools.simlint.registry import ModuleContext, ModuleRule, register


def _dotted(node: ast.AST) -> Optional[str]:
    parts: List[str] = []
    while isinstance(node, ast.Attribute):
        parts.append(node.attr)
        node = node.value
    if isinstance(node, ast.Name):
        parts.append(node.id)
        return ".".join(reversed(parts))
    return None


def _import_aliases(tree: ast.Module) -> Tuple[Dict[str, str], Dict[str, str]]:
    """(module aliases, from-imported names) -> canonical dotted names."""
    modules: Dict[str, str] = {}
    names: Dict[str, str] = {}
    for node in ast.walk(tree):
        if isinstance(node, ast.Import):
            for alias in node.names:
                modules[alias.asname or alias.name.split(".")[0]] = (
                    alias.name if alias.asname else alias.name.split(".")[0]
                )
                if alias.asname:
                    modules[alias.asname] = alias.name
        elif isinstance(node, ast.ImportFrom) and node.module and node.level == 0:
            for alias in node.names:
                names[alias.asname or alias.name] = f"{node.module}.{alias.name}"
    return modules, names


def _canonical_call_name(
    node: ast.Call, modules: Dict[str, str], names: Dict[str, str]
) -> Optional[str]:
    """Resolve a call's function to a canonical dotted name, if static."""
    dotted = _dotted(node.func)
    if dotted is None:
        return None
    head, _, rest = dotted.partition(".")
    if head in names:
        resolved = names[head]
        return f"{resolved}.{rest}" if rest else resolved
    if head in modules:
        resolved = modules[head]
        return f"{resolved}.{rest}" if rest else resolved
    return dotted


#: random-module functions that mutate/read the hidden global generator.
_GLOBAL_RANDOM_FNS = {
    "random", "uniform", "randint", "randrange", "choice", "choices",
    "sample", "shuffle", "seed", "getrandbits", "betavariate",
    "expovariate", "gammavariate", "gauss", "lognormvariate",
    "normalvariate", "paretovariate", "triangular", "vonmisesvariate",
    "weibullvariate", "random_bytes", "binomialvariate",
}


@register
class UnseededRandom(ModuleRule):
    """D001: ambient RNG instead of a seeded ``util.rng`` stream."""

    code = "D001"
    summary = "unseeded RNG (random.* / numpy.random global state)"

    def check(self, module: ModuleContext) -> Iterator[Finding]:
        modules, names = _import_aliases(module.tree)
        for node in ast.walk(module.tree):
            if not isinstance(node, ast.Call):
                continue
            name = _canonical_call_name(node, modules, names)
            if name is None:
                continue
            message: Optional[str] = None
            if name.startswith("random."):
                attr = name.split(".", 1)[1]
                if attr in _GLOBAL_RANDOM_FNS:
                    message = (
                        f"call to global-state random.{attr}; "
                        "derive a repro.util.rng RandomSource stream instead"
                    )
                elif attr in {"Random", "SystemRandom"} and not node.args:
                    message = (
                        f"random.{attr}() without an explicit seed; "
                        "seed it from a RandomSource-derived value"
                    )
            elif name.startswith(("numpy.random.", "np.random.")):
                attr = name.rsplit(".", 1)[1]
                if attr in {"default_rng", "Generator", "SeedSequence", "RandomState"}:
                    if not node.args and not node.keywords:
                        message = (
                            f"numpy.random.{attr}() without an explicit seed; "
                            "seed it from a RandomSource-derived value"
                        )
                else:
                    message = (
                        f"call to numpy.random.{attr} global state; "
                        "use a seeded numpy Generator or a RandomSource stream"
                    )
            if message is not None:
                yield Finding(node.lineno, node.col_offset, message)


#: Canonical dotted names that read the host's wall clock.
_WALL_CLOCK = {
    "time.time", "time.time_ns", "time.monotonic", "time.monotonic_ns",
    "time.perf_counter", "time.perf_counter_ns", "time.process_time",
    "time.process_time_ns", "datetime.datetime.now", "datetime.datetime.utcnow",
    "datetime.datetime.today", "datetime.date.today",
}
#: Suffixes matching `from datetime import datetime; datetime.now()`.
_WALL_CLOCK_SUFFIXES = ("datetime.now", "datetime.utcnow", "datetime.today", "date.today")


@register
class WallClock(ModuleRule):
    """D002: wall-clock reads outside benchmarks/ and tools/."""

    code = "D002"
    summary = "wall-clock call in simulation code (use Simulator.now)"

    def check(self, module: ModuleContext) -> Iterator[Finding]:
        if module.category in {"benchmarks", "tools"}:
            return  # timing harnesses measure real elapsed time by design
        modules, names = _import_aliases(module.tree)
        for node in ast.walk(module.tree):
            if not isinstance(node, ast.Call):
                continue
            name = _canonical_call_name(node, modules, names)
            if name is None:
                continue
            if name in _WALL_CLOCK or any(name.endswith(s) for s in _WALL_CLOCK_SUFFIXES):
                yield Finding(
                    node.lineno,
                    node.col_offset,
                    f"wall-clock call {name}; simulated time must come from "
                    "Simulator.now (benchmarks/ and tools/ are exempt)",
                )


_SET_METHODS = {"union", "intersection", "difference", "symmetric_difference"}
#: Calls whose result is order-insensitive, so consuming a set (directly
#: or through a generator expression) is fine.
_ORDER_SAFE_CALLS = {
    "sorted", "len", "sum", "min", "max", "any", "all", "set", "frozenset",
}
#: Calls that materialise iteration order from their first argument.
_ORDER_SENSITIVE_CALLS = {"list", "tuple", "iter", "enumerate", "reversed"}


def _is_set_expr(node: ast.AST, set_vars: Set[str]) -> bool:
    if isinstance(node, (ast.Set, ast.SetComp)):
        return True
    if isinstance(node, ast.Name):
        return node.id in set_vars
    if isinstance(node, ast.Call):
        func = node.func
        if isinstance(func, ast.Name) and func.id in {"set", "frozenset"}:
            return True
        if isinstance(func, ast.Attribute) and func.attr in _SET_METHODS:
            return _is_set_expr(func.value, set_vars)
        return False
    if isinstance(node, ast.BinOp) and isinstance(
        node.op, (ast.BitOr, ast.BitAnd, ast.BitXor, ast.Sub)
    ):
        return _is_set_expr(node.left, set_vars) or _is_set_expr(node.right, set_vars)
    return False


@register
class SetIteration(ModuleRule):
    """D003: iterating an unordered set where order can leak into state."""

    code = "D003"
    summary = "iteration over set/frozenset values (wrap in sorted(...))"

    def check(self, module: ModuleContext) -> Iterator[Finding]:
        # One pass to find locals that are definitely set-typed (assigned a
        # set expression and never reassigned otherwise), one to flag.
        set_vars: Set[str] = set()
        non_set_vars: Set[str] = set()
        for node in ast.walk(module.tree):
            if isinstance(node, ast.Assign) and len(node.targets) == 1:
                target = node.targets[0]
                if isinstance(target, ast.Name):
                    if _is_set_expr(node.value, set()):
                        set_vars.add(target.id)
                    else:
                        non_set_vars.add(target.id)
        set_vars -= non_set_vars

        def flag(iter_node: ast.AST) -> Iterator[Finding]:
            if _is_set_expr(iter_node, set_vars):
                yield Finding(
                    iter_node.lineno,
                    iter_node.col_offset,
                    "iteration over an unordered set; wrap in sorted(...) so "
                    "order cannot depend on hashing",
                )

        # A generator expression fed straight into an order-insensitive
        # call (any/sum/min/sorted/…) cannot leak iteration order.
        safe_comprehensions: Set[int] = set()
        for node in ast.walk(module.tree):
            if (
                isinstance(node, ast.Call)
                and isinstance(node.func, ast.Name)
                and node.func.id in _ORDER_SAFE_CALLS
                and node.args
                and isinstance(node.args[0], (ast.GeneratorExp, ast.SetComp))
            ):
                safe_comprehensions.add(id(node.args[0]))

        for node in ast.walk(module.tree):
            if isinstance(node, (ast.For, ast.AsyncFor)):
                yield from flag(node.iter)
            elif isinstance(node, (ast.ListComp, ast.SetComp, ast.DictComp, ast.GeneratorExp)):
                if id(node) in safe_comprehensions or isinstance(node, ast.SetComp):
                    continue
                for generator in node.generators:
                    yield from flag(generator.iter)
            elif isinstance(node, ast.Call):
                func = node.func
                if (
                    isinstance(func, ast.Name)
                    and func.id in _ORDER_SENSITIVE_CALLS
                    and node.args
                ):
                    yield from flag(node.args[0])
            elif isinstance(node, ast.Starred):
                yield from flag(node.value)


#: Identifier terminals treated as simulated-time values.
_TIME_NAMES = {"time", "now", "deadline", "timestamp", "at_time", "next_time"}
_TIME_SUFFIXES = ("_time", "_deadline", "_at")


def _is_time_name(node: ast.AST) -> bool:
    if isinstance(node, ast.Attribute):
        terminal: Optional[str] = node.attr
    elif isinstance(node, ast.Name):
        terminal = node.id
    else:
        return False
    if terminal in _TIME_NAMES:
        return True
    return terminal.endswith(_TIME_SUFFIXES)


@register
class FloatTimeEquality(ModuleRule):
    """D004: ``==`` / ``!=`` between simulated times."""

    code = "D004"
    summary = "float equality on simulated times (compare with a tolerance)"

    def check(self, module: ModuleContext) -> Iterator[Finding]:
        if module.category == "tests":
            # Exact-equality asserts on times ARE the determinism oracle in
            # tests (golden pins); the hazard is production logic branching
            # on float identity.
            return
        for node in ast.walk(module.tree):
            if not isinstance(node, ast.Compare):
                continue
            operands = [node.left, *node.comparators]
            for op, left, right in zip(node.ops, operands, operands[1:], strict=False):
                if not isinstance(op, (ast.Eq, ast.NotEq)):
                    continue
                if any(
                    isinstance(side, ast.Constant)
                    and isinstance(side.value, (str, bool, type(None)))
                    for side in (left, right)
                ):
                    continue
                if _is_time_name(left) or _is_time_name(right):
                    yield Finding(
                        node.lineno,
                        node.col_offset,
                        "float equality on a simulated time; use an explicit "
                        "tolerance (or integer event sequence numbers)",
                    )
                    break


_MUTABLE_CALLS = {
    "list", "dict", "set", "bytearray", "defaultdict", "deque", "Counter", "OrderedDict",
}


def _is_mutable_default(node: ast.AST) -> bool:
    if isinstance(node, (ast.List, ast.Dict, ast.Set, ast.ListComp, ast.DictComp, ast.SetComp)):
        return True
    if isinstance(node, ast.Call):
        name = _dotted(node.func)
        return name is not None and name.rsplit(".", 1)[-1] in _MUTABLE_CALLS
    return False


@register
class MutableDefault(ModuleRule):
    """D005: mutable default argument (state shared across calls)."""

    code = "D005"
    summary = "mutable default argument in a function/handler signature"

    def check(self, module: ModuleContext) -> Iterator[Finding]:
        for node in ast.walk(module.tree):
            if not isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef, ast.Lambda)):
                continue
            args = node.args
            for default in list(args.defaults) + [d for d in args.kw_defaults if d]:
                if _is_mutable_default(default):
                    yield Finding(
                        default.lineno,
                        default.col_offset,
                        "mutable default argument; one instance is shared "
                        "across every call — default to None and allocate "
                        "inside the body",
                    )
