"""Rule modules; importing this package populates the registry."""

from repro.devtools.simlint.rules import contracts, determinism  # noqa: F401
