"""Event-bus contract rules (C-family).

These rules consume the statically-extracted publisher/subscriber graph
(:mod:`repro.devtools.simlint.busgraph`) and reject drift between the
three places the bus contract lives: the event dataclasses, the wiring in
``build_cluster``, and the handler implementations. The same graph is
cross-checked against the *runtime* ``build_cluster()`` registry in
``tests/devtools/test_busgraph_crosscheck.py``, so the static picture can
never silently diverge from what actually executes.
"""

from __future__ import annotations

import ast
from typing import Dict, Iterator, List, Optional, Set, Tuple

from repro.devtools.simlint.busgraph import BusGraph, ClassInfo, _dotted
from repro.devtools.simlint.diagnostics import Finding
from repro.devtools.simlint.registry import ModuleContext, ProjectRule, register


def _module_by_path(modules: List[ModuleContext], path: str) -> Optional[ModuleContext]:
    for module in modules:
        if module.path == path:
            return module
    return None


def _event_roots(graph: BusGraph) -> Set[str]:
    """Abstract event bases (classes some other event inherits from)."""
    roots: Set[str] = set()
    for event in graph.events.values():
        for base in event.bases:
            roots.add(base.rsplit(".", 1)[-1])
    return roots


@register
class OrphanEvent(ProjectRule):
    """C001: an event type with no subscriber, or no publisher."""

    code = "C001"
    summary = "event type published but never subscribed (or vice versa)"

    def check_project(
        self, modules: List[ModuleContext], graph: BusGraph
    ) -> Iterator[Tuple[ModuleContext, Finding]]:
        roots = _event_roots(graph)
        subscribed = graph.subscribed_events()
        published = graph.published_events()
        for name in sorted(graph.events):
            event = graph.events[name]
            if name in roots:
                continue  # abstract bases are never carried directly
            module = _module_by_path(modules, event.module)
            if module is None:
                continue
            if name not in subscribed and not event.observability_only:
                yield (
                    module,
                    Finding(
                        event.line,
                        0,
                        f"event {name} is never subscribed anywhere in the "
                        "corpus; mark it observability-only in its docstring "
                        "or wire a handler",
                    ),
                )
            if name not in published:
                yield (
                    module,
                    Finding(
                        event.line,
                        0,
                        f"event {name} is never published anywhere in the "
                        "corpus; dead event types hide wiring regressions",
                    ),
                )


@register
class UnregisteredSubscriber(ProjectRule):
    """C002: a subscribe() handler owned by a class never registered as a Service."""

    code = "C002"
    summary = "subscribe() from a class not registered as a Service"

    def check_project(
        self, modules: List[ModuleContext], graph: BusGraph
    ) -> Iterator[Tuple[ModuleContext, Finding]]:
        if not graph.registrations:
            return  # corpus has no registry wiring to check against
        registered = graph.registered_classes
        seen: Set[Tuple[str, int, str]] = set()
        for site in graph.subscribers:
            if site.owner_class is None or site.event is None:
                continue
            if site.owner_class in registered:
                continue
            key = (site.module, site.line, site.owner_class)
            if key in seen:
                continue
            seen.add(key)
            module = _module_by_path(modules, site.module)
            if module is None:
                continue
            yield (
                module,
                Finding(
                    site.line,
                    site.col,
                    f"handler {site.owner_class}.{site.handler} subscribes to "
                    f"{site.event} but {site.owner_class} is never registered "
                    "as a Service — its lifecycle (start/stop) is unmanaged",
                ),
            )


@register
class HalfLifecycle(ProjectRule):
    """C003: a class defining start without stop (or stop without start)."""

    code = "C003"
    summary = "Service defines start without stop (or stop without start)"

    def check_project(
        self, modules: List[ModuleContext], graph: BusGraph
    ) -> Iterator[Tuple[ModuleContext, Finding]]:
        for name in sorted(graph.classes):
            info = graph.classes[name]
            has_start = "start" in info.methods
            has_stop = "stop" in info.methods
            if has_start == has_stop:
                continue
            # Only plain lifecycle methods count: start(self)/stop(self).
            method = info.methods["start" if has_start else "stop"]
            if len(method.args.args) != 1 or method.args.vararg or method.args.kwonlyargs:
                continue
            module = _module_by_path(modules, info.module)
            if module is None:
                continue
            present, missing = ("start", "stop") if has_start else ("stop", "start")
            yield (
                module,
                Finding(
                    info.line,
                    0,
                    f"class {name} defines {present}() but not {missing}(); "
                    "a half-implemented lifecycle leaks scheduled events at "
                    "teardown (see runtime/services.py)",
                ),
            )


@register
class HandlerSignatureMismatch(ProjectRule):
    """C004: handler signature incompatible with the subscribed event."""

    code = "C004"
    summary = "handler signature mismatch vs the event dataclass"

    def check_project(
        self, modules: List[ModuleContext], graph: BusGraph
    ) -> Iterator[Tuple[ModuleContext, Finding]]:
        functions = _module_functions(modules)
        for site in graph.subscribers:
            if site.event is None or not site.handler:
                continue
            handler = self._resolve_handler(site, graph, functions)
            if handler is None:
                continue
            func, is_method = handler
            module = _module_by_path(modules, site.module)
            if module is None:
                continue
            problem = _signature_problem(func, is_method, site.event, graph)
            if problem is not None:
                owner = f"{site.owner_class}." if site.owner_class else ""
                yield (
                    module,
                    Finding(
                        site.line,
                        site.col,
                        f"handler {owner}{site.handler} subscribed for "
                        f"{site.event} {problem}",
                    ),
                )

    @staticmethod
    def _resolve_handler(
        site: "object",
        graph: BusGraph,
        functions: Dict[Tuple[str, str], ast.FunctionDef],
    ) -> Optional[Tuple[ast.FunctionDef, bool]]:
        owner_class = getattr(site, "owner_class", None)
        handler_name = getattr(site, "handler", "")
        if owner_class is not None:
            info: Optional[ClassInfo] = graph.classes.get(owner_class)
            if info is None:
                return None
            method = _find_method(info, graph)
            func = method.get(handler_name)
            return (func, True) if func is not None else None
        func = functions.get((getattr(site, "module", ""), handler_name))
        return (func, False) if func is not None else None


@register
class UnslottedEvent(ProjectRule):
    """C005: an Event-derived dataclass without ``slots``.

    Events are the highest-volume allocations in a run (one per bus
    dispatch, hundreds of thousands at the 226k-node scale); an event
    carrying a ``__dict__`` roughly doubles its footprint and slows every
    field read. Dataclass events must therefore opt into slots — either
    ``@dataclass(slots=True)`` (3.10+) or an explicit ``__slots__``
    assignment in the class body.
    """

    code = "C005"
    summary = "Event dataclass without slots=True or __slots__"

    def check_project(
        self, modules: List[ModuleContext], graph: BusGraph
    ) -> Iterator[Tuple[ModuleContext, Finding]]:
        for name in sorted(graph.events):
            info = graph.classes.get(name)
            if info is None:
                continue
            if not self._is_dataclass(info.node):
                continue  # hand-rolled classes manage their own layout
            if self._has_slots(info.node):
                continue
            module = _module_by_path(modules, info.module)
            if module is None:
                continue
            yield (
                module,
                Finding(
                    info.line,
                    0,
                    f"event dataclass {name} has no slots: add slots=True to "
                    "@dataclass (or define __slots__) — per-event __dict__ "
                    "allocations dominate dispatch at scale",
                ),
            )

    @staticmethod
    def _is_dataclass(node: ast.ClassDef) -> bool:
        for decorator in node.decorator_list:
            target = decorator.func if isinstance(decorator, ast.Call) else decorator
            if _dotted(target) in ("dataclass", "dataclasses.dataclass"):
                return True
        return False

    @staticmethod
    def _has_slots(node: ast.ClassDef) -> bool:
        for decorator in node.decorator_list:
            if not isinstance(decorator, ast.Call):
                continue
            if _dotted(decorator.func) not in ("dataclass", "dataclasses.dataclass"):
                continue
            for keyword in decorator.keywords:
                if (
                    keyword.arg == "slots"
                    and isinstance(keyword.value, ast.Constant)
                    and keyword.value.value is True
                ):
                    return True
        for item in node.body:
            targets = []
            if isinstance(item, ast.Assign):
                targets = item.targets
            elif isinstance(item, ast.AnnAssign):
                targets = [item.target]
            for target in targets:
                if isinstance(target, ast.Name) and target.id == "__slots__":
                    return True
        return False


def _find_method(info: ClassInfo, graph: BusGraph) -> Dict[str, ast.FunctionDef]:
    """The class's methods, including ones inherited within the corpus."""
    merged: Dict[str, ast.FunctionDef] = {}
    stack = [info]
    seen: Set[str] = set()
    while stack:
        current = stack.pop()
        if current.name in seen:
            continue
        seen.add(current.name)
        for name, func in current.methods.items():
            merged.setdefault(name, func)
        for base in current.bases:
            base_info = graph.classes.get(base.rsplit(".", 1)[-1])
            if base_info is not None:
                stack.append(base_info)
    return merged


def _module_functions(
    modules: List[ModuleContext],
) -> Dict[Tuple[str, str], ast.FunctionDef]:
    functions: Dict[Tuple[str, str], ast.FunctionDef] = {}
    for module in modules:
        for node in module.tree.body:
            if isinstance(node, ast.FunctionDef):
                functions[(module.path, node.name)] = node
    return functions


def _signature_problem(
    func: ast.FunctionDef, is_method: bool, event: str, graph: BusGraph
) -> Optional[str]:
    args = list(func.args.args)
    if is_method:
        args = args[1:]  # drop self
    required = [a for a in args[: len(args) - len(func.args.defaults)]]
    if len(required) > 1:
        extras = ", ".join(a.arg for a in required[1:])
        return (
            f"takes extra required parameter(s) {extras}; bus handlers "
            "receive exactly one event argument"
        )
    if not args and not func.args.vararg:
        return "takes no event parameter; bus handlers receive the event"
    if args:
        annotation = args[0].annotation
        if annotation is not None:
            declared = _annotation_name(annotation)
            if declared is not None and declared != event:
                compatible = declared in graph.event_bases(event) or declared == "Event"
                if not compatible:
                    return (
                        f"annotates its event parameter as {declared}, which "
                        f"is not {event} or one of its bases"
                    )
    return None


def _annotation_name(annotation: ast.AST) -> Optional[str]:
    if isinstance(annotation, ast.Constant) and isinstance(annotation.value, str):
        return annotation.value.rsplit(".", 1)[-1].strip()
    if isinstance(annotation, (ast.Name, ast.Attribute)):
        parts: List[str] = []
        node: ast.AST = annotation
        while isinstance(node, ast.Attribute):
            parts.append(node.attr)
            node = node.value
        if isinstance(node, ast.Name):
            parts.append(node.id)
            return parts[0]
    return None
