"""Lint engine: file discovery, suppression, severity, orchestration.

The engine parses every ``.py`` file under the given paths into
:class:`~repro.devtools.simlint.registry.ModuleContext` objects, runs the
per-module rules, extracts the event-bus graph once, runs the project
rules over it, then applies per-line suppressions and severity policy.

Suppression syntax (per line, the comment prefix is the tool name)::

    hazard()          # simlint: ignore[D001]
    hazard(); other() # simlint: ignore[D001, D002]
    anything()        # simlint: ignore
    handler_wiring()  # simflow: ignore[F001]

A bare ``ignore`` suppresses every code on the line. Each suppressed code
must actually fire: a listed code with no matching diagnostic on that
line is itself reported as ``U001 unused suppression``, so stale
suppressions cannot accumulate. Usage accounting is *select-aware*: under
``--select``, a listed code whose rule did not run this invocation is
neither honoured nor reported unused (a partial run cannot know whether
the suppression is stale), and bare ``ignore`` unused-ness is only judged
on full runs. A code that matches no registered rule of the running tool
is reported as ``U001`` with an "unknown code" message on full runs.

Each tool only sees its own prefix: ``# simflow: …`` comments are inert
under ``repro lint`` and vice versa, so one line can carry both.

Directories named ``fixtures`` are skipped during discovery (the test
corpus under ``tests/devtools/fixtures/`` is intentionally violating) but
can still be linted by passing a file inside them explicitly.
"""

from __future__ import annotations

import ast
import io
import re
import tokenize
from dataclasses import dataclass, field
from pathlib import Path
from typing import Dict, Iterable, List, Optional, Set, Tuple

from repro.devtools.simlint.busgraph import BusGraph, extract_graph
from repro.devtools.simlint.diagnostics import SEVERITY_BY_CATEGORY, Diagnostic, Finding
from repro.devtools.simlint.registry import (
    ModuleContext,
    family_codes,
    iter_module_rules,
    iter_project_rules,
)

#: Code for a parse failure; always an error.
PARSE_ERROR = "P001"
#: Code for an unused suppression.
UNUSED_SUPPRESSION = "U001"

_SKIP_DIRS = {"__pycache__", "fixtures"}

#: Per-tool suppression comment patterns, compiled lazily. The prefix is
#: the tool name, so each tool only honours its own comments.
_SUPPRESS_RES: Dict[str, "re.Pattern[str]"] = {}


def _suppress_re(tool: str) -> "re.Pattern[str]":
    pattern = _SUPPRESS_RES.get(tool)
    if pattern is None:
        pattern = re.compile(rf"#\s*{re.escape(tool)}:\s*ignore(?:\[([A-Za-z0-9_,\s]*)\])?")
        _SUPPRESS_RES[tool] = pattern
    return pattern


@dataclass
class LintResult:
    """Everything one lint run produced."""

    diagnostics: List[Diagnostic] = field(default_factory=list)
    modules: List[ModuleContext] = field(default_factory=list)
    graph: Optional[BusGraph] = None

    @property
    def errors(self) -> List[Diagnostic]:
        return [d for d in self.diagnostics if d.severity == "error"]

    @property
    def warnings(self) -> List[Diagnostic]:
        return [d for d in self.diagnostics if d.severity == "warning"]

    def exit_code(self, strict: bool = False) -> int:
        if self.errors:
            return 1
        if strict and self.warnings:
            return 1
        return 0


def categorize(path: Path, root: Path) -> str:
    """Path category (controls severity and per-rule exemptions)."""
    try:
        parts = path.resolve().relative_to(root.resolve()).parts
    except ValueError:
        parts = path.parts
    for part in parts:
        if part in ("tests", "benchmarks", "tools"):
            return part
        if part == "src":
            return "src"
    return "other"


def discover_files(paths: Iterable[Path]) -> List[Path]:
    """All ``.py`` files under ``paths``, sorted, fixture dirs pruned."""
    found: Set[Path] = set()
    for path in paths:
        if path.is_file():
            if path.suffix == ".py":
                found.add(path)
            continue
        if not path.is_dir():
            raise FileNotFoundError(f"no such file or directory: {path}")
        for candidate in sorted(path.rglob("*.py")):
            if any(part in _SKIP_DIRS or part.startswith(".") for part in candidate.parts):
                continue
            found.add(candidate)
    return sorted(found)


def load_module(path: Path, root: Path) -> Tuple[Optional[ModuleContext], Optional[Diagnostic]]:
    """Parse one file; returns (context, parse-error diagnostic)."""
    display = _display_path(path, root)
    source = path.read_text(encoding="utf-8")
    try:
        tree = ast.parse(source, filename=str(path))
    except SyntaxError as exc:
        return None, Diagnostic(
            path=display,
            line=exc.lineno or 1,
            col=(exc.offset or 1) - 1,
            code=PARSE_ERROR,
            message=f"cannot parse: {exc.msg}",
            severity="error",
        )
    context = ModuleContext(
        path=display,
        category=categorize(path, root),
        tree=tree,
        lines=source.splitlines(),
    )
    return context, None


def _display_path(path: Path, root: Path) -> str:
    try:
        return path.resolve().relative_to(root.resolve()).as_posix()
    except ValueError:
        return path.as_posix()


@dataclass
class _Suppression:
    line: int
    codes: Optional[Tuple[str, ...]]  # None = bare ignore (all codes)
    used: Set[str] = field(default_factory=set)
    bare_used: bool = False


def _scan_suppressions(module: ModuleContext, tool: str = "simlint") -> Dict[int, _Suppression]:
    """Suppressions from actual COMMENT tokens (not string literals).

    Tokenising instead of regex-scanning raw lines means a docstring that
    *describes* the suppression syntax never suppresses anything. Only
    comments carrying this ``tool``'s prefix are suppressions for this
    run; the other tool's comments pass through untouched.
    """
    suppress_re = _suppress_re(tool)
    suppressions: Dict[int, _Suppression] = {}
    source = "\n".join(module.lines) + "\n"
    try:
        tokens = tokenize.generate_tokens(io.StringIO(source).readline)
        comments = [t for t in tokens if t.type == tokenize.COMMENT]
    except tokenize.TokenError:  # pragma: no cover - ast.parse succeeded already
        comments = []
    for token in comments:
        match = suppress_re.search(token.string)
        if match is None:
            continue
        raw = match.group(1)
        codes: Optional[Tuple[str, ...]]
        if raw is None:
            codes = None
        else:
            codes = tuple(
                sorted({code.strip().upper() for code in raw.split(",") if code.strip()})
            )
        lineno = token.start[0]
        suppressions[lineno] = _Suppression(line=lineno, codes=codes)
    return suppressions


def lint_paths(
    paths: Iterable[Path],
    root: Optional[Path] = None,
    select: Optional[Set[str]] = None,
    tool: str = "simlint",
) -> LintResult:
    """Lint every file under ``paths``; the core API behind the CLI.

    ``select`` restricts reporting to the given rule codes (suppression
    and parse diagnostics are always active). ``root`` anchors display
    paths and path categories; defaults to the current directory.
    ``tool`` picks the rule family and the suppression-comment prefix:
    ``"simlint"`` (D/C rules) or ``"simflow"`` (F rules).
    """
    paths = [Path(p) for p in paths]
    root = Path(root) if root is not None else Path.cwd()
    result = LintResult()
    raw: Dict[str, List[Diagnostic]] = {}

    for path in discover_files(paths):
        module, parse_error = load_module(path, root)
        if parse_error is not None:
            result.diagnostics.append(parse_error)
            continue
        assert module is not None
        result.modules.append(module)
        raw[module.path] = []

    module_by_path = {module.path: module for module in result.modules}

    for rule in iter_module_rules(tool):
        if select is not None and rule.code not in select:
            continue
        for module in result.modules:
            for finding in rule.check(module):
                raw[module.path].append(_stamp(module, rule.code, finding))

    result.graph = extract_graph(result.modules)
    for project_rule in iter_project_rules(tool):
        if select is not None and project_rule.code not in select:
            continue
        for module, finding in project_rule.check_project(result.modules, result.graph):
            raw[module.path].append(_stamp(module, project_rule.code, finding))

    # The codes whose rules actually ran this invocation: U001 accounting
    # must never judge a suppression for a rule that was deselected.
    known = family_codes(tool) | {PARSE_ERROR, UNUSED_SUPPRESSION}
    active = known if select is None else (known & select) | {PARSE_ERROR, UNUSED_SUPPRESSION}

    for path_str, diagnostics in raw.items():
        module = module_by_path[path_str]
        result.diagnostics.extend(
            _apply_suppressions(
                module,
                diagnostics,
                tool=tool,
                known=known,
                active=active,
                full_run=select is None,
            )
        )

    result.diagnostics.sort()
    return result


def _stamp(module: ModuleContext, code: str, finding: Finding) -> Diagnostic:
    return Diagnostic(
        path=module.path,
        line=finding.line,
        col=finding.col,
        code=code,
        message=finding.message,
        severity=SEVERITY_BY_CATEGORY.get(module.category, "warning"),
    )


def _apply_suppressions(
    module: ModuleContext,
    diagnostics: List[Diagnostic],
    tool: str = "simlint",
    known: Optional[Set[str]] = None,
    active: Optional[Set[str]] = None,
    full_run: bool = True,
) -> List[Diagnostic]:
    """Filter ``diagnostics`` through the module's suppression comments.

    ``known`` is every code the running tool could ever emit; ``active``
    is the subset whose rules ran this invocation. A listed code outside
    ``active`` is left alone entirely — it can neither suppress (its rule
    produced nothing) nor be judged unused (a ``--select`` run has no
    evidence the suppression is stale). Unknown codes and unused bare
    ignores are only reported on full runs, for the same reason.
    """
    if known is None:
        known = family_codes(tool) | {PARSE_ERROR, UNUSED_SUPPRESSION}
    if active is None:
        active = known
    suppressions = _scan_suppressions(module, tool)
    kept: List[Diagnostic] = []
    for diagnostic in diagnostics:
        suppression = suppressions.get(diagnostic.line)
        if suppression is None:
            kept.append(diagnostic)
            continue
        if suppression.codes is None:
            suppression.bare_used = True
        elif diagnostic.code in suppression.codes:
            suppression.used.add(diagnostic.code)
        else:
            kept.append(diagnostic)
    severity = SEVERITY_BY_CATEGORY.get(module.category, "warning")

    def unused(lineno: int, message: str) -> Diagnostic:
        return Diagnostic(
            path=module.path,
            line=lineno,
            col=0,
            code=UNUSED_SUPPRESSION,
            message=message,
            severity=severity,
        )

    for lineno in sorted(suppressions):
        suppression = suppressions[lineno]
        if suppression.codes is None:
            if full_run and not suppression.bare_used:
                kept.append(
                    unused(lineno, "unused suppression: no diagnostic fires on this line")
                )
            continue
        for code in suppression.codes:
            if code in suppression.used:
                continue
            if code not in known:
                if full_run:
                    kept.append(
                        unused(
                            lineno,
                            f"suppression for unknown code {code}: "
                            f"no registered {tool} rule emits it",
                        )
                    )
                continue
            if code not in active:
                continue  # rule deselected this run; no usage evidence
            kept.append(
                unused(
                    lineno,
                    f"unused suppression for {code}: "
                    "no such diagnostic fires on this line",
                )
            )
    return kept


__all__ = [
    "LintResult",
    "PARSE_ERROR",
    "UNUSED_SUPPRESSION",
    "categorize",
    "discover_files",
    "lint_paths",
    "load_module",
]
