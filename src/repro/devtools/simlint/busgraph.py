"""Static extraction of the event-bus publisher/subscriber graph.

The runtime contract lives in :mod:`repro.simulator.events` (the event
types) and ``build_cluster`` (the wiring); this module recovers the same
graph from the AST alone, so review-time tooling can cross-check it
against the live :class:`~repro.simulator.events.EventBus` registry and
reject drift (an event published but never consumed, a handler on an
unregistered class, a signature that no longer matches the dataclass).

Extraction is deliberately syntactic — no imports are executed:

* **Event types** are classes whose base chain reaches a class named
  ``Event`` anywhere in the corpus; dataclass fields (``AnnAssign``
  entries) are collected along the chain.
* **Publish sites** are ``<anything>.publish(EventType(...))`` calls;
  a publish whose argument is not a direct constructor call is recorded
  as *dynamic* (it contributes no graph edge but is counted).
* **Subscribe sites** are ``<anything>.subscribe(EventType, handler,
  phase…)`` calls. When the handler is ``var.method`` the owning class
  is resolved by lightweight local type inference (``var = Class(...)``
  assignments, ``var: Class`` / ``var: Dict[k, Class]`` annotations and
  subscripts of such dicts) inside the enclosing function.
* **Service registrations** are ``services.register(var)`` /
  ``registry.register(var)`` calls, resolved the same way.

The graph serialises to DOT (``to_dot``) and JSON (``to_json``) for the
CI artifact and for byte-stable snapshot tests.
"""

from __future__ import annotations

import ast
from dataclasses import dataclass, field
from typing import Dict, List, Optional, Set, Tuple

from repro.devtools.simlint.registry import ModuleContext

#: register() receivers treated as a ServiceRegistry.
_REGISTRY_NAMES = {"services", "registry"}


@dataclass
class EventDef:
    """One event dataclass, with its (inherited) field schema."""

    name: str
    module: str
    line: int
    bases: List[str]
    #: field name -> annotation source text, in definition order,
    #: including fields inherited from base events.
    fields: Dict[str, str]
    doc: str = ""

    @property
    def observability_only(self) -> bool:
        """Events documented as pure observability need no subscriber."""
        return "observability" in self.doc.lower()


@dataclass(frozen=True)
class PublishSite:
    event: Optional[str]  # None = dynamic publish (argument not a constructor)
    module: str
    line: int
    col: int
    owner: str  # "Class.method" / "function" / "<module>"


@dataclass(frozen=True)
class SubscribeSite:
    event: Optional[str]
    module: str
    line: int
    col: int
    #: Class owning the handler method, when resolvable.
    owner_class: Optional[str]
    #: Handler method/function name, or a source snippet when dynamic.
    handler: str
    phase: str
    keyed: bool


@dataclass(frozen=True)
class RegisterSite:
    class_name: str
    module: str
    line: int


@dataclass
class ClassInfo:
    name: str
    module: str
    line: int
    node: ast.ClassDef
    bases: List[str]
    methods: Dict[str, ast.FunctionDef] = field(default_factory=dict)


@dataclass
class BusGraph:
    """Everything the contract rules and the ``--graph`` export need."""

    events: Dict[str, EventDef] = field(default_factory=dict)
    publishers: List[PublishSite] = field(default_factory=list)
    subscribers: List[SubscribeSite] = field(default_factory=list)
    registrations: List[RegisterSite] = field(default_factory=list)
    classes: Dict[str, ClassInfo] = field(default_factory=dict)

    @property
    def registered_classes(self) -> Set[str]:
        return {site.class_name for site in self.registrations}

    def published_events(self) -> Set[str]:
        return {site.event for site in self.publishers if site.event is not None}

    def subscribed_events(self) -> Set[str]:
        return {site.event for site in self.subscribers if site.event is not None}

    def event_bases(self, name: str) -> Set[str]:
        """Transitive base-class names of an event (within the corpus)."""
        seen: Set[str] = set()
        stack = [name]
        while stack:
            current = stack.pop()
            event = self.events.get(current)
            info = self.classes.get(current)
            bases = event.bases if event is not None else (info.bases if info else [])
            for base in bases:
                terminal = base.rsplit(".", 1)[-1]
                if terminal not in seen:
                    seen.add(terminal)
                    stack.append(terminal)
        return seen


def _dotted(node: ast.AST) -> Optional[str]:
    """``a.b.c`` for Name/Attribute chains, else None."""
    parts: List[str] = []
    while isinstance(node, ast.Attribute):
        parts.append(node.attr)
        node = node.value
    if isinstance(node, ast.Name):
        parts.append(node.id)
        return ".".join(reversed(parts))
    return None


def _terminal(node: ast.AST) -> Optional[str]:
    dotted = _dotted(node)
    return dotted.rsplit(".", 1)[-1] if dotted else None


def _unwrap_optional(annotation: ast.AST) -> ast.AST:
    """Peel ``Optional[X]`` / ``X | None`` down to ``X``."""
    if isinstance(annotation, ast.Subscript) and _terminal(annotation.value) == "Optional":
        return annotation.slice
    if isinstance(annotation, ast.BinOp) and isinstance(annotation.op, ast.BitOr):
        left, right = annotation.left, annotation.right
        if isinstance(right, ast.Constant) and right.value is None:
            return left
        if isinstance(left, ast.Constant) and left.value is None:
            return right
    return annotation


def _collect_classes(modules: List[ModuleContext]) -> Dict[str, ClassInfo]:
    classes: Dict[str, ClassInfo] = {}
    for module in modules:
        for node in ast.walk(module.tree):
            if not isinstance(node, ast.ClassDef):
                continue
            bases = [b for b in (_dotted(base) for base in node.bases) if b is not None]
            info = ClassInfo(
                name=node.name, module=module.path, line=node.lineno, node=node, bases=bases
            )
            for item in node.body:
                if isinstance(item, (ast.FunctionDef, ast.AsyncFunctionDef)):
                    info.methods[item.name] = item  # type: ignore[assignment]
            # First definition wins; duplicate class names across the
            # corpus are rare and any choice is deterministic.
            classes.setdefault(node.name, info)
    return classes


def _collect_events(classes: Dict[str, ClassInfo]) -> Dict[str, EventDef]:
    """Classes whose base chain reaches a class named ``Event``."""

    def reaches_event(name: str, seen: Set[str]) -> bool:
        if name == "Event":
            return True
        info = classes.get(name)
        if info is None or name in seen:
            return False
        seen.add(name)
        return any(reaches_event(base.rsplit(".", 1)[-1], seen) for base in info.bases)

    events: Dict[str, EventDef] = {}
    for name, info in classes.items():
        if name != "Event" and not reaches_event(name, set()):
            continue
        events[name] = EventDef(
            name=name,
            module=info.module,
            line=info.line,
            bases=info.bases,
            fields={},
            doc=ast.get_docstring(info.node) or "",
        )
    # Resolve field schemas root-first so inherited fields come first.
    for name in sorted(events, key=lambda n: _depth(n, classes)):
        event = events[name]
        merged: Dict[str, str] = {}
        for base in event.bases:
            base_event = events.get(base.rsplit(".", 1)[-1])
            if base_event is not None:
                merged.update(base_event.fields)
        info = classes[name]
        for item in info.node.body:
            if isinstance(item, ast.AnnAssign) and isinstance(item.target, ast.Name):
                merged[item.target.id] = ast.unparse(item.annotation)
        event.fields = merged
    return events


def _depth(name: str, classes: Dict[str, ClassInfo]) -> int:
    depth = 0
    seen: Set[str] = set()
    current = name
    while current in classes and current not in seen:
        seen.add(current)
        bases = classes[current].bases
        if not bases:
            break
        current = bases[0].rsplit(".", 1)[-1]
        depth += 1
    return depth


class _ScopeTypes:
    """Lightweight local type inference for one function body."""

    def __init__(self, known_classes: Set[str]) -> None:
        self._known = known_classes
        self.var_class: Dict[str, str] = {}
        #: dict-typed variables -> their value class (``Dict[k, Class]``).
        self.dict_value_class: Dict[str, str] = {}

    def observe(self, node: ast.stmt) -> None:
        if isinstance(node, ast.Assign) and len(node.targets) == 1:
            target = node.targets[0]
            self._bind(target, node.value)
        elif isinstance(node, ast.AnnAssign) and isinstance(node.target, ast.Name):
            annotation = _unwrap_optional(node.annotation)
            if isinstance(annotation, ast.Subscript):
                base = _terminal(annotation.value)
                if base in {"Dict", "dict", "Mapping", "MutableMapping"} and isinstance(
                    annotation.slice, ast.Tuple
                ):
                    value_cls = _terminal(annotation.slice.elts[-1])
                    if value_cls in self._known and isinstance(node.target, ast.Name):
                        self.dict_value_class[node.target.id] = value_cls
            else:
                cls = _terminal(annotation)
                if cls in self._known:
                    self.var_class[node.target.id] = cls
            if node.value is not None:
                self._bind(node.target, node.value)

    def _bind(self, target: ast.AST, value: ast.AST) -> None:
        if isinstance(value, ast.Call):
            cls = _terminal(value.func)
            if cls in self._known:
                if isinstance(target, ast.Name):
                    self.var_class[target.id] = cls
                elif isinstance(target, ast.Subscript) and isinstance(target.value, ast.Name):
                    self.dict_value_class.setdefault(target.value.id, cls)
        elif isinstance(value, ast.Subscript) and isinstance(value.value, ast.Name):
            cls = self.dict_value_class.get(value.value.id)
            if cls is not None and isinstance(target, ast.Name):
                self.var_class[target.id] = cls

    def resolve(self, var: str) -> Optional[str]:
        return self.var_class.get(var)


def _enclosing_label(stack: List[ast.AST]) -> str:
    names = [
        node.name
        for node in stack
        if isinstance(node, (ast.ClassDef, ast.FunctionDef, ast.AsyncFunctionDef))
    ]
    return ".".join(names) if names else "<module>"


def extract_graph(modules: List[ModuleContext]) -> BusGraph:
    """Build the static bus graph over the given modules."""
    classes = _collect_classes(modules)
    graph = BusGraph(events=_collect_events(classes), classes=classes)
    known = set(classes)

    for module in modules:
        _extract_module(module, graph, known)
    return graph


def _scope_nodes(body: List[ast.stmt]) -> Tuple[List[ast.AST], List[ast.AST]]:
    """All AST nodes of one scope, pruned at nested def boundaries.

    Returns ``(nodes, nested_defs)`` where ``nested_defs`` are the
    function/class definitions whose bodies form child scopes.
    """
    nodes: List[ast.AST] = []
    nested: List[ast.AST] = []
    queue: List[ast.AST] = list(body)
    while queue:
        node = queue.pop(0)
        if isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef, ast.ClassDef)):
            nested.append(node)
            continue
        nodes.append(node)
        queue.extend(ast.iter_child_nodes(node))
    return nodes, nested


def _extract_module(module: ModuleContext, graph: BusGraph, known: Set[str]) -> None:
    def process_scope(body: List[ast.stmt], stack: List[ast.AST], scope: _ScopeTypes) -> None:
        nodes, nested = _scope_nodes(body)
        # Pass 1: observe every assignment in this scope, so resolution is
        # insensitive to statement order (the wiring loop in build_cluster
        # assigns `tracker = trackers[id]` inside a compound statement).
        for node in nodes:
            if isinstance(node, (ast.Assign, ast.AnnAssign)):
                scope.observe(node)
        # Pass 2: extract publish/subscribe/register calls.
        for node in nodes:
            if isinstance(node, ast.Call):
                _extract_call(node, module, graph, stack, scope)
        for definition in nested:
            if isinstance(definition, ast.ClassDef):
                process_scope(definition.body, [*stack, definition], _ScopeTypes(known))
            else:
                inner = _ScopeTypes(known)
                func = definition
                assert isinstance(func, (ast.FunctionDef, ast.AsyncFunctionDef))
                for arg in list(func.args.args) + list(func.args.kwonlyargs):
                    if arg.annotation is not None:
                        cls = _terminal(_unwrap_optional(arg.annotation))
                        if cls in known:
                            inner.var_class[arg.arg] = cls
                process_scope(func.body, [*stack, func], inner)

    process_scope(module.tree.body, [], _ScopeTypes(known))


def _resolve_handler(
    handler_node: ast.AST, stack: List[ast.AST], scope: _ScopeTypes
) -> Tuple[Optional[str], str]:
    """Resolve a handler expression to ``(owner_class, handler_name)``.

    Handles ``self.method``, ``var.method`` (via local inference) and
    ``mapping[key].method`` (via the mapping's value class).
    """
    owner_class: Optional[str] = None
    handler = ""
    if isinstance(handler_node, ast.Attribute):
        handler = handler_node.attr
        receiver = handler_node.value
        if isinstance(receiver, ast.Name):
            if receiver.id == "self":
                for frame in reversed(stack):
                    if isinstance(frame, ast.ClassDef):
                        owner_class = frame.name
                        break
            else:
                owner_class = scope.resolve(receiver.id)
        elif isinstance(receiver, ast.Subscript) and isinstance(receiver.value, ast.Name):
            owner_class = scope.dict_value_class.get(receiver.value.id)
    elif isinstance(handler_node, ast.Name):
        handler = handler_node.id
    else:
        handler = ast.unparse(handler_node)
    return owner_class, handler


def _handler_pairs(node: ast.AST) -> List[ast.Tuple]:
    """The (key, handler) tuple shapes inside a subscribe_many pairs arg."""
    if isinstance(node, ast.GeneratorExp):
        if isinstance(node.elt, ast.Tuple) and len(node.elt.elts) == 2:
            return [node.elt]
        return []
    if isinstance(node, (ast.List, ast.Tuple)):
        return [
            elt
            for elt in node.elts
            if isinstance(elt, ast.Tuple) and len(elt.elts) == 2
        ]
    return []


def _extract_call(
    node: ast.Call,
    module: ModuleContext,
    graph: BusGraph,
    stack: List[ast.AST],
    scope: _ScopeTypes,
) -> None:
    func = node.func
    if not isinstance(func, ast.Attribute):
        return
    if func.attr == "publish" and node.args:
        arg = node.args[0]
        event: Optional[str] = None
        if isinstance(arg, ast.Call):
            name = _terminal(arg.func)
            if name in graph.events:
                event = name
        graph.publishers.append(
            PublishSite(
                event=event,
                module=module.path,
                line=node.lineno,
                col=node.col_offset,
                owner=_enclosing_label(stack),
            )
        )
    elif func.attr == "subscribe" and node.args:
        event_name = _terminal(node.args[0])
        event = event_name if event_name in graph.events else None
        owner_class: Optional[str] = None
        handler = ""
        if len(node.args) >= 2:
            owner_class, handler = _resolve_handler(node.args[1], stack, scope)
        phase = ""
        if len(node.args) >= 3:
            phase = _terminal(node.args[2]) or ast.unparse(node.args[2])
        keyed = False
        for keyword in node.keywords:
            if keyword.arg == "phase":
                phase = _terminal(keyword.value) or ast.unparse(keyword.value)
            elif keyword.arg == "key":
                keyed = not (
                    isinstance(keyword.value, ast.Constant) and keyword.value.value is None
                )
        graph.subscribers.append(
            SubscribeSite(
                event=event,
                module=module.path,
                line=node.lineno,
                col=node.col_offset,
                owner_class=owner_class,
                handler=handler,
                phase=phase,
                keyed=keyed,
            )
        )
    elif func.attr == "subscribe_many" and len(node.args) >= 3:
        # Bulk wiring: subscribe_many(EventType, Phase.X, pairs) where the
        # pairs are (key, handler) tuples — typically one generator
        # expression covering every host. Each distinct (key, handler)
        # tuple shape contributes one subscribe site.
        event_name = _terminal(node.args[0])
        event = event_name if event_name in graph.events else None
        phase = _terminal(node.args[1]) or ast.unparse(node.args[1])
        for pair in _handler_pairs(node.args[2]):
            key_node, handler_node = pair.elts
            owner_class, handler = _resolve_handler(handler_node, stack, scope)
            keyed = not (
                isinstance(key_node, ast.Constant) and key_node.value is None
            )
            graph.subscribers.append(
                SubscribeSite(
                    event=event,
                    module=module.path,
                    line=pair.lineno,
                    col=pair.col_offset,
                    owner_class=owner_class,
                    handler=handler,
                    phase=phase,
                    keyed=keyed,
                )
            )
    elif func.attr == "register_bulk" and len(node.args) == 1:
        receiver = _terminal(func.value)
        if receiver not in _REGISTRY_NAMES:
            return
        arg = node.args[0]
        # The bulk idiom is `<dict-of-services>.values()`; resolve the
        # dict's value class through the same local inference.
        if (
            isinstance(arg, ast.Call)
            and isinstance(arg.func, ast.Attribute)
            and arg.func.attr == "values"
            and isinstance(arg.func.value, ast.Name)
        ):
            cls = scope.dict_value_class.get(arg.func.value.id)
            if cls is not None:
                graph.registrations.append(
                    RegisterSite(class_name=cls, module=module.path, line=node.lineno)
                )
    elif func.attr == "register" and len(node.args) == 1:
        receiver = _terminal(func.value)
        if receiver not in _REGISTRY_NAMES:
            return
        arg = node.args[0]
        cls: Optional[str] = None
        if isinstance(arg, ast.Name):
            cls = scope.resolve(arg.id)
        elif isinstance(arg, ast.Call):
            name = _terminal(arg.func)
            if name in graph.classes:
                cls = name
        elif isinstance(arg, ast.Subscript) and isinstance(arg.value, ast.Name):
            cls = scope.dict_value_class.get(arg.value.id)
        if cls is not None:
            graph.registrations.append(
                RegisterSite(class_name=cls, module=module.path, line=node.lineno)
            )


# -- serialisation ---------------------------------------------------------------


def to_json(graph: BusGraph) -> Dict[str, object]:
    """Stable JSON view of the graph (sorted keys, sorted site lists)."""
    return {
        "events": {
            name: {
                "module": event.module,
                "line": event.line,
                "fields": event.fields,
                "observability_only": event.observability_only,
            }
            for name, event in sorted(graph.events.items())
        },
        "publishers": [
            {
                "event": site.event,
                "module": site.module,
                "line": site.line,
                "owner": site.owner,
            }
            for site in sorted(
                graph.publishers, key=lambda s: (s.module, s.line, s.col)
            )
        ],
        "subscribers": [
            {
                "event": site.event,
                "module": site.module,
                "line": site.line,
                "owner_class": site.owner_class,
                "handler": site.handler,
                "phase": site.phase,
                "keyed": site.keyed,
            }
            for site in sorted(
                graph.subscribers, key=lambda s: (s.module, s.line, s.col)
            )
        ],
        "registered_services": sorted(graph.registered_classes),
    }


def to_dot(graph: BusGraph) -> str:
    """Publisher → event → subscriber graph in GraphViz DOT form."""
    lines = [
        "digraph simbus {",
        "  rankdir=LR;",
        '  node [fontname="Helvetica"];',
    ]
    for name in sorted(graph.events):
        shape = "cds" if graph.events[name].observability_only else "box"
        lines.append(f'  "{name}" [shape={shape}, style=filled, fillcolor=lightyellow];')
    publish_edges = sorted(
        {
            (site.owner.split(".")[0], site.event)
            for site in graph.publishers
            if site.event is not None
        }
    )
    subscribe_edges = sorted(
        {
            (site.event, site.owner_class, site.handler, site.phase)
            for site in graph.subscribers
            if site.event is not None and site.owner_class is not None
        }
    )
    actors = {edge[0] for edge in publish_edges} | {
        edge[1] for edge in subscribe_edges if edge[1] is not None
    }
    for actor in sorted(actors):
        lines.append(f'  "{actor}" [shape=ellipse];')
    for owner, event in publish_edges:
        lines.append(f'  "{owner}" -> "{event}";')
    for event, owner_class, handler, phase in subscribe_edges:
        lines.append(f'  "{event}" -> "{owner_class}" [label="{handler} @{phase}"];')
    lines.append("}")
    return "\n".join(lines) + "\n"


__all__ = [
    "BusGraph",
    "ClassInfo",
    "EventDef",
    "PublishSite",
    "RegisterSite",
    "SubscribeSite",
    "extract_graph",
    "to_dot",
    "to_json",
]
