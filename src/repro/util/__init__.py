"""Shared utilities: random-stream management, units, statistics, tables.

These helpers are deliberately dependency-free so every other subpackage can
use them without import cycles.
"""

from repro.util.rng import RandomSource, derive_seed
from repro.util.stats import RunningStats, SummaryStats, coefficient_of_variation, summarize
from repro.util.tables import format_table
from repro.util.units import (
    MB,
    Mb,
    mbit_per_s,
    megabytes,
    seconds_to_transfer,
)
from repro.util.validation import (
    check_non_negative,
    check_positive,
    check_probability,
    check_type,
)

__all__ = [
    "RandomSource",
    "derive_seed",
    "RunningStats",
    "SummaryStats",
    "coefficient_of_variation",
    "summarize",
    "format_table",
    "MB",
    "Mb",
    "mbit_per_s",
    "megabytes",
    "seconds_to_transfer",
    "check_non_negative",
    "check_positive",
    "check_probability",
    "check_type",
]
