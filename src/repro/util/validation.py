"""Argument validation helpers with consistent error messages."""

from __future__ import annotations

from typing import Type, TypeVar

T = TypeVar("T")


def check_positive(name: str, value: float) -> float:
    """Require ``value > 0``; return it as a float."""
    value = float(value)
    if not value > 0:
        raise ValueError(f"{name} must be positive, got {value}")
    return value


def check_non_negative(name: str, value: float) -> float:
    """Require ``value >= 0``; return it as a float."""
    value = float(value)
    if not value >= 0:
        raise ValueError(f"{name} must be non-negative, got {value}")
    return value


def check_probability(name: str, value: float) -> float:
    """Require ``0 <= value <= 1``; return it as a float."""
    value = float(value)
    if not 0.0 <= value <= 1.0:
        raise ValueError(f"{name} must be in [0, 1], got {value}")
    return value


def check_type(name: str, value: object, expected: Type[T]) -> T:
    """Require ``isinstance(value, expected)``; return the value."""
    if not isinstance(value, expected):
        raise TypeError(
            f"{name} must be {expected.__name__}, got {type(value).__name__}"
        )
    return value
