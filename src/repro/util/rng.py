"""Deterministic random-stream management.

Simulations in this project must be exactly reproducible from a single root
seed, and must remain reproducible when components are added or reordered.
To achieve that, every component derives its own independent ``RandomSource``
from the root seed plus a stable string key (e.g. ``"failures/node-17"``),
instead of sharing one global generator whose consumption order would couple
unrelated components.
"""

from __future__ import annotations

import hashlib
import random
from typing import Callable, Dict, Iterable, List, Optional, Sequence, Tuple, TypeVar, Union

T = TypeVar("T")

_MASK_64 = (1 << 64) - 1


def _hash_path(root_seed: int, path: Sequence[object]) -> "hashlib._Hash":
    """The SHA-256 state covering ``root_seed`` plus every path key."""
    h = hashlib.sha256()
    h.update(str(int(root_seed)).encode("utf-8"))
    for key in path:
        h.update(b"\x1f")
        h.update(str(key).encode("utf-8"))
    return h


def derive_seed(root_seed: int, *keys: object) -> int:
    """Derive a stable 64-bit seed from a root seed and a key path.

    The derivation hashes the textual representation of the key path with
    SHA-256, so it is stable across Python versions and process runs (unlike
    ``hash()``, which is salted).
    """
    h = _hash_path(root_seed, keys)
    return int.from_bytes(h.digest()[:8], "big") & _MASK_64


#: A ``derive_seeds`` leaf: one trailing key, or a tuple of trailing keys.
SeedLeaf = Union[object, Tuple[object, ...]]


def derive_seeds(
    root_seed: int, prefix: Sequence[object], leaves: Iterable[SeedLeaf]
) -> List[int]:
    """Bulk :func:`derive_seed` over a shared key prefix, one hash pass.

    Element ``i`` equals ``derive_seed(root_seed, *prefix, *leaf_i)`` (a
    non-tuple leaf counts as a single trailing key) — the prefix is hashed
    once and each leaf finishes a *copy* of that state, so deriving one
    seed per node is one short hash update per node instead of a full
    re-hash of the path. Incremental SHA-256 equals one-shot SHA-256 over
    the concatenated bytes, so the values are bit-identical to the scalar
    derivation; ``tests/util`` pins the equality.
    """
    base = _hash_path(root_seed, prefix)
    out: List[int] = []
    for leaf in leaves:
        h = base.copy()
        parts = leaf if isinstance(leaf, tuple) else (leaf,)
        for key in parts:
            h.update(b"\x1f")
            h.update(str(key).encode("utf-8"))
        out.append(int.from_bytes(h.digest()[:8], "big") & _MASK_64)
    return out


class RandomSource:
    """A seeded random stream with named sub-stream derivation.

    Wraps :class:`random.Random` and adds :meth:`substream`, which returns a
    new independent ``RandomSource`` keyed by a string path. Two substreams
    with different keys never share state, so adding a consumer of one stream
    cannot perturb another.
    """

    def __init__(
        self,
        seed: int,
        _path: Sequence[object] = (),
        *,
        _hash: Optional["hashlib._Hash"] = None,
        _derived: Optional[int] = None,
    ) -> None:
        self._seed = int(seed)
        self._path: tuple = tuple(_path)
        if _derived is None:
            if _hash is None:
                _hash = _hash_path(self._seed, self._path)
            _derived = int.from_bytes(_hash.digest()[:8], "big") & _MASK_64
        #: SHA-256 state covering (seed, path); kept so substream derivation
        #: copies it and hashes only the new trailing keys instead of
        #: re-hashing the whole path. None until first needed (e.g. after
        #: unpickling or a ``from_derived`` construction).
        self._h = _hash
        self._derived = _derived
        self._random = random.Random(_derived)

    @property
    def seed(self) -> int:
        """The root seed this source was derived from."""
        return self._seed

    @property
    def path(self) -> tuple:
        """The key path identifying this substream."""
        return self._path

    def _hash_state(self) -> "hashlib._Hash":
        if self._h is None:
            self._h = _hash_path(self._seed, self._path)
        return self._h

    def substream(self, *keys: object) -> "RandomSource":
        """Return an independent stream keyed by ``keys`` under this path.

        Derivation is incremental: the parent's hash state is copied and
        only the new keys are hashed, which is what keeps per-node stream
        construction cheap at 226k hosts. The digest — and therefore every
        sampled value — is bit-identical to a from-scratch derivation.
        """
        h = self._hash_state().copy()
        for key in keys:
            h.update(b"\x1f")
            h.update(str(key).encode("utf-8"))
        return RandomSource(self._seed, self._path + tuple(keys), _hash=h)

    @classmethod
    def from_derived(
        cls, derived_seed: int, root_seed: int, path: Sequence[object] = ()
    ) -> "RandomSource":
        """Construct from a :func:`derive_seeds` value without re-hashing.

        ``derived_seed`` must equal ``derive_seed(root_seed, *path)``; the
        resulting source is then bit-identical to
        ``RandomSource(root_seed, path)`` (same generator state, and
        ``substream`` still works — the hash state is rebuilt lazily).
        """
        return cls(root_seed, path, _derived=int(derived_seed))

    # SHA-256 objects are not picklable; drop the cached hash state and let
    # it rebuild lazily, while preserving the generator state exactly.
    def __getstate__(self) -> Dict[str, object]:
        return {
            "seed": self._seed,
            "path": self._path,
            "derived": self._derived,
            "random_state": self._random.getstate(),
        }

    def __setstate__(self, state: Dict[str, object]) -> None:
        self._seed = state["seed"]  # type: ignore[assignment]
        self._path = tuple(state["path"])  # type: ignore[arg-type]
        self._derived = state["derived"]  # type: ignore[assignment]
        self._h = None
        self._random = random.Random()  # simlint: ignore[D001]
        self._random.setstate(state["random_state"])  # type: ignore[arg-type]

    # -- sampling primitives -------------------------------------------------

    def random(self) -> float:
        """Uniform float in [0, 1)."""
        return self._random.random()

    def random_many(self, count: int) -> List[float]:
        """``count`` uniforms in [0, 1) — exactly ``count`` calls of
        :meth:`random`, batched.

        The returned list is position-identical to ``count`` scalar draws,
        and the stream is left in the same state, so batched and scalar
        consumers interleave without divergence.
        """
        r = self._random.random
        return [r() for _ in range(count)]

    @property
    def raw_random(self) -> Callable[[], float]:
        """The bound uniform sampler, for hot rejection loops.

        Calling it consumes this stream exactly like :meth:`random`; it
        exists so vectorized samplers with data-dependent draw counts
        (e.g. normal rejection sampling) can skip per-draw wrapper
        overhead without over-drawing the stream.
        """
        return self._random.random

    def uniform(self, low: float, high: float) -> float:
        """Uniform float in [low, high]."""
        return self._random.uniform(low, high)

    def randint(self, low: int, high: int) -> int:
        """Uniform integer in [low, high] inclusive."""
        return self._random.randint(low, high)

    def randrange(self, stop: int) -> int:
        """Uniform integer in [0, stop)."""
        return self._random.randrange(stop)

    def expovariate(self, rate: float) -> float:
        """Exponential sample with the given rate (1/mean)."""
        return self._random.expovariate(rate)

    def gauss(self, mu: float, sigma: float) -> float:
        """Normal sample."""
        return self._random.gauss(mu, sigma)

    def lognormvariate(self, mu: float, sigma: float) -> float:
        """Lognormal sample with underlying normal parameters (mu, sigma)."""
        return self._random.lognormvariate(mu, sigma)

    def weibullvariate(self, scale: float, shape: float) -> float:
        """Weibull sample."""
        return self._random.weibullvariate(scale, shape)

    def paretovariate(self, alpha: float) -> float:
        """Pareto sample (support [1, inf))."""
        return self._random.paretovariate(alpha)

    def choice(self, seq: Sequence[T]) -> T:
        """Uniform choice from a non-empty sequence."""
        return self._random.choice(seq)

    def sample(self, population: Sequence[T], k: int) -> List[T]:
        """Sample ``k`` distinct elements."""
        return self._random.sample(population, k)

    def shuffle(self, items: List[T]) -> None:
        """Shuffle ``items`` in place."""
        self._random.shuffle(items)

    def weighted_choice(self, items: Sequence[T], weights: Sequence[float]) -> T:
        """Choose one item with probability proportional to its weight."""
        if len(items) != len(weights):
            raise ValueError("items and weights must have the same length")
        total = float(sum(weights))
        if total <= 0.0:
            raise ValueError("weights must sum to a positive value")
        point = self.random() * total
        cumulative = 0.0
        for item, weight in zip(items, weights, strict=True):
            cumulative += weight
            if point < cumulative:
                return item
        return items[-1]

    def __repr__(self) -> str:
        return f"RandomSource(seed={self._seed}, path={self._path!r})"


def spawn_sources(root: RandomSource, keys: Iterable[object]) -> List[RandomSource]:
    """Derive one substream per key, in key order."""
    return [root.substream(key) for key in keys]


def resolve_seed(seed: Optional[int], fallback: int = 0) -> int:
    """Normalise an optional user-supplied seed to a concrete integer."""
    if seed is None:
        return fallback
    return int(seed)
