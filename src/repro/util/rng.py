"""Deterministic random-stream management.

Simulations in this project must be exactly reproducible from a single root
seed, and must remain reproducible when components are added or reordered.
To achieve that, every component derives its own independent ``RandomSource``
from the root seed plus a stable string key (e.g. ``"failures/node-17"``),
instead of sharing one global generator whose consumption order would couple
unrelated components.
"""

from __future__ import annotations

import hashlib
import random
from typing import Callable, Iterable, List, Optional, Sequence, TypeVar

T = TypeVar("T")

_MASK_64 = (1 << 64) - 1


def derive_seed(root_seed: int, *keys: object) -> int:
    """Derive a stable 64-bit seed from a root seed and a key path.

    The derivation hashes the textual representation of the key path with
    SHA-256, so it is stable across Python versions and process runs (unlike
    ``hash()``, which is salted).
    """
    h = hashlib.sha256()
    h.update(str(int(root_seed)).encode("utf-8"))
    for key in keys:
        h.update(b"\x1f")
        h.update(str(key).encode("utf-8"))
    return int.from_bytes(h.digest()[:8], "big") & _MASK_64


class RandomSource:
    """A seeded random stream with named sub-stream derivation.

    Wraps :class:`random.Random` and adds :meth:`substream`, which returns a
    new independent ``RandomSource`` keyed by a string path. Two substreams
    with different keys never share state, so adding a consumer of one stream
    cannot perturb another.
    """

    def __init__(self, seed: int, _path: Sequence[object] = ()) -> None:
        self._seed = int(seed)
        self._path: tuple = tuple(_path)
        self._random = random.Random(derive_seed(self._seed, *self._path))

    @property
    def seed(self) -> int:
        """The root seed this source was derived from."""
        return self._seed

    @property
    def path(self) -> tuple:
        """The key path identifying this substream."""
        return self._path

    def substream(self, *keys: object) -> "RandomSource":
        """Return an independent stream keyed by ``keys`` under this path."""
        return RandomSource(self._seed, self._path + tuple(keys))

    # -- sampling primitives -------------------------------------------------

    def random(self) -> float:
        """Uniform float in [0, 1)."""
        return self._random.random()

    def random_many(self, count: int) -> List[float]:
        """``count`` uniforms in [0, 1) — exactly ``count`` calls of
        :meth:`random`, batched.

        The returned list is position-identical to ``count`` scalar draws,
        and the stream is left in the same state, so batched and scalar
        consumers interleave without divergence.
        """
        r = self._random.random
        return [r() for _ in range(count)]

    @property
    def raw_random(self) -> Callable[[], float]:
        """The bound uniform sampler, for hot rejection loops.

        Calling it consumes this stream exactly like :meth:`random`; it
        exists so vectorized samplers with data-dependent draw counts
        (e.g. normal rejection sampling) can skip per-draw wrapper
        overhead without over-drawing the stream.
        """
        return self._random.random

    def uniform(self, low: float, high: float) -> float:
        """Uniform float in [low, high]."""
        return self._random.uniform(low, high)

    def randint(self, low: int, high: int) -> int:
        """Uniform integer in [low, high] inclusive."""
        return self._random.randint(low, high)

    def randrange(self, stop: int) -> int:
        """Uniform integer in [0, stop)."""
        return self._random.randrange(stop)

    def expovariate(self, rate: float) -> float:
        """Exponential sample with the given rate (1/mean)."""
        return self._random.expovariate(rate)

    def gauss(self, mu: float, sigma: float) -> float:
        """Normal sample."""
        return self._random.gauss(mu, sigma)

    def lognormvariate(self, mu: float, sigma: float) -> float:
        """Lognormal sample with underlying normal parameters (mu, sigma)."""
        return self._random.lognormvariate(mu, sigma)

    def weibullvariate(self, scale: float, shape: float) -> float:
        """Weibull sample."""
        return self._random.weibullvariate(scale, shape)

    def paretovariate(self, alpha: float) -> float:
        """Pareto sample (support [1, inf))."""
        return self._random.paretovariate(alpha)

    def choice(self, seq: Sequence[T]) -> T:
        """Uniform choice from a non-empty sequence."""
        return self._random.choice(seq)

    def sample(self, population: Sequence[T], k: int) -> List[T]:
        """Sample ``k`` distinct elements."""
        return self._random.sample(population, k)

    def shuffle(self, items: List[T]) -> None:
        """Shuffle ``items`` in place."""
        self._random.shuffle(items)

    def weighted_choice(self, items: Sequence[T], weights: Sequence[float]) -> T:
        """Choose one item with probability proportional to its weight."""
        if len(items) != len(weights):
            raise ValueError("items and weights must have the same length")
        total = float(sum(weights))
        if total <= 0.0:
            raise ValueError("weights must sum to a positive value")
        point = self.random() * total
        cumulative = 0.0
        for item, weight in zip(items, weights, strict=True):
            cumulative += weight
            if point < cumulative:
                return item
        return items[-1]

    def __repr__(self) -> str:
        return f"RandomSource(seed={self._seed}, path={self._path!r})"


def spawn_sources(root: RandomSource, keys: Iterable[object]) -> List[RandomSource]:
    """Derive one substream per key, in key order."""
    return [root.substream(key) for key in keys]


def resolve_seed(seed: Optional[int], fallback: int = 0) -> int:
    """Normalise an optional user-supplied seed to a concrete integer."""
    if seed is None:
        return fallback
    return int(seed)
