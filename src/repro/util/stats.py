"""Streaming and summary statistics.

The evaluation reports means, standard deviations, and the coefficient of
variation (CoV) of interruption data (paper Table 1), and averages repeated
experiment runs. ``RunningStats`` provides numerically stable (Welford)
streaming moments; ``summarize`` produces the Table-1-style summary.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import Iterable, List, Sequence


class RunningStats:
    """Welford online mean/variance accumulator."""

    def __init__(self) -> None:
        self._count = 0
        self._mean = 0.0
        self._m2 = 0.0
        self._min = math.inf
        self._max = -math.inf

    def add(self, value: float) -> None:
        """Fold one observation into the accumulator."""
        value = float(value)
        self._count += 1
        delta = value - self._mean
        self._mean += delta / self._count
        self._m2 += delta * (value - self._mean)
        self._min = min(self._min, value)
        self._max = max(self._max, value)

    def extend(self, values: Iterable[float]) -> None:
        """Fold many observations."""
        for value in values:
            self.add(value)

    def merge(self, other: "RunningStats") -> "RunningStats":
        """Return a new accumulator equivalent to both inputs combined."""
        merged = RunningStats()
        if self._count == 0:
            merged.__dict__.update(other.__dict__)
            return merged
        if other._count == 0:
            merged.__dict__.update(self.__dict__)
            return merged
        n = self._count + other._count
        delta = other._mean - self._mean
        merged._count = n
        merged._mean = self._mean + delta * other._count / n
        merged._m2 = self._m2 + other._m2 + delta * delta * self._count * other._count / n
        merged._min = min(self._min, other._min)
        merged._max = max(self._max, other._max)
        return merged

    @property
    def count(self) -> int:
        return self._count

    @property
    def mean(self) -> float:
        if self._count == 0:
            raise ValueError("no observations")
        return self._mean

    @property
    def variance(self) -> float:
        """Sample variance (n-1 denominator)."""
        if self._count < 2:
            return 0.0
        return self._m2 / (self._count - 1)

    @property
    def std(self) -> float:
        return math.sqrt(self.variance)

    @property
    def minimum(self) -> float:
        if self._count == 0:
            raise ValueError("no observations")
        return self._min

    @property
    def maximum(self) -> float:
        if self._count == 0:
            raise ValueError("no observations")
        return self._max

    @property
    def cov(self) -> float:
        """Coefficient of variation std/mean (0 when the mean is 0)."""
        mean = self.mean
        if mean == 0.0:
            return 0.0
        return self.std / abs(mean)


@dataclass(frozen=True)
class SummaryStats:
    """Immutable summary of a sample: the quantities in the paper's Table 1."""

    count: int
    mean: float
    std: float
    cov: float
    minimum: float
    maximum: float

    def as_row(self) -> List[str]:
        """Row cells for tabular display: mean, std dev, CoV."""
        return [f"{self.mean:.1f}", f"{self.std:.1f}", f"{self.cov:.4f}"]


def summarize(values: Sequence[float]) -> SummaryStats:
    """Summarise a non-empty sample into :class:`SummaryStats`."""
    if not values:
        raise ValueError("cannot summarise an empty sample")
    acc = RunningStats()
    acc.extend(values)
    return SummaryStats(
        count=acc.count,
        mean=acc.mean,
        std=acc.std,
        cov=acc.cov,
        minimum=acc.minimum,
        maximum=acc.maximum,
    )


def coefficient_of_variation(values: Sequence[float]) -> float:
    """CoV = std/mean of a sample."""
    return summarize(values).cov


def mean(values: Sequence[float]) -> float:
    """Arithmetic mean of a non-empty sample."""
    if not values:
        raise ValueError("cannot average an empty sample")
    return sum(float(v) for v in values) / len(values)


def percentile(values: Sequence[float], q: float) -> float:
    """Linear-interpolated percentile, q in [0, 100]."""
    if not values:
        raise ValueError("cannot take percentile of an empty sample")
    if not 0.0 <= q <= 100.0:
        raise ValueError(f"q must be in [0, 100], got {q}")
    ordered = sorted(float(v) for v in values)
    if len(ordered) == 1:
        return ordered[0]
    rank = (q / 100.0) * (len(ordered) - 1)
    low = int(math.floor(rank))
    high = int(math.ceil(rank))
    if low == high:
        return ordered[low]
    frac = rank - low
    value = ordered[low] * (1.0 - frac) + ordered[high] * frac
    # Clamp float interpolation noise back into the bracketing values.
    return min(max(value, ordered[low]), ordered[high])
