"""Plain-text table rendering for experiment reports.

The benchmark harness prints the same rows/series the paper reports; this
module renders them as aligned ASCII tables without any third-party
dependency.
"""

from __future__ import annotations

from typing import List, Optional, Sequence


def format_table(
    headers: Sequence[str],
    rows: Sequence[Sequence[object]],
    title: Optional[str] = None,
) -> str:
    """Render ``rows`` under ``headers`` as an aligned ASCII table."""
    header_cells = [str(h) for h in headers]
    body = [[_cell(value) for value in row] for row in rows]
    for row in body:
        if len(row) != len(header_cells):
            raise ValueError(
                f"row has {len(row)} cells but table has {len(header_cells)} columns"
            )
    widths = [len(h) for h in header_cells]
    for row in body:
        for i, cell in enumerate(row):
            widths[i] = max(widths[i], len(cell))

    def line(cells: Sequence[str]) -> str:
        return "| " + " | ".join(c.ljust(w) for c, w in zip(cells, widths, strict=True)) + " |"

    rule = "+" + "+".join("-" * (w + 2) for w in widths) + "+"
    out: List[str] = []
    if title:
        out.append(title)
    out.append(rule)
    out.append(line(header_cells))
    out.append(rule)
    for row in body:
        out.append(line(row))
    out.append(rule)
    return "\n".join(out)


def _cell(value: object) -> str:
    if isinstance(value, float):
        return f"{value:.3f}" if abs(value) < 1000 else f"{value:.1f}"
    return str(value)
