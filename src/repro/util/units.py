"""Unit helpers for data sizes and network rates.

Internally the library uses **bytes** for sizes and **bytes/second** for
rates; the helpers here convert from the units the paper uses (megabytes for
block sizes, megabits/s for bandwidth) into those canonical units.
"""

from __future__ import annotations

#: One megabyte in bytes (the paper's 64MB blocks are 64 * MB bytes).
MB: int = 1024 * 1024

#: One megabit in bytes (network rates are quoted in Mb/s).
Mb: float = 1_000_000 / 8.0


def megabytes(n: float) -> int:
    """Convert a size in megabytes to bytes."""
    return int(n * MB)


def mbit_per_s(rate: float) -> float:
    """Convert a rate in megabits/second to bytes/second."""
    if rate <= 0:
        raise ValueError(f"bandwidth must be positive, got {rate}")
    return rate * Mb


def seconds_to_transfer(size_bytes: float, rate_bytes_per_s: float) -> float:
    """Time to move ``size_bytes`` at a fixed ``rate_bytes_per_s``."""
    if rate_bytes_per_s <= 0:
        raise ValueError(f"rate must be positive, got {rate_bytes_per_s}")
    if size_bytes < 0:
        raise ValueError(f"size must be non-negative, got {size_bytes}")
    return size_bytes / rate_bytes_per_s


def format_bytes(size_bytes: float) -> str:
    """Human-readable size (binary units), e.g. ``'64.0MB'``."""
    size = float(size_bytes)
    for unit in ("B", "KB", "MB", "GB", "TB"):
        if size < 1024.0 or unit == "TB":
            return f"{size:.1f}{unit}"
        size /= 1024.0
    raise AssertionError("unreachable")


def format_rate(rate_bytes_per_s: float) -> str:
    """Human-readable network rate in Mb/s, e.g. ``'8.0Mb/s'``."""
    return f"{rate_bytes_per_s / Mb:.1f}Mb/s"
