#!/usr/bin/env python3
"""Future-work extension: availability-aware *scheduling* on top of placement.

The paper's future work proposes "an availability-aware MapReduce job
scheduling strategy" to complement ADAPT's placement. This repository ships
one: a scheduler that steals pending blocks from the *least available*
holders first, draining doomed backlogs before the end-game (see
``repro.mapreduce.scheduler.AvailabilityAwareScheduler``).

This example measures all four combinations of {placement, scheduling} x
{availability-blind, availability-aware} on a wordcount job — a denser
workload than terasort — plus a shuffle phase.

Run: ``python examples/scheduling_extension.py``
"""

from repro.availability.generator import build_group_hosts
from repro.mapreduce.job import JobConf
from repro.runtime.cluster import ClusterConfig
from repro.runtime.runner import run_map_phase
from repro.util.tables import format_table
from repro.workloads import WordCountWorkload

NODES = 32
BLOCKS_PER_NODE = 8


def main() -> None:
    hosts = build_group_hosts(NODES, interrupted_ratio=0.5)
    config = ClusterConfig(seed=21)
    workload = WordCountWorkload()

    rows = []
    for policy in ("existing", "adapt"):
        for scheduler in ("locality", "availability"):
            result = run_map_phase(
                hosts,
                config,
                policy,
                blocks_per_node=BLOCKS_PER_NODE,
                workload=workload,
                job_conf=JobConf(name="wordcount", scheduler=scheduler),
            )
            rows.append([
                policy,
                scheduler,
                f"{result.elapsed:.1f}",
                f"{result.data_locality:.3f}",
                f"{result.overhead_ratios['total']:.3f}",
            ])
    print(format_table(
        ["placement", "scheduler", "elapsed (s)", "locality", "total overhead"],
        rows,
        title=f"Wordcount map phase, {NODES} nodes, half interrupted",
    ))
    print("\nPlacement does the heavy lifting (the paper's thesis); the")
    print("availability-aware scheduler adds a second-order improvement by")
    print("migrating doomed backlogs earlier.")


if __name__ == "__main__":
    main()
