#!/usr/bin/env python3
"""The ADAPT shell workflow: copyFromLocal -> job -> adapt -> job again.

Section IV.A adds three interfaces to the HDFS shell: ``copyFromLocal`` and
``cp`` gain an ADAPT flag, and a new ``adapt <file>`` command redistributes
an existing file's blocks to become availability-aware. This example drives
exactly that workflow against a simulated non-dedicated cluster and shows
the before/after block distribution, storage skew, and map-phase time.

Run: ``python examples/hdfs_shell_workflow.py``
"""

from repro.availability.generator import build_group_hosts
from repro.core.placement import RandomPlacement
from repro.mapreduce.job import JobConf, MapJob
from repro.runtime.cluster import ClusterConfig, build_cluster
from repro.util.tables import format_table
from repro.workloads import TerasortWorkload

NODES = 24
BLOCKS = 240


def group_distribution(cluster, name, hosts):
    """Blocks per availability group for a file."""
    dist = cluster.client.block_distribution(name)
    per_group = {}
    for host in hosts:
        per_group.setdefault(host.group, []).append(dist[host.host_id])
    return {g: sum(v) for g, v in sorted(per_group.items())}


def run_job(cluster, file_name, gamma):
    dfs_file = cluster.namenode.file(file_name)
    job = MapJob.uniform(JobConf(name=f"job-{file_name}"), dfs_file, gamma)
    cluster.jobtracker.submit(job)
    cluster.run_until_job_done()
    return job.makespan


def main() -> None:
    hosts = build_group_hosts(NODES, interrupted_ratio=0.5)
    workload = TerasortWorkload()
    config = ClusterConfig(seed=11)
    gamma = workload.gamma_seconds(config.block_size_bytes)

    # Two identical clusters so each job starts from a clean failure stream.
    plain = build_cluster(hosts, config, default_gamma=gamma)
    tuned = build_cluster(hosts, config, default_gamma=gamma)
    for cluster in (plain, tuned):
        cluster.sim.run(until=0.0)
        # $ hdfs copyFromLocal ./input input   (stock random placement)
        cluster.client.copy_from_local("input", num_blocks=BLOCKS, policy=RandomPlacement(), gamma=gamma)

    # $ hdfs adapt input    (redistribute in place on the tuned cluster)
    report = tuned.client.adapt("input")

    rows = []
    before = group_distribution(plain, "input", hosts)
    after = group_distribution(tuned, "input", hosts)
    for group in before:
        rows.append([group, before[group], after[group]])
    print(format_table(["availability group", "blocks before", "blocks after"],
                       rows, title=f"`adapt input` moved {report.move_count} blocks "
                                   f"({report.bytes_moved // (1024*1024)} MB)"))
    print(f"\nstorage skew (max/mean): before={plain.client.storage_skew('input'):.2f} "
          f"after={tuned.client.storage_skew('input'):.2f} "
          f"(the m(k+1)/n threshold bounds the skew)")

    plain_time = run_job(plain, "input", gamma)
    tuned_time = run_job(tuned, "input", gamma)
    print(f"\nmap phase on the original layout:   {plain_time:7.1f} s")
    print(f"map phase after `adapt input`:      {tuned_time:7.1f} s "
          f"({(1 - tuned_time / plain_time) * 100:+.0f}%)")


if __name__ == "__main__":
    main()
