#!/usr/bin/env python3
"""Terasort on an emulated non-dedicated cluster (the paper's Section V.B).

Reproduces the headline experiment at a configurable scale: terasort's map
phase under the Table 2 interruption mix, comparing the existing random
placement against ADAPT at 1 and 2 replicas, and reporting elapsed time and
data locality (Figures 3(a)/4(a)'s default point).

Run:  python examples/terasort_emulation.py            # 32 nodes, quick
      python examples/terasort_emulation.py --full     # 128 nodes (Table 3)
"""

import argparse

from repro.experiments.config import EMULATION_STRATEGIES, EmulationConfig
from repro.experiments.emulation import run_emulation_point
from repro.util.tables import format_table


def main() -> None:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--full", action="store_true", help="run at the paper's 128-node scale")
    parser.add_argument("--seed", type=int, default=0)
    args = parser.parse_args()

    if args.full:
        config = EmulationConfig(seed=args.seed)  # Table 3 defaults
    else:
        config = EmulationConfig(node_count=32, blocks_per_node=10, seed=args.seed)

    print(f"Cluster: {config.node_count} nodes, {config.interrupted_ratio:.0%} interrupted "
          f"(Table 2 groups), {config.bandwidth_mbps:g} Mb/s, "
          f"{config.blocks_per_node:g} blocks/node of 64 MB terasort input\n")

    rows = []
    baseline = None
    for strategy in EMULATION_STRATEGIES:
        result = run_emulation_point(config, strategy)
        if strategy.key == "existingx1":
            baseline = result.elapsed
        improvement = "" if baseline is None else f"{(1 - result.elapsed / baseline) * 100:+.0f}%"
        rows.append([
            strategy.label,
            f"{result.elapsed:.1f}",
            improvement,
            f"{result.data_locality:.3f}",
        ])
    print(format_table(
        ["strategy", "map elapsed (s)", "vs existing x1", "locality"],
        rows,
        title="Terasort map phase under interruptions",
    ))
    print("\nPaper's Section V.B.1 headline: ADAPT (1 replica) improves the")
    print("existing approach by ~40% at the default point, approaching the")
    print("existing approach with 2 replicas at half the storage cost.")


if __name__ == "__main__":
    main()
