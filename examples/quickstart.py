#!/usr/bin/env python3
"""Quickstart: the ADAPT model, placement, and one simulated map phase.

Walks the three layers of the library in ~a minute of runtime:

1. the stochastic model of Section III.B (formula 5);
2. Algorithm 1's placement weights on the Table 2 host mix;
3. an end-to-end emulated map phase comparing stock HDFS placement with
   ADAPT on a small non-dedicated cluster.

Run: ``python examples/quickstart.py``
"""

from repro import ClusterConfig, build_group_hosts, expected_task_time, run_map_phase
from repro.availability.estimators import AvailabilityEstimate
from repro.core.placement import AdaptPlacement, NodeView
from repro.util.rng import RandomSource
from repro.util.tables import format_table

GAMMA = 12.0  # failure-free seconds to map one 64 MB block (Table 4)


def show_model() -> None:
    """Formula 5 across the paper's Table 2 interruption groups."""
    rows = []
    for name, mtbi, mu in [
        ("dedicated", None, 0.0),
        ("group-1", 10.0, 4.0),
        ("group-2", 10.0, 8.0),
        ("group-3", 20.0, 4.0),
        ("group-4", 20.0, 8.0),
    ]:
        lam = 0.0 if mtbi is None else 1.0 / mtbi
        t = expected_task_time(GAMMA, lam, mu)
        rows.append([name, f"{t:.1f}", f"{t / GAMMA:.2f}x"])
    print(format_table(["host", "E[T] (s)", "slowdown"], rows,
                       title="Expected 12s-task time under interruptions (formula 5)"))


def show_placement() -> None:
    """How ADAPT splits 200 blocks across a mixed population."""
    views = [
        NodeView("dedicated-0", AvailabilityEstimate(0.0, 0.0, 1)),
        NodeView("dedicated-1", AvailabilityEstimate(0.0, 0.0, 1)),
        NodeView("group2-0", AvailabilityEstimate(0.1, 8.0, 1)),
        NodeView("group3-0", AvailabilityEstimate(0.05, 4.0, 1)),
    ]
    plan = AdaptPlacement().build_plan(views, num_blocks=200, replication=1, gamma=GAMMA)
    rng = RandomSource(0)
    for _ in range(200):
        plan.choose_replicas(rng)
    rows = [[n, c] for n, c in sorted(plan.allocations().items())]
    print()
    print(format_table(["node", "blocks"], rows,
                       title="ADAPT allocation of 200 blocks (Algorithm 1)"))


def show_end_to_end() -> None:
    """Stock HDFS vs ADAPT on a 32-node emulated non-dedicated cluster."""
    hosts = build_group_hosts(node_count=32, interrupted_ratio=0.5)
    config = ClusterConfig(bandwidth_mbps=8.0, seed=7)
    rows = []
    for policy in ("existing", "adapt"):
        result = run_map_phase(hosts, config, policy, replication=1, blocks_per_node=10)
        rows.append([
            policy,
            f"{result.elapsed:.1f}",
            f"{result.data_locality:.3f}",
            f"{result.overhead_ratios['migration']:.3f}",
        ])
    print()
    print(format_table(
        ["placement", "map elapsed (s)", "locality", "migration overhead"],
        rows,
        title="32-node emulation, half the nodes interrupted (Table 2 groups)",
    ))
    print("\nADAPT finishes the map phase faster with higher data locality —")
    print("the Section V.B result at small scale.")


if __name__ == "__main__":
    show_model()
    show_placement()
    show_end_to_end()
