#!/usr/bin/env python3
"""Synthetic SETI@home-style availability traces (the paper's Table 1 data).

Generates a volunteer-host population from the Table-1-calibrated model,
reports the pooled interruption statistics next to the paper's values, and
shows the per-host heterogeneity (the CoV >> 1 property that motivates
availability-aware placement), then runs a scaled-down Figure 5 point on
those hosts.

Run: ``python examples/volunteer_traces.py [--nodes 400]``
"""

import argparse

from repro.availability.seti import (
    TABLE1_DURATION_COV,
    TABLE1_DURATION_MEAN,
    TABLE1_MTBI_COV,
    TABLE1_MTBI_MEAN,
    SetiTraceGenerator,
)
from repro.availability.traces import pooled_summary
from repro.experiments.config import SimulationConfig, Strategy
from repro.experiments.largescale import run_simulation_point
from repro.util.rng import RandomSource
from repro.util.stats import percentile
from repro.util.tables import format_table


def main() -> None:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--nodes", type=int, default=400)
    parser.add_argument("--seed", type=int, default=0)
    args = parser.parse_args()

    config = SimulationConfig(node_count=args.nodes, seed=args.seed)
    generator = SetiTraceGenerator(
        config.seti_params(), RandomSource(args.seed).substream("example")
    )

    # -- Table 1 -----------------------------------------------------------
    horizon = 1.5 * 365 * 86400.0  # the FTA collection window
    traces = generator.sample_traces(args.nodes, horizon)
    stats = pooled_summary(traces)
    rows = [
        ["MTBI (s)", f"{stats['mtbi'].mean:.0f}", f"{stats['mtbi'].cov:.2f}",
         f"{TABLE1_MTBI_MEAN:.0f}", f"{TABLE1_MTBI_COV:.2f}"],
        ["duration (s)", f"{stats['duration'].mean:.0f}", f"{stats['duration'].cov:.2f}",
         f"{TABLE1_DURATION_MEAN:.0f}", f"{TABLE1_DURATION_COV:.2f}"],
    ]
    print(format_table(
        ["quantity", "mean (ours)", "CoV (ours)", "mean (paper)", "CoV (paper)"],
        rows,
        title=f"Table 1 reproduction: pooled stats over {args.nodes} hosts x 1.5 years",
    ))

    # -- heterogeneity ------------------------------------------------------
    hosts = generator.sample_hosts(args.nodes)
    mtbis = sorted(h.mtbi for h in hosts)
    ups = sorted(t.uptime_fraction() for t in traces)
    rows = [
        ["per-host MTBI (s)", f"{percentile(mtbis, 10):.0f}", f"{percentile(mtbis, 50):.0f}",
         f"{percentile(mtbis, 90):.0f}"],
        ["per-host uptime fraction", f"{percentile(ups, 10):.2f}", f"{percentile(ups, 50):.2f}",
         f"{percentile(ups, 90):.2f}"],
    ]
    print()
    print(format_table(["quantity", "p10", "p50", "p90"], rows,
                       title="Host heterogeneity (why one placement does not fit all)"))

    # -- a Figure 5 point -----------------------------------------------------
    small = SimulationConfig(node_count=min(args.nodes, 256), tasks_per_node=20, seed=args.seed)
    print()
    rows = []
    for strategy in (Strategy("existing", 1), Strategy("adapt", 1), Strategy("adapt", 2)):
        result = run_simulation_point(small, strategy)
        o = result.overhead_ratios
        rows.append([strategy.label, f"{result.elapsed:.0f}",
                     f"{o['migration']:.2f}", f"{o['recovery']:.2f}", f"{o['total']:.2f}"])
    print(format_table(
        ["strategy", "elapsed (s)", "migration", "recovery", "total overhead"],
        rows,
        title=f"Trace-driven map phase on {small.node_count} volunteer hosts (Fig 5 point)",
    ))


if __name__ == "__main__":
    main()
