"""F-rule fixture pairs, the simflow CLI, and the effects artifact.

Same conventions as ``test_simlint_rules.py``: fixtures are copied into
a ``src/`` directory under ``tmp_path`` so they analyse at error
severity, and the fixture corpus itself is pruned from repo-wide runs.
"""

import json
import shutil
from pathlib import Path

import pytest

from repro.devtools.simflow.cli import main as simflow_main
from repro.devtools.simflow.effects import build_index
from repro.devtools.simlint.engine import lint_paths

FIXTURES = Path(__file__).parent / "fixtures"
RULES = ["F001", "F002", "F003", "F004"]


def lint_fixture(tmp_path, name):
    src = tmp_path / "src"
    src.mkdir(exist_ok=True)
    shutil.copy(FIXTURES / f"{name}.py", src / f"{name}.py")
    return lint_paths([str(src)], root=str(tmp_path), tool="simflow")


@pytest.mark.parametrize("rule", RULES)
class TestFixturePairs:
    def test_bad_fixture_flags_exactly_that_rule(self, tmp_path, rule):
        result = lint_fixture(tmp_path, f"{rule.lower()}_bad")
        codes = {d.code for d in result.diagnostics}
        assert codes == {rule}, [d.render() for d in result.diagnostics]
        assert all(d.severity == "error" for d in result.diagnostics)
        assert result.exit_code(strict=False) == 1

    def test_clean_fixture_produces_no_diagnostics(self, tmp_path, rule):
        result = lint_fixture(tmp_path, f"{rule.lower()}_ok")
        assert result.diagnostics == [], [d.render() for d in result.diagnostics]
        assert result.exit_code(strict=False) == 0


class TestFindingShape:
    def test_f001_names_both_handlers_and_the_conflict_field(self, tmp_path):
        result = lint_fixture(tmp_path, "f001_bad")
        (diag,) = result.diagnostics
        assert "Mutator.handle_node_down" in diag.message
        assert "Auditor.handle_node_down" in diag.message
        assert "Store.count" in diag.message
        assert "NETWORK" in diag.message and "STORAGE" in diag.message

    def test_f002_points_at_the_publish_site_and_suggests_the_marker(self, tmp_path):
        result = lint_fixture(tmp_path, "f002_bad")
        (diag,) = result.diagnostics
        text = (FIXTURES / "f002_bad.py").read_text().splitlines()
        assert "publish" in text[diag.line - 1]
        assert "dispatch-root" in diag.message

    def test_f003_reports_contract_origin_and_draw_site(self, tmp_path):
        result = lint_fixture(tmp_path, "f003_bad")
        contract = [d for d in result.diagnostics if "draw-free" in d.message]
        seeds = [d for d in result.diagnostics if "literal constant" in d.message]
        assert len(contract) == 1 and len(seeds) == 1
        assert "comment contract" in contract[0].message
        assert "RandomSource.choice" in contract[0].message

    def test_f004_names_each_capture_kind(self, tmp_path):
        result = lint_fixture(tmp_path, "f004_bad")
        messages = " | ".join(d.message for d in result.diagnostics)
        assert "lambda" in messages
        assert "bound method" in messages
        assert "nested function" in messages

    def test_f003_docstring_phrase_is_a_contract(self, tmp_path):
        src = tmp_path / "src"
        src.mkdir()
        (src / "mod.py").write_text(
            "class RandomSource:\n"
            "    def choice(self, items):\n"
            "        return items[0]\n\n\n"
            "class Placer:\n"
            "    def pick(self, rng: RandomSource, items):\n"
            '        """Substitute deterministically; consumes no randomness."""\n'
            "        return rng.choice(items)\n"
        )
        result = lint_paths([src], root=tmp_path, tool="simflow")
        (diag,) = result.diagnostics
        assert diag.code == "F003"
        assert "docstring contract" in diag.message

    def test_transitive_draw_through_a_helper_violates_the_contract(self, tmp_path):
        src = tmp_path / "src"
        src.mkdir()
        (src / "mod.py").write_text(
            "class RandomSource:\n"
            "    def choice(self, items):\n"
            "        return items[0]\n\n\n"
            "class Placer:\n"
            "    def _helper(self, rng: RandomSource, items):\n"
            "        return rng.choice(items)\n\n"
            "    def pick(self, rng: RandomSource, items):  # simflow: draws=0\n"
            "        return self._helper(rng, items)\n"
        )
        result = lint_paths([src], root=tmp_path, tool="simflow")
        (diag,) = result.diagnostics
        assert diag.code == "F003"
        assert "Placer.pick" in diag.message


class TestSuppression:
    def test_simflow_ignore_silences_an_f_rule(self, tmp_path):
        src = tmp_path / "src"
        src.mkdir()
        text = (FIXTURES / "f004_bad.py").read_text().replace(
            "doubled = pool.map(lambda spec: spec * 2, specs)",
            "doubled = pool.map(lambda spec: spec * 2, specs)  # simflow: ignore[F004]",
        )
        (src / "mod.py").write_text(text)
        result = lint_paths([src], root=tmp_path, tool="simflow")
        codes = [d.code for d in result.diagnostics]
        assert codes == ["F004", "F004"]  # the other two sites still fire

    def test_simlint_ignore_is_inert_under_simflow(self, tmp_path):
        src = tmp_path / "src"
        src.mkdir()
        text = (FIXTURES / "f004_bad.py").read_text().replace(
            "doubled = pool.map(lambda spec: spec * 2, specs)",
            "doubled = pool.map(lambda spec: spec * 2, specs)  # simlint: ignore[F004]",
        )
        (src / "mod.py").write_text(text)
        result = lint_paths([src], root=tmp_path, tool="simflow")
        codes = [d.code for d in result.diagnostics]
        assert codes == ["F004", "F004", "F004"]


class TestCli:
    def test_list_rules_names_every_f_code(self, capsys):
        code = simflow_main(["--list-rules"])
        out = capsys.readouterr().out
        assert code == 0
        for expected in RULES:
            assert expected in out

    def test_text_output_and_exit_code(self, tmp_path, capsys):
        src = tmp_path / "src"
        src.mkdir()
        shutil.copy(FIXTURES / "f004_bad.py", src / "mod.py")
        code = simflow_main([str(src), "--root", str(tmp_path)])
        out = capsys.readouterr().out
        assert code == 1
        assert "F004" in out

    def test_effects_artifact_has_closed_sets(self, tmp_path, capsys):
        src = tmp_path / "src"
        src.mkdir()
        shutil.copy(FIXTURES / "f001_bad.py", src / "mod.py")
        effects_path = tmp_path / "effects.json"
        code = simflow_main(
            [str(src), "--root", str(tmp_path), "--effects", str(effects_path)]
        )
        capsys.readouterr()
        assert code == 1
        document = json.loads(effects_path.read_text())
        assert document["version"] == 1
        reader = document["functions"]["Auditor.handle_node_down"]
        writer = document["functions"]["Mutator.handle_node_down"]
        assert "Store.count" in reader["reads"]
        assert "Store.count" in writer["writes"]

    def test_sarif_format_reports_f_rules(self, tmp_path, capsys):
        src = tmp_path / "src"
        src.mkdir()
        shutil.copy(FIXTURES / "f002_bad.py", src / "mod.py")
        code = simflow_main(
            [str(src), "--root", str(tmp_path), "--format", "sarif"]
        )
        document = json.loads(capsys.readouterr().out)
        assert code == 1
        (run,) = document["runs"]
        assert run["tool"]["driver"]["name"] == "simflow"
        assert [r["ruleId"] for r in run["results"]] == ["F002"]

    def test_baseline_round_trip(self, tmp_path, capsys):
        src = tmp_path / "src"
        src.mkdir()
        shutil.copy(FIXTURES / "f001_bad.py", src / "mod.py")
        baseline = tmp_path / "baseline.json"
        argv = [str(src), "--root", str(tmp_path), "--baseline", str(baseline)]
        assert simflow_main(argv + ["--write-baseline"]) == 0
        capsys.readouterr()
        assert simflow_main(argv) == 0
        assert "baselined" in capsys.readouterr().out


class TestEffectExtraction:
    """Regressions for extraction gaps the runtime crosscheck exposed."""

    def _index(self, tmp_path, source):
        src = tmp_path / "src"
        src.mkdir()
        (src / "mod.py").write_text(source)
        result = lint_paths([src], root=tmp_path, tool="simflow")
        assert result.graph is not None
        return build_index(result.modules, result.graph)

    def test_optional_string_annotation_resolves_the_field_type(self, tmp_path):
        index = self._index(
            tmp_path,
            "from typing import Optional\n\n\n"
            "class Tracker:\n"
            "    def __init__(self):\n"
            "        self.fails = 0\n\n"
            "    def on_fail(self):\n"
            "        self.fails += 1\n\n\n"
            "class Worker:\n"
            "    def __init__(self, tracker: Optional[\"Tracker\"] = None):\n"
            "        self._tracker = tracker\n\n"
            "    def handle_node_down(self, event):\n"
            "        self._tracker.on_fail()\n",
        )
        effects = index.lookup("Worker", "handle_node_down")
        assert effects is not None
        assert "Tracker.fails" in effects.writes

    def test_dict_rebuild_keeps_the_value_type(self, tmp_path):
        index = self._index(
            tmp_path,
            "from typing import Dict\n\n\n"
            "class Tracker:\n"
            "    def __init__(self):\n"
            "        self.up = True\n\n\n"
            "class Master:\n"
            "    def __init__(self, trackers: Dict[int, Tracker]):\n"
            "        self._trackers = dict(sorted(trackers.items()))\n\n"
            "    def handle_node_down(self, event):\n"
            "        for _node, tracker in self._trackers.items():\n"
            "            tracker.up = False\n",
        )
        effects = index.lookup("Master", "handle_node_down")
        assert effects is not None
        assert "Tracker.up" in effects.writes

    def test_covered_closure_links_stored_callbacks(self, tmp_path):
        index = self._index(
            tmp_path,
            "class Transfer:\n"
            "    def __init__(self, on_done):\n"
            "        self.on_done = on_done\n\n\n"
            "class Network:\n"
            "    def __init__(self):\n"
            "        self._ids = 0\n\n"
            "    def send(self, callback):\n"
            "        self._ids += 1\n"
            "        return Transfer(on_done=callback)\n\n"
            "    def finish(self, transfer: Transfer):\n"
            "        transfer.on_done(transfer)\n\n\n"
            "class Caller:\n"
            "    def __init__(self, network: Network):\n"
            "        self._network = network\n"
            "        self.done = 0\n\n"
            "    def start(self):\n"
            "        self._network.send(on_done=lambda t: self._mark(t))\n\n"
            "    def _mark(self, transfer):\n"
            "        self.done += 1\n",
        )
        # Hazard closure: finish() only invokes an opaque attribute.
        closed = index.lookup("Network", "finish")
        assert closed is not None and "Caller.done" not in closed.writes
        # Coverage closure: the on_done registration in Caller.start links
        # finish() to the lambda's effects (folded into start).
        covered = index.lookup_covered("Network", "finish")
        assert covered is not None and "Caller.done" in covered.writes


class TestRepoSource:
    """The repo's own src/ passes simflow modulo the committed baseline."""

    def test_src_is_clean_under_the_committed_baseline(self):
        repo = Path(__file__).resolve().parents[2]
        result = lint_paths([repo / "src"], root=repo, tool="simflow")
        baseline = json.loads((repo / "tools" / "simflow_baseline.json").read_text())
        allowed: dict = {}
        for entry in baseline["entries"]:
            key = (entry["path"], entry["code"])
            allowed[key] = allowed.get(key, 0) + entry["count"]
        extra = []
        for diag in result.diagnostics:
            key = (diag.path, diag.code)
            if allowed.get(key, 0) > 0:
                allowed[key] -= 1
            else:
                extra.append(diag.render())
        assert extra == [], extra

    def test_committed_baseline_stays_small_and_justified(self):
        repo = Path(__file__).resolve().parents[2]
        baseline = json.loads((repo / "tools" / "simflow_baseline.json").read_text())
        assert len(baseline["entries"]) <= 3
        for entry in baseline["entries"]:
            assert entry.get("justification"), entry
