"""C002 clean fixture: every subscriber class is registered as a Service."""

ACCOUNTING = 0


class Event:
    def __init__(self, time):
        self.time = time


class NodeDown(Event):
    pass


class Tracker:
    name = "tracker"

    def start(self):
        pass

    def stop(self):
        pass

    def handle_node_down(self, event):
        return event


def wire(bus, services):
    tracker = Tracker()
    services.register(tracker)
    bus.subscribe(NodeDown, tracker.handle_node_down, ACCOUNTING)
    bus.publish(NodeDown(0.0))
