"""C001 clean fixture: every concrete event is both published and subscribed."""

ACCOUNTING = 0


class Event:
    """Base class for the fixture's bus events."""

    def __init__(self, time):
        self.time = time


class BlockMoved(Event):
    """Carried end to end: published and handled."""


def on_block_moved(event):
    return event


def wire(bus):
    bus.subscribe(BlockMoved, on_block_moved, ACCOUNTING)
    bus.publish(BlockMoved(0.0))
