"""D002 fixture: wall-clock read inside simulation code."""

import time


def stamp(record):
    record["at"] = time.time()
    return record
