"""D005 clean fixture: allocate the default inside the body."""


def record(value, sink=None):
    if sink is None:
        sink = []
    sink.append(value)
    return sink
