"""D001 clean fixture: every generator is explicitly seeded."""

import random


def jitter(base, stream):
    return base + stream.uniform(0.0, 1.0)


def fresh_generator(seed):
    return random.Random(seed)
