"""C002 fixture: Watcher subscribes to the bus but is never registered."""

ACCOUNTING = 0


class Event:
    def __init__(self, time):
        self.time = time


class NodeDown(Event):
    pass


class Tracker:
    name = "tracker"

    def start(self):
        pass

    def stop(self):
        pass

    def handle_node_down(self, event):
        return event


class Watcher:
    name = "watcher"

    def start(self):
        pass

    def stop(self):
        pass

    def handle_node_down(self, event):
        return event


def wire(bus, services):
    tracker = Tracker()
    services.register(tracker)
    bus.subscribe(NodeDown, tracker.handle_node_down, ACCOUNTING)
    watcher = Watcher()
    bus.subscribe(NodeDown, watcher.handle_node_down, ACCOUNTING)
    bus.publish(NodeDown(0.0))
