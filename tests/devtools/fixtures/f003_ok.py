"""F003 clean fixture: the declared draw-free path only derives child
streams, and the root stream is seeded from a parameter."""


class RandomSource:
    def __init__(self, seed):
        self.seed = seed

    def choice(self, items):
        return items[0]

    def substream(self, label):
        return RandomSource(self.seed)


class Placer:
    def pick(self, rng: RandomSource, items):  # simflow: draws=0
        rng.substream("placement")
        return items[0]


def root_stream(seed):
    return RandomSource(seed)
