"""D005 fixture: mutable default shared across calls."""


def record(value, sink=[]):
    sink.append(value)
    return sink
