"""C004 clean fixture: handler signature matches the bus contract."""

ACCOUNTING = 0


class Event:
    def __init__(self, time):
        self.time = time


class NodeDown(Event):
    pass


class Tracker:
    name = "tracker"

    def start(self):
        pass

    def stop(self):
        pass

    def handle_node_down(self, event: "NodeDown"):
        return event


def wire(bus):
    tracker = Tracker()
    bus.subscribe(NodeDown, tracker.handle_node_down, ACCOUNTING)
    bus.publish(NodeDown(0.0))
