"""F002 clean fixture: the published event carries the dispatch-root
marker, declaring that its publish starts a fresh phase cycle."""

ACCOUNTING = 0
DETECTION = 4


class Event:
    def __init__(self, time):
        self.time = time


class NodeDown(Event):
    pass


class DeclaredDead(Event):
    """Detection belief change.

    Dispatch-root: publishing this event starts a new phase cycle, so
    earlier-phase subscribers are the intended consumers."""


class Detector:
    name = "detector"

    def __init__(self, bus):
        self._bus = bus

    def start(self):
        pass

    def stop(self):
        pass

    def handle_node_down(self, event):
        self._bus.publish(DeclaredDead(event.time))


class Ledger:
    name = "ledger"

    def start(self):
        pass

    def stop(self):
        pass

    def handle_declared_dead(self, event):
        return event


def wire(bus, services):
    detector = Detector(bus)
    ledger = Ledger()
    services.register(detector)
    services.register(ledger)
    bus.subscribe(NodeDown, detector.handle_node_down, DETECTION)
    bus.subscribe(DeclaredDead, ledger.handle_declared_dead, ACCOUNTING)
    bus.publish(NodeDown(0.0))
