"""D004 fixture: float identity between two simulated times."""


def is_stale(cache_time, now):
    if cache_time != now:
        return True
    return False
