"""Chaos clean fixture: the engine is registered and owns a full
start()/stop() lifecycle, matching the real cluster.py wiring."""

ACCOUNTING = 0


class Event:
    def __init__(self, time):
        self.time = time


class NodeDown(Event):
    pass


class ChaosScenarioStarted(Event):
    pass


class ChaosEngine:
    name = "chaos-engine"

    def start(self):
        self._armed = True

    def stop(self):
        self._armed = False

    def handle_node_down(self, event):
        return event

    def handle_scenario_started(self, event):
        return event


def wire(bus, services):
    chaos = ChaosEngine()
    services.register(chaos)
    bus.subscribe(NodeDown, chaos.handle_node_down, ACCOUNTING)
    bus.subscribe(ChaosScenarioStarted, chaos.handle_scenario_started, ACCOUNTING)
    bus.publish(NodeDown(0.0))
    bus.publish(ChaosScenarioStarted(0.0))
