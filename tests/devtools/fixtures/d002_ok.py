"""D002 clean fixture: simulated time flows in as a parameter."""


def stamp(record, now):
    record["at"] = now
    return record
