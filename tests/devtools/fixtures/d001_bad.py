"""D001 fixture: ambient global-state randomness."""

import random


def jitter(base):
    return base + random.uniform(0.0, 1.0)


def fresh_generator():
    return random.Random()
