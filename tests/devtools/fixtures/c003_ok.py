"""C003 clean fixture: start() and stop() both defined."""


class Pump:
    name = "pump"

    def start(self):
        self._armed = True

    def stop(self):
        self._armed = False
