"""F003 fixture: a declared draw-free path that draws, and a stream
seeded with a literal constant."""


class RandomSource:
    def __init__(self, seed):
        self.seed = seed

    def choice(self, items):
        return items[0]

    def substream(self, label):
        return RandomSource(self.seed)


class Placer:
    def pick(self, rng: RandomSource, items):  # simflow: draws=0
        return rng.choice(items)


def root_stream():
    return RandomSource(42)
