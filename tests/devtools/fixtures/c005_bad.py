"""C005 fixture: a dataclass event without slots (carries a __dict__)."""

from dataclasses import dataclass

ACCOUNTING = 0


class Event:
    """Base class for the fixture's bus events."""

    def __init__(self, time):
        self.time = time


@dataclass(frozen=True)
class BlockMoved(Event):
    """Carried end to end: published and handled — but unslotted."""

    time: float


def on_block_moved(event):
    return event


def wire(bus):
    bus.subscribe(BlockMoved, on_block_moved, ACCOUNTING)
    bus.publish(BlockMoved(0.0))
