"""C004 fixture: handler takes an extra required parameter."""

ACCOUNTING = 0


class Event:
    def __init__(self, time):
        self.time = time


class NodeDown(Event):
    pass


class Tracker:
    name = "tracker"

    def start(self):
        pass

    def stop(self):
        pass

    def handle_node_down(self, event, retries):
        return event, retries


def wire(bus):
    tracker = Tracker()
    bus.subscribe(NodeDown, tracker.handle_node_down, ACCOUNTING)
    bus.publish(NodeDown(0.0))
