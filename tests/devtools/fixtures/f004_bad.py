"""F004 fixture: closures and bound methods shipped to a process pool."""

from concurrent.futures import ProcessPoolExecutor


class Runner:
    def simulate(self, spec):
        return spec

    def sweep(self, specs):
        with ProcessPoolExecutor() as pool:
            doubled = pool.map(lambda spec: spec * 2, specs)
            handles = [pool.submit(self.simulate, spec) for spec in specs]
        return doubled, handles


def sweep_with_nested(specs):
    def run_one(spec):
        return spec

    pool = ProcessPoolExecutor()
    return list(pool.map(run_one, specs))
