"""D003 fixture: iteration order leaks out of an unordered set."""


def drain(pending, done):
    remaining = set(pending) - set(done)
    order = []
    for node_id in remaining:
        order.append(node_id)
    return order
