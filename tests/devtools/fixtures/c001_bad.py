"""C001 fixture: one event is published but never subscribed, another is
subscribed but never published."""

ACCOUNTING = 0


class Event:
    """Base class for the fixture's bus events."""

    def __init__(self, time):
        self.time = time


class BlockMoved(Event):
    """Published below, but nothing ever subscribes."""


class QueueDrained(Event):
    """Subscribed below, but nothing ever publishes."""


def on_queue_drained(event):
    return event


def wire(bus):
    bus.subscribe(QueueDrained, on_queue_drained, ACCOUNTING)
    bus.publish(BlockMoved(0.0))
