"""Chaos fixture: an engine wired onto the bus but never registered
(C002), whose lifecycle is half-implemented — start() without stop()
(C003). Mirrors the real chaos-engine wiring shape in cluster.py.
"""

ACCOUNTING = 0


class Event:
    def __init__(self, time):
        self.time = time


class NodeDown(Event):
    pass


class ChaosScenarioStarted(Event):
    pass


class Recorder:
    name = "recorder"

    def start(self):
        pass

    def stop(self):
        pass

    def handle_node_down(self, event):
        return event


class ChaosEngine:
    name = "chaos-engine"

    def start(self):
        self._armed = True

    def handle_node_down(self, event):
        return event

    def handle_scenario_started(self, event):
        return event


def wire(bus, services):
    recorder = Recorder()
    services.register(recorder)
    bus.subscribe(NodeDown, recorder.handle_node_down, ACCOUNTING)
    chaos = ChaosEngine()
    bus.subscribe(NodeDown, chaos.handle_node_down, ACCOUNTING)
    bus.subscribe(ChaosScenarioStarted, chaos.handle_scenario_started, ACCOUNTING)
    bus.publish(NodeDown(0.0))
    bus.publish(ChaosScenarioStarted(0.0))
