"""D003 clean fixture: set iteration goes through sorted()."""


def drain(pending, done):
    remaining = set(pending) - set(done)
    order = []
    for node_id in sorted(remaining):
        order.append(node_id)
    return order


def count(pending):
    return len(set(pending))
