"""F004 clean fixture: module-level functions shipped to the pool."""

from concurrent.futures import ProcessPoolExecutor


def run_one(spec):
    return spec


def sweep(specs):
    with ProcessPoolExecutor() as pool:
        doubled = pool.map(run_one, specs)
        handles = [pool.submit(run_one, spec) for spec in specs]
    return doubled, handles
