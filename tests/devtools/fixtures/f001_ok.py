"""F001 clean fixture: the reader subscribes in ACCOUNTING, whose
contract is to observe the pre-reaction state — later mutation is the
architecture, not a hazard."""

ACCOUNTING = 0
NETWORK = 3


class Event:
    def __init__(self, time):
        self.time = time


class NodeDown(Event):
    pass


class Store:
    def __init__(self):
        self.count = 0


class Auditor:
    name = "auditor"

    def __init__(self, store: Store):
        self._store = store

    def start(self):
        pass

    def stop(self):
        pass

    def handle_node_down(self, event):
        return self._store.count


class Mutator:
    name = "mutator"

    def __init__(self, store: Store):
        self._store = store

    def start(self):
        pass

    def stop(self):
        pass

    def handle_node_down(self, event):
        self._store.count = self._store.count - 1


def wire(bus, services):
    store = Store()
    auditor = Auditor(store)
    mutator = Mutator(store)
    services.register(auditor)
    services.register(mutator)
    bus.subscribe(NodeDown, auditor.handle_node_down, ACCOUNTING)
    bus.subscribe(NodeDown, mutator.handle_node_down, NETWORK)
    bus.publish(NodeDown(0.0))
