"""D004 clean fixture: monotonic comparison instead of float identity."""


def is_stale(cache_time, now):
    if cache_time < now:
        return True
    return False
