"""C003 fixture: a lifecycle half — start() defined without stop()."""


class Pump:
    name = "pump"

    def start(self):
        self._armed = True
