"""C005 clean fixture: dataclass events opt into slots, both ways."""

from dataclasses import dataclass

ACCOUNTING = 0


class Event:
    """Base class for the fixture's bus events."""

    def __init__(self, time):
        self.time = time


@dataclass(frozen=True, slots=True)
class BlockMoved(Event):
    """Slotted via the dataclass keyword."""

    time: float


@dataclass(frozen=True)
class BlockDropped(Event):
    """Slotted via an explicit __slots__ declaration."""

    __slots__ = ("time",)

    time: float


def on_block_moved(event):
    return event


def on_block_dropped(event):
    return event


def wire(bus):
    bus.subscribe(BlockMoved, on_block_moved, ACCOUNTING)
    bus.subscribe(BlockDropped, on_block_dropped, ACCOUNTING)
    bus.publish(BlockMoved(0.0))
    bus.publish(BlockDropped(0.0))
