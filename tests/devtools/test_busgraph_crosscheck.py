"""The statically-extracted bus graph must match the wiring that runs.

simlint's contract rules (C001-C004) are only as good as its graph
extraction, so this suite builds real clusters and compares
:meth:`EventBus.registry_snapshot` — the live registry — against the
graph extracted from ``src/``. Every runtime subscription must appear as
a static subscribe site with the same (event, owner class, handler,
phase), and every static site in ``cluster.py`` must be reachable by
some supported configuration.
"""

from pathlib import Path

import pytest

from repro.availability.generator import build_group_hosts
from repro.devtools.simlint.busgraph import to_dot, to_json
from repro.devtools.simlint.engine import lint_paths
from repro.runtime.cluster import ClusterConfig, build_cluster
from repro.simulator.scenarios import (
    ChaosCampaign,
    DegradedLink,
    DelayedRecovery,
    FailureStorm,
    FlappingNode,
    GrayNode,
    NetworkPartition,
)

REPO_ROOT = Path(__file__).resolve().parents[2]

#: Exercises heartbeat detection, the replication monitor, tracing, the
#: auditor, permanent failures, and hard-downtime reads.
CONFIG_FULL = ClusterConfig(
    seed=3,
    detection="heartbeat",
    replication_monitor=True,
    access_during_downtime=False,
    trace_events=True,
    audit="report",
    permanent_failure_rate=0.2,
)
#: Exercises the oracle-detection wiring instead of heartbeats.
CONFIG_ORACLE = ClusterConfig(seed=3, detection="oracle")
#: Exercises the chaos-engine wiring (partitions, degradation, metrics).
CONFIG_CHAOS = ClusterConfig(
    seed=3,
    detection="heartbeat",
    chaos=ChaosCampaign(
        name="wiring",
        scenarios=(NetworkPartition(start=10.0, duration=5.0, count=1),),
    ),
)
#: Kitchen-sink Clos config: rack-aware placement, heartbeat detection,
#: the replication monitor, retransmit-tax link mitigation, and a chaos
#: campaign spanning every scenario primitive — the widest wiring any
#: single supported configuration can reach.
CONFIG_CLOS_FULL = ClusterConfig(
    seed=3,
    detection="heartbeat",
    replication_monitor=True,
    topology="clos",
    racks=2,
    pods=2,
    rack_aware_placement=True,
    link_mitigation="retransmit-tax",
    trace_events=True,
    audit="report",
    chaos=ChaosCampaign(
        name="wiring-clos-full",
        scenarios=(
            FailureStorm(start=5.0, duration=4.0, count=2),
            FlappingNode(start=12.0, cycles=2, down_time=1.0, up_time=1.0, count=1),
            NetworkPartition(start=20.0, duration=5.0, count=1, isolate_heartbeats=True),
            GrayNode(start=28.0, duration=4.0, link_factor=0.5, exec_factor=2.0, count=1),
            DegradedLink(start=34.0, duration=4.0, count=1, capacity_factor=0.5),
            DelayedRecovery(start=40.0, duration=5.0, stretch=2.0, count=1),
        ),
    ),
)
#: Exercises the Clos fabric plus the degraded-link mitigation wiring.
CONFIG_DEGRADED = ClusterConfig(
    seed=3,
    detection="oracle",
    topology="clos",
    racks=2,
    link_mitigation="do-nothing",
    chaos=ChaosCampaign(
        name="wiring-degraded",
        scenarios=(
            DegradedLink(start=10.0, duration=5.0, count=1, capacity_factor=0.5),
        ),
    ),
)


@pytest.fixture(scope="module")
def static_graph():
    result = lint_paths([REPO_ROOT / "src"], root=REPO_ROOT)
    assert result.graph is not None
    return result.graph


def _static_tuples(graph):
    return {
        (site.event, site.owner_class, site.handler, site.phase)
        for site in graph.subscribers
        if site.event is not None
    }


def _runtime_tuples(config):
    cluster = build_cluster(build_group_hosts(6, 0.5), config)
    return {
        (entry["event"], entry["owner"], entry["handler"], entry["phase"])
        for entry in cluster.bus.registry_snapshot()
    }


class TestRuntimeSubsetOfStatic:
    @pytest.mark.parametrize(
        "config",
        [CONFIG_FULL, CONFIG_ORACLE, CONFIG_CHAOS, CONFIG_DEGRADED, CONFIG_CLOS_FULL],
        ids=["full", "oracle", "chaos", "degraded", "clos-full"],
    )
    def test_every_live_subscription_was_extracted(self, static_graph, config):
        static = _static_tuples(static_graph)
        missing = _runtime_tuples(config) - static
        assert not missing, (
            "live subscriptions the static graph failed to extract: "
            f"{sorted(missing, key=str)}"
        )


class TestStaticSubsetOfRuntime:
    def test_every_cluster_wiring_site_is_reachable(self, static_graph):
        """Each subscribe() in cluster.py fires under some supported config."""
        wiring = {
            (site.event, site.owner_class, site.handler, site.phase)
            for site in static_graph.subscribers
            if site.event is not None and site.module.endswith("runtime/cluster.py")
        }
        live = (
            _runtime_tuples(CONFIG_FULL)
            | _runtime_tuples(CONFIG_ORACLE)
            | _runtime_tuples(CONFIG_CHAOS)
            | _runtime_tuples(CONFIG_DEGRADED)
            | _runtime_tuples(CONFIG_CLOS_FULL)
        )
        dead = wiring - live
        assert not dead, f"static subscribe sites no configuration wires: {sorted(dead, key=str)}"


class TestGraphOutputs:
    def test_known_wiring_appears_in_graph(self, static_graph):
        events = set(static_graph.events)
        assert {"NodeDown", "NodeUp", "PermanentFailure", "BlockLost"} <= events
        publishers = {site.event for site in static_graph.publishers}
        assert "NodeDown" in publishers

    def test_json_and_dot_are_deterministic(self, static_graph):
        assert to_json(static_graph) == to_json(static_graph)
        dot = to_dot(static_graph)
        assert dot == to_dot(static_graph)
        assert "NodeDown" in dot
