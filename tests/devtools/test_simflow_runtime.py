"""Runtime effect tracing: observed handler effects ⊆ static effect sets.

The flow rules (F001/F002) are only as sound as the effect extraction in
:mod:`repro.devtools.simflow.effects`, so — mirroring how
``test_busgraph_crosscheck.py`` validates the bus graph — this suite runs
real golden scenarios under :class:`EffectRecorder` and asserts that
every field a live handler actually read or wrote appears in its static
(transitively closed) effect set.
"""

from pathlib import Path

import pytest

from repro.availability.generator import build_group_hosts
from repro.devtools.simflow.effects import build_index
from repro.devtools.simflow.runtime import EffectRecorder, compare_observed_to_static
from repro.devtools.simlint.engine import lint_paths
from repro.mapreduce.job import JobConf, MapJob
from repro.runtime.cluster import ClusterConfig, build_cluster
from repro.simulator.events import EventBus, NodeDown, Phase
from repro.simulator.scenarios import ChaosCampaign, NetworkPartition

REPO_ROOT = Path(__file__).resolve().parents[2]

#: Heartbeat detection, the replication monitor, permanent failures and
#: hard-downtime reads: the widest handler set the flat topology wires.
CONFIG_HEARTBEAT = ClusterConfig(
    seed=11,
    detection="heartbeat",
    replication_monitor=True,
    access_during_downtime=False,
    permanent_failure_rate=0.2,
)
#: Oracle detection plus a chaos partition (the chaos-engine handlers).
CONFIG_ORACLE_CHAOS = ClusterConfig(
    seed=11,
    detection="oracle",
    chaos=ChaosCampaign(
        name="effects",
        scenarios=(NetworkPartition(start=5.0, duration=3.0, count=1),),
    ),
)


@pytest.fixture(scope="module")
def static_index():
    result = lint_paths([REPO_ROOT / "src"], root=REPO_ROOT, tool="simflow")
    assert result.graph is not None
    return build_index(result.modules, result.graph)


def _traced_run(config):
    cluster = build_cluster(build_group_hosts(6, 0.5), config)
    recorder = EffectRecorder()
    recorder.install(cluster.bus)
    try:
        cluster.sim.run(until=0.0)
        f = cluster.client.copy_from_local("in", num_blocks=12)
        job = MapJob.uniform(JobConf(), f, 30.0)
        cluster.jobtracker.submit(job)
        cluster.run_until_job_done()
        cluster.stop()
    finally:
        recorder.uninstall()
    return recorder


class TestObservedSubsetOfStatic:
    @pytest.mark.parametrize(
        "config",
        [CONFIG_HEARTBEAT, CONFIG_ORACLE_CHAOS],
        ids=["heartbeat-monitor", "oracle-chaos"],
    )
    def test_golden_scenario_effects_are_covered(self, static_index, config):
        recorder = _traced_run(config)
        assert recorder.dispatches, "scenario produced no bus dispatches"
        assert recorder.reads or recorder.writes, "no handler effects observed"
        violations = compare_observed_to_static(recorder, static_index)
        assert violations == [], "\n".join(violations)


class _Counter:
    """Toy handler-owning service for recorder unit tests."""

    def __init__(self):
        self.seen = 0
        self.other = None

    def handle_node_down(self, event):
        before = self.seen  # read
        self.seen = before + 1  # write

    def touch_outside_dispatch(self):
        return self.seen


class TestRecorderMechanics:
    def _bus_with_counter(self):
        bus = EventBus()
        counter = _Counter()
        # A toy subscriber: deliberately not a registered Service.
        bus.subscribe(  # simlint: ignore[C002]
            NodeDown, counter.handle_node_down, Phase.ACCOUNTING
        )
        return bus, counter

    def test_records_reads_and_writes_during_dispatch(self):
        bus, _counter = self._bus_with_counter()
        with EffectRecorder().install(bus) as recorder:
            bus.publish(NodeDown(time=0.0, node_id=1))
        key = ("_Counter", "handle_node_down")
        assert "seen" in recorder.reads[key]
        assert "seen" in recorder.writes[key]
        assert recorder.dispatches == [("NodeDown", "ACCOUNTING", "handle_node_down")]

    def test_accesses_outside_dispatch_are_ignored(self):
        bus, counter = self._bus_with_counter()
        with EffectRecorder().install(bus) as recorder:
            counter.touch_outside_dispatch()
        assert recorder.reads == {} and recorder.writes == {}

    def test_uninstall_restores_class_and_bus(self):
        bus, counter = self._bus_with_counter()
        recorder = EffectRecorder()
        recorder.install(bus)
        recorder.uninstall()
        bus.publish(NodeDown(time=0.0, node_id=1))
        assert counter.seen == 1  # handler still runs, untraced
        assert recorder.dispatches == []
        assert type(counter).__getattribute__ is object.__getattribute__

    def test_double_install_is_rejected(self):
        bus, _counter = self._bus_with_counter()
        recorder = EffectRecorder()
        recorder.install(bus)
        try:
            with pytest.raises(RuntimeError):
                recorder.install(bus)
        finally:
            recorder.uninstall()
