"""Engine behaviours: suppression, severity policy, discovery, CLI output."""

import json

import pytest

from repro.devtools.simlint.cli import main as simlint_main
from repro.devtools.simlint.engine import lint_paths


def write(tmp_path, rel, text):
    path = tmp_path / rel
    path.parent.mkdir(parents=True, exist_ok=True)
    path.write_text(text)
    return path


WALL_CLOCK = "import time\n\n\ndef stamp():\n    return time.time()\n"


class TestSuppression:
    def test_targeted_suppression_silences_the_finding(self, tmp_path):
        write(
            tmp_path,
            "src/mod.py",
            "import time\n\n\ndef stamp():\n"
            "    return time.time()  # simlint: ignore[D002]\n",
        )
        result = lint_paths([tmp_path / "src"], root=tmp_path)
        assert result.diagnostics == []

    def test_bare_suppression_silences_every_code_on_the_line(self, tmp_path):
        write(
            tmp_path,
            "src/mod.py",
            "import time\n\n\ndef stamp(sink=[]):  # simlint: ignore\n"
            "    sink.append(time.time())  # simlint: ignore\n"
            "    return sink\n",
        )
        result = lint_paths([tmp_path / "src"], root=tmp_path)
        assert result.diagnostics == []

    def test_unused_suppression_is_its_own_diagnostic(self, tmp_path):
        write(tmp_path, "src/mod.py", "VALUE = 1  # simlint: ignore[D002]\n")
        result = lint_paths([tmp_path / "src"], root=tmp_path)
        (diag,) = result.diagnostics
        assert diag.code == "U001"
        assert "D002" in diag.message

    def test_wrong_code_suppresses_nothing_and_is_unused(self, tmp_path):
        write(
            tmp_path,
            "src/mod.py",
            "import time\n\n\ndef stamp():\n"
            "    return time.time()  # simlint: ignore[D001]\n",
        )
        result = lint_paths([tmp_path / "src"], root=tmp_path)
        codes = sorted(d.code for d in result.diagnostics)
        assert codes == ["D002", "U001"]

    def test_docstring_mention_is_not_a_suppression(self, tmp_path):
        write(
            tmp_path,
            "src/mod.py",
            '"""Docs quoting `# simlint: ignore[D001]` verbatim."""\n\nVALUE = 1\n',
        )
        result = lint_paths([tmp_path / "src"], root=tmp_path)
        assert result.diagnostics == []


class TestSeverityAndSelect:
    def test_src_findings_are_errors(self, tmp_path):
        write(tmp_path, "src/mod.py", WALL_CLOCK)
        result = lint_paths([tmp_path / "src"], root=tmp_path)
        (diag,) = result.diagnostics
        assert diag.severity == "error"
        assert result.exit_code(strict=False) == 1

    def test_tests_findings_are_warnings_unless_strict(self, tmp_path):
        write(tmp_path, "tests/test_mod.py", WALL_CLOCK)
        result = lint_paths([tmp_path / "tests"], root=tmp_path)
        (diag,) = result.diagnostics
        assert diag.severity == "warning"
        assert result.exit_code(strict=False) == 0
        assert result.exit_code(strict=True) == 1

    def test_select_restricts_reported_rules(self, tmp_path):
        write(
            tmp_path,
            "src/mod.py",
            "import time\n\n\ndef stamp(sink=[]):\n"
            "    sink.append(time.time())\n    return sink\n",
        )
        result = lint_paths([tmp_path / "src"], root=tmp_path, select={"D005"})
        assert [d.code for d in result.diagnostics] == ["D005"]


class TestDiscovery:
    def test_fixture_directories_are_pruned(self, tmp_path):
        write(tmp_path, "src/fixtures/broken.py", WALL_CLOCK)
        write(tmp_path, "src/mod.py", "VALUE = 1\n")
        result = lint_paths([tmp_path / "src"], root=tmp_path)
        assert result.diagnostics == []
        assert len(result.modules) == 1

    def test_explicit_fixture_file_is_still_lintable(self, tmp_path):
        path = write(tmp_path, "src/fixtures/broken.py", WALL_CLOCK)
        result = lint_paths([path], root=tmp_path)
        assert [d.code for d in result.diagnostics] == ["D002"]

    def test_syntax_error_yields_p001(self, tmp_path):
        write(tmp_path, "src/mod.py", "def broken(:\n")
        result = lint_paths([tmp_path / "src"], root=tmp_path)
        (diag,) = result.diagnostics
        assert diag.code == "P001"
        assert result.exit_code(strict=False) == 1


class TestCli:
    def test_text_output_and_exit_code(self, tmp_path, capsys):
        write(tmp_path, "src/mod.py", WALL_CLOCK)
        code = simlint_main([str(tmp_path / "src"), "--root", str(tmp_path)])
        out = capsys.readouterr().out
        assert code == 1
        assert "D002" in out
        assert "1 error(s)" in out

    def test_json_output_is_stable_across_runs(self, tmp_path, capsys):
        write(tmp_path, "src/mod.py", WALL_CLOCK)
        argv = [str(tmp_path / "src"), "--root", str(tmp_path), "--format", "json"]
        simlint_main(argv)
        first = capsys.readouterr().out
        simlint_main(argv)
        second = capsys.readouterr().out
        assert first == second
        document = json.loads(first)
        assert document["version"] == 1
        assert document["counts"] == {"errors": 1, "warnings": 0, "files": 1}
        (diag,) = document["diagnostics"]
        assert diag["code"] == "D002"

    def test_graph_artifacts_dot_and_json(self, tmp_path, capsys):
        write(
            tmp_path,
            "src/mod.py",
            "ACCOUNTING = 0\n\n\n"
            "class Event:\n    def __init__(self, time):\n        self.time = time\n\n\n"
            "class Ping(Event):\n    pass\n\n\n"
            "def on_ping(event):\n    return event\n\n\n"
            "def wire(bus):\n"
            "    bus.subscribe(Ping, on_ping, ACCOUNTING)\n"
            "    bus.publish(Ping(0.0))\n",
        )
        dot_path = tmp_path / "bus.dot"
        json_path = tmp_path / "bus.json"
        for target in (dot_path, json_path):
            code = simlint_main(
                [str(tmp_path / "src"), "--root", str(tmp_path), "--graph", str(target)]
            )
            capsys.readouterr()
            assert code == 0
        assert "Ping" in dot_path.read_text()
        graph = json.loads(json_path.read_text())
        assert "Ping" in graph["events"]

    def test_list_rules_names_every_code(self, tmp_path, capsys):
        code = simlint_main(["--list-rules"])
        out = capsys.readouterr().out
        assert code == 0
        for expected in ("D001", "D002", "D003", "D004", "D005", "C001", "C002", "C003", "C004"):
            assert expected in out

    def test_missing_path_exits_2(self, tmp_path, capsys):
        code = simlint_main([str(tmp_path / "nope"), "--root", str(tmp_path)])
        capsys.readouterr()
        assert code == 2

    def test_repro_lint_subcommand_delegates(self, tmp_path, capsys):
        from repro.cli import main as repro_main

        write(tmp_path, "src/mod.py", WALL_CLOCK)
        code = repro_main(["lint", str(tmp_path / "src"), "--root", str(tmp_path)])
        out = capsys.readouterr().out
        assert code == 1
        assert "D002" in out
