"""Engine behaviours: suppression, severity policy, discovery, CLI output."""

import json

import pytest

from repro.devtools.simlint.cli import main as simlint_main
from repro.devtools.simlint.engine import lint_paths


def write(tmp_path, rel, text):
    path = tmp_path / rel
    path.parent.mkdir(parents=True, exist_ok=True)
    path.write_text(text)
    return path


WALL_CLOCK = "import time\n\n\ndef stamp():\n    return time.time()\n"


class TestSuppression:
    def test_targeted_suppression_silences_the_finding(self, tmp_path):
        write(
            tmp_path,
            "src/mod.py",
            "import time\n\n\ndef stamp():\n"
            "    return time.time()  # simlint: ignore[D002]\n",
        )
        result = lint_paths([tmp_path / "src"], root=tmp_path)
        assert result.diagnostics == []

    def test_bare_suppression_silences_every_code_on_the_line(self, tmp_path):
        write(
            tmp_path,
            "src/mod.py",
            "import time\n\n\ndef stamp(sink=[]):  # simlint: ignore\n"
            "    sink.append(time.time())  # simlint: ignore\n"
            "    return sink\n",
        )
        result = lint_paths([tmp_path / "src"], root=tmp_path)
        assert result.diagnostics == []

    def test_unused_suppression_is_its_own_diagnostic(self, tmp_path):
        write(tmp_path, "src/mod.py", "VALUE = 1  # simlint: ignore[D002]\n")
        result = lint_paths([tmp_path / "src"], root=tmp_path)
        (diag,) = result.diagnostics
        assert diag.code == "U001"
        assert "D002" in diag.message

    def test_wrong_code_suppresses_nothing_and_is_unused(self, tmp_path):
        write(
            tmp_path,
            "src/mod.py",
            "import time\n\n\ndef stamp():\n"
            "    return time.time()  # simlint: ignore[D001]\n",
        )
        result = lint_paths([tmp_path / "src"], root=tmp_path)
        codes = sorted(d.code for d in result.diagnostics)
        assert codes == ["D002", "U001"]

    def test_docstring_mention_is_not_a_suppression(self, tmp_path):
        write(
            tmp_path,
            "src/mod.py",
            '"""Docs quoting `# simlint: ignore[D001]` verbatim."""\n\nVALUE = 1\n',
        )
        result = lint_paths([tmp_path / "src"], root=tmp_path)
        assert result.diagnostics == []


class TestSuppressionAccounting:
    """Select-aware, per-code, per-tool usage accounting (U001)."""

    def test_multi_code_ignore_reports_only_the_unused_code(self, tmp_path):
        write(
            tmp_path,
            "src/mod.py",
            "import time\n\n\ndef stamp():\n"
            "    return time.time()  # simlint: ignore[D002, D003]\n",
        )
        result = lint_paths([tmp_path / "src"], root=tmp_path)
        (diag,) = result.diagnostics
        assert diag.code == "U001"
        assert "D003" in diag.message and "D002" not in diag.message

    def test_select_does_not_judge_deselected_codes_unused(self, tmp_path):
        # Regression: a --select run used to emit U001 for every listed
        # code whose rule never even ran this invocation.
        write(
            tmp_path,
            "src/mod.py",
            "import random\n\n\ndef jitter():\n"
            "    return random.random()  # simlint: ignore[D001, D003]\n",
        )
        full = lint_paths([tmp_path / "src"], root=tmp_path)
        assert [d.code for d in full.diagnostics] == ["U001"]  # D003 is stale
        partial = lint_paths([tmp_path / "src"], root=tmp_path, select={"D001"})
        assert partial.diagnostics == []  # no evidence D003 is stale

    def test_unknown_code_is_u001_on_full_runs_only(self, tmp_path):
        write(
            tmp_path,
            "src/mod.py",
            "import time\n\n\ndef stamp():\n"
            "    return time.time()  # simlint: ignore[D002, Z999]\n",
        )
        full = lint_paths([tmp_path / "src"], root=tmp_path)
        (diag,) = full.diagnostics
        assert diag.code == "U001"
        assert "unknown code Z999" in diag.message
        partial = lint_paths([tmp_path / "src"], root=tmp_path, select={"D002"})
        assert partial.diagnostics == []

    def test_bare_ignore_unused_only_judged_on_full_runs(self, tmp_path):
        write(tmp_path, "src/mod.py", "VALUE = 1  # simlint: ignore\n")
        full = lint_paths([tmp_path / "src"], root=tmp_path)
        assert [d.code for d in full.diagnostics] == ["U001"]
        partial = lint_paths([tmp_path / "src"], root=tmp_path, select={"D001"})
        assert partial.diagnostics == []

    def test_other_tools_comments_are_inert(self, tmp_path):
        # A simflow-prefixed comment neither suppresses a simlint finding
        # nor shows up in simlint's U001 accounting.
        write(
            tmp_path,
            "src/mod.py",
            "import time\n\n\ndef stamp():\n"
            "    return time.time()  # simflow: ignore[F003]\n",
        )
        result = lint_paths([tmp_path / "src"], root=tmp_path)
        assert [d.code for d in result.diagnostics] == ["D002"]

    def test_one_line_can_carry_both_tool_prefixes(self, tmp_path):
        write(
            tmp_path,
            "src/mod.py",
            "import time\n\n\ndef stamp():\n"
            "    return time.time()  # simlint: ignore[D002]  # simflow: ignore[F003]\n",
        )
        result = lint_paths([tmp_path / "src"], root=tmp_path)
        assert result.diagnostics == []


class TestSeverityAndSelect:
    def test_src_findings_are_errors(self, tmp_path):
        write(tmp_path, "src/mod.py", WALL_CLOCK)
        result = lint_paths([tmp_path / "src"], root=tmp_path)
        (diag,) = result.diagnostics
        assert diag.severity == "error"
        assert result.exit_code(strict=False) == 1

    def test_tests_findings_are_warnings_unless_strict(self, tmp_path):
        write(tmp_path, "tests/test_mod.py", WALL_CLOCK)
        result = lint_paths([tmp_path / "tests"], root=tmp_path)
        (diag,) = result.diagnostics
        assert diag.severity == "warning"
        assert result.exit_code(strict=False) == 0
        assert result.exit_code(strict=True) == 1

    def test_select_restricts_reported_rules(self, tmp_path):
        write(
            tmp_path,
            "src/mod.py",
            "import time\n\n\ndef stamp(sink=[]):\n"
            "    sink.append(time.time())\n    return sink\n",
        )
        result = lint_paths([tmp_path / "src"], root=tmp_path, select={"D005"})
        assert [d.code for d in result.diagnostics] == ["D005"]


class TestDiscovery:
    def test_fixture_directories_are_pruned(self, tmp_path):
        write(tmp_path, "src/fixtures/broken.py", WALL_CLOCK)
        write(tmp_path, "src/mod.py", "VALUE = 1\n")
        result = lint_paths([tmp_path / "src"], root=tmp_path)
        assert result.diagnostics == []
        assert len(result.modules) == 1

    def test_explicit_fixture_file_is_still_lintable(self, tmp_path):
        path = write(tmp_path, "src/fixtures/broken.py", WALL_CLOCK)
        result = lint_paths([path], root=tmp_path)
        assert [d.code for d in result.diagnostics] == ["D002"]

    def test_syntax_error_yields_p001(self, tmp_path):
        write(tmp_path, "src/mod.py", "def broken(:\n")
        result = lint_paths([tmp_path / "src"], root=tmp_path)
        (diag,) = result.diagnostics
        assert diag.code == "P001"
        assert result.exit_code(strict=False) == 1


class TestCli:
    def test_text_output_and_exit_code(self, tmp_path, capsys):
        write(tmp_path, "src/mod.py", WALL_CLOCK)
        code = simlint_main([str(tmp_path / "src"), "--root", str(tmp_path)])
        out = capsys.readouterr().out
        assert code == 1
        assert "D002" in out
        assert "1 error(s)" in out

    def test_json_output_is_stable_across_runs(self, tmp_path, capsys):
        write(tmp_path, "src/mod.py", WALL_CLOCK)
        argv = [str(tmp_path / "src"), "--root", str(tmp_path), "--format", "json"]
        simlint_main(argv)
        first = capsys.readouterr().out
        simlint_main(argv)
        second = capsys.readouterr().out
        assert first == second
        document = json.loads(first)
        assert document["version"] == 1
        assert document["counts"] == {"errors": 1, "warnings": 0, "files": 1}
        (diag,) = document["diagnostics"]
        assert diag["code"] == "D002"

    def test_graph_artifacts_dot_and_json(self, tmp_path, capsys):
        write(
            tmp_path,
            "src/mod.py",
            "ACCOUNTING = 0\n\n\n"
            "class Event:\n    def __init__(self, time):\n        self.time = time\n\n\n"
            "class Ping(Event):\n    pass\n\n\n"
            "def on_ping(event):\n    return event\n\n\n"
            "def wire(bus):\n"
            "    bus.subscribe(Ping, on_ping, ACCOUNTING)\n"
            "    bus.publish(Ping(0.0))\n",
        )
        dot_path = tmp_path / "bus.dot"
        json_path = tmp_path / "bus.json"
        for target in (dot_path, json_path):
            code = simlint_main(
                [str(tmp_path / "src"), "--root", str(tmp_path), "--graph", str(target)]
            )
            capsys.readouterr()
            assert code == 0
        assert "Ping" in dot_path.read_text()
        graph = json.loads(json_path.read_text())
        assert "Ping" in graph["events"]

    def test_list_rules_names_every_code(self, tmp_path, capsys):
        code = simlint_main(["--list-rules"])
        out = capsys.readouterr().out
        assert code == 0
        for expected in ("D001", "D002", "D003", "D004", "D005", "C001", "C002", "C003", "C004"):
            assert expected in out

    def test_missing_path_exits_2(self, tmp_path, capsys):
        code = simlint_main([str(tmp_path / "nope"), "--root", str(tmp_path)])
        capsys.readouterr()
        assert code == 2

    def test_repro_lint_subcommand_delegates(self, tmp_path, capsys):
        from repro.cli import main as repro_main

        write(tmp_path, "src/mod.py", WALL_CLOCK)
        code = repro_main(["lint", str(tmp_path / "src"), "--root", str(tmp_path)])
        out = capsys.readouterr().out
        assert code == 1
        assert "D002" in out


class TestSarif:
    def test_sarif_document_shape(self, tmp_path, capsys):
        write(tmp_path, "src/mod.py", WALL_CLOCK)
        code = simlint_main(
            [str(tmp_path / "src"), "--root", str(tmp_path), "--format", "sarif"]
        )
        document = json.loads(capsys.readouterr().out)
        assert code == 1
        assert document["version"] == "2.1.0"
        (run,) = document["runs"]
        assert run["tool"]["driver"]["name"] == "simlint"
        assert any(rule["id"] == "D002" for rule in run["tool"]["driver"]["rules"])
        (result,) = run["results"]
        assert result["ruleId"] == "D002"
        assert result["level"] == "error"
        region = result["locations"][0]["physicalLocation"]["region"]
        assert region["startLine"] == 5
        assert region["startColumn"] >= 1  # SARIF columns are 1-based

    def test_sarif_output_is_stable_across_runs(self, tmp_path, capsys):
        write(tmp_path, "src/mod.py", WALL_CLOCK)
        argv = [str(tmp_path / "src"), "--root", str(tmp_path), "--format", "sarif"]
        simlint_main(argv)
        first = capsys.readouterr().out
        simlint_main(argv)
        second = capsys.readouterr().out
        assert first == second


class TestBaseline:
    def test_write_then_subtract_round_trip(self, tmp_path, capsys):
        write(tmp_path, "src/mod.py", WALL_CLOCK)
        baseline = tmp_path / "baseline.json"
        argv = [str(tmp_path / "src"), "--root", str(tmp_path), "--baseline", str(baseline)]
        assert simlint_main(argv + ["--write-baseline"]) == 0
        capsys.readouterr()
        assert baseline.exists()
        assert simlint_main(argv) == 0  # the finding is baselined away
        assert "baselined" in capsys.readouterr().out

    def test_only_new_findings_gate_after_baseline(self, tmp_path, capsys):
        write(tmp_path, "src/mod.py", WALL_CLOCK)
        baseline = tmp_path / "baseline.json"
        argv = [str(tmp_path / "src"), "--root", str(tmp_path), "--baseline", str(baseline)]
        simlint_main(argv + ["--write-baseline"])
        capsys.readouterr()
        write(
            tmp_path,
            "src/other.py",
            "import random\n\n\ndef jitter():\n    return random.random()\n",
        )
        code = simlint_main(argv)
        out = capsys.readouterr().out
        assert code == 1
        assert "D001" in out and "D002" not in out

    def test_baseline_is_multiplicity_aware(self, tmp_path, capsys):
        write(
            tmp_path,
            "src/mod.py",
            "import time\n\n\ndef stamp():\n    return time.time()\n\n\n"
            "def stamp2():\n    return time.time()\n",
        )
        baseline = tmp_path / "baseline.json"
        argv = [str(tmp_path / "src"), "--root", str(tmp_path), "--baseline", str(baseline)]
        simlint_main(argv + ["--write-baseline"])
        capsys.readouterr()
        document = json.loads(baseline.read_text())
        (entry,) = document["entries"]
        assert entry["count"] == 2
        # A third identical finding is new and must gate.
        write(
            tmp_path,
            "src/mod.py",
            "import time\n\n\ndef stamp():\n    return time.time()\n\n\n"
            "def stamp2():\n    return time.time()\n\n\n"
            "def stamp3():\n    return time.time()\n",
        )
        code = simlint_main(argv)
        out = capsys.readouterr().out
        assert code == 1
        assert out.count("D002") == 1

    def test_missing_baseline_file_exits_2(self, tmp_path, capsys):
        write(tmp_path, "src/mod.py", "VALUE = 1\n")
        with pytest.raises(SystemExit) as excinfo:
            simlint_main(
                [
                    str(tmp_path / "src"),
                    "--root",
                    str(tmp_path),
                    "--baseline",
                    str(tmp_path / "nope.json"),
                ]
            )
        assert excinfo.value.code == 2

    def test_write_baseline_requires_baseline_path(self, tmp_path, capsys):
        write(tmp_path, "src/mod.py", "VALUE = 1\n")
        with pytest.raises(SystemExit) as excinfo:
            simlint_main(
                [str(tmp_path / "src"), "--root", str(tmp_path), "--write-baseline"]
            )
        assert excinfo.value.code == 2
