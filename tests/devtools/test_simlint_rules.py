"""Every rule is exercised by a (violating, clean) fixture pair.

Fixtures are copied into a ``src/`` directory inside ``tmp_path`` so they
lint at *error* severity — D004's tests-category exemption (and the
warning downgrade for everything outside ``src``) would otherwise hide
them. The fixture corpus itself lives in ``fixtures/``, which the
engine's discovery prunes, so the repo-wide ``simlint src tests`` run
never sees these intentionally-broken modules.
"""

import shutil
from pathlib import Path

import pytest

from repro.devtools.simlint.engine import lint_paths

FIXTURES = Path(__file__).parent / "fixtures"
RULES = ["D001", "D002", "D003", "D004", "D005", "C001", "C002", "C003", "C004", "C005"]


def lint_fixture(tmp_path, name):
    src = tmp_path / "src"
    src.mkdir(exist_ok=True)
    shutil.copy(FIXTURES / f"{name}.py", src / f"{name}.py")
    return lint_paths([str(src)], root=str(tmp_path))


@pytest.mark.parametrize("rule", RULES)
class TestFixturePairs:
    def test_bad_fixture_flags_exactly_that_rule(self, tmp_path, rule):
        result = lint_fixture(tmp_path, f"{rule.lower()}_bad")
        codes = {d.code for d in result.diagnostics}
        assert codes == {rule}, [d.render() for d in result.diagnostics]
        assert all(d.severity == "error" for d in result.diagnostics)
        assert result.exit_code(strict=False) == 1

    def test_clean_fixture_produces_no_diagnostics(self, tmp_path, rule):
        result = lint_fixture(tmp_path, f"{rule.lower()}_ok")
        assert result.diagnostics == [], [d.render() for d in result.diagnostics]
        assert result.exit_code(strict=False) == 0


class TestChaosServicePair:
    """A chaos-engine-shaped service tripping two rules at once: wired
    onto the bus without registration (C002) and missing stop() (C003).
    """

    def test_bad_fixture_flags_both_rules(self, tmp_path):
        result = lint_fixture(tmp_path, "chaos_service_bad")
        codes = {d.code for d in result.diagnostics}
        assert codes == {"C002", "C003"}, [d.render() for d in result.diagnostics]
        assert all(d.severity == "error" for d in result.diagnostics)
        assert result.exit_code(strict=False) == 1

    def test_clean_fixture_produces_no_diagnostics(self, tmp_path):
        result = lint_fixture(tmp_path, "chaos_service_ok")
        assert result.diagnostics == [], [d.render() for d in result.diagnostics]
        assert result.exit_code(strict=False) == 0


class TestDiagnosticShape:
    def test_positions_point_into_the_fixture(self, tmp_path):
        result = lint_fixture(tmp_path, "d005_bad")
        (diag,) = result.diagnostics
        text = (FIXTURES / "d005_bad.py").read_text().splitlines()
        assert 1 <= diag.line <= len(text)
        assert "sink=[]" in text[diag.line - 1]

    def test_render_is_file_line_col_code_message(self, tmp_path):
        result = lint_fixture(tmp_path, "d002_bad")
        (diag,) = result.diagnostics
        rendered = diag.render()
        assert rendered == f"{diag.path}:{diag.line}:{diag.col} D002 {diag.message}"

    def test_c001_reports_both_orphan_directions(self, tmp_path):
        result = lint_fixture(tmp_path, "c001_bad")
        messages = sorted(d.message for d in result.diagnostics)
        assert len(messages) == 2
        assert "never subscribed" in messages[0]
        assert "never published" in messages[1]
