"""Additional coverage: the reporting x-format and sweep edge cases."""

import pytest

from repro.experiments.reporting import _fmt_x, render_sweep
from repro.experiments.results import ExperimentRow, SweepResult


class TestXFormatting:
    def test_integers_render_bare(self):
        assert _fmt_x(128.0) == "128"
        assert _fmt_x(4.0) == "4"

    def test_fractions_render_compact(self):
        assert _fmt_x(0.25) == "0.25"
        assert _fmt_x(0.5) == "0.5"


class TestSweepEdgeCases:
    def test_empty_sweep_axes(self):
        sweep = SweepResult(name="empty", x_label="x")
        assert sweep.x_values() == []
        assert sweep.strategy_keys() == []

    def test_unknown_metric_raises(self):
        sweep = SweepResult(name="s", x_label="x")
        row = ExperimentRow(x=1.0, strategy_key="k", policy="p", replication=1)
        from repro.runtime.runner import MapPhaseResult
        from repro.simulator.metrics import OverheadBreakdown

        row.add(
            MapPhaseResult(
                policy="p",
                replication=1,
                node_count=1,
                num_tasks=1,
                elapsed=1.0,
                data_locality=1.0,
                breakdown=OverheadBreakdown(
                    base_work=1.0, makespan=1.0, slot_time=1.0, rework=0.0,
                    recovery=0.0, migration=0.0, duplicate=0.0, idle=0.0,
                    useful=1.0, data_locality=1.0,
                ),
                seed=0,
            )
        )
        sweep.rows.append(row)
        with pytest.raises(KeyError):
            sweep.series("k", metric="nonsense")

    def test_render_title_override(self):
        sweep = SweepResult(name="s", x_label="x")
        row = ExperimentRow(x=1.0, strategy_key="k", policy="p", replication=1)
        sweep.rows.append(row)
        # Rows with no repetitions cannot be rendered (mean undefined).
        with pytest.raises(ValueError):
            render_sweep(sweep, "elapsed")
