"""Tests for ASCII chart rendering."""

import pytest

from repro.experiments.charts import (
    bar_chart,
    elapsed_chart,
    series_sparkline,
    stacked_overhead_chart,
)
from repro.experiments.results import ExperimentRow, SweepResult
from repro.runtime.runner import MapPhaseResult
from repro.simulator.metrics import OverheadBreakdown


def fake_result(elapsed, rework=5.0, recovery=10.0, migration=20.0):
    return MapPhaseResult(
        policy="p",
        replication=1,
        node_count=2,
        num_tasks=10,
        elapsed=elapsed,
        data_locality=0.9,
        breakdown=OverheadBreakdown(
            base_work=100.0,
            makespan=elapsed,
            slot_time=elapsed * 2,
            rework=rework,
            recovery=recovery,
            migration=migration,
            duplicate=0.0,
            idle=0.0,
            useful=100.0,
            data_locality=0.9,
        ),
        seed=0,
    )


def make_sweep():
    sweep = SweepResult(name="figX", x_label="bw")
    for key, elapsed in (("existingx1", 200.0), ("adaptx1", 100.0)):
        row = ExperimentRow(x=8.0, strategy_key=key, policy=key, replication=1)
        row.add(fake_result(elapsed))
        sweep.rows.append(row)
    return sweep


class TestBarChart:
    def test_proportional_lengths(self):
        out = bar_chart({"a": 10.0, "b": 5.0}, width=20)
        lines = out.splitlines()
        assert lines[0].count("█") == 20
        assert lines[1].count("█") == 10

    def test_zero_values(self):
        out = bar_chart({"a": 0.0, "b": 0.0})
        assert "█" not in out

    def test_title(self):
        out = bar_chart({"a": 1.0}, title="Chart")
        assert out.splitlines()[0] == "Chart"

    def test_validation(self):
        with pytest.raises(ValueError):
            bar_chart({})
        with pytest.raises(ValueError):
            bar_chart({"a": -1.0})
        with pytest.raises(ValueError):
            bar_chart({"a": 1.0}, width=0)


class TestSweepCharts:
    def test_elapsed_chart(self):
        out = elapsed_chart(make_sweep(), 8.0)
        assert "existingx1" in out and "adaptx1" in out
        lines = out.splitlines()
        existing_bar = lines[1].count("█")
        adapt_bar = lines[2].count("█")
        assert existing_bar > adapt_bar

    def test_stacked_overhead(self):
        out = stacked_overhead_chart(make_sweep(), 8.0, width=40)
        # Components appear with their glyphs.
        assert "R" in out and "M" in out
        assert "existingx1" in out

    def test_unknown_x_raises(self):
        with pytest.raises(KeyError):
            elapsed_chart(make_sweep(), 99.0)


class TestSparkline:
    def test_monotone(self):
        spark = series_sparkline([1.0, 2.0, 3.0, 4.0])
        assert spark[0] == "▁"
        assert spark[-1] == "█"
        assert len(spark) == 4

    def test_flat(self):
        assert series_sparkline([5.0, 5.0]) == "▁▁"

    def test_empty(self):
        with pytest.raises(ValueError):
            series_sparkline([])
