"""Tests for experiment configurations (Tables 2, 3, 4 defaults)."""

import pytest

from repro.experiments.config import (
    EMULATION_STRATEGIES,
    SIMULATION_STRATEGIES,
    EmulationConfig,
    SimulationConfig,
    Strategy,
)
from repro.util.units import MB


class TestStrategy:
    def test_label(self):
        assert Strategy("adapt", 1).label == "adapt (1 replica)"
        assert Strategy("existing", 2).label == "existing (2 replicas)"

    def test_key(self):
        assert Strategy("adapt", 2).key == "adaptx2"

    def test_validation(self):
        with pytest.raises(ValueError):
            Strategy("adapt", 0)

    def test_paper_series(self):
        assert [s.key for s in EMULATION_STRATEGIES] == [
            "existingx1",
            "adaptx1",
            "existingx2",
            "adaptx2",
        ]
        assert "existingx3" in [s.key for s in SIMULATION_STRATEGIES]
        assert "naivex1" in [s.key for s in SIMULATION_STRATEGIES]


class TestEmulationConfig:
    def test_table3_defaults(self):
        config = EmulationConfig()
        assert config.node_count == 128
        assert config.interrupted_ratio == 0.5
        assert config.bandwidth_mbps == 8.0
        assert config.block_size_bytes == 64 * MB
        assert config.blocks_per_node == 20.0

    def test_hosts_table2_split(self):
        hosts = EmulationConfig(node_count=32).hosts()
        groups = {}
        for host in hosts:
            groups[host.group] = groups.get(host.group, 0) + 1
        assert groups["dedicated"] == 16
        assert all(groups[f"group-{i}"] == 4 for i in range(1, 5))

    def test_with_override(self):
        config = EmulationConfig().with_(bandwidth_mbps=4.0)
        assert config.bandwidth_mbps == 4.0
        assert config.node_count == 128  # untouched

    def test_cluster_config_seed_override(self):
        config = EmulationConfig(seed=5)
        assert config.cluster_config().seed == 5
        assert config.cluster_config(seed=9).seed == 9

    def test_emulation_keeps_liveness_filter(self):
        # Testbed semantics: ingest only targets live nodes.
        assert EmulationConfig().cluster_config().placement_liveness_filter

    def test_validation(self):
        with pytest.raises(ValueError):
            EmulationConfig(node_count=0)
        with pytest.raises(ValueError):
            EmulationConfig(interrupted_ratio=2.0)


class TestSimulationConfig:
    def test_table4_defaults(self):
        config = SimulationConfig()
        assert config.node_count == 8196  # the paper's (sic) Table 4 value
        assert config.bandwidth_mbps == 8.0
        assert config.block_size_bytes == 64 * MB
        assert config.tasks_per_node == 100.0

    def test_hadoop_realistic_detection(self):
        config = SimulationConfig().cluster_config()
        assert config.detection == "heartbeat"
        assert config.heartbeat_interval * config.heartbeat_miss_threshold == 600.0

    def test_trace_window_semantics(self):
        cc = SimulationConfig().cluster_config()
        assert cc.stationary_burn_in > 0
        assert not cc.placement_liveness_filter
        assert not cc.fair_sharing  # fixed-cost migration model

    def test_hosts_seed_stable(self):
        config = SimulationConfig(node_count=16)
        a = config.hosts(seed=3)
        b = config.hosts(seed=3)
        assert [h.mtbi for h in a] == [h.mtbi for h in b]

    def test_hosts_differ_by_seed(self):
        config = SimulationConfig(node_count=16)
        assert [h.mtbi for h in config.hosts(seed=1)] != [
            h.mtbi for h in config.hosts(seed=2)
        ]

    def test_seti_params_pinned_for_default_cov(self):
        from repro.availability.seti import CALIBRATED_TABLE1_PARAMS

        assert SimulationConfig().seti_params() is CALIBRATED_TABLE1_PARAMS

    def test_seti_params_closed_form_otherwise(self):
        params = SimulationConfig(duration_within_cov=1.0).seti_params()
        assert params.duration_within_cov == 1.0
