"""Tests for result aggregation and reporting."""

import pytest

from repro.experiments.reporting import render_overhead_breakdown, render_sweep
from repro.experiments.results import ExperimentRow, SweepResult
from repro.simulator.metrics import OverheadBreakdown
from repro.runtime.runner import MapPhaseResult


def fake_result(elapsed=100.0, locality=0.9, rework=0.1):
    breakdown = OverheadBreakdown(
        base_work=100.0,
        makespan=elapsed,
        slot_time=elapsed * 2,
        rework=rework * 100,
        recovery=5.0,
        migration=10.0,
        duplicate=0.0,
        idle=0.0,
        useful=100.0,
        data_locality=locality,
    )
    return MapPhaseResult(
        policy="adapt",
        replication=1,
        node_count=2,
        num_tasks=10,
        elapsed=elapsed,
        data_locality=locality,
        breakdown=breakdown,
        seed=0,
    )


class TestExperimentRow:
    def test_aggregates_means(self):
        row = ExperimentRow(x=8.0, strategy_key="adaptx1", policy="adapt", replication=1)
        row.add(fake_result(elapsed=100.0))
        row.add(fake_result(elapsed=200.0))
        assert row.repetitions == 2
        assert row.elapsed == pytest.approx(150.0)
        assert row.locality == pytest.approx(0.9)
        assert row.overhead("rework") == pytest.approx(0.1)

    def test_overheads_dict(self):
        row = ExperimentRow(x=1.0, strategy_key="k", policy="adapt", replication=1)
        row.add(fake_result())
        assert set(row.overheads) == {"rework", "recovery", "migration", "misc", "total"}


class TestSweepResult:
    def make_sweep(self):
        sweep = SweepResult(name="test", x_label="x")
        for x in (1.0, 2.0):
            for key in ("a", "b"):
                row = ExperimentRow(x=x, strategy_key=key, policy=key, replication=1)
                row.add(fake_result(elapsed=x * 10 + (5 if key == "b" else 0)))
                sweep.rows.append(row)
        return sweep

    def test_axes(self):
        sweep = self.make_sweep()
        assert sweep.x_values() == [1.0, 2.0]
        assert sweep.strategy_keys() == ["a", "b"]

    def test_row_lookup(self):
        sweep = self.make_sweep()
        assert sweep.row(2.0, "b").elapsed == pytest.approx(25.0)
        with pytest.raises(KeyError):
            sweep.row(3.0, "a")

    def test_series(self):
        sweep = self.make_sweep()
        assert sweep.series("a", "elapsed") == [pytest.approx(10.0), pytest.approx(20.0)]
        assert sweep.series("a", "locality") == [pytest.approx(0.9)] * 2
        assert len(sweep.series("b", "migration")) == 2


class TestRendering:
    def test_render_sweep(self):
        sweep = TestSweepResult().make_sweep()
        out = render_sweep(sweep, metric="elapsed")
        assert "x" in out and "a" in out and "b" in out
        assert "10.0" in out and "25.0" in out

    def test_render_locality(self):
        sweep = TestSweepResult().make_sweep()
        out = render_sweep(sweep, metric="locality")
        assert "0.900" in out

    def test_render_breakdown(self):
        sweep = TestSweepResult().make_sweep()
        out = render_overhead_breakdown(sweep)
        assert "rework%" in out
        assert "strategy" in out
