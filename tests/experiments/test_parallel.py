"""Parallel sweep executor: equivalence, caching, and key semantics.

The determinism contract: a sweep's rows are a pure function of its cell
specs, so ``jobs=4`` must reproduce ``jobs=1`` row for row, and a cache
hit must reproduce the original result bit for bit (floats round-trip
through JSON via shortest-repr).
"""

import pytest

from repro.experiments.config import EmulationConfig, SimulationConfig, Strategy
from repro.experiments.emulation import run_emulation_point, sweep_interrupted_ratio
from repro.experiments.parallel import (
    CACHE_SALT,
    CellSpec,
    SweepExecutor,
    cell_cache_key,
    default_jobs,
    result_from_jsonable,
    result_to_jsonable,
)

TINY = EmulationConfig(node_count=8, interrupted_ratio=0.5, blocks_per_node=2.0, seed=9)
PAIR = (Strategy("existing", 1), Strategy("adapt", 1))


def _rows(sweep):
    return [
        (row.x, row.strategy_key, row.elapsed_values, row.locality_values, row.overhead_values)
        for row in sweep.rows
    ]


class TestCellSpec:
    def test_rejects_unknown_kind(self):
        with pytest.raises(ValueError):
            CellSpec("quantum", TINY, Strategy("adapt", 1), 0)

    def test_cache_key_sensitivity(self):
        spec = CellSpec("emulation", TINY, Strategy("adapt", 1), 3)
        base = cell_cache_key(spec)
        assert cell_cache_key(spec) == base  # stable
        assert cell_cache_key(CellSpec("emulation", TINY, Strategy("adapt", 1), 4)) != base
        assert cell_cache_key(CellSpec("emulation", TINY, Strategy("adapt", 2), 3)) != base
        other_config = TINY.with_(bandwidth_mbps=16.0)
        assert cell_cache_key(CellSpec("emulation", other_config, Strategy("adapt", 1), 3)) != base
        assert cell_cache_key(spec, salt="other-code-version") != base

    def test_config_type_in_key(self):
        # Same strategy/seed, different experiment family: distinct keys.
        emu = CellSpec("emulation", TINY, Strategy("adapt", 1), 3)
        sim = CellSpec(
            "simulation", SimulationConfig(node_count=8, tasks_per_node=2.0), Strategy("adapt", 1), 3
        )
        assert cell_cache_key(emu) != cell_cache_key(sim)


class TestJobsResolution:
    def test_default_is_serial(self, monkeypatch):
        monkeypatch.delenv("REPRO_JOBS", raising=False)
        assert default_jobs() == 1
        assert SweepExecutor().jobs == 1

    def test_env_sets_workers(self, monkeypatch):
        monkeypatch.setenv("REPRO_JOBS", "4")
        assert default_jobs() == 4
        assert SweepExecutor().jobs == 4

    def test_explicit_jobs_beats_env(self, monkeypatch):
        monkeypatch.setenv("REPRO_JOBS", "4")
        assert SweepExecutor(jobs=2).jobs == 2

    def test_invalid_env_rejected(self, monkeypatch):
        monkeypatch.setenv("REPRO_JOBS", "many")
        with pytest.raises(ValueError):
            default_jobs()


class TestResultRoundTrip:
    def test_json_round_trip_is_exact(self):
        result = run_emulation_point(TINY, Strategy("adapt", 1))
        rebuilt = result_from_jsonable(result_to_jsonable(result))
        assert rebuilt == result

    def test_round_trip_with_durability_activity(self):
        config = TINY.with_(
            replication_monitor=True,
            permanent_failure_rate=0.3,
            permanent_failure_horizon=150.0,
        )
        result = run_emulation_point(config, Strategy("adapt", 2))
        rebuilt = result_from_jsonable(result_to_jsonable(result))
        assert rebuilt == result
        assert rebuilt.durability.summary_row() == result.durability.summary_row()


@pytest.mark.slow
class TestParallelSerialEquivalence:
    def test_jobs4_matches_jobs1_row_for_row(self):
        serial = sweep_interrupted_ratio(
            TINY, values=(0.25, 0.5), strategies=PAIR, executor=SweepExecutor(jobs=1)
        )
        parallel = sweep_interrupted_ratio(
            TINY, values=(0.25, 0.5), strategies=PAIR, executor=SweepExecutor(jobs=4)
        )
        assert _rows(parallel) == _rows(serial)

    def test_point_through_worker_matches_in_process(self):
        direct = run_emulation_point(TINY, Strategy("adapt", 1))
        executor = SweepExecutor(jobs=2)
        spec = CellSpec("emulation", TINY, Strategy("adapt", 1), TINY.seed)
        (pooled,) = executor.run_cells([spec, spec])[:1]
        assert pooled == direct


class TestRunCache:
    def test_second_run_hits_cache_with_identical_rows(self, tmp_path):
        first_exec = SweepExecutor(jobs=1, cache_dir=tmp_path)
        first = sweep_interrupted_ratio(
            TINY, values=(0.5,), strategies=PAIR, executor=first_exec
        )
        assert first_exec.cache_hits == 0
        assert first_exec.cache_misses == 2

        second_exec = SweepExecutor(jobs=1, cache_dir=tmp_path)
        second = sweep_interrupted_ratio(
            TINY, values=(0.5,), strategies=PAIR, executor=second_exec
        )
        assert second_exec.cache_hits == 2
        assert second_exec.cache_misses == 0
        assert _rows(second) == _rows(first)

    def test_salt_change_invalidates(self, tmp_path):
        spec = CellSpec("emulation", TINY, Strategy("existing", 1), 5)
        warm = SweepExecutor(jobs=1, cache_dir=tmp_path)
        warm.run_cells([spec])
        assert warm.cache_misses == 1

        stale = SweepExecutor(jobs=1, cache_dir=tmp_path, salt="bumped-after-semantics-change")
        stale.run_cells([spec])
        assert stale.cache_hits == 0
        assert stale.cache_misses == 1
        # The original salt still hits its own entry.
        fresh = SweepExecutor(jobs=1, cache_dir=tmp_path, salt=CACHE_SALT)
        fresh.run_cells([spec])
        assert fresh.cache_hits == 1

    def test_corrupt_entry_recomputed(self, tmp_path):
        spec = CellSpec("emulation", TINY, Strategy("existing", 1), 5)
        executor = SweepExecutor(jobs=1, cache_dir=tmp_path)
        executor.run_cells([spec])
        (entry,) = tmp_path.glob("*.json")
        entry.write_text("{truncated", encoding="utf-8")
        again = SweepExecutor(jobs=1, cache_dir=tmp_path)
        (result,) = again.run_cells([spec])
        assert again.cache_misses == 1
        assert result.elapsed > 0

    def test_point_api_uses_cache(self, tmp_path):
        executor = SweepExecutor(jobs=1, cache_dir=tmp_path)
        first = run_emulation_point(TINY, Strategy("adapt", 1), executor=executor)
        second = run_emulation_point(TINY, Strategy("adapt", 1), executor=executor)
        assert executor.cache_hits == 1
        assert second == first

    def test_trace_out_bypasses_cache(self, tmp_path):
        executor = SweepExecutor(jobs=1, cache_dir=tmp_path / "cache")
        trace_path = tmp_path / "events.jsonl"
        result = run_emulation_point(
            TINY, Strategy("adapt", 1), trace_out=str(trace_path), executor=executor
        )
        assert trace_path.exists()
        assert executor.cache_hits == 0 and executor.cache_misses == 0
        assert result.elapsed > 0


class TestMixedCachedAndPending:
    def test_partial_cache_keeps_cell_order(self, tmp_path):
        specs = [
            CellSpec("emulation", TINY, Strategy("existing", 1), 5),
            CellSpec("emulation", TINY, Strategy("adapt", 1), 5),
            CellSpec("emulation", TINY, Strategy("adapt", 1), 6),
        ]
        warm = SweepExecutor(jobs=1, cache_dir=tmp_path)
        warm.run_cells([specs[1]])  # pre-warm only the middle cell

        executor = SweepExecutor(jobs=1, cache_dir=tmp_path)
        results = executor.run_cells(specs)
        assert executor.cache_hits == 1
        assert executor.cache_misses == 2
        assert [r.policy for r in results] == ["existing", "adapt", "adapt"]
        assert results[1] == warm.run_cells([specs[1]])[0]
