"""Tests for the figure drivers at miniature scale.

These exercise the full sweep machinery (and the paper's qualitative
orderings) with small clusters so the suite stays fast; the benchmark
harness runs the real scales.
"""

import pytest

from repro.experiments.config import EmulationConfig, SimulationConfig, Strategy
from repro.experiments.emulation import (
    run_emulation_point,
    sweep_bandwidth,
    sweep_interrupted_ratio,
    sweep_node_count,
)
from repro.experiments.largescale import (
    run_simulation_point,
    sweep_sim_block_size,
    table1_statistics,
)
from repro.util.units import MB

SMALL_EMU = EmulationConfig(node_count=16, blocks_per_node=5, seed=1)
SMALL_SIM = SimulationConfig(node_count=48, tasks_per_node=8, seed=1)
PAIR = (Strategy("existing", 1), Strategy("adapt", 1))


class TestEmulationDrivers:
    def test_point_runs(self):
        result = run_emulation_point(SMALL_EMU, Strategy("adapt", 1))
        assert result.policy == "adapt"
        assert result.num_tasks == 80

    def test_ratio_sweep_shape(self):
        sweep = sweep_interrupted_ratio(SMALL_EMU, values=(0.25, 0.5), strategies=PAIR)
        assert sweep.x_values() == [0.25, 0.5]
        assert sweep.strategy_keys() == ["existingx1", "adaptx1"]
        assert all(row.repetitions == 1 for row in sweep.rows)

    def test_bandwidth_sweep(self):
        sweep = sweep_bandwidth(SMALL_EMU, values=(8.0, 32.0), strategies=PAIR)
        # Higher bandwidth cannot make things slower for the same strategy.
        for key in sweep.strategy_keys():
            series = sweep.series(key, "elapsed")
            assert series[1] <= series[0] * 1.25  # allow mild noise

    def test_node_sweep(self):
        sweep = sweep_node_count(
            SMALL_EMU, values=(8, 16), strategies=(Strategy("adapt", 1),)
        )
        assert len(sweep.rows) == 2

    def test_repetitions_average(self):
        sweep = sweep_interrupted_ratio(
            SMALL_EMU, values=(0.5,), strategies=(Strategy("existing", 1),), repetitions=2
        )
        assert sweep.rows[0].repetitions == 2

    def test_repetition_validation(self):
        with pytest.raises(ValueError):
            sweep_interrupted_ratio(SMALL_EMU, values=(0.5,), repetitions=0)


class TestLargescaleDrivers:
    def test_point_runs(self):
        result = run_simulation_point(SMALL_SIM, Strategy("adapt", 1))
        assert result.num_tasks == 48 * 8

    def test_block_size_sweep_keeps_input_constant(self):
        sweep = sweep_sim_block_size(
            SMALL_SIM, values=(32 * MB, 64 * MB), strategies=(Strategy("existing", 1),)
        )
        rows = {row.x: row for row in sweep.rows}
        assert set(rows) == {32.0, 64.0}

    def test_table1_statistics(self):
        stats = table1_statistics(node_count=80, horizon=0.2 * 365 * 86400.0, seed=1)
        assert stats["mtbi"].mean > 0
        assert stats["duration"].cov > 1.0


class TestPaperOrderings:
    """The qualitative claims, checked at small scale with a fixed seed."""

    def test_emulation_adapt_beats_existing_one_replica(self):
        # Section V.B.1's headline at reduced scale: ADAPT's map phase is
        # faster than stock placement with 1 replica at the default point.
        config = EmulationConfig(node_count=32, blocks_per_node=10, seed=2)
        existing = run_emulation_point(config, Strategy("existing", 1))
        adapt = run_emulation_point(config, Strategy("adapt", 1))
        assert adapt.elapsed < existing.elapsed

    def test_emulation_adapt_higher_locality(self):
        config = EmulationConfig(node_count=32, blocks_per_node=10, seed=2)
        existing = run_emulation_point(config, Strategy("existing", 1))
        adapt = run_emulation_point(config, Strategy("adapt", 1))
        assert adapt.data_locality >= existing.data_locality

    def test_replication_helps_existing(self):
        config = EmulationConfig(node_count=32, blocks_per_node=10, seed=2)
        one = run_emulation_point(config, Strategy("existing", 1))
        two = run_emulation_point(config, Strategy("existing", 2))
        assert two.elapsed < one.elapsed

    def test_simulation_adapt_beats_existing(self):
        # Figure 5 ordering at reduced scale (trace-window semantics).
        config = SimulationConfig(node_count=96, tasks_per_node=10, seed=3)
        existing = run_simulation_point(config, Strategy("existing", 1))
        adapt = run_simulation_point(config, Strategy("adapt", 1))
        assert adapt.breakdown.ratios()["total"] < existing.breakdown.ratios()["total"]
