"""Tests for the `adapt <file>` rebalance planner."""

import pytest

from repro.availability.estimators import AvailabilityEstimate
from repro.core.placement import AdaptPlacement, NodeView, RandomPlacement
from repro.core.rebalance import RebalanceMove, plan_rebalance, target_counts
from repro.util.rng import RandomSource

GAMMA = 12.0


def view(node_id, mtbi=None, mu=0.0):
    rate = 0.0 if mtbi is None else 1.0 / mtbi
    return NodeView(
        node_id=node_id,
        estimate=AvailabilityEstimate(arrival_rate=rate, recovery_mean=mu, observations=1),
    )


def apply_moves(replica_map, moves):
    state = {b: set(h) for b, h in replica_map.items()}
    for move in moves:
        assert move.source in state[move.block_id]
        assert move.destination not in state[move.block_id]
        state[move.block_id].discard(move.source)
        state[move.block_id].add(move.destination)
    return state


class TestTargetCounts:
    def test_sums_to_total(self):
        nodes = [view("a"), view("b", mtbi=10.0, mu=4.0), view("c")]
        targets = target_counts(AdaptPlacement(), nodes, 30, 2, GAMMA)
        assert sum(targets.values()) == 60

    def test_uniform_for_random(self):
        nodes = [view(f"n{i}") for i in range(4)]
        targets = target_counts(RandomPlacement(), nodes, 40, 1, GAMMA)
        assert all(v == 10 for v in targets.values())

    def test_reliable_targets_higher(self):
        nodes = [view("good"), view("bad", mtbi=10.0, mu=8.0)]
        targets = target_counts(AdaptPlacement(capped=False), nodes, 100, 1, GAMMA)
        assert targets["good"] > targets["bad"]

    def test_remainder_ties_break_by_ascending_id(self):
        # Regression: 10 replicas over 4 equal nodes leaves every node with
        # fractional remainder 0.5; the two extras must go to the
        # lexicographically-first nodes. The old reverse=True sort flipped
        # the id tie-break too, biasing extras toward later nodes.
        nodes = [view(n) for n in ("a", "b", "c", "d")]
        targets = target_counts(RandomPlacement(), nodes, 10, 1, GAMMA)
        assert targets == {"a": 3, "b": 3, "c": 2, "d": 2}

    def test_remainder_ties_deterministic_under_input_order(self):
        values = []
        for order in (("a", "b", "c", "d"), ("d", "c", "b", "a"), ("c", "a", "d", "b")):
            nodes = [view(n) for n in order]
            values.append(target_counts(RandomPlacement(), nodes, 10, 1, GAMMA))
        assert values[0] == values[1] == values[2]


class TestPlanRebalance:
    def test_empty_map(self):
        assert plan_rebalance({}, AdaptPlacement(), [view("a")], GAMMA, RandomSource(1)) == []

    def test_moves_toward_targets(self):
        # All blocks start on the unreliable node; moves must drain it.
        nodes = [view("good"), view("bad", mtbi=10.0, mu=8.0)]
        replica_map = {f"b{i}": ["bad"] for i in range(10)}
        moves = plan_rebalance(replica_map, AdaptPlacement(), nodes, GAMMA, RandomSource(1))
        assert moves, "expected at least one move"
        state = apply_moves(replica_map, moves)
        on_good = sum(1 for holders in state.values() if "good" in holders)
        assert on_good > 5

    def test_no_replica_colocation(self):
        nodes = [view("a"), view("b"), view("c", mtbi=10.0, mu=8.0)]
        replica_map = {f"b{i}": ["a", "c"] for i in range(6)}
        moves = plan_rebalance(replica_map, AdaptPlacement(), nodes, GAMMA, RandomSource(2))
        state = apply_moves(replica_map, moves)
        for holders in state.values():
            assert len(holders) == 2  # still 2 distinct replicas

    def test_already_balanced_needs_no_moves(self):
        nodes = [view("a"), view("b")]
        replica_map = {"b0": ["a"], "b1": ["b"]}
        moves = plan_rebalance(replica_map, RandomPlacement(), nodes, GAMMA, RandomSource(3))
        assert moves == []

    def test_rejects_mixed_replication(self):
        nodes = [view("a"), view("b")]
        with pytest.raises(ValueError, match="disagree"):
            plan_rebalance(
                {"b0": ["a"], "b1": ["a", "b"]},
                RandomPlacement(),
                nodes,
                GAMMA,
                RandomSource(1),
            )

    def test_rejects_colocated_input(self):
        nodes = [view("a"), view("b")]
        with pytest.raises(ValueError, match="co-located"):
            plan_rebalance(
                {"b0": ["a", "a"]}, RandomPlacement(), nodes, GAMMA, RandomSource(1)
            )

    def test_move_validation(self):
        with pytest.raises(ValueError):
            RebalanceMove(block_id="b", source="x", destination="x")

    def test_deterministic(self):
        nodes = [view("good"), view("bad", mtbi=10.0, mu=8.0), view("ok", mtbi=20.0, mu=4.0)]
        replica_map = {f"b{i}": ["bad"] for i in range(9)}
        a = plan_rebalance(replica_map, AdaptPlacement(), nodes, GAMMA, RandomSource(7))
        b = plan_rebalance(replica_map, AdaptPlacement(), nodes, GAMMA, RandomSource(7))
        assert a == b
