"""Tests for the placement policies (existing / naive / ADAPT)."""

import math

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.availability.estimators import AvailabilityEstimate
from repro.core.model import expected_task_time
from repro.core.placement import (
    AdaptPlacement,
    NaivePlacement,
    NodeView,
    RandomPlacement,
    make_policy,
)
from repro.util.rng import RandomSource

GAMMA = 12.0


def view(node_id, mtbi=None, mu=0.0, up=True):
    rate = 0.0 if mtbi is None else 1.0 / mtbi
    return NodeView(
        node_id=node_id,
        estimate=AvailabilityEstimate(arrival_rate=rate, recovery_mean=mu, observations=1),
        is_up=up,
    )


def table2_views():
    """4 dedicated + one node from each Table 2 group."""
    nodes = [view(f"d{i}") for i in range(4)]
    nodes.append(view("g1", mtbi=10.0, mu=4.0))
    nodes.append(view("g2", mtbi=10.0, mu=8.0))
    nodes.append(view("g3", mtbi=20.0, mu=4.0))
    nodes.append(view("g4", mtbi=20.0, mu=8.0))
    return nodes


def run_plan(policy, nodes, num_blocks, replication=1, seed=0):
    plan = policy.build_plan(nodes, num_blocks, replication, GAMMA)
    rng = RandomSource(seed)
    for _ in range(num_blocks):
        plan.choose_replicas(rng)
    return plan


class TestRandomPlacement:
    def test_uniform_distribution(self):
        nodes = [view(f"n{i}") for i in range(8)]
        plan = run_plan(RandomPlacement(), nodes, 4000)
        counts = plan.allocations()
        for _node_id, count in counts.items():
            assert count == pytest.approx(500, abs=100)

    def test_replicas_distinct(self):
        nodes = [view(f"n{i}") for i in range(5)]
        plan = RandomPlacement().build_plan(nodes, 10, 3, GAMMA)
        rng = RandomSource(1)
        for _ in range(10):
            holders = plan.choose_replicas(rng)
            assert len(set(holders)) == 3

    def test_excludes_down_nodes(self):
        nodes = [view("up0"), view("up1"), view("down", up=False)]
        plan = run_plan(RandomPlacement(), nodes, 100)
        assert plan.allocation("down") == 0

    def test_needs_enough_up_nodes(self):
        nodes = [view("a"), view("b", up=False)]
        with pytest.raises(ValueError, match="up nodes"):
            RandomPlacement().build_plan(nodes, 5, 2, GAMMA)


class TestAdaptPlacement:
    def test_weights_proportional_to_inverse_expected_time(self):
        nodes = table2_views()
        plan = run_plan(AdaptPlacement(capped=False), nodes, 12000)
        counts = plan.allocations()
        # The ratio dedicated : group2 should approximate E[T]_g2 / gamma.
        t_g2 = expected_task_time(GAMMA, 0.1, 8.0)
        expected_ratio = t_g2 / GAMMA
        measured_ratio = counts["d0"] / max(counts["g2"], 1)
        assert measured_ratio == pytest.approx(expected_ratio, rel=0.35)

    def test_dedicated_get_most_blocks(self):
        plan = run_plan(AdaptPlacement(), table2_views(), 4000)
        counts = plan.allocations()
        worst_group = max(counts["g1"], counts["g2"])
        assert counts["d0"] > worst_group

    def test_homogeneous_equals_uniform(self):
        # The superset claim: identical availability -> uniform placement.
        nodes = [view(f"n{i}", mtbi=10.0, mu=4.0) for i in range(6)]
        plan = run_plan(AdaptPlacement(), nodes, 6000)
        for count in plan.allocations().values():
            assert count == pytest.approx(1000, rel=0.15)

    def test_threshold_cap_enforced(self):
        # m(k+1)/n cap: with m=100, k=1, n=5 -> max 40 per node.
        nodes = [view("fast"), *(view(f"slow{i}", mtbi=10.0, mu=8.0) for i in range(4))]
        plan = run_plan(AdaptPlacement(capped=True), nodes, 100)
        cap = math.ceil(100 * 2 / 5)
        assert plan.allocation("fast") <= cap

    def test_uncapped_exceeds_threshold(self):
        nodes = [view("fast"), *(view(f"slow{i}", mtbi=10.0, mu=8.0) for i in range(4))]
        plan = run_plan(AdaptPlacement(capped=False), nodes, 100, seed=3)
        assert plan.allocation("fast") > math.ceil(100 * 2 / 5)

    def test_unstable_node_gets_nothing(self):
        nodes = [view("ok"), view("dead", mtbi=1.0, mu=5.0), view("ok2")]
        plan = run_plan(AdaptPlacement(), nodes, 300)
        assert plan.allocation("dead") == 0

    def test_total_mass_conserved(self):
        nodes = table2_views()
        plan = run_plan(AdaptPlacement(), nodes, 500, replication=1)
        assert sum(plan.allocations().values()) == 500

    def test_total_mass_with_replication(self):
        nodes = table2_views()
        plan = run_plan(AdaptPlacement(), nodes, 200, replication=2)
        assert sum(plan.allocations().values()) == 400

    @given(st.integers(min_value=1, max_value=3), st.integers(min_value=0, max_value=100))
    @settings(max_examples=30, deadline=None)
    def test_replicas_always_distinct(self, k, seed):
        nodes = table2_views()
        plan = AdaptPlacement().build_plan(nodes, 50, k, GAMMA)
        rng = RandomSource(seed)
        for _ in range(50):
            holders = plan.choose_replicas(rng)
            assert len(holders) == k
            assert len(set(holders)) == k


class TestNaivePlacement:
    def test_weights_by_availability(self):
        # naive weight = (MTBI - mu)/MTBI: g2 gets 0.2, dedicated 1.0.
        nodes = [view("d0"), view("g2", mtbi=10.0, mu=8.0)]
        plan = run_plan(NaivePlacement(), nodes, 6000)
        ratio = plan.allocation("d0") / max(plan.allocation("g2"), 1)
        assert ratio == pytest.approx(5.0, rel=0.25)

    def test_naive_less_aggressive_than_adapt(self):
        # ADAPT's E[T] penalises g2 (ratio ~9.7) harder than naive (5.0).
        nodes = [view("d0"), view("g2", mtbi=10.0, mu=8.0)]
        naive = run_plan(NaivePlacement(), nodes, 6000)
        adapt = run_plan(AdaptPlacement(capped=False), nodes, 6000)
        naive_ratio = naive.allocation("d0") / max(naive.allocation("g2"), 1)
        adapt_ratio = adapt.allocation("d0") / max(adapt.allocation("g2"), 1)
        assert adapt_ratio > naive_ratio


class TestFactoryAndFallbacks:
    def test_make_policy(self):
        assert isinstance(make_policy("existing"), RandomPlacement)
        assert isinstance(make_policy("random"), RandomPlacement)
        assert isinstance(make_policy("naive"), NaivePlacement)
        assert isinstance(make_policy("adapt"), AdaptPlacement)
        with pytest.raises(ValueError, match="unknown placement policy"):
            make_policy("magic")

    def test_all_capped_falls_back(self):
        # Tiny cluster where every node caps out: ingest must still finish.
        nodes = [view("a"), view("b")]
        plan = AdaptPlacement(capped=True).build_plan(nodes, 4, 2, GAMMA)
        rng = RandomSource(1)
        total = 0
        for _ in range(4):
            total += len(plan.choose_replicas(rng))
        assert total == 8

    def test_eligible_nodes_shrink_at_cap(self):
        nodes = [view("a"), view("b"), view("c")]
        plan = AdaptPlacement(capped=True).build_plan(nodes, 3, 1, GAMMA)
        rng = RandomSource(1)
        for _ in range(3):
            plan.choose_replicas(rng)
        assert len(plan.eligible_nodes) <= 3


class TestBatchedPlacement:
    """choose_replicas_many and the incremental cap-check must be
    byte-identical to the per-block path — the ingest goldens depend on
    the exact per-block RNG draw order."""

    @pytest.mark.parametrize(
        "policy",
        [
            RandomPlacement(),
            NaivePlacement(capped=True),
            AdaptPlacement(capped=True),
            AdaptPlacement(capped=False),
        ],
        ids=["existing", "naive-capped", "adapt-capped", "adapt-uncapped"],
    )
    def test_many_matches_per_block_loop(self, policy):
        nodes = table2_views()
        num_blocks, replication = 120, 2
        plan_a = policy.build_plan(nodes, num_blocks, replication, GAMMA)
        rng_a = RandomSource(11)
        loop = [plan_a.choose_replicas(rng_a) for _ in range(num_blocks)]

        plan_b = policy.build_plan(nodes, num_blocks, replication, GAMMA)
        rng_b = RandomSource(11)
        batched = plan_b.choose_replicas_many(rng_b, num_blocks)

        assert loop == batched
        assert plan_a.allocations() == plan_b.allocations()
        # The RNG end state matches too: no extra or missing draws.
        assert rng_a.random() == rng_b.random()

    def test_cap_rebuild_instants_match_reference_full_scan(self):
        # Small cluster + tight threshold: the cap fires repeatedly. The
        # incremental chosen-set check must rebuild the weighted table at
        # exactly the instants the original full-table scan did, which
        # byte-identity of the draw stream already certifies; this pins
        # the cap itself — no node exceeds the threshold.
        nodes = table2_views()
        num_blocks, replication = 60, 2
        plan = AdaptPlacement(capped=True).build_plan(
            nodes, num_blocks, replication, GAMMA
        )
        plan.choose_replicas_many(RandomSource(5), num_blocks)
        n = len(nodes)
        cap = max(int(math.ceil(num_blocks * (replication + 1) / n)), 1)
        assert all(count <= cap for count in plan.allocations().values())
        assert sum(plan.allocations().values()) == num_blocks * replication


class TestRackConstraint:
    """The HDFS off-rack rule composed onto the policy's weighting."""

    def views(self, n=8):
        return [view(i) for i in range(n)]

    def rack_of(self, node_id):
        return int(node_id) % 2

    def constrained_plan(self, replication=2, num_blocks=40, policy=None):
        policy = policy if policy is not None else RandomPlacement()
        plan = policy.build_plan(self.views(), num_blocks, replication, GAMMA)
        plan.set_rack_constraint(self.rack_of)
        return plan

    def test_every_replica_set_spans_two_racks(self):
        plan = self.constrained_plan()
        rng = RandomSource(3)
        for _ in range(40):
            chosen = plan.choose_replicas(rng)
            assert len({self.rack_of(n) for n in chosen}) >= 2

    def test_adapt_policy_also_spreads(self):
        nodes = [view(i) if i < 4 else view(i, mtbi=10.0, mu=4.0) for i in range(8)]
        plan = AdaptPlacement().build_plan(nodes, 40, 2, GAMMA)
        plan.set_rack_constraint(self.rack_of)
        rng = RandomSource(3)
        for _ in range(40):
            chosen = plan.choose_replicas(rng)
            assert len({self.rack_of(n) for n in chosen}) >= 2

    def test_single_replica_unconstrained(self):
        plan = self.constrained_plan(replication=1)
        chosen = plan.choose_replicas(RandomSource(3))
        assert len(chosen) == 1

    def test_constraint_consumes_no_randomness(self):
        # Same seed, with and without the constraint: identical RNG end
        # state, so enabling rack awareness never shifts other draws.
        policy = RandomPlacement()
        plan_a = policy.build_plan(self.views(), 40, 2, GAMMA)
        rng_a = RandomSource(11)
        for _ in range(40):
            plan_a.choose_replicas(rng_a)
        plan_b = policy.build_plan(self.views(), 40, 2, GAMMA)
        plan_b.set_rack_constraint(self.rack_of)
        rng_b = RandomSource(11)
        for _ in range(40):
            plan_b.choose_replicas(rng_b)
        assert rng_a.random() == rng_b.random()

    def test_single_rack_cluster_left_unchanged(self):
        policy = RandomPlacement()
        plan_a = policy.build_plan(self.views(), 20, 2, GAMMA)
        picks_a = [plan_a.choose_replicas(RandomSource(7).substream("p", i)) for i in range(20)]
        plan_b = policy.build_plan(self.views(), 20, 2, GAMMA)
        plan_b.set_rack_constraint(lambda node_id: 0)  # everyone in rack 0
        picks_b = [plan_b.choose_replicas(RandomSource(7).substream("p", i)) for i in range(20)]
        assert picks_a == picks_b

    def test_substitute_is_least_allocated_off_rack(self):
        plan = self.constrained_plan(num_blocks=4)
        # Force the situation: both picks in rack 0 (even ids).
        fixed = plan._fix_rack_spread([0, 2], 2)
        assert len({self.rack_of(n) for n in fixed}) == 2
        assert fixed[0] == 0  # first pick stands; only the last is swapped
