"""Tests for the stochastic task-execution model (formulas 1-5)."""

import math

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.availability.distributions import Deterministic, Exponential, Lognormal
from repro.core.model import (
    TaskExecutionModel,
    UnstableHostError,
    expected_attempts,
    expected_downtime,
    expected_rework,
    expected_task_time,
    monte_carlo_task_time,
    slowdown,
    variance_attempts,
)
from repro.util.rng import RandomSource

#: Table 2 parameters with the paper's gamma = 12s.
GROUPS = [(10.0, 4.0), (10.0, 8.0), (20.0, 4.0), (20.0, 8.0)]
GAMMA = 12.0

rates = st.floats(min_value=1e-6, max_value=0.2)
gammas = st.floats(min_value=0.1, max_value=100.0)


class TestClosedForms:
    def test_formula2_rework(self):
        # E[X] = 1/lambda + gamma/(1 - e^{gamma*lambda}).
        lam = 0.05
        expected = 1.0 / lam + GAMMA / (1.0 - math.exp(GAMMA * lam))
        assert expected_rework(GAMMA, lam) == pytest.approx(expected)

    def test_formula3_downtime(self):
        # E[Y] = mu / (1 - lambda*mu).
        assert expected_downtime(0.05, 8.0) == pytest.approx(8.0 / 0.6)

    def test_formula4_attempts(self):
        # E[S] = e^{gamma*lambda} - 1.
        assert expected_attempts(GAMMA, 0.1) == pytest.approx(math.exp(1.2) - 1.0)

    def test_formula5_task_time(self):
        # E[T] = (e^{gamma*lambda} - 1)(1/lambda + mu/(1 - lambda*mu)).
        lam, mu = 0.1, 4.0
        expected = (math.exp(GAMMA * lam) - 1.0) * (1.0 / lam + mu / (1.0 - lam * mu))
        assert expected_task_time(GAMMA, lam, mu) == pytest.approx(expected)

    def test_decomposition_consistency(self):
        # E[T] = gamma + E[S](E[X] + E[Y]) must equal formula 5.
        lam, mu = 0.08, 3.0
        direct = expected_task_time(GAMMA, lam, mu)
        composed = GAMMA + expected_attempts(GAMMA, lam) * (
            expected_rework(GAMMA, lam) + expected_downtime(lam, mu)
        )
        assert direct == pytest.approx(composed)

    def test_dedicated_host_degenerates(self):
        assert expected_task_time(GAMMA, 0.0, 0.0) == GAMMA
        assert expected_rework(GAMMA, 0.0) == 0.0
        assert expected_attempts(GAMMA, 0.0) == 0.0

    def test_unstable_raises(self):
        with pytest.raises(UnstableHostError):
            expected_task_time(GAMMA, 0.5, 3.0)
        with pytest.raises(UnstableHostError):
            expected_downtime(1.0, 1.0)

    def test_variance_attempts(self):
        # Geometric with p = e^{-gamma lambda}: Var = (1-p)/p^2.
        lam = 0.1
        p = math.exp(-GAMMA * lam)
        assert variance_attempts(GAMMA, lam) == pytest.approx((1 - p) / p**2)

    def test_slowdown(self):
        assert slowdown(GAMMA, 0.0, 0.0) == 1.0
        assert slowdown(GAMMA, 0.05, 4.0) > 1.0

    def test_rework_bounded_by_gamma(self):
        # The lost work X is conditioned on arriving inside (0, gamma).
        for lam in (0.001, 0.05, 0.5):
            assert 0.0 < expected_rework(GAMMA, lam) < GAMMA

    def test_table2_group_values(self):
        # Spot-check all four emulation groups give finite, ordered times.
        times = [expected_task_time(GAMMA, 1.0 / m, mu) for m, mu in GROUPS]
        assert all(t > GAMMA for t in times)
        # group 2 (MTBI 10, mu 8) is the worst; group 3 (20, 4) the best.
        assert times[1] == max(times)
        assert times[2] == min(times)


class TestModelProperties:
    @given(gammas, rates)
    @settings(max_examples=100)
    def test_monotone_in_mu(self, gamma, lam):
        mus = [0.0, 1.0, 2.0]
        values = []
        for mu in mus:
            if lam * mu < 1.0:
                values.append(expected_task_time(gamma, lam, mu))
        assert values == sorted(values)

    @given(gammas, st.floats(min_value=1e-5, max_value=0.05))
    @settings(max_examples=100)
    def test_monotone_in_lambda(self, gamma, lam):
        mu = 2.0
        t1 = expected_task_time(gamma, lam, mu)
        t2 = expected_task_time(gamma, lam * 2, mu)
        assert t2 >= t1

    @given(st.floats(min_value=1e-5, max_value=0.05), st.floats(min_value=0.0, max_value=10.0))
    @settings(max_examples=100)
    def test_monotone_in_gamma(self, lam, mu):
        t1 = expected_task_time(5.0, lam, mu)
        t2 = expected_task_time(10.0, lam, mu)
        assert t2 > t1

    @given(gammas, rates, st.floats(min_value=0.0, max_value=5.0))
    @settings(max_examples=100)
    def test_at_least_gamma(self, gamma, lam, mu):
        if lam * mu >= 0.99:
            return
        assert expected_task_time(gamma, lam, mu) >= gamma * (1.0 - 1e-9)

    @given(gammas)
    @settings(max_examples=50)
    def test_continuity_at_lambda_zero(self, gamma):
        # E[T] must approach gamma as lambda -> 0 (no discontinuity).
        near_zero = expected_task_time(gamma, 1e-9, 1.0)
        assert near_zero == pytest.approx(gamma, rel=1e-6)


class TestMonteCarloValidation:
    """The closed forms against a literal simulation of the attempt process."""

    @pytest.mark.parametrize("mtbi,mu", GROUPS)
    def test_formula5_matches_simulation(self, mtbi, mu):
        lam = 1.0 / mtbi
        stats = monte_carlo_task_time(
            GAMMA, lam, RandomSource(42), mu=mu, samples=4000
        )
        predicted = expected_task_time(GAMMA, lam, mu)
        # Monte-Carlo error: compare within 3 standard errors + 5%.
        stderr = stats.std / math.sqrt(stats.count)
        assert abs(stats.mean - predicted) < 3 * stderr + 0.05 * predicted

    def test_general_service_distribution(self):
        # Formula 3/5 only uses the service *mean*: a deterministic
        # recovery with the same mean must agree for E[T].
        lam, mu = 0.05, 4.0
        stats = monte_carlo_task_time(
            GAMMA,
            lam,
            RandomSource(7),
            service=Deterministic(value=mu),
            samples=4000,
        )
        predicted = expected_task_time(GAMMA, lam, mu)
        stderr = stats.std / math.sqrt(stats.count)
        assert abs(stats.mean - predicted) < 3 * stderr + 0.05 * predicted

    def test_lognormal_service(self):
        lam, mu = 0.04, 5.0
        stats = monte_carlo_task_time(
            GAMMA,
            lam,
            RandomSource(9),
            service=Lognormal(mean=mu, cov=1.5),
            samples=6000,
        )
        predicted = expected_task_time(GAMMA, lam, mu)
        stderr = stats.std / math.sqrt(stats.count)
        assert abs(stats.mean - predicted) < 4 * stderr + 0.08 * predicted

    def test_dedicated_is_exact(self):
        stats = monte_carlo_task_time(GAMMA, 0.0, RandomSource(1), samples=100)
        assert stats.mean == GAMMA
        assert stats.std == 0.0

    def test_requires_service_for_interrupted(self):
        with pytest.raises(ValueError, match="service"):
            monte_carlo_task_time(GAMMA, 0.1, RandomSource(1))

    def test_sample_count_validated(self):
        with pytest.raises(ValueError):
            monte_carlo_task_time(GAMMA, 0.0, RandomSource(1), samples=0)


class TestTaskExecutionModel:
    def test_wrapper_consistency(self):
        model = TaskExecutionModel(arrival_rate=0.05, recovery_mean=4.0)
        assert model.expected_task_time(GAMMA) == pytest.approx(
            expected_task_time(GAMMA, 0.05, 4.0)
        )
        assert model.processing_rate(GAMMA) == pytest.approx(
            1.0 / expected_task_time(GAMMA, 0.05, 4.0)
        )

    def test_from_mtbi(self):
        model = TaskExecutionModel.from_mtbi(20.0, 8.0)
        assert model.arrival_rate == pytest.approx(0.05)

    def test_from_infinite_mtbi(self):
        model = TaskExecutionModel.from_mtbi(float("inf"), 8.0)
        assert model.arrival_rate == 0.0
        assert model.expected_task_time(GAMMA) == GAMMA

    def test_unstable_rejected_on_construction(self):
        with pytest.raises(UnstableHostError):
            TaskExecutionModel(arrival_rate=1.0, recovery_mean=2.0)
