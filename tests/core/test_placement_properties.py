"""Property-based tests for placement mass conservation and proportionality."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.availability.estimators import AvailabilityEstimate
from repro.core.placement import (
    AdaptPlacement,
    NaivePlacement,
    NodeView,
    RandomPlacement,
)
from repro.util.rng import RandomSource

GAMMA = 12.0

host_specs = st.lists(
    st.tuples(
        st.sampled_from([None, 10.0, 20.0, 100.0, 1000.0]),  # MTBI (None=dedicated)
        st.sampled_from([2.0, 4.0, 8.0]),  # recovery mean
    ),
    min_size=2,
    max_size=10,
)


def make_views(specs):
    views = []
    for i, (mtbi, mu) in enumerate(specs):
        rate = 0.0 if mtbi is None else 1.0 / mtbi
        views.append(
            NodeView(
                node_id=f"n{i:02d}",
                estimate=AvailabilityEstimate(
                    arrival_rate=rate,
                    recovery_mean=0.0 if mtbi is None else mu,
                    observations=1,
                ),
            )
        )
    return views


policies = st.sampled_from(
    [RandomPlacement(), NaivePlacement(), AdaptPlacement(), AdaptPlacement(capped=False)]
)


class TestMassConservation:
    @given(host_specs, policies, st.integers(min_value=1, max_value=60),
           st.integers(min_value=0, max_value=500))
    @settings(max_examples=80, deadline=None)
    def test_every_block_placed_exactly_k_times(self, specs, policy, blocks, seed):
        views = make_views(specs)
        k = min(2, len(views))
        plan = policy.build_plan(views, blocks, k, GAMMA)
        rng = RandomSource(seed)
        for _ in range(blocks):
            holders = plan.choose_replicas(rng)
            assert len(holders) == k
            assert len(set(holders)) == k
            assert all(h in {v.node_id for v in views} for h in holders)
        assert sum(plan.allocations().values()) == blocks * k

    @given(host_specs, st.integers(min_value=0, max_value=500))
    @settings(max_examples=50, deadline=None)
    def test_adapt_prefers_more_reliable(self, specs, seed):
        views = make_views(specs)
        mtbis = [spec[0] for spec in specs]
        if None not in mtbis or 10.0 not in mtbis:
            return  # need both extremes to compare
        plan = AdaptPlacement(capped=False).build_plan(views, 400, 1, GAMMA)
        rng = RandomSource(seed)
        for _ in range(400):
            plan.choose_replicas(rng)
        allocations = plan.allocations()
        best = max(
            (v for v, s in zip(views, specs, strict=True) if s[0] is None),
            key=lambda v: allocations[v.node_id],
        )
        worst = min(
            (v for v, s in zip(views, specs, strict=True) if s[0] == 10.0),
            key=lambda v: allocations[v.node_id],
        )
        # A dedicated node never gets fewer blocks than the flakiest node
        # minus sampling noise.
        assert allocations[best.node_id] >= allocations[worst.node_id] - 5

    @given(host_specs, st.integers(min_value=0, max_value=100))
    @settings(max_examples=30, deadline=None)
    def test_capped_plan_respects_threshold(self, specs, seed):
        views = make_views(specs)
        blocks = 8 * len(views)
        k = 1
        plan = AdaptPlacement(capped=True).build_plan(views, blocks, k, GAMMA)
        rng = RandomSource(seed)
        for _ in range(blocks):
            plan.choose_replicas(rng)
        import math

        cap = max(int(math.ceil(blocks * (k + 1) / len(views))), 1)
        for _node_id, count in plan.allocations().items():
            assert count <= cap
