"""Tests for Algorithm 1's weighted hash table."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.hashtable import WeightedHashTable
from repro.util.rng import RandomSource


def table(rates, slots=100, weighting="rate"):
    ids = [f"n{i}" for i in range(len(rates))]
    return WeightedHashTable(ids, rates, slots, chain_weighting=weighting)


class TestConstruction:
    def test_basic(self):
        t = table([1.0, 1.0], slots=10)
        assert t.num_slots == 10
        assert t.rate("n0") == pytest.approx(0.5)
        assert t.expected_blocks("n0") == pytest.approx(5.0)

    def test_rates_normalised(self):
        t = table([2.0, 6.0])
        assert t.rate("n0") == pytest.approx(0.25)
        assert t.rate("n1") == pytest.approx(0.75)

    def test_every_slot_covered(self):
        t = table([1.0, 2.0, 3.0, 0.5], slots=37)
        for slot in range(37):
            assert len(t.chain(slot)) >= 1

    def test_zero_rate_node_gets_no_slots(self):
        t = table([1.0, 0.0, 1.0], slots=20)
        probs = t.selection_probabilities()
        assert probs["n1"] == 0.0

    def test_validation(self):
        with pytest.raises(ValueError):
            table([])
        with pytest.raises(ValueError):
            WeightedHashTable(["a"], [1.0, 2.0], 10)
        with pytest.raises(ValueError):
            table([1.0], slots=0)
        with pytest.raises(ValueError):
            table([-1.0, 2.0])
        with pytest.raises(ValueError):
            table([0.0, 0.0])
        with pytest.raises(ValueError):
            table([1.0], weighting="magic")

    def test_from_expected_times(self):
        # Rates must be proportional to 1/E[T].
        t = WeightedHashTable.from_expected_times(["a", "b"], [10.0, 40.0], 100)
        assert t.rate("a") == pytest.approx(0.8)
        assert t.rate("b") == pytest.approx(0.2)
        with pytest.raises(ValueError):
            WeightedHashTable.from_expected_times(["a"], [0.0], 10)

    def test_chain_structure(self):
        # With 2 equal nodes over 10 slots, only the boundary slot at 5 can
        # hold both.
        t = table([1.0, 1.0], slots=10)
        assert t.max_chain_length() <= 2
        assert t.chain(0) == ["n0"]
        assert t.chain(9) == ["n1"]


class TestSelectionProbabilities:
    def test_overlap_weighting_exact(self):
        t = table([3.0, 1.0, 2.0], slots=50, weighting="overlap")
        probs = t.selection_probabilities()
        assert probs["n0"] == pytest.approx(0.5, abs=1e-9)
        assert probs["n1"] == pytest.approx(1.0 / 6.0, abs=1e-9)
        assert probs["n2"] == pytest.approx(1.0 / 3.0, abs=1e-9)

    def test_rate_weighting_close(self):
        # The paper-literal chain weighting is approximately proportional.
        t = table([3.0, 1.0, 2.0], slots=60, weighting="rate")
        probs = t.selection_probabilities()
        assert probs["n0"] == pytest.approx(0.5, abs=0.02)

    def test_probabilities_sum_to_one(self):
        t = table([5.0, 1.0, 0.1, 2.2], slots=97)
        assert sum(t.selection_probabilities().values()) == pytest.approx(1.0)

    @given(
        st.lists(st.floats(min_value=0.01, max_value=100.0), min_size=1, max_size=12),
        st.integers(min_value=1, max_value=300),
    )
    @settings(max_examples=100)
    def test_overlap_probabilities_proportional(self, rates, slots):
        t = table(rates, slots=slots, weighting="overlap")
        probs = t.selection_probabilities()
        total = sum(rates)
        for i, rate in enumerate(rates):
            assert probs[f"n{i}"] == pytest.approx(rate / total, abs=1e-6)

    @given(
        st.lists(st.floats(min_value=0.01, max_value=100.0), min_size=1, max_size=12),
        st.integers(min_value=1, max_value=300),
    )
    @settings(max_examples=100)
    def test_rate_probabilities_sum_to_one(self, rates, slots):
        t = table(rates, slots=slots, weighting="rate")
        assert sum(t.selection_probabilities().values()) == pytest.approx(1.0)


class TestPlacement:
    def test_place_returns_known_nodes(self):
        t = table([1.0, 2.0, 3.0])
        rng = RandomSource(5)
        for _ in range(50):
            assert t.place(rng) in {"n0", "n1", "n2"}

    def test_empirical_distribution_matches(self):
        t = table([1.0, 3.0], slots=200)
        rng = RandomSource(11)
        picks = t.place_many(rng, 8000)
        share = picks.count("n1") / len(picks)
        assert share == pytest.approx(0.75, abs=0.03)

    def test_deterministic_with_seed(self):
        t = table([1.0, 2.0, 5.0])
        a = t.place_many(RandomSource(3), 100)
        b = t.place_many(RandomSource(3), 100)
        assert a == b

    def test_uniform_rates_match_existing_hdfs(self):
        # "logically equivalent to the existing data placement algorithm if
        # all the nodes share the same availability pattern" (Sec III.C).
        t = table([1.0] * 8, slots=80)
        probs = t.selection_probabilities()
        for _node_id, p in probs.items():
            assert p == pytest.approx(1.0 / 8.0, abs=1e-9)

    def test_single_node(self):
        t = table([7.0], slots=5)
        rng = RandomSource(1)
        assert t.place(rng) == "n0"

    def test_more_nodes_than_slots(self):
        # Degenerate: every slot has a long collision chain.
        t = table([1.0] * 20, slots=3)
        rng = RandomSource(2)
        picks = set(t.place_many(rng, 500))
        assert len(picks) > 10  # most nodes reachable through the chains
