"""Tests for the NameNode-side Performance Predictor."""

import pytest

from repro.availability.estimators import AvailabilityEstimate
from repro.core.model import expected_task_time
from repro.core.predictor import PerformancePredictor

GAMMA = 12.0


class TestRegistration:
    def test_register_and_list(self):
        p = PerformancePredictor()
        p.register_node("b")
        p.register_node("a")
        assert p.node_ids == ["a", "b"]

    def test_register_idempotent(self):
        p = PerformancePredictor()
        p.register_node("x")
        p.observe_downtime("x", 5.0)
        p.register_node("x")  # must not reset the estimator
        assert p.estimate("x").observations == 1

    def test_unknown_node_raises_on_estimate(self):
        p = PerformancePredictor()
        with pytest.raises(KeyError):
            p.estimate("ghost")

    def test_observation_auto_registers(self):
        # A heartbeat collector may report a node that joined mid-run
        # before anyone registered it; the observation must not be lost.
        p = PerformancePredictor()
        p.observe_uptime("joiner", 20.0)
        p.observe_downtime("joiner", 4.0)
        assert "joiner" in p.node_ids
        assert p.estimate("joiner").observations == 1


class TestEstimates:
    def test_estimated_mode_learns(self):
        p = PerformancePredictor(prior_mtbi=1e6, prior_weight=1e-4)
        p.register_node("n")
        for _ in range(50):
            p.observe_uptime("n", 20.0)
            p.observe_downtime("n", 4.0)
        est = p.estimate("n")
        assert est.mtbi == pytest.approx(20.0, rel=0.2)
        assert est.recovery_mean == pytest.approx(4.0, rel=0.1)

    def test_oracle_overrides(self):
        p = PerformancePredictor()
        p.pin_oracle("n", AvailabilityEstimate(arrival_rate=0.1, recovery_mean=8.0))
        p.observe_uptime("n", 1e9)  # should be ignored while pinned
        assert p.estimate("n").mtbi == pytest.approx(10.0)

    def test_unpin_returns_to_estimates(self):
        p = PerformancePredictor(prior_mtbi=500.0)
        p.pin_oracle("n", AvailabilityEstimate(arrival_rate=0.1, recovery_mean=8.0))
        p.unpin_oracle("n")
        assert p.estimate("n").mtbi == pytest.approx(500.0, rel=0.1)

    def test_expected_task_time(self):
        p = PerformancePredictor()
        p.pin_oracle("n", AvailabilityEstimate(arrival_rate=0.05, recovery_mean=4.0))
        assert p.expected_task_time("n", GAMMA) == pytest.approx(
            expected_task_time(GAMMA, 0.05, 4.0)
        )

    def test_unstable_node_reports_infinity(self):
        p = PerformancePredictor()
        p.pin_oracle("n", AvailabilityEstimate(arrival_rate=1.0, recovery_mean=5.0))
        assert p.expected_task_time("n", GAMMA) == float("inf")

    def test_snapshot(self):
        p = PerformancePredictor()
        p.register_node("a")
        p.register_node("b")
        snap = p.snapshot()
        assert set(snap) == {"a", "b"}


class TestNodeViews:
    def test_default_all_up(self):
        p = PerformancePredictor()
        p.register_node("a")
        p.register_node("b")
        views = p.node_views()
        assert all(v.is_up for v in views)

    def test_up_filter(self):
        p = PerformancePredictor()
        p.register_node("a")
        p.register_node("b")
        views = p.node_views(up_nodes=["b"])
        states = {v.node_id: v.is_up for v in views}
        assert states == {"a": False, "b": True}
