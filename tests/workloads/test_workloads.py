"""Tests for workload models."""

import pytest

from repro.hdfs.blocks import DfsFile
from repro.util.rng import RandomSource
from repro.util.units import MB
from repro.workloads import (
    GrepWorkload,
    SyntheticWorkload,
    TerasortWorkload,
    WordCountWorkload,
    make_workload,
)


class TestTerasort:
    def test_table4_calibration(self):
        # "Failure-free Task Execution Time (64MB data block): 12s".
        wl = TerasortWorkload()
        assert wl.gamma_seconds(64 * MB) == pytest.approx(12.0)
        assert wl.gamma_64mb == pytest.approx(12.0)

    def test_gamma_scales_with_block_size(self):
        wl = TerasortWorkload()
        assert wl.gamma_seconds(128 * MB) == pytest.approx(24.0)
        assert wl.gamma_seconds(16 * MB) == pytest.approx(3.0)

    def test_shuffle_heavy(self):
        assert TerasortWorkload().map_output_ratio == 1.0


class TestOtherWorkloads:
    def test_relative_densities(self):
        block = 64 * MB
        grep = GrepWorkload().gamma_seconds(block)
        tera = TerasortWorkload().gamma_seconds(block)
        wc = WordCountWorkload().gamma_seconds(block)
        assert grep < tera < wc

    def test_grep_tiny_shuffle(self):
        assert GrepWorkload().map_output_ratio < 0.01

    def test_gammas_uniform_by_default(self):
        wl = TerasortWorkload()
        f = DfsFile.build("f", 4, 64 * MB, 1)
        assert wl.gammas(f) == [12.0] * 4

    def test_invalid_block_size(self):
        with pytest.raises(ValueError):
            TerasortWorkload().gamma_seconds(0)

    def test_invalid_rate(self):
        with pytest.raises(ValueError):
            GrepWorkload(seconds_per_mb=0.0)

    def test_reduce_gamma_positive(self):
        wl = TerasortWorkload()
        assert wl.reduce_gamma_seconds(640 * MB, reducers=4) > 0


class TestSynthetic:
    def test_no_jitter_is_uniform(self):
        wl = SyntheticWorkload(gamma_cov=0.0)
        f = DfsFile.build("f", 3, 64 * MB, 1)
        gammas = wl.gammas(f)
        assert len(set(gammas)) == 1

    def test_jitter_varies_and_centers(self):
        wl = SyntheticWorkload(seconds_per_mb=0.1875, gamma_cov=0.5)
        f = DfsFile.build("f", 400, 64 * MB, 1)
        gammas = wl.gammas(f, rng=RandomSource(3))
        assert len(set(gammas)) > 300
        mean = sum(gammas) / len(gammas)
        assert mean == pytest.approx(12.0, rel=0.15)

    def test_jitter_requires_rng(self):
        wl = SyntheticWorkload(gamma_cov=0.5)
        f = DfsFile.build("f", 2, 64 * MB, 1)
        with pytest.raises(ValueError, match="rng"):
            wl.gammas(f)

    def test_jitter_deterministic(self):
        wl = SyntheticWorkload(gamma_cov=0.3)
        f = DfsFile.build("f", 10, 64 * MB, 1)
        assert wl.gammas(f, rng=RandomSource(5)) == wl.gammas(f, rng=RandomSource(5))


class TestFactory:
    def test_known_names(self):
        assert make_workload("terasort").name == "terasort"
        assert make_workload("wordcount").name == "wordcount"
        assert make_workload("grep").name == "grep"
        assert make_workload("synthetic").name == "synthetic"

    def test_kwargs_forwarded(self):
        wl = make_workload("terasort", seconds_per_mb=0.375)
        assert wl.gamma_seconds(64 * MB) == pytest.approx(24.0)

    def test_unknown(self):
        with pytest.raises(ValueError, match="unknown workload"):
            make_workload("bitcoin")
