"""Tests for the flow-level network model."""

import pytest

from repro.simulator.engine import Simulator
from repro.simulator.network import Network, TransferState
from repro.util.units import MB, mbit_per_s


def setup_net(fair=True, up=1000.0, down=None):
    sim = Simulator()
    net = Network(sim, uplink_bps=up, downlink_bps=down, fair_sharing=fair)
    return sim, net


class Collector:
    def __init__(self):
        self.completed = []
        self.cancelled = []

    def on_complete(self, t):
        self.completed.append(t)

    def on_cancel(self, t):
        self.cancelled.append(t)


class TestSingleTransfer:
    @pytest.mark.parametrize("fair", [True, False])
    def test_duration_is_size_over_rate(self, fair):
        sim, net = setup_net(fair=fair, up=100.0)
        c = Collector()
        net.start_transfer("a", "b", 1000.0, c.on_complete)
        sim.run()
        assert len(c.completed) == 1
        assert c.completed[0].finished_at == pytest.approx(10.0)

    @pytest.mark.parametrize("fair", [True, False])
    def test_asymmetric_links(self, fair):
        # Uplink 100, downlink 50: the slower link binds.
        sim, net = setup_net(fair=fair, up=100.0, down=50.0)
        c = Collector()
        net.start_transfer("a", "b", 1000.0, c.on_complete)
        sim.run()
        assert c.completed[0].finished_at == pytest.approx(20.0)

    def test_paper_canonical_example(self):
        # 64MB at 8Mb/s ~ 67 seconds (Section I's "several minutes" at 1Mb/s).
        sim, net = setup_net(up=mbit_per_s(8.0))
        c = Collector()
        net.start_transfer("a", "b", 64 * MB, c.on_complete)
        sim.run()
        assert c.completed[0].finished_at == pytest.approx(67.1, abs=0.2)

    def test_rejects_self_transfer(self):
        _, net = setup_net()
        with pytest.raises(ValueError, match="differ"):
            net.start_transfer("a", "a", 10.0, lambda t: None)

    def test_rejects_negative_size(self):
        _, net = setup_net()
        with pytest.raises(ValueError):
            net.start_transfer("a", "b", -5.0, lambda t: None)


class TestFairSharing:
    def test_shared_uplink_halves_rate(self):
        # Two transfers from the same source share its uplink.
        sim, net = setup_net(up=100.0)
        c = Collector()
        net.start_transfer("src", "d1", 1000.0, c.on_complete)
        net.start_transfer("src", "d2", 1000.0, c.on_complete)
        sim.run()
        assert len(c.completed) == 2
        for t in c.completed:
            assert t.finished_at == pytest.approx(20.0)

    def test_disjoint_transfers_full_rate(self):
        sim, net = setup_net(up=100.0)
        c = Collector()
        net.start_transfer("a", "b", 1000.0, c.on_complete)
        net.start_transfer("c", "d", 1000.0, c.on_complete)
        sim.run()
        for t in c.completed:
            assert t.finished_at == pytest.approx(10.0)

    def test_rate_rises_after_competitor_finishes(self):
        # Transfer 2 starts halfway through and then shares; transfer 1
        # finishes and transfer 2 speeds back up.
        sim, net = setup_net(up=100.0)
        c = Collector()
        net.start_transfer("src", "d1", 1000.0, c.on_complete)
        sim.schedule(5.0, lambda: net.start_transfer("src", "d2", 1000.0, c.on_complete))
        sim.run()
        by_dst = {t.destination: t for t in c.completed}
        # t1: 5s at 100 + 10s at 50 = 1000 bytes -> ends at 15.
        assert by_dst["d1"].finished_at == pytest.approx(15.0)
        # t2: 10s at 50 (500) + 5s at 100 (500) -> ends at 20.
        assert by_dst["d2"].finished_at == pytest.approx(20.0)

    def test_max_min_with_mixed_bottlenecks(self):
        # src uplink 100 shared by two flows; one flow's destination
        # downlink only 30 -> it gets 30, the other picks up 70.
        sim = Simulator()
        net = Network(sim, uplink_bps=100.0, downlink_bps=1000.0)
        net.set_link("slow", downlink_bps=30.0)
        c = Collector()
        net.start_transfer("src", "slow", 300.0, c.on_complete)
        net.start_transfer("src", "fast", 700.0, c.on_complete)
        sim.run()
        by_dst = {t.destination: t for t in c.completed}
        assert by_dst["slow"].finished_at == pytest.approx(10.0)
        assert by_dst["fast"].finished_at == pytest.approx(10.0)

    def test_conservation_no_link_oversubscribed(self):
        # At any allocation, the sum of flow rates through a link must not
        # exceed its capacity.
        sim, net = setup_net(up=100.0)
        done = Collector()
        for i in range(5):
            net.start_transfer("hot", f"d{i}", 500.0, done.on_complete)
        total_rate = sum(t.rate for t in net.active_transfers)
        assert total_rate <= 100.0 + 1e-6
        sim.run()
        assert len(done.completed) == 5

    def test_outgoing_count(self):
        sim, net = setup_net(up=100.0)
        c = Collector()
        net.start_transfer("s", "d1", 1e6, c.on_complete)
        net.start_transfer("s", "d2", 1e6, c.on_complete)
        assert net.outgoing_count("s") == 2
        assert net.outgoing_count("d1") == 0
        sim.run()
        assert net.outgoing_count("s") == 0


class TestSimpleMode:
    def test_no_contention(self):
        # In simple mode, concurrent transfers do not slow each other.
        sim, net = setup_net(fair=False, up=100.0)
        c = Collector()
        net.start_transfer("src", "d1", 1000.0, c.on_complete)
        net.start_transfer("src", "d2", 1000.0, c.on_complete)
        sim.run()
        for t in c.completed:
            assert t.finished_at == pytest.approx(10.0)


class TestCancellation:
    @pytest.mark.parametrize("fair", [True, False])
    def test_cancel_stops_completion(self, fair):
        sim, net = setup_net(fair=fair, up=100.0)
        c = Collector()
        t = net.start_transfer("a", "b", 1000.0, c.on_complete, c.on_cancel)
        sim.schedule(4.0, lambda: net.cancel(t))
        sim.run()
        assert c.completed == []
        assert len(c.cancelled) == 1
        assert t.state is TransferState.CANCELLED
        # Partial progress recorded: 4s at 100 B/s.
        assert t.transferred == pytest.approx(400.0)

    def test_cancel_involving_node(self):
        sim, net = setup_net(up=100.0)
        c = Collector()
        net.start_transfer("x", "y", 1000.0, c.on_complete, c.on_cancel)
        net.start_transfer("z", "x", 1000.0, c.on_complete, c.on_cancel)
        net.start_transfer("z", "w", 1000.0, c.on_complete, c.on_cancel)
        doomed = net.cancel_involving("x")
        assert len(doomed) == 2
        sim.run()
        assert len(c.completed) == 1
        assert c.completed[0].destination == "w"

    def test_cancel_idempotent(self):
        sim, net = setup_net()
        c = Collector()
        t = net.start_transfer("a", "b", 100.0, c.on_complete, c.on_cancel)
        net.cancel(t)
        net.cancel(t)
        assert len(c.cancelled) == 1

    def test_cancel_after_completion_is_noop(self):
        sim, net = setup_net(up=100.0)
        c = Collector()
        t = net.start_transfer("a", "b", 100.0, c.on_complete, c.on_cancel)
        sim.run()
        net.cancel(t)
        assert c.cancelled == []
        assert t.state is TransferState.COMPLETED
