"""Tests for failure injection."""

import pytest

from repro.availability.distributions import Deterministic, Exponential
from repro.availability.generator import HostAvailability
from repro.availability.traces import AvailabilityTrace
from repro.simulator.engine import Simulator
from repro.simulator.failures import FailureInjector
from repro.util.rng import RandomSource


def make_injector(seed=1):
    sim = Simulator()
    return sim, FailureInjector(sim, RandomSource(seed))


def interrupted_host(host_id="h0", mtbi=10.0, mu=2.0):
    return HostAvailability(
        host_id=host_id,
        arrival=Exponential(mean=mtbi),
        service=Exponential(mean=mu),
        group="test",
    )


class Recorder:
    def __init__(self):
        self.events = []

    def down(self, node_id, t):
        self.events.append(("down", node_id, t))

    def up(self, node_id, t):
        self.events.append(("up", node_id, t))


class TestAttachment:
    def test_dedicated_never_fails(self):
        sim, injector = make_injector()
        rec = Recorder()
        injector.subscribe(rec.down, rec.up)
        injector.attach_host(HostAvailability(host_id="d"))
        sim.run(until=10000.0)
        assert rec.events == []
        assert not injector.is_down("d")

    def test_interrupted_host_cycles(self):
        sim, injector = make_injector()
        rec = Recorder()
        injector.subscribe(rec.down, rec.up)
        injector.attach_host(interrupted_host())
        sim.run(until=500.0)
        downs = [e for e in rec.events if e[0] == "down"]
        ups = [e for e in rec.events if e[0] == "up"]
        assert len(downs) > 10
        assert abs(len(downs) - len(ups)) <= 1

    def test_down_up_alternate(self):
        sim, injector = make_injector()
        rec = Recorder()
        injector.subscribe(rec.down, rec.up)
        injector.attach_host(interrupted_host())
        sim.run(until=300.0)
        kinds = [e[0] for e in rec.events]
        for a, b in zip(kinds, kinds[1:]):
            assert a != b, "down/up must alternate"

    def test_double_attach_rejected(self):
        _, injector = make_injector()
        injector.attach_host(interrupted_host())
        with pytest.raises(ValueError, match="already attached"):
            injector.attach_host(interrupted_host())

    def test_accounting(self):
        sim, injector = make_injector()
        injector.attach_host(interrupted_host())
        sim.run(until=1000.0)
        assert injector.episode_count("h0") > 0
        assert injector.downtime_total("h0") > 0.0


class TestTraceReplay:
    def test_exact_windows(self):
        sim, injector = make_injector()
        rec = Recorder()
        injector.subscribe(rec.down, rec.up)
        trace = AvailabilityTrace("t0", 100.0, [(10.0, 15.0), (40.0, 42.0)])
        injector.attach_trace(trace)
        sim.run(until=100.0)
        assert rec.events == [
            ("down", "t0", 10.0),
            ("up", "t0", 15.0),
            ("down", "t0", 40.0),
            ("up", "t0", 42.0),
        ]

    def test_state_queries_during_replay(self):
        sim, injector = make_injector()
        trace = AvailabilityTrace("t0", 100.0, [(10.0, 20.0)])
        injector.attach_trace(trace)
        sim.run(until=12.0)
        assert injector.is_down("t0")
        sim.run(until=25.0)
        assert not injector.is_down("t0")


class TestBurnIn:
    def test_zero_burn_in_starts_up(self):
        sim, injector = make_injector()
        injector.attach_host(interrupted_host())
        assert not injector.is_down("h0")

    def test_burn_in_can_start_down(self):
        # A host down 90% of the time and a long burn-in: at t=0 it must
        # (for some seed) already be down, with the episode clipped to 0.
        found_down = False
        for seed in range(30):
            sim = Simulator()
            injector = FailureInjector(sim, RandomSource(seed))
            host = HostAvailability(
                host_id="h0",
                arrival=Exponential(mean=10.0),
                service=Deterministic(value=50.0),
                group="test",
            )
            injector.attach_host(host, burn_in=10_000.0)
            sim.run(until=0.0)
            if injector.is_down("h0"):
                found_down = True
                break
        assert found_down

    def test_burn_in_preserves_event_validity(self):
        sim, injector = make_injector(seed=9)
        rec = Recorder()
        injector.subscribe(rec.down, rec.up)
        injector.attach_host(interrupted_host(), burn_in=500.0)
        sim.run(until=200.0)
        # Events stay ordered and alternating after the shift.
        times = [t for _k, _n, t in rec.events]
        assert times == sorted(times)
        kinds = [k for k, _n, _t in rec.events]
        for a, b in zip(kinds, kinds[1:]):
            assert a != b

    def test_negative_burn_in_rejected(self):
        _, injector = make_injector()
        with pytest.raises(ValueError):
            injector.attach_host(interrupted_host(), burn_in=-1.0)


class TestMultipleSubscribersOrder:
    def test_callbacks_in_subscription_order(self):
        sim, injector = make_injector()
        order = []
        injector.subscribe(on_down=lambda n, t: order.append("first"))
        injector.subscribe(on_down=lambda n, t: order.append("second"))
        injector.attach_trace(AvailabilityTrace("t", 10.0, [(1.0, 2.0)]))
        sim.run(until=1.5)
        assert order == ["first", "second"]
